"""reprolint command-line interface.

Exit codes: 0 clean (no new findings, no stale baseline entries), 1 new
findings or stale baseline entries, 2 usage error.  ``make lint`` and the CI
``static-analysis`` job both call this entry point, so local and CI runs are
the same invocation.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from reprolint.baselines import Baseline
from reprolint.engine import LintResult, LintRunner
from reprolint.rules import all_rules

__all__ = ["main"]

DEFAULT_BASELINE = "tools/reprolint/baseline.json"
DEFAULT_PATHS = ("src/repro",)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "AST-based invariant checker for the ATTNChecker reproduction: "
            "machine-enforces the xp-genericity, float64-accumulation, "
            "host-transfer, lock-discipline, workspace and layering contracts."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files or directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root that relative paths and baseline paths resolve "
        "against (default: current directory)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline file of grandfathered findings (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report every finding as new",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline to cover current findings (new entries get "
        "a TODO reason to be reviewed) and exit 0",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="write the report to this file instead of stdout",
    )
    parser.add_argument(
        "--show-baselined",
        action="store_true",
        help="also list findings covered by the baseline (with their reasons)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _emit(text: str, output: Optional[str]) -> None:
    if output:
        Path(output).write_text(text, encoding="utf-8")
    else:
        sys.stdout.write(text)


def _render_catalog() -> str:
    lines = ["reprolint rule catalog", ""]
    for rule in all_rules():
        lines.append(f"{rule.id}  {rule.name}")
        lines.append(f"    invariant: {rule.invariant}")
        lines.append(f"    rationale: {rule.rationale}")
        if rule.example:
            lines.append(f"    example:   {rule.example}")
        lines.append("")
    return "\n".join(lines)


def _render_human(result: LintResult, baseline: Baseline, show_baselined: bool) -> str:
    lines: List[str] = []
    for finding in result.new:
        lines.append(finding.render())
    if show_baselined and result.baselined:
        lines.append("")
        lines.append(f"baselined findings ({len(result.baselined)}):")
        for finding in result.baselined:
            reason = baseline.reason_for(finding.fingerprint) or ""
            suffix = f"  (reason: {reason})" if reason else ""
            lines.append(f"  {finding.render()}{suffix}")
    if result.stale_fingerprints:
        lines.append("")
        lines.append(
            f"stale baseline entries ({len(result.stale_fingerprints)}) — the "
            "finding no longer fires; remove them from the baseline:"
        )
        for fingerprint in result.stale_fingerprints:
            entry_path = baseline.fingerprint_paths().get(fingerprint, "?")
            lines.append(f"  {fingerprint}  ({entry_path})")
    lines.append("")
    verdict = "clean" if (result.clean and not result.stale_fingerprints) else "FAILED"
    lines.append(
        f"reprolint: {verdict} — {result.files_checked} files, "
        f"{len(result.new)} new, {len(result.baselined)} baselined, "
        f"{result.suppressed} suppressed, {len(result.stale_fingerprints)} stale"
    )
    return "\n".join(lines) + "\n"


def _render_json(result: LintResult, baseline: Baseline) -> str:
    payload = {
        "files_checked": result.files_checked,
        "new": [f.to_json() for f in result.new],
        "baselined": [
            {**f.to_json(), "reason": baseline.reason_for(f.fingerprint)}
            for f in result.baselined
        ],
        "suppressed": result.suppressed,
        "stale_fingerprints": result.stale_fingerprints,
        "clean": result.clean and not result.stale_fingerprints,
    }
    return json.dumps(payload, indent=2) + "\n"


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        _emit(_render_catalog(), args.output)
        return 0

    root = Path(args.root).resolve()
    if not root.is_dir():
        parser.error(f"--root {args.root!r} is not a directory")  # exits 2

    baseline_path = Path(args.baseline)
    if not baseline_path.is_absolute():
        baseline_path = root / baseline_path
    baseline = Baseline()
    if not args.no_baseline and baseline_path.is_file():
        try:
            baseline = Baseline.load(baseline_path)
        except (ValueError, KeyError, json.JSONDecodeError) as exc:
            parser.error(f"cannot load baseline {baseline_path}: {exc}")

    paths = [Path(p) for p in (args.paths or DEFAULT_PATHS)]
    runner = LintRunner(root, all_rules())
    missing = [
        str(p) for p in paths if not (p if p.is_absolute() else root / p).exists()
    ]
    if missing:
        parser.error(f"no such path(s): {', '.join(missing)}")

    result = runner.run(paths, baseline.fingerprint_paths())

    if args.write_baseline:
        updated = Baseline.from_findings(result.new + result.baselined, baseline)
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        updated.save(baseline_path)
        todo = sum(1 for e in updated.entries if e.reason.startswith("TODO"))
        sys.stdout.write(
            f"reprolint: wrote {len(updated.entries)} entries to "
            f"{baseline_path} ({todo} need a reviewed reason)\n"
        )
        return 0

    if args.format == "json":
        _emit(_render_json(result, baseline), args.output)
    else:
        _emit(_render_human(result, baseline, args.show_baselined), args.output)

    return 0 if (result.clean and not result.stale_fingerprints) else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())

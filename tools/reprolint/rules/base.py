"""Shared helpers for reprolint rules."""

from __future__ import annotations

import ast
from typing import Iterable, Optional, Sequence, Tuple

from reprolint.engine import FileContext, Finding, Rule, ScopedVisitor

__all__ = [
    "PathScopedRule",
    "attr_chain_root",
    "call_attr_name",
    "keyword_arg",
    "unparse_short",
]


class PathScopedRule(Rule):
    """Rule whose file scope is prefix/exact-path class configuration.

    ``scope_prefixes`` select directories (posix, relative to the lint
    root), ``scope_files`` individual files; ``exclude_prefixes`` /
    ``exclude_files`` carve allowlisted seams back out.  Tests point
    subclasses at fixture trees by overriding these class attributes.
    """

    scope_prefixes: Tuple[str, ...] = ()
    scope_files: Tuple[str, ...] = ()
    exclude_prefixes: Tuple[str, ...] = ()
    exclude_files: Tuple[str, ...] = ()

    def applies_to(self, relpath: str) -> bool:
        if relpath in self.exclude_files:
            return False
        if any(relpath.startswith(prefix) for prefix in self.exclude_prefixes):
            return False
        if relpath in self.scope_files:
            return True
        return any(relpath.startswith(prefix) for prefix in self.scope_prefixes)


def attr_chain_root(node: ast.AST) -> Optional[str]:
    """Name at the root of an attribute chain (``np`` for ``np.linalg.norm``)."""
    while isinstance(node, ast.Attribute):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def call_attr_name(node: ast.Call) -> Optional[str]:
    """Attribute name of an ``obj.method(...)`` call, else None."""
    return node.func.attr if isinstance(node.func, ast.Attribute) else None


def keyword_arg(node: ast.Call, name: str) -> Optional[ast.expr]:
    for kw in node.keywords:
        if kw.arg == name:
            return kw.value
    return None


def unparse_short(node: ast.AST, limit: int = 40) -> str:
    text = ast.unparse(node)
    return text if len(text) <= limit else text[: limit - 3] + "..."

"""TH001 — lock discipline on worker-shared state.

The async verification worker (PR 2) shares a handful of
:class:`ProtectionEngine` attributes with the submitting thread — the inbox
deque, completion list, in-flight/epoch counters, failure slot and shutdown
flags — all documented as "guarded by ``_cv``".  Python's GIL makes single
attribute reads atomic, which is exactly why an unlocked access *passes every
test* while still being a data race in composition (check-then-act on
``_inflight``, pairing of ``_shutdown``/``_discard_on_shutdown``).  This rule
makes the convention mechanical: a shared attribute may only be touched
inside a ``with self._cv``/``with self._lock`` block, a ``*_locked`` method
(whose callers hold the lock by naming convention), or ``__init__`` (before
the worker can exist).

PR 8 extended the scope to ``repro/comm/``: the thread collective's
rendezvous state (entries / results / fetch counters / failure / closed,
guarded by ``_cv``) and the protected collective's dispatch accounting and
verdict cache (guarded by ``_lock``) are shared across every worker thread of
the data-parallel trainer, under the same discipline.  Shared attributes are
declared per file in :attr:`LockDisciplineRule.file_shared_attrs`.

The whole-model refactor (PR 9) routes the FFN sections through the same
async worker and the same inbox/epoch/staleness accounting, so the engine's
shared-attribute list is unchanged — deliberately: the registry seam
(``core/hooks.py`` / ``core/sections.py``) holds immutable declarations and
must stay free of worker-shared mutable state.  A section handler that grows
its own cross-thread counter belongs in ``engine.py`` under ``_cv``, and its
attribute belongs in this map.

The overlapped trainer (PR 10) added ``repro/comm/bucketing.py`` to the
scope: :class:`BucketAccounting`'s launch/retry counters and overlap timing
accumulators are bumped from every rank's worker thread mid-backward and read
by the coordinator between steps, guarded by ``_lock``.  The thread
collective also grew a ``_deposit_copies`` counter (copy-on-deposit elision
accounting) under ``_cv``.  The bucketer and per-rank readiness trackers
stay immutable / single-threaded by design and deliberately out of the map.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Tuple

from reprolint.engine import FileContext, Finding
from reprolint.rules.base import PathScopedRule

__all__ = ["LockDisciplineRule"]


class LockDisciplineRule(PathScopedRule):
    id = "TH001"
    name = "lock-discipline"
    invariant = (
        "Attributes shared across worker threads (verification engine, "
        "collective rendezvous, protected-collective accounting) are touched "
        "only under `with self._cv` (or `self._lock`) or inside *_locked "
        "methods."
    )
    rationale = (
        "GIL atomicity makes unlocked accesses pass every test while still "
        "racing in composition (check-then-act on _inflight, paired shutdown "
        "flags); the engine's staleness accounting and failure propagation "
        "depend on these invariants holding under the condition variable."
    )
    example = (
        "src/repro/core/engine.py:1068: TH001 worker-shared attribute "
        "'self._shutdown' accessed outside the lock [ProtectionEngine._join_worker]"
    )

    scope_files = (
        "src/repro/core/engine.py",
        "src/repro/comm/collective.py",
        "src/repro/comm/protected.py",
        "src/repro/comm/bucketing.py",
    )
    #: Lock / condition-variable attribute names that establish a guarded region.
    lock_attrs: Tuple[str, ...] = ("_cv", "_lock")
    #: Worker-shared state per scoped file (the "guarded by _cv"/"_lock"
    #: blocks in each class's __init__).
    file_shared_attrs: Dict[str, Tuple[str, ...]] = {
        "src/repro/core/engine.py": (
            "_inbox",
            "_completed",
            "_inflight",
            "_epoch",
            "_failure",
            "_shutdown",
            "_discard_on_shutdown",
        ),
        "src/repro/comm/collective.py": (
            "_entries",
            "_results",
            "_fetched",
            "_deposit_copies",
            "_failure",
            "_closed",
        ),
        "src/repro/comm/protected.py": (
            "_checksum_encodes",
            "_checksum_verifies",
            "_mismatches",
            "_verify_seconds",
            "_allreduce_seconds",
            "_verdicts",
            "_verdict_fetches",
        ),
        "src/repro/comm/bucketing.py": (
            "_launches",
            "_overlapped_launches",
            "_retries",
            "_bucket_seconds",
            "_overlap_seconds",
            "_drain_seconds",
        ),
    }
    #: Methods that may touch shared state unlocked: construction happens
    #: before any worker thread can observe the object.
    exempt_methods: Tuple[str, ...] = ("__init__",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        shared = self.file_shared_attrs.get(ctx.relpath, ())
        if not shared:
            return iter(())
        visitor = _LockVisitor(self, ctx, shared)
        visitor.visit(ctx.tree)
        return iter(visitor.findings)


class _LockVisitor(ast.NodeVisitor):
    """Tracks lexical lock context; a nested def resets it (the closure runs
    later, not under the lock held at definition time)."""

    def __init__(
        self, rule: LockDisciplineRule, ctx: FileContext, shared: Tuple[str, ...]
    ) -> None:
        self.rule = rule
        self.ctx = ctx
        self.shared = shared
        self.findings: list = []
        self.scope: list = []
        self.lock_depth = 0
        self.current_function = ""

    def symbol(self) -> str:
        return ".".join(self.scope)

    def _is_lock_item(self, item: ast.withitem) -> bool:
        expr = item.context_expr
        return (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and expr.attr in self.rule.lock_attrs
        )

    def visit_With(self, node: ast.With) -> None:
        locked = any(self._is_lock_item(item) for item in node.items)
        self.lock_depth += 1 if locked else 0
        self.generic_visit(node)
        self.lock_depth -= 1 if locked else 0

    def _visit_function(self, node) -> None:
        self.scope.append(node.name)
        saved_depth, saved_fn = self.lock_depth, self.current_function
        self.lock_depth, self.current_function = 0, node.name
        try:
            self.generic_visit(node)
        finally:
            self.lock_depth, self.current_function = saved_depth, saved_fn
            self.scope.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.scope.append(node.name)
        try:
            self.generic_visit(node)
        finally:
            self.scope.pop()

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in self.shared
            and self.lock_depth == 0
            and not self.current_function.endswith("_locked")
            and self.current_function not in self.rule.exempt_methods
        ):
            self.findings.append(
                self.rule.finding(
                    self.ctx, node,
                    f"worker-shared attribute 'self.{node.attr}' accessed outside "
                    "`with self._cv` / a *_locked method",
                    detail=f"attr:{node.attr}",
                    symbol=self.symbol(),
                )
            )
        self.generic_visit(node)

"""BK001 — xp-genericity: no direct NumPy in ``repro.core``.

The PR 3/4 device-resident path dispatches every kernel through the
namespace of the backend that owns its arrays (``xp = namespace_of(x)``).
A direct ``import numpy`` call inside ``src/repro/core/`` silently pins that
code to host memory: a CuPy/Torch tensor flowing through it either errors or
— worse — round-trips through host NumPy, costing a hidden PCIe transfer the
``xfer/*`` timers never see and invalidating the zero-host-round-trip claim
the counting-backend tests pin on the *tested* paths only.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set, Tuple

from reprolint.engine import FileContext, Finding, ScopedVisitor
from reprolint.rules.base import PathScopedRule

__all__ = ["XpGenericityRule"]


class XpGenericityRule(PathScopedRule):
    id = "BK001"
    name = "xp-genericity"
    invariant = (
        "src/repro/core/ must not call NumPy directly; kernels dispatch "
        "through the owning backend's namespace (namespace_of/backend_of)."
    )
    rationale = (
        "Direct numpy calls in core silently pin device-resident data to host "
        "memory (hidden d2h/h2d round-trips the xfer/* timers never observe), "
        "degrading the device-resident protection path without failing any "
        "functional test."
    )
    example = (
        "src/repro/core/patterns.py:93: BK001 direct NumPy use 'np.asarray' "
        "in xp-generic core code"
    )

    scope_prefixes = ("src/repro/core/",)
    #: Relpaths allowed to import numpy (host-side seam files).  Empty after
    #: the PR-6 cleanup: every core module is xp-generic; deliberate host
    #: work belongs behind the backend seam or in an explicitly baselined
    #: entry with a reason.
    exclude_files: Tuple[str, ...] = ()

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        aliases: Set[str] = set()
        findings = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy" or alias.name.startswith("numpy."):
                        aliases.add((alias.asname or alias.name).split(".")[0])
                        findings.append(
                            self.finding(
                                ctx, node,
                                f"direct NumPy import '{alias.name}' in xp-generic "
                                "core code — dispatch through namespace_of()/"
                                "backend_of() instead",
                                detail=f"import:{alias.name}",
                            )
                        )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module == "numpy" or module.startswith("numpy."):
                    findings.append(
                        self.finding(
                            ctx, node,
                            f"direct NumPy import 'from {module} import ...' in "
                            "xp-generic core code",
                            detail=f"import-from:{module}",
                        )
                    )
        if aliases:
            findings.extend(_AliasUseVisitor(self, ctx, aliases).collect())
        return iter(findings)


class _AliasUseVisitor(ScopedVisitor):
    """Flag every load of a numpy alias, with the enclosing symbol attached."""

    def __init__(self, rule: XpGenericityRule, ctx: FileContext, aliases: Set[str]) -> None:
        super().__init__()
        self.rule = rule
        self.ctx = ctx
        self.aliases = aliases
        self.findings: list = []

    def collect(self) -> list:
        self.visit(self.ctx.tree)
        return self.findings

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.value, ast.Name) and node.value.id in self.aliases:
            self.findings.append(
                self.rule.finding(
                    self.ctx, node,
                    f"direct NumPy use '{node.value.id}.{node.attr}' in xp-generic "
                    "core code",
                    detail=f"use:{node.value.id}.{node.attr}",
                    symbol=self.symbol(),
                )
            )
        self.generic_visit(node)

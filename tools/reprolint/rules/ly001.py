"""LY001 — layering: core is the bottom of the model stack, backend below it.

``repro.core`` (checksum math, the protection engine) must be importable
without pulling in the model zoo, the nn layer, or training — that is what
lets the ABFT kernels be tested and reused standalone, and what keeps the
dependency graph acyclic when nn/models/training all import core.
``repro.backend`` sits below everything: it abstracts arrays and must not
know about checksums or models.  ``repro.comm`` (PR 8) sits beside core just
above the backend: the collectives move arrays and checksum them, so they may
import ``repro.backend`` and ``repro.utils`` but nothing of the model stack —
that is what lets the protected all-reduce be reused under any trainer.

The whole-model refactor (PR 9) raised the stakes on this contract: the
op/section registries (``core/hooks.py``, ``core/sections.py``) are the seam
that *every* instrumented block — attention and FFN alike — declares itself
through, and ``repro.nn.attention`` re-exports those types downward-only.
The forbidden maps therefore also name the newer upper layers (``faults``,
``serving``, ``analysis``): a block-specific import sneaking into the
registry would re-specialize the seam the refactor just generalized.
Annotation-only dependencies are fine when gated behind
``if TYPE_CHECKING:`` (they vanish at runtime).

The gradient bucketer (PR 10, ``comm/bucketing.py``) lives under the same
``src/repro/comm/`` prefix and inherits the contract automatically: it
partitions and flattens raw backend arrays, so it may import
``repro.backend``/``repro.utils`` but not ``repro.tensor`` (autograd) or the
trainer that drives it — the readiness hooks are wired up in
``repro.training``, above the seam.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Tuple

from reprolint.engine import FileContext, Finding
from reprolint.rules.base import PathScopedRule

__all__ = ["LayeringRule"]


class LayeringRule(PathScopedRule):
    id = "LY001"
    name = "layering"
    invariant = (
        "core/ must not import nn/models/training/data/cli; comm/ must not "
        "import core or the model stack; backend/ must not import any repro "
        "layer above it (TYPE_CHECKING-gated imports are exempt)."
    )
    rationale = (
        "Upward imports make the checksum kernels untestable standalone and "
        "create import cycles the moment a higher layer grows a core "
        "dependency; the layering is the contract that keeps core reusable."
    )
    example = (
        "src/repro/core/attention_checker.py:89: LY001 upward import "
        "'repro.nn.attention' from layer core"
    )

    scope_prefixes = ("src/repro/core/", "src/repro/backend/", "src/repro/comm/")
    #: layer prefix -> forbidden import prefixes (dotted module names).
    forbidden: Dict[str, Tuple[str, ...]] = {
        "src/repro/core/": (
            "repro.nn",
            "repro.models",
            "repro.training",
            "repro.data",
            "repro.cli",
            "repro.faults",
            "repro.serving",
            "repro.analysis",
        ),
        "src/repro/comm/": (
            "repro.core",
            "repro.nn",
            "repro.models",
            "repro.training",
            "repro.data",
            "repro.cli",
            "repro.tensor",
            "repro.faults",
            "repro.serving",
            "repro.analysis",
        ),
        "src/repro/backend/": (
            "repro.core",
            "repro.nn",
            "repro.models",
            "repro.training",
            "repro.tensor",
            "repro.faults",
            "repro.serving",
            "repro.analysis",
        ),
    }

    def _forbidden_for(self, relpath: str) -> Tuple[str, ...]:
        for prefix, banned in self.forbidden.items():
            if relpath.startswith(prefix):
                return banned
        return ()

    @staticmethod
    def _matches(module: str, banned: Tuple[str, ...]) -> bool:
        return any(module == b or module.startswith(b + ".") for b in banned)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        banned = self._forbidden_for(ctx.relpath)
        if not banned:
            return iter(())
        layer = ctx.relpath.split("/")[2] if ctx.relpath.count("/") >= 2 else "?"
        findings = []
        type_checking_spans = _type_checking_linenos(ctx.tree)
        for node in ast.walk(ctx.tree):
            modules = ()
            if isinstance(node, ast.Import):
                modules = tuple(alias.name for alias in node.names)
            elif isinstance(node, ast.ImportFrom) and node.module:
                modules = (node.module,)
            for module in modules:
                if self._matches(module, banned) and node.lineno not in type_checking_spans:
                    findings.append(
                        self.finding(
                            ctx, node,
                            f"upward import '{module}' from layer {layer} — "
                            "move the shared type down or gate it behind "
                            "`if TYPE_CHECKING:`",
                            detail=f"import:{module}",
                        )
                    )
        return iter(findings)


def _type_checking_linenos(tree: ast.AST) -> set:
    """Line numbers lexically inside ``if TYPE_CHECKING:`` bodies."""
    lines: set = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.If) and _is_type_checking_test(node.test):
            for child in node.body:
                end = getattr(child, "end_lineno", child.lineno)
                lines.update(range(child.lineno, end + 1))
    return lines


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False

"""DT001 — float64 accumulation in checksum reductions.

The PR 1 fp16/fp32 false-positive fix: encoding or recomputing a
Huang–Abraham weighted sum in the data's own (low) precision loses enough of
the sum to round-off that *fault-free* data trips the detection tolerances.
Every ``sum``-family reduction inside the checksum encode/update/detect
functions must therefore pass an explicit float64 accumulation dtype.  A
reduction that deliberately counts mask elements (integer semantics) carries
an inline suppression explaining itself.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from reprolint.engine import FileContext, Finding, ScopedVisitor
from reprolint.rules.base import PathScopedRule, keyword_arg, unparse_short

__all__ = ["Float64AccumulationRule"]

_REDUCTIONS = ("sum", "mean")


class Float64AccumulationRule(PathScopedRule):
    id = "DT001"
    name = "float64-accumulation"
    invariant = (
        "Checksum encode/update/detect reductions must accumulate in float64 "
        "(pass dtype=xp.float64)."
    )
    rationale = (
        "Summing an fp16/fp32 matrix in its own precision loses enough of the "
        "weighted checksum to round-off that fault-free data exceeds the "
        "detection tolerances — coverage silently degrades into false "
        "positives (the PR 1 regression class)."
    )
    example = (
        "src/repro/core/eec_abft.py:315: DT001 reduction 'xp.sum(healthy, axis=1)' "
        "must pass dtype=xp.float64 [check_columns]"
    )

    scope_files = (
        "src/repro/core/checksums.py",
        "src/repro/core/eec_abft.py",
    )
    #: Functions whose reductions feed checksum comparison: the encoders,
    #: the propagation/bias adjusters, and the EEC-ABFT detection passes.
    function_prefixes: Tuple[str, ...] = ("encode_", "recompute_", "adjust_")
    function_names: Tuple[str, ...] = ("check_columns", "check_rows")

    def _in_scope(self, function: str) -> bool:
        return function in self.function_names or any(
            function.startswith(p) for p in self.function_prefixes
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(_ReductionVisitor(self, ctx).collect())


class _ReductionVisitor(ScopedVisitor):
    def __init__(self, rule: Float64AccumulationRule, ctx: FileContext) -> None:
        super().__init__()
        self.rule = rule
        self.ctx = ctx
        self.findings: list = []

    def collect(self) -> list:
        self.visit(self.ctx.tree)
        return self.findings

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _REDUCTIONS
            and self.rule._in_scope(self.function_name())
        ):
            dtype = keyword_arg(node, "dtype")
            if dtype is None or "float64" not in ast.unparse(dtype):
                self.findings.append(
                    self.rule.finding(
                        self.ctx, node,
                        f"reduction '{unparse_short(node)}' must pass "
                        "dtype=xp.float64 (checksum accumulation contract)",
                        detail=f"call:{func.attr}",
                        symbol=self.symbol(),
                    )
                )
        self.generic_visit(node)

"""reprolint rule registry.

``all_rules()`` returns one instance of every built-in rule in a
deterministic catalog order; the CLI and tests both go through it so the
registry is the single source of truth.
"""

from __future__ import annotations

from typing import List

from reprolint.engine import Rule
from reprolint.rules.base import PathScopedRule
from reprolint.rules.bk001 import XpGenericityRule
from reprolint.rules.dt001 import Float64AccumulationRule
from reprolint.rules.xf001 import HostTransferRule
from reprolint.rules.th001 import LockDisciplineRule
from reprolint.rules.ws001 import WorkspaceContractRule
from reprolint.rules.ly001 import LayeringRule

__all__ = [
    "PathScopedRule",
    "XpGenericityRule",
    "Float64AccumulationRule",
    "HostTransferRule",
    "LockDisciplineRule",
    "WorkspaceContractRule",
    "LayeringRule",
    "all_rules",
]

_RULE_CLASSES = (
    XpGenericityRule,
    Float64AccumulationRule,
    HostTransferRule,
    LockDisciplineRule,
    WorkspaceContractRule,
    LayeringRule,
)


def all_rules() -> List[Rule]:
    """Fresh instances of every built-in rule, in catalog (ID) order."""
    return [cls() for cls in _RULE_CLASSES]

"""WS001 — workspace ``out=`` contract on the engine hot path.

The PR 5 zero-allocation checksum workspace exists because per-step array
allocation dominated the protection overhead at small sequence lengths.  The
engine's hot path must therefore route matmul/stack/einsum through the
``matmul_into``/``stack_into``/``einsum_into`` helpers, which reuse
workspace-owned output buffers.  A raw ``xp.matmul(...)`` added to
``engine.py`` reintroduces a per-step allocation that no functional test can
see — only the overhead benchmark drifts.  The contract is section-generic:
since the whole-model refactor the same engine hot path verifies every
*registered* section (attention's AS/CL/O and the FFN's FF1/FF2 alike), so a
handler added for a future block inherits the ``out=`` obligation
automatically — the rule keys on the file, not on section names.  Deliberate
exceptions (the workspace-off fallback; the one einsum whose ``out=`` form is
~4x slower in NumPy) carry inline suppressions explaining themselves.  The
per-GEMM reference backend (``attention_checker.py``) is deliberately out of
scope: it exists to be the simple, allocation-per-call baseline the fused
engine is benchmarked against.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from reprolint.engine import FileContext, Finding, ScopedVisitor
from reprolint.rules.base import PathScopedRule, unparse_short

__all__ = ["WorkspaceContractRule"]


class WorkspaceContractRule(PathScopedRule):
    id = "WS001"
    name = "workspace-contract"
    invariant = (
        "Engine hot-path matmul/stack/einsum go through the workspace "
        "*_into helpers (out= reuse), not raw namespace calls."
    )
    rationale = (
        "The zero-allocation workspace (PR 5) is what keeps protection "
        "overhead flat at small sequence lengths; a raw xp.matmul on the hot "
        "path reintroduces per-step allocations that only show up as "
        "benchmark drift, never as a test failure."
    )
    example = (
        "src/repro/core/engine.py:798: WS001 raw 'xp.einsum(...)' on the "
        "engine hot path — use einsum_into (workspace out= contract)"
    )

    scope_files = ("src/repro/core/engine.py",)
    #: Namespace calls with a workspace ``*_into`` counterpart.
    managed_calls: Tuple[str, ...] = ("matmul", "stack", "einsum")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(_WorkspaceVisitor(self, ctx).collect())


class _WorkspaceVisitor(ScopedVisitor):
    def __init__(self, rule: WorkspaceContractRule, ctx: FileContext) -> None:
        super().__init__()
        self.rule = rule
        self.ctx = ctx
        self.findings: list = []

    def collect(self) -> list:
        self.visit(self.ctx.tree)
        return self.findings

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in self.rule.managed_calls:
            self.findings.append(
                self.rule.finding(
                    self.ctx, node,
                    f"raw '{unparse_short(node)}' on the engine hot path — "
                    f"use {func.attr}_into (workspace out= contract)",
                    detail=f"call:{func.attr}",
                    symbol=self.symbol(),
                )
            )
        self.generic_visit(node)

"""XF001 — host-transfer leak: device→host exports only inside the seam.

The device-resident substrate (PR 3/4) guarantees a protected training step
performs **zero** host round-trips on the native path — the counting-backend
tests pin it, and the ``xfer/h2d``/``xfer/d2h`` timer keys account for every
deliberate copy at the adoption/checkpoint seam.  An untimed ``.cpu()`` /
``.numpy()`` / zero-arg ``.get()`` / ``to_numpy(...)`` anywhere else is a
synchronizing PCIe transfer the accounting never sees: it erodes the
measured overhead claims without failing a single functional test.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Tuple

from reprolint.engine import FileContext, Finding, ScopedVisitor
from reprolint.rules.base import PathScopedRule, unparse_short

__all__ = ["HostTransferRule"]

#: Zero-argument method names that read as "export this array to host".
#: ``.get()`` is CuPy's device→host export; requiring zero args keeps
#: ``dict.get(key)`` out of scope.
_EXPORT_METHODS = ("cpu", "numpy", "tolist", "get")


class HostTransferRule(PathScopedRule):
    id = "XF001"
    name = "host-transfer-leak"
    invariant = (
        "Device->host exports (.cpu()/.numpy()/.get()/to_numpy) only inside "
        "the adoption/checkpoint seam, timed under xfer/*."
    )
    rationale = (
        "An untimed host export is a synchronizing PCIe copy invisible to the "
        "xfer/* accounting: the zero-host-round-trip property the counting-"
        "backend tests pin holds only for the paths those tests run, so a "
        "leak elsewhere silently invalidates the measured overhead claims."
    )
    example = (
        "src/repro/training/trainer.py:507: XF001 host export "
        "'backend_of(logits).to_numpy(predictions)' outside the xfer-timed seam "
        "[Trainer.evaluate]"
    )

    scope_prefixes = ("src/repro/",)
    #: The adoption/checkpoint seam: backend adapters implement the exports,
    #: and the checkpoint manager's save/load path is the documented, timed
    #: bulk d2h/h2d boundary.
    exclude_prefixes = ("src/repro/backend/",)
    exclude_files = ("src/repro/training/checkpoint.py",)
    #: file -> function names allowed to export (the in-file seam): the
    #: engine's pinned-foreign write-back runs under xfer/d2h timers, and
    #: ``Tensor.numpy``/``Tensor.item`` are the documented host-export API.
    seam_functions: Dict[str, Tuple[str, ...]] = {
        "src/repro/core/engine.py": ("_adopt_section", "_write_back_section"),
        "src/repro/tensor/autograd.py": ("numpy", "item"),
    }

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(_TransferVisitor(self, ctx).collect())


class _TransferVisitor(ScopedVisitor):
    def __init__(self, rule: HostTransferRule, ctx: FileContext) -> None:
        super().__init__()
        self.rule = rule
        self.ctx = ctx
        self.seam = rule.seam_functions.get(ctx.relpath, ())
        self.findings: list = []

    def collect(self) -> list:
        self.visit(self.ctx.tree)
        return self.findings

    def _flag(self, node: ast.Call, what: str) -> None:
        if self.function_name() in self.seam:
            return
        self.findings.append(
            self.rule.finding(
                self.ctx, node,
                f"host export '{unparse_short(node)}' outside the xfer-timed "
                "seam — route through the backend seam or time it under xfer/*",
                detail=f"export:{what}",
                symbol=self.symbol(),
            )
        )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr in _EXPORT_METHODS and not node.args and not node.keywords:
                self._flag(node, func.attr)
            elif func.attr == "to_numpy":
                self._flag(node, "to_numpy")
        self.generic_visit(node)

"""reprolint — AST-based invariant checker for the ATTNChecker reproduction.

The fault-tolerance guarantees of this codebase rest on conventions that a
functional test suite cannot see regressing: checksum reductions must
accumulate in float64, ``repro.core`` kernels must stay array-library
generic, hot-path intermediates must honor the workspace ``out=`` contract,
worker-shared engine state must only be touched under its lock, and the
layering between ``core``/``backend``/``nn`` must not invert.  ``reprolint``
machine-enforces those contracts at CI time, on every diff.

Usage (repo root)::

    PYTHONPATH=tools:src python -m reprolint src/repro \
        --baseline tools/reprolint/baseline.json

or ``make reprolint``.  See ``reprolint --list-rules`` for the rule catalog
and the README "Static analysis" section for suppression / baseline
workflows.
"""

from reprolint.engine import Finding, FileContext, LintRunner, Rule, ScopedVisitor
from reprolint.baselines import Baseline
from reprolint.rules import all_rules

__version__ = "1.0.0"

__all__ = [
    "Baseline",
    "FileContext",
    "Finding",
    "LintRunner",
    "Rule",
    "ScopedVisitor",
    "all_rules",
    "__version__",
]

"""Committed baseline of grandfathered findings.

The baseline is how a new rule lands green on a codebase with deliberate,
justified exceptions: every entry carries its finding's stable fingerprint
plus a **reason** explaining why the exception is intentional, reviewed like
any other code.  CI fails only on findings *not* in the baseline, so the
contract is zero-new-findings, and the file shrinks over time as exceptions
are fixed (stale entries are reported so they cannot linger silently).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from reprolint.engine import Finding

__all__ = ["Baseline", "BaselineEntry"]

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    fingerprint: str
    rule: str
    path: str
    symbol: str
    detail: str
    reason: str

    def to_json(self) -> Dict[str, str]:
        return {
            "fingerprint": self.fingerprint,
            "rule": self.rule,
            "path": self.path,
            "symbol": self.symbol,
            "detail": self.detail,
            "reason": self.reason,
        }


@dataclass
class Baseline:
    entries: List[BaselineEntry] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        version = data.get("version")
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported baseline version {version!r} (expected {_FORMAT_VERSION})"
            )
        return cls(
            entries=[
                BaselineEntry(
                    fingerprint=entry["fingerprint"],
                    rule=entry.get("rule", ""),
                    path=entry.get("path", ""),
                    symbol=entry.get("symbol", ""),
                    detail=entry.get("detail", ""),
                    reason=entry.get("reason", ""),
                )
                for entry in data.get("entries", [])
            ]
        )

    def save(self, path: Path) -> None:
        payload = {
            "version": _FORMAT_VERSION,
            "entries": [
                entry.to_json()
                for entry in sorted(
                    self.entries, key=lambda e: (e.path, e.rule, e.fingerprint)
                )
            ],
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    # -- queries ---------------------------------------------------------------

    def fingerprint_paths(self) -> Dict[str, str]:
        """fingerprint -> path mapping the runner consumes."""
        return {entry.fingerprint: entry.path for entry in self.entries}

    def reason_for(self, fingerprint: str) -> Optional[str]:
        for entry in self.entries:
            if entry.fingerprint == fingerprint:
                return entry.reason
        return None

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_findings(
        cls, findings: List[Finding], previous: Optional["Baseline"] = None
    ) -> "Baseline":
        """Baseline covering ``findings``, keeping reasons already curated.

        Used by ``--write-baseline``: new entries get a TODO reason that a
        reviewer must replace; entries whose fingerprint already existed keep
        their reviewed reason.
        """
        keep = {e.fingerprint: e.reason for e in previous.entries} if previous else {}
        return cls(
            entries=[
                BaselineEntry(
                    fingerprint=f.fingerprint,
                    rule=f.rule,
                    path=f.path,
                    symbol=f.symbol,
                    detail=f.detail,
                    reason=keep.get(f.fingerprint, "TODO: justify or fix"),
                )
                for f in findings
            ]
        )

"""Core machinery of reprolint: findings, rules, suppressions, the runner.

Design
------
A :class:`Rule` owns one invariant (``BK001`` xp-genericity, ``TH001`` lock
discipline, ...).  The :class:`LintRunner` walks the requested paths, parses
each Python file once, hands every applicable rule a :class:`FileContext`
(source + AST + repo-relative path) and collects :class:`Finding` objects.

Findings carry a **fingerprint** that deliberately excludes line numbers —
``sha256(rule | path | symbol | detail | occurrence)`` — so a committed
baseline survives unrelated edits to the same file.  ``symbol`` is the dotted
chain of enclosing class/function names and ``detail`` a rule-chosen stable
token (e.g. ``"call:sum"``); ``occurrence`` disambiguates repeats of the same
token inside the same symbol, in source order.

Suppressions are inline comments::

    something_flagged()  # reprolint: disable=BK001
    # reprolint: disable=WS001,DT001   <- standalone: applies to the next line
    # reprolint: disable-file=XF001    <- anywhere: applies to the whole file

A suppression on the first line of a multi-line statement covers findings
anchored at that statement.
"""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "ScopedVisitor",
    "LintRunner",
    "LintResult",
    "parse_suppressions",
]

RULE_ID_RE = re.compile(r"[A-Z]{2}\d{3}")
_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable(?P<file>-file)?\s*=\s*"
    r"(?P<rules>[A-Z]{2}\d{3}(?:\s*,\s*[A-Z]{2}\d{3})*)"
)

#: Pseudo-rule id used for files the parser rejects; never baselinable.
PARSE_ERROR_RULE = "RL999"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # posix path relative to the lint root
    line: int
    col: int
    message: str
    symbol: str = ""  # dotted enclosing class/function chain ("Engine._join_worker")
    detail: str = ""  # rule-chosen stable token for fingerprinting
    fingerprint: str = ""  # filled by the runner (needs the occurrence index)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def render(self) -> str:
        scope = f" [{self.symbol}]" if self.symbol else ""
        return f"{self.location()}: {self.rule} {self.message}{scope}"

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "symbol": self.symbol,
            "detail": self.detail,
            "fingerprint": self.fingerprint,
        }


@dataclass
class FileContext:
    """Everything a rule gets to look at for one file."""

    relpath: str  # posix, relative to the lint root
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    @classmethod
    def parse(cls, relpath: str, source: str) -> "FileContext":
        return cls(
            relpath=relpath,
            source=source,
            tree=ast.parse(source),
            lines=source.splitlines(),
        )


class Rule:
    """Base class: one machine-checked invariant.

    Subclasses set the catalog metadata (``id``/``name``/``invariant``/
    ``rationale``/``example``), decide which files they apply to via
    :meth:`applies_to`, and yield findings from :meth:`check`.  Scope
    attributes are plain class attributes so tests can subclass a rule onto
    fixture paths without touching the shipped configuration.
    """

    id: str = "RL000"
    name: str = "base-rule"
    #: One-line statement of the enforced invariant (README catalog).
    invariant: str = ""
    #: Why the invariant matters for the fault-tolerance guarantees.
    rationale: str = ""
    #: Example finding message (README catalog).
    example: str = ""

    def applies_to(self, relpath: str) -> bool:
        raise NotImplementedError

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        ctx: FileContext,
        node: ast.AST,
        message: str,
        detail: str,
        symbol: str = "",
    ) -> Finding:
        return Finding(
            rule=self.id,
            path=ctx.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            symbol=symbol,
            detail=detail,
        )


class ScopedVisitor(ast.NodeVisitor):
    """AST visitor that tracks the dotted enclosing class/function chain.

    Rules subclass this and read :attr:`scope` (``["Engine", "_verify"]``)
    or :meth:`symbol` (``"Engine._verify"``) while visiting.
    """

    def __init__(self) -> None:
        self.scope: List[str] = []

    def symbol(self) -> str:
        return ".".join(self.scope)

    def function_name(self) -> str:
        """Innermost enclosing *function* name, or "" at module/class level."""
        return self._innermost_function or ""

    _innermost_function: Optional[str] = None
    _function_stack: List[str]

    def _visit_scoped(self, node: ast.AST, is_function: bool) -> None:
        self.scope.append(node.name)  # type: ignore[attr-defined]
        previous = self._innermost_function
        if is_function:
            self._innermost_function = node.name  # type: ignore[attr-defined]
        try:
            self.generic_visit(node)
        finally:
            self.scope.pop()
            self._innermost_function = previous

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._visit_scoped(node, is_function=False)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_scoped(node, is_function=True)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_scoped(node, is_function=True)


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------

def parse_suppressions(source: str) -> Tuple[Set[str], Dict[int, Set[str]]]:
    """Extract ``# reprolint: disable[-file]=...`` comments.

    Returns ``(file_disabled, line_disabled)`` where ``line_disabled`` maps a
    1-based line number to the rule ids suppressed on it.  A *standalone*
    comment line extends its suppression to the following line, so the
    idiomatic form::

        # reprolint: disable=WS001 -- allocating fallback is the contract here
        out = xp.stack(arrays)

    works without packing the justification onto the code line.
    """
    file_disabled: Set[str] = set()
    line_disabled: Dict[int, Set[str]] = {}
    lines = source.splitlines()
    for lineno, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = {r.strip() for r in match.group("rules").split(",")}
        if match.group("file"):
            file_disabled |= rules
            continue
        line_disabled.setdefault(lineno, set()).update(rules)
        if text.lstrip().startswith("#"):  # standalone comment: cover next line
            line_disabled.setdefault(lineno + 1, set()).update(rules)
    return file_disabled, line_disabled


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------

@dataclass
class LintResult:
    """Outcome of one runner invocation, split against the baseline."""

    new: List[Finding]
    baselined: List[Finding]
    suppressed: int
    stale_fingerprints: List[str]
    files_checked: int

    @property
    def clean(self) -> bool:
        return not self.new


class LintRunner:
    """Walk files, run every applicable rule, fingerprint and filter findings."""

    def __init__(self, root: Path, rules: Sequence[Rule]) -> None:
        self.root = Path(root)
        self.rules = list(rules)

    # -- discovery --------------------------------------------------------------

    def collect_files(self, paths: Sequence[Path]) -> List[Path]:
        files: List[Path] = []
        for path in paths:
            path = path if path.is_absolute() else self.root / path
            if path.is_dir():
                files.extend(
                    p for p in sorted(path.rglob("*.py")) if "__pycache__" not in p.parts
                )
            elif path.suffix == ".py":
                files.append(path)
        return files

    def relpath(self, path: Path) -> str:
        return path.resolve().relative_to(self.root.resolve()).as_posix()

    # -- checking ---------------------------------------------------------------

    def check_file(self, path: Path) -> List[Finding]:
        relpath = self.relpath(path)
        applicable = [rule for rule in self.rules if rule.applies_to(relpath)]
        if not applicable:
            return []
        source = path.read_text(encoding="utf-8")
        try:
            ctx = FileContext.parse(relpath, source)
        except SyntaxError as exc:
            return [
                Finding(
                    rule=PARSE_ERROR_RULE,
                    path=relpath,
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    message=f"file does not parse: {exc.msg}",
                    detail="parse-error",
                )
            ]
        file_disabled, line_disabled = parse_suppressions(source)
        findings: List[Finding] = []
        suppressed = 0
        for rule in applicable:
            for finding in rule.check(ctx):
                if finding.rule in file_disabled or finding.rule in line_disabled.get(
                    finding.line, ()
                ):
                    suppressed += 1
                    continue
                findings.append(finding)
        self._last_suppressed = suppressed
        return self._fingerprint(findings)

    _last_suppressed: int = 0

    @staticmethod
    def _fingerprint(findings: List[Finding]) -> List[Finding]:
        # Occurrence index disambiguates identical (rule, path, symbol,
        # detail) tuples in source order, keeping fingerprints stable under
        # line-number drift but unique within a file.
        findings = sorted(findings, key=lambda f: (f.line, f.col, f.rule))
        counts: Dict[Tuple[str, str, str, str], int] = {}
        out: List[Finding] = []
        for f in findings:
            key = (f.rule, f.path, f.symbol, f.detail)
            idx = counts.get(key, 0)
            counts[key] = idx + 1
            digest = hashlib.sha256(
                "|".join([f.rule, f.path, f.symbol, f.detail, str(idx)]).encode()
            ).hexdigest()[:16]
            out.append(replace(f, fingerprint=digest))
        return out

    def run(
        self,
        paths: Sequence[Path],
        baseline_entries: Optional[Dict[str, str]] = None,
    ) -> LintResult:
        """Lint ``paths``; split findings against ``baseline_entries``.

        ``baseline_entries`` maps fingerprint -> repo-relative path.  A
        baseline entry only counts as *stale* when its file was actually
        scanned this run — linting a single file must not declare the rest of
        the baseline dead.
        """
        known = dict(baseline_entries or {})
        files = self.collect_files(paths)
        scanned = {self.relpath(path) for path in files}
        new: List[Finding] = []
        baselined: List[Finding] = []
        suppressed = 0
        seen: Set[str] = set()
        for path in files:
            findings = self.check_file(path)
            suppressed += self._last_suppressed
            for finding in findings:
                seen.add(finding.fingerprint)
                if finding.fingerprint in known and finding.rule != PARSE_ERROR_RULE:
                    baselined.append(finding)
                else:
                    new.append(finding)
        stale = sorted(
            fp for fp, path in known.items() if path in scanned and fp not in seen
        )
        return LintResult(
            new=new,
            baselined=baselined,
            suppressed=suppressed,
            stale_fingerprints=stale,
            files_checked=len(files),
        )

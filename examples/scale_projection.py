#!/usr/bin/env python3
"""Performance projections on the modelled A100 testbed (Figures 7, 9, 11, 12).

Prints four projections from the analytical GPU performance model:

1. ATTNChecker overhead on the six evaluated LLMs (Figure 7),
2. checksum-encoding throughput, custom kernel vs. cuBLAS (Figure 9),
3. recovery overhead, checkpoint/restore vs. ATTNChecker (Figure 11),
4. overhead when training 30B / 60B / 100B-parameter models on 1,024 GPUs
   with data parallelism (Figure 12).

Run with:  python examples/scale_projection.py
"""

from repro.analysis import format_percent, format_table
from repro.models import get_config
from repro.perfmodel import (
    EncoderThroughputModel,
    MultiGPUScaleModel,
    RecoveryCostModel,
    TrainingStepCostModel,
)

OVERHEAD_MODELS = ["bert-small", "bert-base", "bert-large", "gpt2", "gpt-neo", "roberta"]
MAIN_MODELS = ["bert-base", "gpt2", "gpt-neo", "roberta"]


def figure7():
    rows = []
    for name in OVERHEAD_MODELS:
        model = TrainingStepCostModel(get_config(name, size="paper"), batch_size=8)
        rows.append([
            name,
            f"{model.attention_step_time() * 1e3:.2f}",
            format_percent(model.attention_overhead()),
            f"{model.step_time() * 1e3:.1f}",
            format_percent(model.step_overhead()),
        ])
    print(format_table(
        ["model", "attention time (ms)", "attention overhead", "step time (ms)", "per-step overhead"],
        rows,
        title="Figure 7: ATTNChecker overhead, batch size 8 (modelled A100)",
    ))
    print()


def figure9():
    sweep = EncoderThroughputModel()
    custom = sweep.model_custom()
    cublas = sweep.model_cublas()
    rows = [
        [c.batch_size, f"{c.throughput_tbps:.2f}", f"{b.throughput_tbps:.3f}",
         f"{c.throughput_tbps / b.throughput_tbps:.1f}x"]
        for c, b in zip(custom, cublas)
    ]
    print(format_table(
        ["batch size", "ATTNChecker encoder (TB/s)", "cuBLAS (TB/s)", "speedup"],
        rows,
        title="Figure 9: checksum-encoding throughput (A100 peak 2 TB/s)",
    ))
    print()


def figure11():
    rows = []
    for name in MAIN_MODELS:
        comparison = RecoveryCostModel(get_config(name, size="paper"), batch_size=8).compare()
        rows.append([
            name,
            format_percent(comparison.checkpoint_restore_overhead, digits=0),
            format_percent(comparison.attnchecker_overhead),
            f"{comparison.improvement:.0f}x",
        ])
    print(format_table(
        ["model", "checkpoint/restore", "ATTNChecker", "overhead reduction"],
        rows,
        title="Figure 11: per-training-step recovery overhead",
    ))
    print()


def figure12():
    rows = []
    for point in MultiGPUScaleModel(num_gpus=1024).sweep():
        rows.append([
            point.model_name,
            f"{point.parameters / 1e9:.0f}B",
            f"{point.step_seconds:.2f}",
            format_percent(point.abft_overhead, digits=2),
        ])
    print(format_table(
        ["model", "parameters", "step time (s)", "ATTNChecker overhead"],
        rows,
        title="Figure 12: data-parallel training on 1,024 GPUs",
    ))


def main():
    figure7()
    figure9()
    figure11()
    figure12()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Asynchronous off-critical-path verification, end to end.

Walks through the fused ProtectionEngine's three verification modes on a tiny
BERT fine-tuning run with one injected transient fault per mode:

1. **immediate** — every section boundary is verified (and repaired) inside
   the forward pass; the whole checker cost sits on the training critical
   path.
2. **deferred**  — boundary checksums are queued and verified in one batched
   pass at the end of each step; cheaper, but the flush still runs on the
   training thread, and detection is all you get.
3. **async**     — each step's checksum queue is snapshotted and verified by
   a worker thread while the next step computes.  Only the encode/carry and
   queue-swap bookkeeping remain on the critical path.  A boundary that
   verifies dirty within the staleness window (``max_pending_steps``) has its
   retained matrix repaired via EEC-ABFT and surfaces as a *stale* detection,
   which the trainer's ``stale_policy`` turns into checkpoint-free
   re-execution of the step (or an abort).

Run with:  python examples/async_verification.py [model-name]
"""

import sys

import numpy as np

from repro import (
    ATTNChecker,
    ATTNCheckerConfig,
    FaultInjector,
    FaultSpec,
    Trainer,
    TrainerConfig,
    build_model,
)
from repro.analysis import format_table
from repro.data import SyntheticMRPC

from repro.core import VERIFICATION_MODE_CONFIGS

STEPS = 4

MODES = VERIFICATION_MODE_CONFIGS


def run(model_name: str, mode: str):
    model = build_model(model_name, size="tiny", rng=np.random.default_rng(0))
    data = SyntheticMRPC(
        num_examples=32,
        max_seq_len=model.config.max_seq_len,
        vocab_size=model.config.vocab_size,
        seed=21,
    )
    batch = dict(data.encode(range(8)))
    injector = FaultInjector(
        [FaultSpec(matrix="AS", error_type="numeric")], rng=np.random.default_rng(13)
    )
    checker = ATTNChecker(ATTNCheckerConfig(**MODES[mode]))
    trainer = Trainer(
        model,
        # Re-execute a step whose (stale) verification came back dirty — the
        # checkpoint-free recovery policy.  Ignored by the synchronous modes,
        # which never produce stale outcomes.
        config=TrainerConfig(learning_rate=1e-3, stale_policy="reexecute"),
        checker=checker,
        fault_hooks=[injector],
    )
    for _ in range(STEPS):
        trainer.train_step(batch)
    # Barrier: wait out in-flight verification work before reading statistics
    # (a no-op for the synchronous modes).
    trainer.drain_verifications()
    checker.close()
    return {
        "detections": checker.stats.total_detections,
        "corrections": checker.stats.total_corrections,
        "stale": checker.stats.total_stale_detections,
        "reexecuted": trainer.metrics.num_reexecuted(),
        "critical_ms": checker.critical_path_seconds() * 1e3,
        "total_ms": checker.overhead_seconds() * 1e3,
    }


def main() -> int:
    model_name = sys.argv[1] if len(sys.argv) > 1 else "bert-base"
    rows = []
    for mode in MODES:
        r = run(model_name, mode)
        rows.append([
            mode, r["detections"], r["corrections"], r["stale"], r["reexecuted"],
            f"{r['critical_ms']:.1f}", f"{r['total_ms']:.1f}",
        ])
    print(format_table(
        ["mode", "detections", "corrections", "stale", "re-executed",
         "critical-path ms", "total ms"],
        rows,
        title=f"Verification modes on {model_name} (tiny, {STEPS} steps, one numeric fault)",
    ))
    print(
        "\nReading the table: async keeps the detection (and, within the\n"
        "staleness window, the correction) of immediate mode while its\n"
        "critical-path time drops toward the encode/carry floor — the\n"
        "verification moved to the worker thread (total ms stays comparable).\n"
        "The stale detection triggered one checkpoint-free re-execution."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

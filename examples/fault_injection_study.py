#!/usr/bin/env python3
"""Fault injection and error-propagation study (Tables 2 and 4).

Reproduces, at reduced scale, the two studies of Section 3:

* **Propagation** (Table 2): inject one INF / NaN / near-INF fault into each
  attention matrix and report how it propagates through the downstream
  matrices (0D / 1R / 1C / 2D patterns and value classes).
* **Vulnerability** (Table 4): inject unprotected faults during real training
  steps and measure how often each (matrix, error type) combination puts the
  model into a non-trainable state (NaN loss).

Run with:  python examples/fault_injection_study.py [model-name] [trials]
"""

import sys

import numpy as np

from repro import PropagationStudy, VulnerabilityStudy, build_model
from repro.analysis import format_percent, format_table
from repro.data import SyntheticMRPC

MATRICES = ("Q", "K", "V", "AS", "CL")
ERROR_TYPES = ("inf", "nan", "near_inf")


def main():
    model_name = sys.argv[1] if len(sys.argv) > 1 else "bert-base"
    trials = int(sys.argv[2]) if len(sys.argv) > 2 else 3

    model = build_model(model_name, size="tiny", rng=np.random.default_rng(0))
    data = SyntheticMRPC(
        num_examples=64,
        max_seq_len=model.config.max_seq_len,
        vocab_size=model.config.vocab_size,
    )
    batch = data.encode(range(8))

    # --- Table 2: error propagation ------------------------------------------------
    study = PropagationStudy(model, batch, rng=np.random.default_rng(1))
    rows = []
    for error_type in ERROR_TYPES:
        for matrix in MATRICES:
            result = study.trace(matrix, error_type)
            rows.append([error_type, matrix] + [result.cell(m) for m in ("Q", "K", "V", "AS", "AP", "CL", "O")])
    print(format_table(
        ["inject", "into", "Q", "K", "V", "AS", "AP", "CL", "O"],
        rows,
        title=f"Error propagation in {model_name} attention (Table 2 layout)",
    ))
    print()

    # --- Table 4: vulnerability ------------------------------------------------------
    def factory():
        return build_model(model_name, size="tiny", rng=np.random.default_rng(0))

    batches = [data.encode(range(0, 8)), data.encode(range(8, 16))]
    vulnerability = VulnerabilityStudy(factory, batches, rng=np.random.default_rng(2))
    results = vulnerability.run(matrices=MATRICES, error_types=ERROR_TYPES, trials=trials)

    table = {e: {} for e in ERROR_TYPES}
    for result in results:
        table[result.error_type][result.matrix] = result.probability
    rows = [
        [error_type] + [format_percent(table[error_type][m]) for m in MATRICES]
        for error_type in ERROR_TYPES
    ]
    print(format_table(
        ["error type"] + list(MATRICES),
        rows,
        title=f"Probability of a non-trainable state, {trials} trials each (Table 4 layout)",
    ))


if __name__ == "__main__":
    main()

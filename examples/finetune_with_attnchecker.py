#!/usr/bin/env python3
"""Fine-tuning under faults: fault-free vs. ATTNChecker-recovered (Figure 6).

Fine-tunes a tiny BERT on the synthetic MRPC-style corpus for three epochs in
three configurations:

1. fault-free (the baseline curve of Figure 6),
2. faulty and unprotected — an INF fault per epoch typically drives the loss
   to NaN (a non-trainable state),
3. faulty and protected by ATTNChecker — the faults are corrected on the fly
   and the loss curve tracks the fault-free one.

Run with:  python examples/finetune_with_attnchecker.py [model-name]
"""

import sys

import numpy as np

from repro import ATTNChecker, FaultInjector, FaultSpec, Trainer, TrainerConfig, build_model
from repro.analysis import format_table
from repro.data import DataLoader, SyntheticMRPC

EPOCHS = 3


def build_setup(model_name: str, seed: int = 0):
    model = build_model(model_name, size="tiny", rng=np.random.default_rng(seed))
    data = SyntheticMRPC(
        num_examples=64,
        max_seq_len=model.config.max_seq_len,
        vocab_size=model.config.vocab_size,
        seed=21,
    )
    loader = DataLoader(data, batch_size=8, shuffle=False, seed=3)
    return model, loader.batches()


def run(model_name: str, inject: bool, protect: bool, seed: int = 0):
    """Fine-tune and return per-epoch mean losses plus checker statistics."""
    model, batches = build_setup(model_name, seed=seed)
    injector = None
    fault_hooks = []
    if inject:
        injector = FaultInjector(
            [FaultSpec(matrix="Q", error_type="inf")], rng=np.random.default_rng(13)
        )
        fault_hooks = [injector]
    checker = ATTNChecker() if protect else None
    trainer = Trainer(
        model,
        config=TrainerConfig(learning_rate=1e-3),
        checker=checker,
        fault_hooks=fault_hooks,
    )
    for _ in range(EPOCHS):
        if injector is not None:
            injector.arm()  # one fault per epoch
        for batch in batches:
            trainer.train_step(batch)
        trainer.metrics.end_epoch()
    return trainer.metrics.epoch_losses(), checker, trainer.metrics.num_non_trainable()


def main():
    model_name = sys.argv[1] if len(sys.argv) > 1 else "bert-base"
    print(f"fine-tuning {model_name} (tiny config) for {EPOCHS} epochs\n")

    clean, _, _ = run(model_name, inject=False, protect=False)
    faulty, _, faulty_bad_steps = run(model_name, inject=True, protect=False)
    recovered, checker, recovered_bad_steps = run(model_name, inject=True, protect=True)

    rows = []
    for epoch in range(EPOCHS):
        rows.append([
            epoch + 1,
            f"{clean[epoch]:.4f}",
            f"{faulty[epoch]:.4f}",
            f"{recovered[epoch]:.4f}",
        ])
    print(format_table(
        ["epoch", "fault-free", "faulty (no protection)", "faulty + ATTNChecker"],
        rows,
        title="Per-epoch mean training loss (Figure 6 layout)",
    ))
    print()
    print(f"non-trainable steps without protection : {faulty_bad_steps}")
    print(f"non-trainable steps with ATTNChecker   : {recovered_bad_steps}")
    print(f"faults corrected by ATTNChecker        : {checker.stats.total_corrections}")
    print(f"ABFT time across the run               : {checker.overhead_seconds() * 1e3:.1f} ms")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: protect a model's attention with ATTNChecker.

The script builds a tiny BERT classifier, runs a fault-free forward pass as a
reference, then repeats the pass while injecting an INF fault into the
attention-score GEMM — once unprotected (the output is corrupted and the loss
becomes NaN) and once with ATTNChecker attached (the fault is detected,
located and corrected in place; the output matches the reference).

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import ATTNChecker, FaultInjector, FaultSpec, build_model
from repro.data import SyntheticMRPC
from repro.nn import ComposedHooks


def forward(model, batch, hooks):
    """One evaluation-mode forward pass with the given attention hooks."""
    model.eval()
    model.set_attention_hooks(hooks)
    try:
        return model(
            batch["input_ids"],
            attention_mask=batch["attention_mask"],
            labels=batch["labels"],
        )
    finally:
        model.set_attention_hooks(None)
        model.train()


def main():
    rng = np.random.default_rng(0)
    model = build_model("bert-base", size="tiny", rng=rng)
    data = SyntheticMRPC(
        num_examples=32,
        max_seq_len=model.config.max_seq_len,
        vocab_size=model.config.vocab_size,
    )
    batch = data.encode(range(8))

    # 1. Fault-free reference.
    reference = forward(model, batch, hooks=None)
    print(f"fault-free loss          : {reference.loss_value:.4f}")

    # 2. Unprotected run with an INF fault injected into the AS = Q K^T GEMM.
    injector = FaultInjector(
        [FaultSpec(matrix="AS", error_type="inf")], rng=np.random.default_rng(7)
    )
    corrupted = forward(model, batch, hooks=injector)
    print(f"unprotected faulty loss  : {corrupted.loss_value:.4f}   "
          f"(injected at {injector.records[0].position})")

    # 3. Protected run: injector corrupts the GEMM output, ATTNChecker repairs
    #    it at the section boundary before anything downstream consumes it.
    injector.reset()
    checker = ATTNChecker()
    protected = forward(model, batch, hooks=ComposedHooks([injector, checker]))
    print(f"ATTNChecker-protected    : {protected.loss_value:.4f}")
    print(checker.summary())

    matches = np.allclose(protected.logits.data, reference.logits.data, rtol=1e-6, atol=1e-6)
    print(f"protected output matches the fault-free reference: {matches}")
    assert matches, "protected output should equal the fault-free output"


if __name__ == "__main__":
    main()

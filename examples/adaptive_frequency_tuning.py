#!/usr/bin/env python3
"""Adaptive ABFT detection frequencies (Section 4.5 / Figure 10).

Sweeps the system soft-error rate, runs the greedy frequency optimiser
(Algorithm 1) against the Table-4 vulnerability profile of BERT, and prints
the chosen per-section frequencies and the resulting training overhead —
reproducing the trend of Figure 10: no ABFT cost when the system is reliable
enough, gradually increasing (but still far below always-on) as the error
rate grows.

Run with:  python examples/adaptive_frequency_tuning.py
"""

import numpy as np

from repro import ErrorRates, OperationVulnerability, optimize_abft_frequencies
from repro.analysis import format_percent, format_table
from repro.models import get_config
from repro.perfmodel import TrainingStepCostModel

#: Error-rate sweep: the paper uses 13..20 errors per 1e25 FLOPs from the
#: Llama-3 field report; we extend the sweep to show the full ramp.
ERROR_RATES = [13, 14, 15, 16, 17, 18, 19, 20, 40, 80, 160]
#: Target: at most one uncovered failure per 1e11 protected executions.
TARGET_COVERAGE = 1 - 1e-11
#: Aggregate attention executions protected per step: layers x (fwd+bwd)
#: x gradient-accumulation micro-steps (documented calibration).
FLOPS_MULTIPLIER = 12 * 3 * 8


def main():
    config = get_config("bert-base", size="paper")
    vulnerability = OperationVulnerability.from_table4("bert-base")
    step_model = TrainingStepCostModel(config, batch_size=16)
    always_on = step_model.step_overhead(optimized=True)

    rows = []
    for rate in ERROR_RATES:
        plan = optimize_abft_frequencies(
            config,
            batch_size=16,
            error_rates=ErrorRates.from_errors_per_1e25_flops(rate),
            vulnerability=vulnerability,
            target_coverage=TARGET_COVERAGE,
            flops_multiplier=FLOPS_MULTIPLIER,
        )
        step_overhead = always_on * plan.relative_overhead
        rows.append([
            rate,
            f"{plan.frequencies['AS']:.2f}",
            f"{plan.frequencies['CL']:.2f}",
            f"{plan.frequencies['O']:.2f}",
            format_percent(plan.relative_overhead),
            format_percent(step_overhead, digits=2),
            "yes" if plan.meets_target else "no",
        ])

    print(format_table(
        ["errors / 1e25 flops", "f_AS", "f_CL", "f_O", "ABFT time vs always-on", "per-step overhead", "meets target"],
        rows,
        title="Adaptive detection frequencies (Figure 10 layout); "
              f"non-adaptive per-step overhead = {format_percent(always_on)}",
    ))


if __name__ == "__main__":
    main()

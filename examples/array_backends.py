#!/usr/bin/env python3
"""Pluggable array backends, end to end.

The checker stack dispatches through :mod:`repro.backend`: a registry of
array libraries (NumPy always; CuPy/Torch when installed) behind one
protocol, so checksum encoding, EEC-ABFT detection and correction run on
whatever array type a protection section produces.  This walkthrough:

1. prints what the registry knows vs. what is installed on this machine and
   what ``"auto"`` resolves to;
2. runs the same single-fault protected forward pass with the engine in its
   default *follow-the-arrays* mode and pinned to each installed backend,
   showing that detections/corrections are identical everywhere while the
   ``xfer/*`` transfer keys stay at exactly zero on the native path;
3. demonstrates a device-resident fault: the injector flips the exponent MSB
   of one element *in place* through the backend's integer view — the same
   bit flip the paper performs on GPU memory;
4. runs *device-resident training*: ``build_model(..., array_backend=...)``
   puts the whole substrate (parameters, activations, gradients, optimizer
   state) on a backend, the checker follows it, and the ``xfer/*`` transfer
   keys stay exactly zero — the zero-host-round-trip property of the paper's
   GPU-resident design, measurable end to end.

Run with:  python examples/array_backends.py [model-name]
"""

import sys

import numpy as np

from repro import ATTNChecker, ATTNCheckerConfig, FaultInjector, FaultSpec, build_model
from repro.analysis import format_table
from repro.backend import (
    KNOWN_ARRAY_BACKENDS,
    BackendUnavailable,
    available_array_backends,
    get_backend,
    resolve_backend_name,
)
from repro.data import SyntheticMRPC
from repro.nn import ComposedHooks
from repro.utils.floatbits import flip_exponent_msb_inplace


def run(model_name: str, array_backend: str):
    model = build_model(model_name, size="tiny", rng=np.random.default_rng(0))
    model.eval()
    data = SyntheticMRPC(
        num_examples=16,
        max_seq_len=model.config.max_seq_len,
        vocab_size=model.config.vocab_size,
        seed=7,
    )
    batch = dict(data.encode(range(4)))
    injector = FaultInjector(
        [FaultSpec(matrix="AS", error_type="near_inf")],
        rng=np.random.default_rng(11),
    )
    checker = ATTNChecker(ATTNCheckerConfig(array_backend=array_backend))
    model.set_attention_hooks(ComposedHooks([injector, checker]))
    out = model(batch["input_ids"], attention_mask=batch["attention_mask"],
                labels=batch["labels"])
    model.set_attention_hooks(None)
    checker.end_step()
    return {
        "detections": checker.stats.total_detections,
        "corrections": checker.stats.total_corrections,
        "loss": out.loss_value,
        "abft_ms": checker.overhead_seconds() * 1e3,
        "xfer_ms": checker.transfer_seconds() * 1e3,
    }


def device_resident_bitflip_demo():
    """Flip one element's exponent MSB through the backend's integer view."""
    backend = get_backend("auto")
    block = backend.asarray(np.linspace(0.5, 0.95, 6).reshape(2, 3))
    before = float(backend.to_numpy(block)[1, 1])
    flip_exponent_msb_inplace(block, (1, 1), backend=backend)
    after = float(backend.to_numpy(block)[1, 1])
    print(
        f"\nDevice-resident fault on the {backend.name} backend "
        f"({backend.device_info()}):\n"
        f"  block[1, 1]: {before:.6g}  ->  {after:.6g}  "
        f"(exponent MSB flipped in place, no host copy)"
    )


def device_resident_training_demo(model_name: str, backend_names):
    """Train on each usable backend's substrate; checker follows; zero xfer."""
    from repro.training import Trainer, TrainerConfig

    rows = []
    for backend_name in backend_names:
        model = build_model(
            model_name, size="tiny", rng=np.random.default_rng(0),
            array_backend=backend_name,
        )
        data = SyntheticMRPC(
            num_examples=16, max_seq_len=model.config.max_seq_len,
            vocab_size=model.config.vocab_size, seed=7,
        )
        batch = dict(data.encode(range(4)))
        checker = ATTNChecker(ATTNCheckerConfig())   # "auto": follow the model
        trainer = Trainer(model, config=TrainerConfig(learning_rate=1e-3), checker=checker)
        losses = [trainer.train_step(batch).loss for _ in range(2)]
        rows.append([
            trainer.model_array_backend,
            " ".join(f"{loss:.6f}" for loss in losses),
            f"{checker.transfer_seconds() * 1e3:.3f}",
        ])
    print("\n" + format_table(
        ["model substrate", "step losses", "xfer ms"], rows,
        title="Device-resident training — model + checker share one backend; "
              "weights init on host (same seed, same weights), then zero host "
              "round-trips per step",
    ))


def main() -> int:
    model_name = sys.argv[1] if len(sys.argv) > 1 else "bert-base"
    print(f"known array backends    : {', '.join(KNOWN_ARRAY_BACKENDS)}")
    # Importability is necessary but not sufficient (a CuPy wheel without a
    # reachable CUDA device constructs no backend): attempt construction and
    # keep only the backends that actually come up.
    usable = []
    for name in available_array_backends():
        try:
            print(f"  {name:<8} -> {get_backend(name).device_info()}")
            usable.append(name)
        except BackendUnavailable as exc:
            print(f"  {name:<8} -> unavailable ({exc})")
    print(f"usable on this host     : {', '.join(usable)}")
    print(f"'auto' resolves to      : {resolve_backend_name('auto')}")

    rows = []
    for backend_name in ("auto",) + tuple(usable):
        r = run(model_name, backend_name)
        rows.append([
            backend_name, r["detections"], r["corrections"], f"{r['loss']:.4f}",
            f"{r['abft_ms']:.1f}", f"{r['xfer_ms']:.3f}",
        ])
    print("\n" + format_table(
        ["array backend", "detections", "corrections", "loss",
         "ABFT ms", "xfer ms"],
        rows,
        title=f"One near-INF fault on {model_name} (tiny) under each array backend — "
              "identical decisions; xfer stays 0 whenever the engine runs natively",
    ))
    device_resident_bitflip_demo()
    device_resident_training_demo(model_name, usable)
    print(
        "\nReading the tables: the checker's decisions are backend-invariant\n"
        "(the cross-backend equivalence suite enforces this byte for byte),\n"
        "and the engine only ever pays xfer/h2d + xfer/d2h copies when it is\n"
        "pinned to a backend that does not own the model's arrays.  With\n"
        "build_model(..., array_backend=...) the model itself lives on the\n"
        "backend, so a whole protected training step — forward, ABFT, backward,\n"
        "optimizer update — completes without touching host memory."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Whole-model protection overhead: attention-only vs attention+ffn scope.

Trains the same deterministic tiny workload three times — protection off,
attention scope, and attention+ffn scope — and measures what extending the
protected sections to the FFN GEMMs costs:

* **Training overhead** — wall-clock ratio of each protected run over the
  unprotected baseline, plus the scope-over-scope ratio.  Fault-free, both
  protected runs must reproduce the unprotected loss curve bit-for-bit (the
  checksums observe, they do not perturb).
* **Dispatch counters** — the measured checksum GEMM dispatch totals must
  equal the extended :class:`SectionCostModel` exactly.  Training pays the
  cold column every step (the optimizer update invalidates weight-derived
  encodings), so the expected total is ``steps x layers x sum(cold)``.
* **O(1) FFN decode** — in steady-state serving decode the per-token delta
  must match ``serving_decode_checksum_gemm_dispatches_per_layer`` with the
  FF1/FF2 entries included, at two different cache lengths, with zero
  steady-state workspace allocations.

The run emits a machine-readable ``BENCH_ffn.json`` artifact (path
overridable via the ``BENCH_FFN_JSON`` environment variable) that the CI
whole-model smoke asserts on.
"""

import json
import os

import numpy as np

from benchmarks.conftest import make_batch, make_model
from repro.core import (
    ATTNChecker,
    ATTNCheckerConfig,
    SectionCostModel,
    sections_for_scope,
)
from repro.training import Trainer, TrainerConfig

STEPS = 3


def train_once(scope):
    """Train the pinned workload once; ``scope=None`` disables protection."""
    model = make_model("bert-base")
    batch = make_batch(model, n=4, full_mask=True)
    checker = None
    if scope is not None:
        checker = ATTNChecker(ATTNCheckerConfig(backend="fused", protect_scope=scope))
    trainer = Trainer(
        model, config=TrainerConfig(learning_rate=5e-4), checker=checker
    )
    losses = [repr(float(trainer.train_step(batch).loss)) for _ in range(STEPS)]
    wall = sum(step.step_seconds for step in trainer.metrics.steps)
    out = {
        "scope": scope,
        "losses": losses,
        "wall_seconds": wall,
        "num_layers": model.config.num_layers,
    }
    if checker is not None:
        per_layer = SectionCostModel.checksum_gemm_dispatches_per_layer(
            "fused", steady_state=False, scope=scope
        )
        out.update(
            gemm_dispatches_measured=checker.dispatch_counts["gemm"],
            gemm_dispatches_expected=(
                sum(per_layer.values()) * model.config.num_layers * STEPS
            ),
            per_layer_cold_model={k: v for k, v in sorted(per_layer.items())},
            detections=checker.stats.total_detections,
            sections_checked=sorted(checker.stats.sections),
            workspace=checker.workspace_stats(),
        )
        checker.close()
    return out


def ffn_decode_dispatch_counters():
    """Counter-verify O(1) decode with the FFN sections enabled.

    Mirrors the serving benchmark's probe but at ``attention+ffn`` scope: the
    FF2 row checksum of the static decode weights is encoded once on the cold
    step and served from the weight cache afterwards, so the steady-state
    per-token delta includes exactly one FF2 verify GEMM.
    """
    model = make_model("gpt2")
    model.eval()
    checker = ATTNChecker(
        ATTNCheckerConfig(backend="fused", protect_scope="attention+ffn")
    )
    model.set_attention_hooks(checker)
    config = model.config

    batch, prompt_len = 2, 4
    total_len = config.max_seq_len
    rng = np.random.default_rng(11)
    ids = rng.integers(1, config.vocab_size, size=(batch, prompt_len), dtype=np.int64)
    mask = np.ones((batch, total_len), dtype=np.float64)
    caches = model.new_kv_caches(batch, max_len=total_len)
    model.prefill(ids, mask[:, :prompt_len], caches)

    def step():
        token = rng.integers(1, config.vocab_size, size=(batch, 1), dtype=np.int64)
        model.decode_step(token, caches, attention_mask=mask)

    def measured_step():
        before = checker.dispatch_counts["gemm"]
        step()
        return checker.dispatch_counts["gemm"] - before, int(caches[0].length)

    step()  # cold: encodes the static weight checksums, fills the workspace
    allocations_after_cold = checker.engine.workspace.allocations
    delta_short, cache_len_short = measured_step()
    while caches[0].length < total_len - 2:
        step()
    delta_long, cache_len_long = measured_step()

    per_layer = SectionCostModel.serving_decode_checksum_gemm_dispatches_per_layer(
        scope="attention+ffn"
    )
    counters = {
        "per_layer_model": {k: v for k, v in sorted(per_layer.items())},
        "expected_per_step": sum(per_layer.values()) * config.num_layers,
        "delta_short": delta_short,
        "cache_len_short": cache_len_short,
        "delta_long": delta_long,
        "cache_len_long": cache_len_long,
        "steady_state_decode_allocations": (
            checker.engine.workspace.allocations - allocations_after_cold
        ),
        "workspace": checker.workspace_stats(),
        "detections": checker.stats.total_detections,
    }
    model.set_attention_hooks(None)
    checker.close()
    return counters


def test_ffn_scope_overhead_and_counters_json(benchmark, report):
    """The whole-model-protection claims, counter-verified, plus the artifact."""

    def compare():
        counters = ffn_decode_dispatch_counters()
        # Interleave trials so shared-host drift hits all configurations
        # alike; keep the best of three for each.
        off_t, attn_t, ffn_t = [], [], []
        for _ in range(3):
            off_t.append(train_once(None))
            attn_t.append(train_once("attention"))
            ffn_t.append(train_once("attention+ffn"))
        key = lambda r: r["wall_seconds"]
        return counters, min(off_t, key=key), min(attn_t, key=key), min(ffn_t, key=key)

    counters, off, attn, ffn = benchmark.pedantic(compare, rounds=1, iterations=1)

    # -- hard, deterministic gates -------------------------------------------
    # Fault-free protection must not perturb the loss curve, at either scope.
    assert attn["losses"] == off["losses"]
    assert ffn["losses"] == off["losses"]
    # Measured checksum GEMM dispatches match the extended cost model exactly.
    for run in (attn, ffn):
        assert run["gemm_dispatches_measured"] == run["gemm_dispatches_expected"], run
        assert run["detections"] == 0
    assert set(ffn["sections_checked"]) == set(sections_for_scope("attention+ffn"))
    # Widening the scope must actually dispatch more checksum work.
    assert ffn["gemm_dispatches_measured"] > attn["gemm_dispatches_measured"]
    # O(1) FFN decode: equal deltas at two cache lengths, on the model.
    assert counters["cache_len_long"] > counters["cache_len_short"]
    assert counters["delta_short"] == counters["expected_per_step"]
    assert counters["delta_long"] == counters["expected_per_step"]
    assert counters["steady_state_decode_allocations"] == 0
    assert counters["workspace"]["reuses"] > 0
    assert counters["detections"] == 0

    ratio_attn = attn["wall_seconds"] / off["wall_seconds"]
    ratio_ffn = ffn["wall_seconds"] / off["wall_seconds"]
    report(
        "Whole-model protection (bert-base tiny, CPU/NumPy, "
        f"{STEPS} steps): overhead attention {ratio_attn:.2f}x, "
        f"attention+ffn {ratio_ffn:.2f}x over unprotected; checksum GEMM "
        f"dispatches {attn['gemm_dispatches_measured']} -> "
        f"{ffn['gemm_dispatches_measured']} "
        f"(model: {attn['gemm_dispatches_expected']} -> "
        f"{ffn['gemm_dispatches_expected']}); FFN decode "
        f"{counters['delta_short']} dispatches/token at cache lengths "
        f"{counters['cache_len_short']} and {counters['cache_len_long']} "
        f"(model: {counters['expected_per_step']}), steady-state decode "
        f"allocations {counters['steady_state_decode_allocations']}"
    )

    # -- machine-readable artifact -------------------------------------------
    payload = {
        "unprotected": off,
        "attention": attn,
        "attention_ffn": ffn,
        "losses_identical": attn["losses"] == off["losses"] == ffn["losses"],
        "overhead_ratio_attention": ratio_attn,
        "overhead_ratio_attention_ffn": ratio_ffn,
        "ffn_decode_dispatch": counters,
    }
    path = os.environ.get("BENCH_FFN_JSON", "BENCH_ffn.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    report(f"Whole-model machine-readable artifact written to {path}")
    benchmark.extra_info["ffn_scope"] = payload

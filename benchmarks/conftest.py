"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper:

* it prints the reproduced rows/series through :mod:`repro.analysis.reporting`
  (run pytest with ``-s`` to see them),
* it attaches the same rows to ``benchmark.extra_info`` so they are preserved
  in the pytest-benchmark JSON output, and
* the benchmarked callable is the actual computation that produces the
  numbers, so ``--benchmark-only`` runs double as a performance regression
  check for the library itself.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import DataLoader, SyntheticMRPC
from repro.models import build_model

#: The four models of the paper's main evaluation.
MAIN_MODELS = ["bert-base", "gpt2", "gpt-neo", "roberta"]
#: The six models of the Figure-7 overhead study.
OVERHEAD_MODELS = ["bert-small", "bert-base", "bert-large", "gpt2", "gpt-neo", "roberta"]


def make_model(name: str = "bert-base", seed: int = 0):
    """Fresh tiny model for CPU-side experiments."""
    return build_model(name, size="tiny", rng=np.random.default_rng(seed))


def make_batch(model, n: int = 8, full_mask: bool = False, seed: int = 99):
    """One encoded synthetic-MRPC batch matching the model's geometry."""
    data = SyntheticMRPC(
        num_examples=max(2 * n, 16),
        max_seq_len=model.config.max_seq_len,
        vocab_size=model.config.vocab_size,
        seed=seed,
    )
    batch = dict(data.encode(range(n)))
    if full_mask:
        batch["attention_mask"] = np.ones_like(batch["attention_mask"])
    return batch


def make_batches(model, batch_size: int = 8, seed: int = 99):
    """A full epoch of training batches for the model."""
    data = SyntheticMRPC(
        num_examples=8 * batch_size,
        max_seq_len=model.config.max_seq_len,
        vocab_size=model.config.vocab_size,
        seed=seed,
    )
    return DataLoader(data, batch_size=batch_size, shuffle=False, seed=3).batches()


@pytest.fixture
def report(capsys):
    """Print a reproduced table bypassing pytest's capture suppression summary."""

    def _print(text: str) -> None:
        with capsys.disabled():
            print("\n" + text)

    return _print

"""Figure 9: checksum-encoding throughput, custom kernel vs. cuBLAS.

The paper measures the effective memory throughput of checksum encoding on an
A100 (2 TB/s peak) across batch sizes 24-1536: ATTNChecker's custom kernel
reaches up to 91.4 % of peak bandwidth while cuBLAS stays below 10 %, a ~13x
gap.  The harness regenerates both series from the kernel cost model and also
measures the real NumPy encoder throughput on this host (the benchmarked
callable), so the benchmark doubles as a performance regression test of the
encoding routine itself.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.core.checksums import encode_column_checksums
from repro.perfmodel import A100_SPEC, EncoderThroughputModel
from repro.perfmodel.encoder_throughput import DEFAULT_BATCH_SIZES


def test_fig9_encoding_throughput(benchmark, report):
    sweep = EncoderThroughputModel()
    custom = sweep.model_custom()
    cublas = sweep.model_cublas()

    # Benchmark the real NumPy encoder on a mid-sweep workload.
    rng = np.random.default_rng(0)
    data = rng.normal(size=(192, sweep.seq_len, sweep.block_width))
    benchmark(encode_column_checksums, data)
    measured_tbps = data.nbytes / benchmark.stats["mean"] / 1e12 if benchmark.stats else 0.0

    rows = [
        [c.batch_size, f"{c.throughput_tbps:.2f}", f"{b.throughput_tbps:.3f}",
         f"{c.throughput_tbps / b.throughput_tbps:.1f}x"]
        for c, b in zip(custom, cublas)
    ]
    report(format_table(
        ["batch size", "ATTNChecker (TB/s)", "cuBLAS (TB/s)", "speedup"],
        rows,
        title="Figure 9 — checksum-encoding throughput (modelled A100, peak 2 TB/s); "
              f"measured NumPy encoder on this host: {measured_tbps:.3f} TB/s at batch 192",
    ))
    benchmark.extra_info["custom_tbps"] = [p.throughput_tbps for p in custom]
    benchmark.extra_info["cublas_tbps"] = [p.throughput_tbps for p in cublas]

    peak_tbps = A100_SPEC.memory_bandwidth / 1e12
    # Custom kernel approaches the paper's 91.4 % of peak at large batch...
    assert custom[-1].throughput_tbps > 0.85 * peak_tbps
    # ...while cuBLAS never reaches 10 % of peak.
    assert all(p.throughput_tbps < 0.10 * peak_tbps for p in cublas)
    # The gap is of the order the paper reports (13x at the saturated end).
    assert custom[-1].throughput_tbps / cublas[-1].throughput_tbps > 10.0
    # Throughput grows monotonically with batch size for the custom kernel.
    tbps = [p.throughput_tbps for p in custom]
    assert tbps == sorted(tbps)
    assert list(DEFAULT_BATCH_SIZES) == [p.batch_size for p in custom]


def test_fig9_low_precision_encoding(benchmark, report):
    """The encoder on fp32 training data (the paper's precision): accumulation
    happens in float64 whatever the storage dtype — the dtype-safety rule that
    keeps low-precision fault-free data below the detection tolerances — and
    the promotion does not change the encoded values beyond fp32 round-off of
    the inputs themselves."""
    sweep = EncoderThroughputModel()
    rng = np.random.default_rng(1)
    data32 = rng.normal(size=(192, sweep.seq_len, sweep.block_width)).astype(np.float32)

    encoded = benchmark(encode_column_checksums, data32)
    measured_tbps = data32.nbytes / benchmark.stats["mean"] / 1e12 if benchmark.stats else 0.0
    report(
        "Figure 9 (dtype safety): NumPy encoder on fp32 input = "
        f"{measured_tbps:.3f} TB/s at batch 192; checksums accumulate in {encoded.dtype}"
    )
    benchmark.extra_info["fp32_input_tbps"] = measured_tbps

    # Checksums of low-precision data are float64 (the dtype-safety rule)...
    assert encoded.dtype == np.float64
    # ...and bit-exact against encoding the float64-promoted input.
    reference = encode_column_checksums(data32.astype(np.float64))
    assert np.array_equal(encoded, reference)

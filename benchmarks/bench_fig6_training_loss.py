"""Figure 6: training loss of fault-free vs. ATTNChecker-recovered execution.

Fine-tunes each of the four models for three epochs twice — once fault-free
and once with one extreme fault injected per epoch and corrected by
ATTNChecker — and checks that the two loss curves decrease and stay close
(the paper: "ATTNChecker makes a negligible impact on the training loss
after error recovery").
"""

import numpy as np
import pytest

from benchmarks.conftest import MAIN_MODELS, make_batches, make_model
from repro.analysis import format_table
from repro.core import ATTNChecker
from repro.faults import FaultInjector, FaultSpec
from repro.training import Trainer, TrainerConfig

EPOCHS = 3


def run_pair(model_name: str):
    """Return (clean_epoch_losses, recovered_epoch_losses, corrections)."""
    # Fault-free run.
    model = make_model(model_name, seed=0)
    batches = make_batches(model, batch_size=8)
    trainer = Trainer(model, config=TrainerConfig(learning_rate=1e-3))
    clean = trainer.train(batches, epochs=EPOCHS).epoch_losses()

    # Faulty run recovered by ATTNChecker (one INF fault per epoch).
    model = make_model(model_name, seed=0)
    batches = make_batches(model, batch_size=8)
    injector = FaultInjector([FaultSpec(matrix="Q", error_type="inf")], rng=np.random.default_rng(3))
    checker = ATTNChecker()
    trainer = Trainer(
        model, config=TrainerConfig(learning_rate=1e-3), checker=checker, fault_hooks=[injector]
    )
    for _ in range(EPOCHS):
        injector.arm()
        for batch in batches:
            trainer.train_step(batch)
        trainer.metrics.end_epoch()
    recovered = trainer.metrics.epoch_losses()
    return clean, recovered, checker.stats.total_corrections, trainer.metrics.num_non_trainable()


@pytest.mark.parametrize("model_name", MAIN_MODELS)
def test_fig6_training_loss_with_recovery(benchmark, report, model_name):
    clean, recovered, corrections, non_trainable = benchmark.pedantic(
        run_pair, args=(model_name,), rounds=1, iterations=1
    )

    rows = [[epoch + 1, f"{clean[epoch]:.4f}", f"{recovered[epoch]:.4f}"] for epoch in range(EPOCHS)]
    report(format_table(
        ["epoch", "fault-free loss", "ATTNChecker-recovered loss"], rows,
        title=f"Figure 6 — training loss, {model_name} (tiny config, {corrections} corrections)",
    ))
    benchmark.extra_info["clean"] = clean
    benchmark.extra_info["recovered"] = recovered

    assert corrections >= 1, "at least one injected fault must have been corrected"
    assert non_trainable == 0, "protected training must never reach a non-trainable state"
    assert clean[-1] < clean[0] and recovered[-1] < recovered[0], "both runs must converge"
    for c, r in zip(clean, recovered):
        assert np.isfinite(r)
        assert abs(c - r) < 0.25, "recovered loss must track the fault-free loss"

"""Figure 8: ATTNChecker overhead with and without GPU optimisation (batch 16).

The paper compares ATTNChecker against a non-optimised ABFT variant (cuBLAS
encoding, non-fused checksum updates, separate detection kernels) and reports
that the GPU optimisations reduce ABFT overhead by up to 8.6x on the attention
block and 6.0x on the training step.  The harness reproduces both bars from
the kernel cost models and asserts the optimisation gap.
"""

import pytest

from benchmarks.conftest import MAIN_MODELS
from repro.analysis import format_percent, format_table
from repro.models import get_config
from repro.perfmodel import TrainingStepCostModel

#: Figure 8 values (attention overhead, batch 16): optimised / non-optimised.
PAPER_ATTENTION = {"bert-base": (0.07, 0.62), "gpt2": (0.13, 0.63), "gpt-neo": (0.11, 0.93), "roberta": (0.12, 0.82)}
#: Figure 8 values (per-step overhead, batch 16): optimised / non-optimised.
PAPER_STEP = {"bert-base": (0.04, 0.25), "gpt2": (0.06, 0.23), "gpt-neo": (0.09, 0.40), "roberta": (0.09, 0.34)}


def compute_overheads(batch_size: int = 16):
    table = {}
    for name in MAIN_MODELS:
        cost = TrainingStepCostModel(get_config(name, size="paper"), batch_size=batch_size)
        table[name] = {
            "attention_opt": cost.attention_overhead(optimized=True),
            "attention_non_opt": cost.attention_overhead(optimized=False),
            "step_opt": cost.step_overhead(optimized=True),
            "step_non_opt": cost.step_overhead(optimized=False),
        }
    return table


def test_fig8_gpu_optimisation_gap(benchmark, report):
    table = benchmark(compute_overheads)

    rows = []
    for name in MAIN_MODELS:
        entry = table[name]
        rows.append([
            name,
            format_percent(entry["attention_opt"]),
            format_percent(entry["attention_non_opt"]),
            f"{entry['attention_non_opt'] / entry['attention_opt']:.1f}x",
            format_percent(entry["step_opt"]),
            format_percent(entry["step_non_opt"]),
            f"{entry['step_non_opt'] / entry['step_opt']:.1f}x",
        ])
    report(format_table(
        ["model", "attn OPT", "attn Non-OPT", "gap", "step OPT", "step Non-OPT", "gap"],
        rows,
        title="Figure 8 — ABFT overhead with / without GPU optimisation, batch 16 (modelled A100)\n"
              f"paper: attn OPT 7-13% / Non-OPT 62-93%; step OPT 4-9% / Non-OPT 23-40%",
    ))
    benchmark.extra_info["figure8"] = table

    for name in MAIN_MODELS:
        entry = table[name]
        attention_gap = entry["attention_non_opt"] / entry["attention_opt"]
        step_gap = entry["step_non_opt"] / entry["step_opt"]
        # The optimisations must buy several-fold reductions, as in the paper
        # (up to 8.6x attention, 6.0x step).
        assert attention_gap > 3.0
        assert step_gap > 3.0
        # Optimised overhead stays in the single-digit / low-tens percent range.
        assert entry["attention_opt"] < 0.25
        assert entry["step_opt"] < 0.12
        # Non-optimised overhead is of the same order as the paper's bars.
        assert 0.15 < entry["attention_non_opt"] < 1.2

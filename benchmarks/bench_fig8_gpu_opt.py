"""Figure 8: ATTNChecker overhead with and without GPU optimisation (batch 16).

The paper compares ATTNChecker against a non-optimised ABFT variant (cuBLAS
encoding, non-fused checksum updates, separate detection kernels) and reports
that the GPU optimisations reduce ABFT overhead by up to 8.6x on the attention
block and 6.0x on the training step.  The harness reproduces both bars from
the kernel cost models and asserts the optimisation gap.

A second axis of the "GPU optimised" story is *where the checker's arrays
live*: the fused engine follows the model's array backend by default, so the
pure-NumPy path moves zero bytes between address spaces — asserted here both
analytically (:meth:`SectionCostModel.transfer_bytes_per_layer`) and on a
real protected forward pass (the ``xfer/*`` timer keys stay exactly zero).
A checker pinned to a device backend against a host-resident model would pay
the modelled h2d/d2h traffic instead; the table reports that bound per model.
"""

import pytest

from benchmarks.conftest import MAIN_MODELS, make_batch, make_model
from repro.analysis import format_percent, format_table
from repro.core import ATTNChecker, ATTNCheckerConfig, SectionCostModel
from repro.models import get_config
from repro.perfmodel import TrainingStepCostModel
from repro.utils.timing import XFER_D2H, XFER_H2D, XFER_PREFIX

#: Figure 8 values (attention overhead, batch 16): optimised / non-optimised.
PAPER_ATTENTION = {"bert-base": (0.07, 0.62), "gpt2": (0.13, 0.63), "gpt-neo": (0.11, 0.93), "roberta": (0.12, 0.82)}
#: Figure 8 values (per-step overhead, batch 16): optimised / non-optimised.
PAPER_STEP = {"bert-base": (0.04, 0.25), "gpt2": (0.06, 0.23), "gpt-neo": (0.09, 0.40), "roberta": (0.09, 0.34)}


def compute_overheads(batch_size: int = 16, array_backend: str = "numpy"):
    table = {}
    for name in MAIN_MODELS:
        cost = TrainingStepCostModel(get_config(name, size="paper"), batch_size=batch_size)
        sections = SectionCostModel(
            get_config(name, size="paper"), batch_size=batch_size,
            array_backend=array_backend,
        )
        table[name] = {
            "attention_opt": cost.attention_overhead(optimized=True),
            "attention_non_opt": cost.attention_overhead(optimized=False),
            "step_opt": cost.step_overhead(optimized=True),
            "step_non_opt": cost.step_overhead(optimized=False),
            "transfer_bytes": sections.transfer_bytes_per_layer(),
        }
    return table


def test_fig8_gpu_optimisation_gap(benchmark, report):
    table = benchmark(compute_overheads)

    rows = []
    for name in MAIN_MODELS:
        entry = table[name]
        rows.append([
            name,
            format_percent(entry["attention_opt"]),
            format_percent(entry["attention_non_opt"]),
            f"{entry['attention_non_opt'] / entry['attention_opt']:.1f}x",
            format_percent(entry["step_opt"]),
            format_percent(entry["step_non_opt"]),
            f"{entry['step_non_opt'] / entry['step_opt']:.1f}x",
        ])
    report(format_table(
        ["model", "attn OPT", "attn Non-OPT", "gap", "step OPT", "step Non-OPT", "gap"],
        rows,
        title="Figure 8 — ABFT overhead with / without GPU optimisation, batch 16 (modelled A100)\n"
              f"paper: attn OPT 7-13% / Non-OPT 62-93%; step OPT 4-9% / Non-OPT 23-40%",
    ))
    benchmark.extra_info["figure8"] = table

    for name in MAIN_MODELS:
        entry = table[name]
        attention_gap = entry["attention_non_opt"] / entry["attention_opt"]
        step_gap = entry["step_non_opt"] / entry["step_opt"]
        # The optimisations must buy several-fold reductions, as in the paper
        # (up to 8.6x attention, 6.0x step).
        assert attention_gap > 3.0
        assert step_gap > 3.0
        # Optimised overhead stays in the single-digit / low-tens percent range.
        assert entry["attention_opt"] < 0.25
        assert entry["step_opt"] < 0.12
        # Non-optimised overhead is of the same order as the paper's bars.
        assert 0.15 < entry["attention_non_opt"] < 1.2
        # The host-resident (NumPy) checker shares the model's address space:
        # the modelled transfer traffic is exactly zero.
        assert entry["transfer_bytes"] == {XFER_H2D: 0.0, XFER_D2H: 0.0}


def test_fig8_transfer_accounting_device_vs_host(report):
    """Analytical h2d/d2h bound for a device-pinned checker vs a host model.

    ``array_backend`` is an analytical parameter of :class:`SectionCostModel`
    (the library need not be installed): a device backend pays adoption of
    every section operand plus boundary write-back per layer, a host backend
    pays nothing.
    """
    host = compute_overheads(array_backend="numpy")
    device = compute_overheads(array_backend="cupy")

    rows = []
    for name in MAIN_MODELS:
        xfer = device[name]["transfer_bytes"]
        rows.append([
            name,
            f"{xfer[XFER_H2D] / 1e6:.1f} MB",
            f"{xfer[XFER_D2H] / 1e6:.1f} MB",
            "0 B / 0 B",
        ])
        assert host[name]["transfer_bytes"] == {XFER_H2D: 0.0, XFER_D2H: 0.0}
        assert xfer[XFER_H2D] > 0.0 and xfer[XFER_D2H] > 0.0
        # Adoption dominates write-back: every operand crosses h2d, only the
        # repaired boundary crosses back.
        assert xfer[XFER_H2D] > xfer[XFER_D2H]
    report(format_table(
        ["model", "pinned h2d / layer", "pinned d2h / layer", "host (numpy)"],
        rows,
        title="Figure 8 (backend axis) — modelled per-layer transfer traffic of a "
              "device-pinned checker against a host-resident model (batch 16)",
    ))


def test_fig8_zero_transfer_time_on_pure_numpy_path(report):
    """A real protected pass on the default path records zero ``xfer/*`` time.

    The fused engine *follows* the model's arrays (``array_backend="auto"``)
    — nothing is adopted, nothing is written back, and the transfer timers
    never even instantiate.  Pinning the engine to NumPy explicitly is
    equally free because the section outputs already belong to it.
    """
    for array_backend in ("auto", "numpy"):
        model = make_model("bert-base")
        model.eval()
        batch = make_batch(model, n=4, full_mask=True)
        checker = ATTNChecker(ATTNCheckerConfig(array_backend=array_backend))
        model.set_attention_hooks(checker)
        model(batch["input_ids"], attention_mask=batch["attention_mask"],
              labels=batch["labels"])
        model.set_attention_hooks(None)
        checker.end_step()
        assert checker.stats.total_checks > 0
        assert checker.transfer_seconds() == 0.0
        assert checker.timers.total(prefix=XFER_PREFIX) == 0.0
        assert not [k for k in checker.timers.keys() if k.startswith(XFER_PREFIX)]
    report("pure-NumPy path: xfer/h2d = xfer/d2h = 0.000 ms (no transfer keys recorded)")

"""Run every ``bench_*.py`` harness and merge their JSON artifacts.

One entry point (``make bench`` / ``python benchmarks/run_all.py``) that

1. discovers every ``benchmarks/bench_*.py`` file,
2. runs each through pytest in its own process (a crashed harness cannot
   take the others down),
3. collects whatever ``BENCH_*.json`` artifacts the harnesses emitted, and
4. merges them — plus a per-harness pass/fail ledger — into one consolidated
   ``BENCH_summary.json`` (path overridable via ``BENCH_SUMMARY_JSON``),

so the perf trajectory of the repo is a single machine-readable artifact
instead of a scatter of per-figure files.  Exits non-zero if any harness
failed, making it usable as a CI gate as-is.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent


def discover() -> list:
    """Every bench harness, deterministically ordered."""
    return sorted(BENCH_DIR.glob("bench_*.py"))


def run_bench(path: Path) -> dict:
    """Run one harness under pytest; report outcome without raising."""
    env = dict(os.environ)
    pythonpath = [str(REPO_ROOT / "src"), str(REPO_ROOT)]
    if env.get("PYTHONPATH"):
        pythonpath.append(env["PYTHONPATH"])
    env["PYTHONPATH"] = os.pathsep.join(pythonpath)
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "-q", str(path)],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
    )
    tail = "\n".join(proc.stdout.strip().splitlines()[-3:])
    return {
        "bench": path.name,
        "passed": proc.returncode == 0,
        "returncode": proc.returncode,
        "tail": tail,
    }


def collect_artifacts() -> dict:
    """Parse every ``BENCH_*.json`` emitted into the repo root."""
    artifacts = {}
    for path in sorted(REPO_ROOT.glob("BENCH_*.json")):
        if path.name == "BENCH_summary.json":
            continue
        try:
            with open(path) as fh:
                artifacts[path.name] = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            artifacts[path.name] = {"error": f"unreadable artifact: {exc}"}
    return artifacts


def main() -> int:
    benches = discover()
    if not benches:
        print("no bench_*.py harnesses found", file=sys.stderr)
        return 2
    results = []
    for path in benches:
        print(f"== {path.name}", flush=True)
        result = run_bench(path)
        results.append(result)
        status = "passed" if result["passed"] else f"FAILED (rc={result['returncode']})"
        print(f"   {status}")
        if not result["passed"]:
            print(result["tail"])

    summary = {
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
        },
        "benches": results,
        "artifacts": collect_artifacts(),
        "all_passed": all(r["passed"] for r in results),
    }
    out = os.environ.get("BENCH_SUMMARY_JSON", str(REPO_ROOT / "BENCH_summary.json"))
    with open(out, "w") as fh:
        json.dump(summary, fh, indent=2)
    failed = [r["bench"] for r in results if not r["passed"]]
    print(f"\n{len(benches) - len(failed)}/{len(benches)} harnesses passed; "
          f"summary -> {out}")
    if failed:
        print("failed: " + ", ".join(failed), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

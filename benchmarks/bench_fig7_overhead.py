"""Figure 7: ATTNChecker overhead on six LLMs (batch size 8).

Two complementary reproductions:

* **Modelled A100** — the analytical roofline model prices the attention block
  and the whole training step with and without ABFT at the published model
  dimensions; the paper reports 7-16 % attention overhead and ~7 % per-step
  overhead on average.
* **Measured CPU** — the benchmark also times real protected vs. unprotected
  training steps of the tiny configurations on this host (the ATTNChecker
  NumPy implementation), as a sanity check that the implementation's overhead
  is of the same order.

The run additionally emits a machine-readable ``BENCH_fig7.json`` artifact
(path overridable via the ``BENCH_FIG7_JSON`` environment variable) with the
modelled overhead ratios plus the fused-vs-unfused kernel-schedule counters —
checksum GEMM dispatches, steady-state workspace allocations, weight-cache
hits — which the CI perf smoke asserts on: fused dispatches strictly below
the unfused schedule's, and zero steady-state hot-path allocations.
"""

import json
import os

import numpy as np
import pytest

from benchmarks.conftest import OVERHEAD_MODELS, make_batch, make_model
from repro.analysis import format_percent, format_table
from repro.core import (
    VERIFICATION_MODE_CONFIGS,
    ATTNChecker,
    ATTNCheckerConfig,
    SectionCostModel,
)
from repro.faults import FaultInjector, FaultSpec
from repro.models import get_config
from repro.nn import ComposedHooks
from repro.perfmodel import TrainingStepCostModel
from repro.training import Trainer, TrainerConfig

#: The historical per-visit kernel schedule (the pre-fusion baseline).
LEGACY_SCHEDULE = {
    "fuse_sibling_gemms": False,
    "cache_weight_encodings": False,
    "reuse_workspace": False,
}

#: Attention-block overheads reported in Figure 7 (left panel).
PAPER_ATTENTION_OVERHEAD = {
    "bert-small": 0.09, "bert-base": 0.13, "bert-large": 0.16,
    "gpt2": 0.13, "gpt-neo": 0.09, "roberta": 0.07,
}
#: Per-step training overheads reported in Figure 7 (right panel).
PAPER_STEP_OVERHEAD = {
    "bert-small": 0.06, "bert-base": 0.07, "bert-large": 0.10,
    "gpt2": 0.07, "gpt-neo": 0.09, "roberta": 0.05,
}


def model_overheads(batch_size: int = 8):
    table = {}
    for name in OVERHEAD_MODELS:
        cost = TrainingStepCostModel(get_config(name, size="paper"), batch_size=batch_size)
        table[name] = {
            "attention_ms": cost.attention_step_time() * 1e3,
            "attention_overhead": cost.attention_overhead(),
            "step_ms": cost.step_time() * 1e3,
            "step_overhead": cost.step_overhead(),
        }
    return table


def measured_cpu_overhead(model_name: str = "bert-base", steps: int = 3, backend: str = "fused"):
    """Measured per-step overhead of the NumPy ATTNChecker on this host."""
    def run(checker):
        model = make_model(model_name)
        batch = make_batch(model, n=8)
        trainer = Trainer(model, config=TrainerConfig(learning_rate=1e-3), checker=checker)
        trainer.train_step(batch)  # warm-up
        times = [trainer.train_step(batch).step_seconds for _ in range(steps)]
        return float(np.median(times))

    baseline = run(None)
    protected = run(ATTNChecker(ATTNCheckerConfig(backend=backend)))
    return (protected - baseline) / baseline


def measured_abft_seconds(backend: str, model_name: str = "bert-base", steps: int = 8,
                          extra_config=None):
    """Best-case per-step ABFT wall-clock of one checker backend on this host.

    The min over several steps estimates the noise-free floor — the right
    statistic for comparing two implementations of the *same* checksum
    algebra, where the difference is fixed host-side dispatch work.
    ``extra_config`` merges additional :class:`ATTNCheckerConfig` kwargs (the
    kernel-schedule comparison passes ``LEGACY_SCHEDULE``).
    """
    model = make_model(model_name)
    batch = make_batch(model, n=8)
    checker = ATTNChecker(ATTNCheckerConfig(backend=backend, **(extra_config or {})))
    trainer = Trainer(model, config=TrainerConfig(learning_rate=1e-3), checker=checker)
    trainer.train_step(batch)  # warm-up
    return min(trainer.train_step(batch).abft_seconds for _ in range(steps))


def kernel_schedule_counters(model_name: str = "bert-base", steps: int = 4):
    """Dispatch/allocation counters of the fused vs the legacy schedule.

    Runs a fixed-weight protected forward loop (model.eval(); no optimizer
    steps, so the weight-encoding cache reaches true steady state after the
    warm-up pass) and reads the engine's own counters.  Also returns the
    per-schedule outputs so the caller can assert the two schedules stayed
    byte-identical while the dispatch counts diverged.
    """
    results = {}
    for label, extra in (("fused", {}), ("unfused", LEGACY_SCHEDULE)):
        model = make_model(model_name)
        model.eval()
        batch = make_batch(model, n=4, full_mask=True)
        checker = ATTNChecker(ATTNCheckerConfig(**extra))
        model.set_attention_hooks(checker)
        # Warm-up: allocates the workspace slots and fills the weight cache.
        model(batch["input_ids"], attention_mask=batch["attention_mask"])
        workspace = checker.engine.workspace
        if workspace is not None:
            workspace.reset_stats()
        gemm_before = checker.dispatch_counts["gemm"]
        outputs = []
        for _ in range(steps):
            logits = model(
                batch["input_ids"], attention_mask=batch["attention_mask"]
            ).logits.data
            outputs.append(logits.copy())
        model.set_attention_hooks(None)
        results[label] = {
            "gemm_dispatches": checker.dispatch_counts["gemm"] - gemm_before,
            "steady_state_allocations": 0 if workspace is None else workspace.allocations,
            "workspace": checker.workspace_stats(),
            "weight_cache": checker.weight_cache_stats(),
            "outputs": outputs,
            "layer_visits": steps * model.config.num_layers,
        }
    return results


def steady_state_checker_seconds(extra_config=None, model_name: str = "bert-base",
                                 reps: int = 6):
    """Min-floor per-pass checker time of a fixed-weight protected forward.

    The steady-state regime the fused schedule targets: weights unchanged
    between passes, so the weight-encoding cache serves every visit and the
    workspace reuses every buffer.  (A training loop re-derives weight-side
    encodings every step by necessity — the optimizer changed the weights —
    so its floor reflects the dispatch fusion only.)
    """
    model = make_model(model_name)
    model.eval()
    batch = make_batch(model, n=8)
    checker = ATTNChecker(ATTNCheckerConfig(**(extra_config or {})))
    model.set_attention_hooks(checker)
    model(batch["input_ids"], attention_mask=batch["attention_mask"])  # warm-up
    per_pass = []
    for _ in range(reps):
        before = checker.overhead_seconds()
        model(batch["input_ids"], attention_mask=batch["attention_mask"])
        per_pass.append(checker.overhead_seconds() - before)
    model.set_attention_hooks(None)
    return min(per_pass)


def measured_mode_path_seconds(mode: str, model_name: str = "bert-base", steps: int = 6):
    """Critical-path and total ABFT seconds of one fused verification mode.

    Returns ``(per_step_critical_floor, critical_total, overall_total)``:
    the min-over-steps critical-path cost (noise-floor estimator), plus run
    totals after a full drain.  Every ``train_step`` must leave the checker's
    front queue empty — the zero-pending-after-end_step invariant.
    """
    model = make_model(model_name)
    batch = make_batch(model, n=8)
    checker = ATTNChecker(ATTNCheckerConfig(**VERIFICATION_MODE_CONFIGS[mode]))
    trainer = Trainer(model, config=TrainerConfig(learning_rate=1e-3), checker=checker)
    trainer.train_step(batch)  # warm-up
    per_step = []
    for _ in range(steps):
        before = checker.critical_path_seconds()
        trainer.train_step(batch)
        assert checker.pending_verifications == 0
        per_step.append(checker.critical_path_seconds() - before)
    trainer.drain_verifications()
    assert checker.engine.pending_steps == 0
    critical_total = checker.critical_path_seconds()
    overall_total = checker.overhead_seconds()
    # The Figure-7 split reports copy overhead separately (xfer/* keys); on
    # the default follow-the-arrays NumPy path it must be exactly zero.
    assert checker.transfer_seconds() == 0.0
    checker.close()
    return min(per_step), critical_total, overall_total


def backend_fault_decisions(backend: str, model_name: str = "bert-base"):
    """Detection/correction decisions of one backend over a fault campaign."""
    decisions = {}
    outputs = []
    for trial, (matrix, error_type) in enumerate(
        (m, e) for m in ("Q", "K", "V", "AS", "CL", "O") for e in ("inf", "nan", "near_inf")
    ):
        model = make_model(model_name)
        model.eval()
        batch = make_batch(model, n=4, full_mask=True)
        injector = FaultInjector(
            [FaultSpec(matrix=matrix, error_type=error_type)],
            rng=np.random.default_rng(1000 + trial),
        )
        checker = ATTNChecker(ATTNCheckerConfig(backend=backend))
        model.set_attention_hooks(ComposedHooks([injector, checker]))
        logits = model(batch["input_ids"], attention_mask=batch["attention_mask"]).logits.data
        model.set_attention_hooks(None)
        outputs.append(logits.copy())
        decisions[(matrix, error_type)] = {
            name: (s.detections, s.corrections, s.aborted_vectors, s.residual_extreme)
            for name, s in checker.stats.sections.items()
        }
    return decisions, outputs


def test_fig7_overhead_modelled(benchmark, report):
    table = benchmark(model_overheads)

    rows = [
        [name,
         f"{table[name]['attention_ms']:.2f}",
         format_percent(table[name]["attention_overhead"]),
         format_percent(PAPER_ATTENTION_OVERHEAD[name]),
         f"{table[name]['step_ms']:.1f}",
         format_percent(table[name]["step_overhead"]),
         format_percent(PAPER_STEP_OVERHEAD[name])]
        for name in OVERHEAD_MODELS
    ]
    report(format_table(
        ["model", "attn time (ms)", "attn overhead", "paper", "step time (ms)", "step overhead", "paper"],
        rows,
        title="Figure 7 — ATTNChecker overhead, batch 8 (modelled A100 vs paper)",
    ))
    benchmark.extra_info["figure7"] = table

    for name in OVERHEAD_MODELS:
        # Shape: overhead is a modest fraction, attention overhead above step
        # overhead, both within a small factor of the paper's bars.
        assert 0.01 < table[name]["attention_overhead"] < 0.30
        assert 0.005 < table[name]["step_overhead"] < 0.15
        assert table[name]["attention_overhead"] > table[name]["step_overhead"]
        assert table[name]["step_overhead"] < 2.5 * PAPER_STEP_OVERHEAD[name]


def test_fig7_overhead_measured_cpu(benchmark, report):
    overhead = benchmark.pedantic(measured_cpu_overhead, rounds=1, iterations=1)
    report(f"Figure 7 (measured, CPU/NumPy, bert-base tiny): per-step ATTNChecker overhead = "
           f"{format_percent(max(overhead, 0.0))}")
    benchmark.extra_info["measured_step_overhead"] = overhead
    # The NumPy implementation's overhead stays moderate (well under 2x).
    assert overhead < 1.0


def test_fig7_fused_engine_vs_per_gemm_backend(benchmark, report):
    """The Section-4.4 fusion claim, measured: the fused ProtectionEngine's
    ABFT overhead does not exceed the per-GEMM reference backend's, while a
    fault-injection campaign confirms the two backends make byte-identical
    detection/correction decisions."""
    def compare():
        # Interleave the backends and keep the floor of three trials each, so
        # slow drift on a shared CI host hits both measurements alike.
        fused_trials, per_gemm_trials = [], []
        for _ in range(3):
            fused_trials.append(measured_abft_seconds("fused"))
            per_gemm_trials.append(measured_abft_seconds("per_gemm"))
        return min(fused_trials), min(per_gemm_trials)

    fused, per_gemm = benchmark.pedantic(compare, rounds=1, iterations=1)

    fused_decisions, fused_outputs = backend_fault_decisions("fused")
    ref_decisions, ref_outputs = backend_fault_decisions("per_gemm")

    report(
        "Figure 7 (backend comparison, CPU/NumPy, bert-base tiny): per-step ABFT time "
        f"fused = {fused * 1e3:.2f} ms, per-GEMM = {per_gemm * 1e3:.2f} ms "
        f"({(per_gemm - fused) / per_gemm * 100.0:+.1f}% saved by fusion); "
        f"fault campaign decisions identical: {fused_decisions == ref_decisions}"
    )
    benchmark.extra_info["fused_abft_seconds"] = fused
    benchmark.extra_info["per_gemm_abft_seconds"] = per_gemm

    # Byte-identical detection/correction outcomes between the two backends —
    # the hard, deterministic gate.
    assert fused_decisions == ref_decisions
    for fused_logits, ref_logits in zip(fused_outputs, ref_outputs):
        assert np.array_equal(fused_logits, ref_logits, equal_nan=True)
    # Fused-engine overhead at or below the per-GEMM baseline.  The two
    # backends run the identical checksum algebra, so the true gap is the
    # removed host-side dispatch work — small relative to wall-clock jitter
    # on shared CI runners, hence the 10% noise allowance on top of the
    # interleaved min-floor estimator.  A real regression (extra checksum
    # work on the fused path) is well above this band.
    assert fused <= per_gemm * 1.10


def test_fig7_async_verification_off_critical_path(benchmark, report):
    """The off-critical-path claim, measured: async verification must leave
    strictly less checker time on the training thread than deferred mode,
    whose batched flush still runs on the caller — while the verification
    work itself (the total) does not go away, it moves to the worker."""
    def compare():
        # Interleave the modes and keep the floor of three trials each, so
        # slow drift on a shared CI host hits both measurements alike.
        deferred_trials, async_trials = [], []
        for _ in range(3):
            deferred_trials.append(measured_mode_path_seconds("deferred"))
            async_trials.append(measured_mode_path_seconds("async"))
        return (
            min(t[0] for t in deferred_trials),
            min(t[0] for t in async_trials),
            max(t[2] - t[1] for t in async_trials),
        )

    deferred_step, async_step, async_worker_total = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )

    report(
        "Figure 7 (verification modes, CPU/NumPy, bert-base tiny): per-step "
        f"critical-path ABFT time deferred = {deferred_step * 1e3:.2f} ms, "
        f"async = {async_step * 1e3:.2f} ms "
        f"({(deferred_step - async_step) / deferred_step * 100.0:+.1f}% moved off "
        f"the critical path; worker verified {async_worker_total * 1e3:.2f} ms "
        "off-thread)"
    )
    benchmark.extra_info["deferred_critical_path_seconds"] = deferred_step
    benchmark.extra_info["async_critical_path_seconds"] = async_step
    benchmark.extra_info["async_worker_seconds"] = async_worker_total

    # The hard gate: async critical-path time strictly below deferred mode's
    # flush cost.  The gap is the whole batched EEC-ABFT pass (deferred pays
    # it on the caller; async pays only the queue-swap/submit bookkeeping),
    # which is far above timer jitter on the min-floor estimator.
    assert async_step < deferred_step
    # The verification work did not disappear — it ran on the worker.
    assert async_worker_total > 0.0


def test_fig7_fused_kernel_schedule_counters_and_json(benchmark, report):
    """The kernel-schedule claim, counter-verified, plus the JSON artifact.

    The fused schedule (sibling-GEMM fusion + weight-encoding cache +
    checksum workspace) must issue strictly fewer checksum GEMM dispatches
    per layer visit than the historical schedule, allocate nothing on the
    steady-state hot path, produce byte-identical outputs, and not regress
    wall-clock.  Everything measured lands in ``BENCH_fig7.json`` for CI.
    """
    def compare():
        counters = kernel_schedule_counters()
        # Interleave the wall-clock trials so shared-host drift hits both
        # schedules alike; keep the min floor of three each.  The timed
        # regime is the steady-state one the caches target (fixed weights);
        # see steady_state_checker_seconds.
        fused_trials, legacy_trials = [], []
        for _ in range(3):
            fused_trials.append(steady_state_checker_seconds())
            legacy_trials.append(steady_state_checker_seconds(LEGACY_SCHEDULE))
        return counters, min(fused_trials), min(legacy_trials)

    counters, fused_seconds, legacy_seconds = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    fused, unfused = counters["fused"], counters["unfused"]

    # -- hard, deterministic gates -------------------------------------------
    # Byte-identical outputs between the schedules, every steady-state pass.
    for fused_logits, legacy_logits in zip(fused["outputs"], unfused["outputs"]):
        assert np.array_equal(fused_logits, legacy_logits, equal_nan=True)
    # Fewer dispatches: measured counters, and both agree with the model.
    assert fused["gemm_dispatches"] < unfused["gemm_dispatches"]
    per_layer_fused = sum(
        SectionCostModel.checksum_gemm_dispatches_per_layer("fused").values()
    )
    per_layer_unfused = sum(
        SectionCostModel.checksum_gemm_dispatches_per_layer("unfused").values()
    )
    assert fused["gemm_dispatches"] == per_layer_fused * fused["layer_visits"]
    assert unfused["gemm_dispatches"] == per_layer_unfused * unfused["layer_visits"]
    # Zero steady-state hot-path allocations, and the weight cache served
    # every steady-state visit from cache.
    assert fused["steady_state_allocations"] == \
        SectionCostModel.steady_state_hot_path_allocations() == 0
    assert fused["workspace"]["reuses"] > 0
    assert fused["weight_cache"]["hits"] > 0
    # Wall-clock: at or below the legacy schedule (same algebra, less
    # dispatch/allocation work); 10% noise allowance over the min floor, as
    # in the fused-vs-per-GEMM comparison above.  The deterministic gates
    # above (dispatch counters, allocation counters) carry the regression
    # protection; this guards against the schedule trading dispatches for
    # slower kernels.
    assert fused_seconds <= legacy_seconds * 1.10

    report(
        "Figure 7 (kernel schedule, CPU/NumPy, bert-base tiny): checksum GEMM "
        f"dispatches/visit fused = {per_layer_fused}, unfused = {per_layer_unfused}; "
        f"steady-state workspace allocations = {fused['steady_state_allocations']} "
        f"(reuses = {fused['workspace']['reuses']}); steady-state per-pass checker "
        f"time fused = {fused_seconds * 1e3:.2f} ms, legacy = {legacy_seconds * 1e3:.2f} ms "
        f"({(legacy_seconds - fused_seconds) / legacy_seconds * 100.0:+.1f}% saved)"
    )

    # -- machine-readable artifact -------------------------------------------
    payload = {
        "modelled_overheads": {
            name: {
                "attention_overhead": row["attention_overhead"],
                "step_overhead": row["step_overhead"],
            }
            for name, row in model_overheads().items()
        },
        "paper_overheads": {
            "attention": PAPER_ATTENTION_OVERHEAD,
            "step": PAPER_STEP_OVERHEAD,
        },
        "kernel_schedule": {
            "fused": {
                "gemm_dispatches_per_layer": per_layer_fused,
                "gemm_dispatches_measured": fused["gemm_dispatches"],
                "steady_state_allocations": fused["steady_state_allocations"],
                "workspace": fused["workspace"],
                "weight_cache": fused["weight_cache"],
                "abft_seconds": fused_seconds,
            },
            "unfused": {
                "gemm_dispatches_per_layer": per_layer_unfused,
                "gemm_dispatches_measured": unfused["gemm_dispatches"],
                "abft_seconds": legacy_seconds,
            },
        },
        "layer_visits": fused["layer_visits"],
    }
    path = os.environ.get("BENCH_FIG7_JSON", "BENCH_fig7.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    report(f"Figure 7 machine-readable artifact written to {path}")
    benchmark.extra_info["kernel_schedule"] = payload["kernel_schedule"]

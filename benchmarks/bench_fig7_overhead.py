"""Figure 7: ATTNChecker overhead on six LLMs (batch size 8).

Two complementary reproductions:

* **Modelled A100** — the analytical roofline model prices the attention block
  and the whole training step with and without ABFT at the published model
  dimensions; the paper reports 7-16 % attention overhead and ~7 % per-step
  overhead on average.
* **Measured CPU** — the benchmark also times real protected vs. unprotected
  training steps of the tiny configurations on this host (the ATTNChecker
  NumPy implementation), as a sanity check that the implementation's overhead
  is of the same order.
"""

import numpy as np
import pytest

from benchmarks.conftest import OVERHEAD_MODELS, make_batch, make_model
from repro.analysis import format_percent, format_table
from repro.core import ATTNChecker
from repro.models import get_config
from repro.perfmodel import TrainingStepCostModel
from repro.training import Trainer, TrainerConfig

#: Attention-block overheads reported in Figure 7 (left panel).
PAPER_ATTENTION_OVERHEAD = {
    "bert-small": 0.09, "bert-base": 0.13, "bert-large": 0.16,
    "gpt2": 0.13, "gpt-neo": 0.09, "roberta": 0.07,
}
#: Per-step training overheads reported in Figure 7 (right panel).
PAPER_STEP_OVERHEAD = {
    "bert-small": 0.06, "bert-base": 0.07, "bert-large": 0.10,
    "gpt2": 0.07, "gpt-neo": 0.09, "roberta": 0.05,
}


def model_overheads(batch_size: int = 8):
    table = {}
    for name in OVERHEAD_MODELS:
        cost = TrainingStepCostModel(get_config(name, size="paper"), batch_size=batch_size)
        table[name] = {
            "attention_ms": cost.attention_step_time() * 1e3,
            "attention_overhead": cost.attention_overhead(),
            "step_ms": cost.step_time() * 1e3,
            "step_overhead": cost.step_overhead(),
        }
    return table


def measured_cpu_overhead(model_name: str = "bert-base", steps: int = 3):
    """Measured per-step overhead of the NumPy ATTNChecker on this host."""
    def run(checker):
        model = make_model(model_name)
        batch = make_batch(model, n=8)
        trainer = Trainer(model, config=TrainerConfig(learning_rate=1e-3), checker=checker)
        trainer.train_step(batch)  # warm-up
        times = [trainer.train_step(batch).step_seconds for _ in range(steps)]
        return float(np.median(times))

    baseline = run(None)
    protected = run(ATTNChecker())
    return (protected - baseline) / baseline


def test_fig7_overhead_modelled(benchmark, report):
    table = benchmark(model_overheads)

    rows = [
        [name,
         f"{table[name]['attention_ms']:.2f}",
         format_percent(table[name]["attention_overhead"]),
         format_percent(PAPER_ATTENTION_OVERHEAD[name]),
         f"{table[name]['step_ms']:.1f}",
         format_percent(table[name]["step_overhead"]),
         format_percent(PAPER_STEP_OVERHEAD[name])]
        for name in OVERHEAD_MODELS
    ]
    report(format_table(
        ["model", "attn time (ms)", "attn overhead", "paper", "step time (ms)", "step overhead", "paper"],
        rows,
        title="Figure 7 — ATTNChecker overhead, batch 8 (modelled A100 vs paper)",
    ))
    benchmark.extra_info["figure7"] = table

    for name in OVERHEAD_MODELS:
        # Shape: overhead is a modest fraction, attention overhead above step
        # overhead, both within a small factor of the paper's bars.
        assert 0.01 < table[name]["attention_overhead"] < 0.30
        assert 0.005 < table[name]["step_overhead"] < 0.15
        assert table[name]["attention_overhead"] > table[name]["step_overhead"]
        assert table[name]["step_overhead"] < 2.5 * PAPER_STEP_OVERHEAD[name]


def test_fig7_overhead_measured_cpu(benchmark, report):
    overhead = benchmark.pedantic(measured_cpu_overhead, rounds=1, iterations=1)
    report(f"Figure 7 (measured, CPU/NumPy, bert-base tiny): per-step ATTNChecker overhead = "
           f"{format_percent(max(overhead, 0.0))}")
    benchmark.extra_info["measured_step_overhead"] = overhead
    # The NumPy implementation's overhead stays moderate (well under 2x).
    assert overhead < 1.0

"""Figure 12: ATTNChecker overhead for multi-billion-parameter LLMs on 1,024 GPUs.

The paper simulates data-parallel training of 30B / 60B / 100B-parameter
models on 1,024 GPUs and reports that ATTNChecker's per-step overhead stays
essentially constant (~6.3 %) as the model grows.  The harness regenerates the
sweep from the multi-GPU scale model and asserts the near-constancy.
"""

import pytest

from repro.analysis import format_percent, format_table
from repro.perfmodel import MultiGPUScaleModel
from repro.perfmodel.scale import BILLION_SCALE_MODELS

PAPER_OVERHEAD = {"30B": 0.0632, "60B": 0.0633, "100B": 0.0634}


def run_sweep(num_gpus: int = 1024):
    return MultiGPUScaleModel(num_gpus=num_gpus).sweep()


def test_fig12_multi_billion_parameter_scaling(benchmark, report):
    points = benchmark(run_sweep)

    rows = [
        [p.model_name, f"{p.parameters / 1e9:.0f}B", p.num_gpus,
         f"{p.compute_seconds:.2f}", f"{p.allreduce_seconds:.2f}", f"{p.step_seconds:.2f}",
         format_percent(p.abft_overhead, digits=2), format_percent(PAPER_OVERHEAD[p.model_name], digits=2)]
        for p in points
    ]
    report(format_table(
        ["model", "params", "GPUs", "compute (s)", "all-reduce (s)", "step (s)", "ATTNChecker overhead", "paper"],
        rows,
        title="Figure 12 — data-parallel training of multi-billion parameter LLMs (modelled)",
    ))
    benchmark.extra_info["figure12"] = {p.model_name: p.abft_overhead for p in points}

    overheads = [p.abft_overhead for p in points]
    # Overhead is small (same regime as the single-GPU per-step overhead)...
    assert all(0.001 < o < 0.12 for o in overheads)
    # ...and nearly constant across model sizes (the paper's 6.32-6.34 %).
    assert max(overheads) / min(overheads) < 1.8
    # Step time grows with model size, as expected for the scaling study.
    steps = [p.step_seconds for p in points]
    assert steps == sorted(steps)
    # The configured model sizes match the paper's 30B / 60B / 100B points.
    assert [p.model_name for p in points] == list(BILLION_SCALE_MODELS)

"""Figure 12: ATTNChecker overhead for multi-billion-parameter LLMs on 1,024 GPUs.

The paper simulates data-parallel training of 30B / 60B / 100B-parameter
models on 1,024 GPUs and reports that ATTNChecker's per-step overhead stays
essentially constant (~6.3 %) as the model grows.  The harness regenerates the
sweep from the multi-GPU scale model and asserts the near-constancy.

Alongside the analytical projection, the harness now *measures* data-parallel
scaling with the real :class:`~repro.training.DataParallelTrainer` — strong
scaling (fixed global batch and shard count, growing worker count) and weak
scaling (fixed per-shard batch, growing world) — with the gradient all-reduce
running through the checksum-protected collective.  Byte-identity of the
trained weights across worker counts and the collective checksum dispatch
counters are hard gates; wall-clock efficiencies are recorded, not gated
(shared CI hosts make timing assertions flaky).  Everything lands in
``BENCH_fig12.json`` (path overridable via ``BENCH_FIG12_JSON``) for the CI
gate.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.analysis import format_percent, format_table
from repro.core import SectionCostModel
from repro.perfmodel import MultiGPUScaleModel
from repro.perfmodel.scale import BILLION_SCALE_MODELS
from repro.training import DataParallelConfig, DataParallelTrainer, ReplicaSpec

PAPER_OVERHEAD = {"30B": 0.0632, "60B": 0.0633, "100B": 0.0634}


def run_sweep(num_gpus: int = 1024):
    return MultiGPUScaleModel(num_gpus=num_gpus).sweep()


def test_fig12_multi_billion_parameter_scaling(benchmark, report):
    points = benchmark(run_sweep)

    rows = [
        [p.model_name, f"{p.parameters / 1e9:.0f}B", p.num_gpus,
         f"{p.compute_seconds:.2f}", f"{p.allreduce_seconds:.2f}", f"{p.step_seconds:.2f}",
         format_percent(p.abft_overhead, digits=2), format_percent(PAPER_OVERHEAD[p.model_name], digits=2)]
        for p in points
    ]
    report(format_table(
        ["model", "params", "GPUs", "compute (s)", "all-reduce (s)", "step (s)", "ATTNChecker overhead", "paper"],
        rows,
        title="Figure 12 — data-parallel training of multi-billion parameter LLMs (modelled)",
    ))
    benchmark.extra_info["figure12"] = {p.model_name: p.abft_overhead for p in points}

    overheads = [p.abft_overhead for p in points]
    # Overhead is small (same regime as the single-GPU per-step overhead)...
    assert all(0.001 < o < 0.12 for o in overheads)
    # ...and nearly constant across model sizes (the paper's 6.32-6.34 %).
    assert max(overheads) / min(overheads) < 1.8
    # Step time grows with model size, as expected for the scaling study.
    steps = [p.step_seconds for p in points]
    assert steps == sorted(steps)
    # The configured model sizes match the paper's 30B / 60B / 100B points.
    assert [p.model_name for p in points] == list(BILLION_SCALE_MODELS)


# -- measured data-parallel scaling ------------------------------------------------

#: Worker counts of the measured sweep.  The thread executor overlaps the
#: GIL-releasing BLAS work of the per-rank replicas, so wall-clock scaling is
#: real (if modest at tiny-model sizes) rather than simulated.
MEASURED_WORKERS = (1, 2, 4)
#: Strong scaling: the global batch and shard count stay fixed while workers
#: grow, so every configuration computes the byte-identical training step.
STRONG_SHARDS = 4
STRONG_GLOBAL_BATCH = 8
#: Weak scaling: per-shard batch stays fixed while world (= workers) grows.
WEAK_PER_SHARD_BATCH = 2
WARMUP_STEPS = 1
MEASURED_STEPS = 2


def _scaling_batch(seed: int, batch: int, seq: int = 10, vocab: int = 100):
    rng = np.random.default_rng(seed)
    return {
        "input_ids": rng.integers(0, vocab, size=(batch, seq)),
        "attention_mask": np.ones((batch, seq), dtype=np.int64),
        "labels": rng.integers(0, 2, size=(batch,)),
    }


def _states_equal(a, b):
    return set(a) == set(b) and all(
        np.array_equal(np.asarray(a[k]), np.asarray(b[k])) for k in a
    )


def _run_measured(workers: int, shards: int, global_batch: int):
    config = DataParallelConfig(
        workers=workers,
        shards=shards,
        executor="serial" if workers == 1 else "thread",
    )
    trainer = DataParallelTrainer(
        model_spec=ReplicaSpec(name="bert-base", size="tiny", seed=7, num_labels=2),
        config=config,
    )
    try:
        total = WARMUP_STEPS + MEASURED_STEPS
        batches = [_scaling_batch(200 + i, global_batch) for i in range(total)]
        for batch in batches[:WARMUP_STEPS]:
            trainer.train_step(batch)
        begin = time.perf_counter()
        for batch in batches[WARMUP_STEPS:]:
            trainer.train_step(batch)
        step_seconds = (time.perf_counter() - begin) / MEASURED_STEPS
        state = trainer.state_dict()
        timers = trainer.timers.as_dict()
        return {
            "workers": workers,
            "shards": shards,
            "global_batch": global_batch,
            "steps": total,
            "step_seconds": step_seconds,
            "comm_allreduce_seconds": timers.get("comm/allreduce", 0.0),
            "comm_verify_seconds": timers.get("comm/verify", 0.0),
            "counters": trainer.collective_counters(),
            "state": state,
        }
    finally:
        trainer.close()


def run_measured_scaling():
    strong = [
        _run_measured(w, STRONG_SHARDS, STRONG_GLOBAL_BATCH) for w in MEASURED_WORKERS
    ]
    weak = [
        _run_measured(w, w, WEAK_PER_SHARD_BATCH * w) for w in MEASURED_WORKERS
    ]
    return strong, weak


def _efficiency_rows(points, weak: bool):
    base = points[0]["step_seconds"]
    rows = []
    for p in points:
        if weak:
            # Perfect weak scaling keeps the step time flat as world grows.
            efficiency = base / p["step_seconds"]
        else:
            efficiency = base / (p["step_seconds"] * p["workers"])
        rows.append({**{k: v for k, v in p.items() if k != "state"},
                     "efficiency": efficiency})
    return rows


def test_fig12_measured_data_parallel_scaling(benchmark, report):
    strong, weak = benchmark.pedantic(run_measured_scaling, rounds=1, iterations=1)

    # Hard gate 1: strong-scaling configurations train byte-identical weights
    # at every worker count (same shards, rank-ordered protected reduction).
    byte_identical = all(
        _states_equal(strong[0]["state"], p["state"]) for p in strong[1:]
    )
    assert byte_identical

    # Hard gate 2: collective checksum dispatches match the cost model
    # exactly — one encode per tensor per rank, one verify per tensor, per
    # step, counter-verified against the protected collective.
    num_gradients = len(strong[0]["state"]) + 1  # parameters + the loss scalar
    for p in strong + weak:
        per_step = SectionCostModel.collective_checksum_dispatches_per_step(
            num_gradients=num_gradients, world_size=p["shards"]
        )
        counters = p["counters"]
        assert counters["checksum_encodes"] == per_step["encode"] * p["steps"]
        assert counters["checksum_verifies"] == per_step["verify"] * p["steps"]
        assert counters["mismatches"] == 0
    counters_match = True

    strong_rows = _efficiency_rows(strong, weak=False)
    weak_rows = _efficiency_rows(weak, weak=True)
    for rows in (strong_rows, weak_rows):
        assert [r["workers"] for r in rows] == list(MEASURED_WORKERS)
        assert all(r["step_seconds"] > 0.0 for r in rows)
        assert all(r["efficiency"] > 0.0 for r in rows)

    table_rows = [
        [kind, r["workers"], r["shards"], r["global_batch"],
         f"{r['step_seconds'] * 1e3:.1f}",
         f"{r['comm_allreduce_seconds'] * 1e3:.1f}",
         f"{r['comm_verify_seconds'] * 1e3:.1f}",
         format_percent(r["efficiency"], digits=1)]
        for kind, rows in (("strong", strong_rows), ("weak", weak_rows))
        for r in rows
    ]
    report(format_table(
        ["sweep", "workers", "shards", "global batch", "step (ms)",
         "all-reduce (ms)", "verify (ms)", "efficiency"],
        table_rows,
        title="Figure 12 — measured data-parallel scaling (protected all-reduce)",
    ))

    payload = {
        "figure": "fig12",
        "modelled": {p.model_name: p.abft_overhead for p in run_sweep()},
        "measured": {
            "model": "bert-base/tiny",
            "measured_steps": MEASURED_STEPS,
            "strong": strong_rows,
            "weak": weak_rows,
            "byte_identical_across_workers": byte_identical,
            "collective_dispatch": {
                "num_gradients": num_gradients,
                "counters_match_cost_model": counters_match,
            },
        },
    }
    benchmark.extra_info["figure12_measured"] = payload["measured"]
    path = os.environ.get("BENCH_FIG12_JSON", "BENCH_fig12.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)

"""Section 5.5: correction micro-overheads per error pattern.

The paper measures the cost of the correction step alone: correcting 1D
propagated errors (from Q/K/V) adds ~0.7 % to a step, 0D errors ~0.3 %, and
errors in the larger merged output matrix O ~3.9 %.  The harness reproduces
the same ordering from the correction-kernel cost model and additionally
measures the real cost of the NumPy correction path on this host.
"""

import numpy as np
import pytest

from repro.analysis import format_percent, format_table
from repro.core.checksums import encode_column_checksums
from repro.core.eec_abft import check_columns
from repro.core.thresholds import ABFTThresholds
from repro.models import get_config
from repro.perfmodel import RecoveryCostModel

PAPER = {"0D": 0.003, "1D": 0.007, "O": 0.039}


def modelled_overheads():
    model = RecoveryCostModel(get_config("bert-base", size="paper"), batch_size=8)
    return model.correction_overheads()


def corrected_matrix_pass():
    """The measured callable: a full EEC-ABFT pass repairing a 1R corruption."""
    rng = np.random.default_rng(0)
    matrix = rng.normal(size=(8, 12, 128, 128))
    checksums = encode_column_checksums(matrix)
    matrix[0, 0, 5, :] = np.inf
    report = check_columns(matrix, checksums, ABFTThresholds())
    return report.num_corrected


def test_sec55_correction_overheads(benchmark, report):
    corrected = benchmark(corrected_matrix_pass)
    assert corrected == 128

    overheads = modelled_overheads()
    rows = [
        [pattern, format_percent(overheads[pattern], digits=2), format_percent(PAPER[pattern], digits=1)]
        for pattern in ("0D", "1D", "O")
    ]
    report(format_table(
        ["pattern", "reproduced correction overhead", "paper"],
        rows,
        title="Section 5.5 — correction-only overhead per error pattern (modelled A100)",
    ))
    benchmark.extra_info["section55"] = overheads

    # Ordering and magnitude: 0D <= 1D, O is the most expensive, all are a few
    # percent of a step at most.
    assert overheads["0D"] <= overheads["1D"]
    assert overheads["O"] >= overheads["1D"]
    assert all(v < 0.05 for v in overheads.values())

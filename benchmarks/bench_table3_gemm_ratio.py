"""Table 3: GEMM workload ratio of the attention mechanism.

The paper reports that matrix multiplications account for 99.3-99.7 % of the
attention mechanism's FLOPs across the four evaluated LLMs.  The harness
derives the same ratios from FLOP accounting on the published dimensions.
"""

import pytest

from benchmarks.conftest import MAIN_MODELS
from repro.analysis import format_percent, format_table, gemm_ratio_table


def compute_ratios(batch_size: int = 8):
    return gemm_ratio_table(model_names=MAIN_MODELS, batch_size=batch_size, size="paper")


def test_table3_gemm_workload_ratio(benchmark, report):
    table = benchmark(compute_ratios)

    paper_values = {"bert-base": 0.997, "gpt2": 0.995, "gpt-neo": 0.993, "roberta": 0.997}
    rows = [
        [name, format_percent(table[name].gemm_ratio), format_percent(paper_values[name])]
        for name in MAIN_MODELS
    ]
    report(format_table(
        ["model", "reproduced GEMM ratio", "paper"], rows,
        title="Table 3 — GEMM workload ratio of attention (batch 8, published dims)",
    ))
    benchmark.extra_info["table3"] = {name: table[name].gemm_ratio for name in MAIN_MODELS}

    for name in MAIN_MODELS:
        assert table[name].gemm_ratio > 0.99
        assert abs(table[name].gemm_ratio - paper_values[name]) < 0.01

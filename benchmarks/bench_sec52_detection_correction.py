"""Section 5.2: error detection and correction capability.

Injects one extreme error per protected forward execution into every matrix of
the attention mechanism, for every model family, and verifies the paper's
headline claim: all injected extreme errors are detected and corrected back to
their original values (the protected output equals the fault-free output).
"""

import numpy as np
import pytest

from benchmarks.conftest import MAIN_MODELS, make_batch, make_model
from repro.analysis import format_percent, format_table
from repro.faults import DetectionCorrectionCampaign

MATRICES = ("Q", "K", "V", "AS", "CL", "O")
ERROR_TYPES = ("inf", "nan", "near_inf")


def run_campaign(model_name: str, trials: int = 3):
    model = make_model(model_name)
    batch = make_batch(model, n=4, full_mask=True)
    campaign = DetectionCorrectionCampaign(model, batch, rng=np.random.default_rng(5))
    return campaign.run(matrices=MATRICES, error_types=ERROR_TYPES, trials=trials)


@pytest.mark.parametrize("model_name", MAIN_MODELS)
def test_sec52_all_extreme_errors_detected_and_corrected(benchmark, report, model_name):
    results = benchmark.pedantic(run_campaign, args=(model_name,), rounds=1, iterations=1)

    rows = [
        [r.matrix, r.error_type, r.trials,
         format_percent(r.detection_rate), format_percent(r.correction_rate),
         format_percent(r.recovery_rate)]
        for r in results
    ]
    report(format_table(
        ["matrix", "error", "trials", "detected", "corrected", "output restored"],
        rows,
        title=f"Section 5.2 — detection & correction with ATTNChecker ({model_name}, tiny config)",
    ))
    benchmark.extra_info["all_corrected"] = DetectionCorrectionCampaign.all_corrected(results)

    assert DetectionCorrectionCampaign.all_corrected(results)
    for r in results:
        assert r.recovery_rate == 1.0

"""Figure 10: training overhead with optimised ABFT detection frequencies.

The system soft-error rate is swept over the paper's 13-20 errors per 1e25
FLOPs (from the Llama-3 field report), the greedy optimiser of Algorithm 1
chooses per-section detection frequencies against a fault-coverage target of
one uncovered failure per 1e11 protected executions, and the resulting
per-step training overhead is reported.  The paper's trend: ~0 % at the lowest
rates, rising to ~3.6 % at 20 — always well below the non-adaptive 7 %.

Calibration note (documented in EXPERIMENTS.md): the protected FLOPs per
"execution" aggregate all layers, forward + backward, and the gradient-
accumulation micro-steps of one optimizer step; this places the onset of
non-zero frequencies inside the paper's 13-20 window.
"""

import pytest

from repro.analysis import format_percent, format_table
from repro.core import ErrorRates, OperationVulnerability, optimize_abft_frequencies
from repro.models import get_config
from repro.perfmodel import TrainingStepCostModel

ERROR_RATES = [13, 14, 15, 16, 17, 18, 19, 20]
TARGET_COVERAGE = 1 - 1e-11
FLOPS_MULTIPLIER = 12 * 3 * 8  # layers x (fwd+bwd) x grad-accumulation micro-steps


def run_sweep(batch_size: int = 16):
    config = get_config("bert-base", size="paper")
    vulnerability = OperationVulnerability.from_table4("bert-base")
    step_model = TrainingStepCostModel(config, batch_size=batch_size)
    always_on = step_model.step_overhead(optimized=True)

    points = []
    for rate in ERROR_RATES:
        plan = optimize_abft_frequencies(
            config,
            batch_size=batch_size,
            error_rates=ErrorRates.from_errors_per_1e25_flops(rate),
            vulnerability=vulnerability,
            target_coverage=TARGET_COVERAGE,
            flops_multiplier=FLOPS_MULTIPLIER,
        )
        points.append({
            "rate": rate,
            "frequencies": dict(plan.frequencies),
            "relative": plan.relative_overhead,
            "step_overhead": always_on * plan.relative_overhead,
            "meets_target": plan.meets_target,
        })
    return always_on, points


def test_fig10_adaptive_detection_frequencies(benchmark, report):
    always_on, points = benchmark(run_sweep)

    rows = [
        [p["rate"],
         f"{p['frequencies']['AS']:.2f}", f"{p['frequencies']['CL']:.2f}", f"{p['frequencies']['O']:.2f}",
         format_percent(p["step_overhead"], digits=2),
         "yes" if p["meets_target"] else "no"]
        for p in points
    ]
    report(format_table(
        ["errors / 1e25 flops", "f_AS", "f_CL", "f_O", "per-step overhead", "meets FC target"],
        rows,
        title="Figure 10 — adaptive ABFT detection frequencies "
              f"(non-adaptive per-step overhead: {format_percent(always_on)})",
    ))
    benchmark.extra_info["figure10"] = points

    overheads = [p["step_overhead"] for p in points]
    # Every plan meets the fault-coverage target.
    assert all(p["meets_target"] for p in points)
    # The lowest error rates need no ABFT at all.
    assert overheads[0] == 0.0
    # Overhead is non-decreasing in the error rate and becomes non-zero within
    # the sweep (the onset the figure shows).
    assert overheads == sorted(overheads)
    assert overheads[-1] > 0.0
    # Adaptive overhead always stays below the non-adaptive (always-on) cost.
    assert all(o <= always_on + 1e-12 for o in overheads)

"""Table 2: error-propagation patterns in the attention mechanism.

For each fault-injection matrix (Q, K, V, AS, CL) and error class (INF, NaN,
near-INF), a single 0D fault is injected and the downstream matrices of the
layer are classified (0D / 1R / 1C / 2D, value classes).  The harness prints
one row per (error class, injected matrix) in the paper's cell notation.
"""

import numpy as np
import pytest

from benchmarks.conftest import make_batch, make_model
from repro.analysis import format_table
from repro.faults import PropagationStudy

MATRICES = ("Q", "K", "V", "AS", "CL")
ERROR_TYPES = ("inf", "nan", "near_inf")
DOWNSTREAM = ("Q", "K", "V", "AS", "AP", "CL", "O")


def run_propagation_table(model_name: str = "bert-base", trials: int = 2):
    """Trace every (matrix, error class) pair and keep the most severe pattern."""
    model = make_model(model_name)
    batch = make_batch(model, n=4, full_mask=True)
    study = PropagationStudy(model, batch, rng=np.random.default_rng(1))

    severity = {"-": 0, "0D": 1, "1R": 2, "1C": 2, "2D": 3}

    def rank(cell: str) -> int:
        return severity["-"] if cell == "-" else severity[cell.split("-")[0]]

    def worse(a: str, b: str) -> str:
        return a if rank(a) >= rank(b) else b

    table = {}
    for error_type in ERROR_TYPES:
        for matrix in MATRICES:
            cells = {name: "-" for name in DOWNSTREAM}
            for _ in range(trials):
                result = study.trace(matrix, error_type)
                for name in DOWNSTREAM:
                    cells[name] = worse(cells[name], result.cell(name))
            table[(error_type, matrix)] = cells
    return table


@pytest.mark.parametrize("model_name", ["bert-base"])
def test_table2_error_propagation(benchmark, report, model_name):
    table = benchmark.pedantic(run_propagation_table, args=(model_name,), rounds=1, iterations=1)

    rows = [
        [etype, matrix] + [table[(etype, matrix)][name] for name in DOWNSTREAM]
        for etype in ERROR_TYPES
        for matrix in MATRICES
    ]
    report(format_table(
        ["inject", "into"] + list(DOWNSTREAM), rows,
        title=f"Table 2 — error propagation patterns ({model_name}, tiny config)",
    ))
    benchmark.extra_info["table2"] = {f"{e}:{m}": table[(e, m)] for e, m in table}

    # Shape checks against the paper's Table 2.
    assert table[("inf", "Q")]["AS"].startswith("1R")
    assert table[("inf", "K")]["AS"].startswith("1C")
    assert table[("inf", "K")]["CL"].startswith("2D")
    assert table[("nan", "V")]["CL"].startswith("1C")
    assert table[("nan", "AS")]["O"].startswith("1R")
    assert table[("inf", "CL")]["O"].startswith("1R")
    # Faults never propagate upstream.
    assert table[("inf", "AS")]["Q"] == "-"
    assert table[("nan", "CL")]["AS"] == "-"

"""Protected inference serving: latency/throughput overhead and O(1) decode.

Serves one deterministic request stream twice through the batched serving
engine — protection off, then on (fused engine, immediate verification) — and
measures what protection costs at inference time:

* **Latency / throughput** — p50/p99 request latency and tokens/sec for both
  configurations over identical traffic, plus the wall-clock overhead ratio.
  Fault-free, the protected token stream must be byte-identical to the
  unprotected one (greedy decode; the checksums observe, they do not perturb).
* **O(1) decode checksums** — the incremental KV-cache checksums must make the
  per-token protection cost independent of the cached sequence length.  The
  benchmark counter-verifies this: the checksum GEMM dispatch delta of one
  steady-state decode step is measured at two different cache lengths and both
  must equal ``SectionCostModel.serving_decode_checksum_gemm_dispatches_per_layer()``
  summed over layers.
* **Zero steady-state decode allocations** — after the first (cold) decode
  step the checksum workspace must serve every later step from its arena.

The run emits a machine-readable ``BENCH_serving.json`` artifact (path
overridable via the ``BENCH_SERVING_JSON`` environment variable) that the CI
serving smoke asserts on.
"""

import json
import os

import numpy as np

from benchmarks.conftest import make_model
from repro.core import ATTNChecker, ATTNCheckerConfig, SectionCostModel
from repro.models import build_model
from repro.serving import RequestGenerator, ServingConfig, ServingEngine

#: Request-stream shape served by the overhead comparison (gpt2 tiny has
#: max_seq_len=16, so max prompt 6 + max budget 5 = 11 positions fits).
NUM_REQUESTS = 8
BATCH_SIZE = 4
PROMPT_LEN_RANGE = (3, 6)
NEW_TOKENS_RANGE = (2, 5)
STREAM_SEED = 7


def make_requests(model):
    """The deterministic request stream both serving runs see."""
    return RequestGenerator(
        vocab_size=model.config.vocab_size,
        prompt_len_range=PROMPT_LEN_RANGE,
        new_tokens_range=NEW_TOKENS_RANGE,
        seed=STREAM_SEED,
    ).generate(NUM_REQUESTS)


def serve_once(protected: bool, seed: int = 0):
    """Serve the stream once; returns (report, per-request token lists)."""
    model = build_model("gpt2", size="tiny", rng=np.random.default_rng(seed))
    checker = None
    if protected:
        checker = ATTNChecker(ATTNCheckerConfig(backend="fused"))
        model.set_attention_hooks(checker)
    engine = ServingEngine(
        model, checker=checker, config=ServingConfig(max_batch_size=BATCH_SIZE)
    )
    report = engine.run(make_requests(model))
    if checker is not None:
        checker.close()
    return report, [r.tokens for r in report.results]


def decode_dispatch_counters():
    """Counter-verify the O(1) decode claim on a raw prefill+decode loop.

    Runs a protected prefill, one cold decode step (fills the weight-encoding
    cache and the workspace arena), then measures the checksum GEMM dispatch
    delta of a single decode step at a short and at a long cache length.  Both
    deltas must match the serving cost-model entry, and the workspace must not
    allocate after the cold step.
    """
    model = make_model("gpt2")
    model.eval()
    checker = ATTNChecker(ATTNCheckerConfig(backend="fused"))
    model.set_attention_hooks(checker)
    config = model.config

    batch, prompt_len = 2, 4
    total_len = config.max_seq_len
    rng = np.random.default_rng(11)
    ids = rng.integers(1, config.vocab_size, size=(batch, prompt_len), dtype=np.int64)
    # One mask over the whole padded layout, passed unchanged every step so
    # its identity keys the attention decode-mask cache.
    mask = np.ones((batch, total_len), dtype=np.float64)
    caches = model.new_kv_caches(batch, max_len=total_len)
    model.prefill(ids, mask[:, :prompt_len], caches)

    def step():
        token = rng.integers(1, config.vocab_size, size=(batch, 1), dtype=np.int64)
        model.decode_step(token, caches, attention_mask=mask)

    def measured_step():
        before = checker.dispatch_counts["gemm"]
        step()
        return checker.dispatch_counts["gemm"] - before, int(caches[0].length)

    step()  # cold: encodes W_V / W_O row checksums, fills the workspace
    allocations_after_cold = checker.engine.workspace.allocations
    delta_short, cache_len_short = measured_step()
    while caches[0].length < total_len - 2:
        step()
    delta_long, cache_len_long = measured_step()
    steady_allocations = checker.engine.workspace.allocations - allocations_after_cold

    counters = {
        "per_layer_model": SectionCostModel.serving_decode_checksum_gemm_dispatches_per_layer(),
        "expected_per_step": (
            sum(
                SectionCostModel.serving_decode_checksum_gemm_dispatches_per_layer().values()
            )
            * config.num_layers
        ),
        "delta_short": delta_short,
        "cache_len_short": cache_len_short,
        "delta_long": delta_long,
        "cache_len_long": cache_len_long,
        "steady_state_decode_allocations": steady_allocations,
        "workspace": checker.workspace_stats(),
        "detections": checker.stats.total_detections,
    }
    checker.close()
    return counters


def test_serving_overhead_and_o1_decode_json(benchmark, report):
    """The serving-path claims, counter-verified, plus the JSON artifact.

    Protection on must not change the fault-free token stream, must cost a
    constant number of checksum GEMM dispatches per decoded token regardless
    of cache length, and must not allocate on the steady-state decode path.
    Latency percentiles and throughput for both configurations land in
    ``BENCH_serving.json`` for the CI gate.
    """
    def compare():
        counters = decode_dispatch_counters()
        # Interleave the trials so shared-host drift hits both configurations
        # alike; keep the min floor of three each.
        off_trials, on_trials = [], []
        for _ in range(3):
            off_trials.append(serve_once(protected=False))
            on_trials.append(serve_once(protected=True))
        best_off = min(off_trials, key=lambda pair: pair[0].wall_seconds)
        best_on = min(on_trials, key=lambda pair: pair[0].wall_seconds)
        return counters, best_off, best_on

    counters, (report_off, tokens_off), (report_on, tokens_on) = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )

    # -- hard, deterministic gates -------------------------------------------
    # Fault-free protection must not perturb the greedy token stream.
    assert tokens_on == tokens_off
    assert report_on.num_evicted == 0 and report_off.num_evicted == 0
    assert report_on.checker_stats["detections"] == 0
    assert report_on.checker_stats["checks"] > 0
    # O(1) decode: identical dispatch deltas at two cache lengths, both equal
    # to the cost-model entry; no detections in the fault-free driver.
    assert counters["cache_len_long"] > counters["cache_len_short"]
    assert counters["delta_short"] == counters["expected_per_step"]
    assert counters["delta_long"] == counters["expected_per_step"]
    assert counters["detections"] == 0
    # Zero steady-state decode allocations (the cold step may allocate).
    assert counters["steady_state_decode_allocations"] == 0
    assert counters["workspace"]["reuses"] > 0

    overhead_ratio = report_on.wall_seconds / report_off.wall_seconds
    report(
        "Protected serving (gpt2 tiny, CPU/NumPy, "
        f"{NUM_REQUESTS} requests, batch {BATCH_SIZE}): "
        f"p50 {report_off.latency_percentile_ms(50):.1f} -> "
        f"{report_on.latency_percentile_ms(50):.1f} ms, "
        f"p99 {report_off.latency_percentile_ms(99):.1f} -> "
        f"{report_on.latency_percentile_ms(99):.1f} ms, "
        f"{report_off.tokens_per_second:.0f} -> "
        f"{report_on.tokens_per_second:.0f} tok/s "
        f"(overhead {overhead_ratio:.2f}x); decode checksum dispatches/token "
        f"{counters['delta_short']} at cache len {counters['cache_len_short']} "
        f"and {counters['delta_long']} at {counters['cache_len_long']} "
        f"(model: {counters['expected_per_step']}), steady-state decode "
        f"allocations {counters['steady_state_decode_allocations']}"
    )

    # -- machine-readable artifact -------------------------------------------
    payload = {
        "protection_off": report_off.to_dict(),
        "protection_on": report_on.to_dict(),
        "tokens_identical": tokens_on == tokens_off,
        "overhead_ratio": overhead_ratio,
        "decode_dispatch": counters,
    }
    path = os.environ.get("BENCH_SERVING_JSON", "BENCH_serving.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    report(f"Serving machine-readable artifact written to {path}")
    benchmark.extra_info["serving"] = payload

"""Ablation: why ATTNChecker needs all three protection sections.

DESIGN.md calls out the segmented-protection design choice (Section 4.4 of the
paper): the execution flow is split into S_AS, S_CL and S_O so that any single
fault manifests as at most a 1D pattern at a section boundary, which EEC-ABFT
can correct.  This ablation disables the sections one at a time and measures
which injected faults are still corrected and at what cost:

* with all sections enabled every fault is corrected (the Section-5.2 result);
* disabling a section leaves the faults originating in its operations
  uncorrected (they propagate to the output), even though the remaining
  sections still run — empirically demonstrating that the sectioning is
  load-bearing, not redundant;
* the ABFT time drops roughly in proportion to the disabled section's share,
  which is the trade-off the adaptive frequency optimiser (Figure 10) exploits.
"""

import numpy as np
import pytest

from benchmarks.conftest import make_batch, make_model
from repro.analysis import format_percent, format_table
from repro.core import ATTNChecker, ATTNCheckerConfig
from repro.faults import FaultInjector, FaultSpec
from repro.nn import ComposedHooks

#: Section configurations of the ablation and the faults each one should cover.
CONFIGURATIONS = {
    "all sections": {"AS": 1.0, "CL": 1.0, "O": 1.0},
    "no S_AS": {"AS": 0.0, "CL": 1.0, "O": 1.0},
    "no S_CL": {"AS": 1.0, "CL": 0.0, "O": 1.0},
    "no S_O": {"AS": 1.0, "CL": 1.0, "O": 0.0},
    "S_AS only": {"AS": 1.0, "CL": 0.0, "O": 0.0},
}

#: Fault sites, grouped by the section responsible for them.
FAULTS = {
    "AS": [("Q", "inf"), ("K", "nan"), ("AS", "inf")],
    "CL": [("V", "inf"), ("CL", "nan")],
    "O": [("O", "inf")],
}


def run_ablation(model_name: str = "bert-base", trials: int = 2):
    model = make_model(model_name)
    batch = make_batch(model, n=4, full_mask=True)

    def forward(hooks):
        model.eval()
        model.set_attention_hooks(hooks)
        try:
            out = model(batch["input_ids"], attention_mask=batch["attention_mask"])
        finally:
            model.set_attention_hooks(None)
            model.train()
        return out.logits.data.copy()

    reference = forward(None)
    results = {}
    for label, frequencies in CONFIGURATIONS.items():
        covered = {}
        abft_seconds = 0.0
        for section, faults in FAULTS.items():
            ok = 0
            total = 0
            for matrix, error_type in faults:
                for trial in range(trials):
                    injector = FaultInjector(
                        [FaultSpec(matrix=matrix, error_type=error_type)],
                        rng=np.random.default_rng(100 + trial),
                    )
                    checker = ATTNChecker(ATTNCheckerConfig(frequencies=dict(frequencies)))
                    logits = forward(ComposedHooks([injector, checker]))
                    abft_seconds += checker.overhead_seconds()
                    total += 1
                    if np.allclose(logits, reference, rtol=1e-6, atol=1e-6):
                        ok += 1
            covered[section] = ok / total
        results[label] = {"covered": covered, "abft_seconds": abft_seconds}
    return results


def test_ablation_protection_sections(benchmark, report):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    full_time = results["all sections"]["abft_seconds"]
    rows = []
    for label, entry in results.items():
        covered = entry["covered"]
        rows.append([
            label,
            format_percent(covered["AS"]),
            format_percent(covered["CL"]),
            format_percent(covered["O"]),
            format_percent(entry["abft_seconds"] / full_time if full_time else 0.0, digits=0),
        ])
    report(format_table(
        ["configuration", "S_AS faults recovered", "S_CL faults recovered", "S_O faults recovered", "ABFT time vs full"],
        rows,
        title="Ablation — protection sections (faults grouped by the section that owns them)",
    ))
    benchmark.extra_info["ablation"] = {
        label: entry["covered"] for label, entry in results.items()
    }

    # Full protection covers everything.
    assert all(v == 1.0 for v in results["all sections"]["covered"].values())
    # Removing a section loses coverage for the faults it owns...
    assert results["no S_AS"]["covered"]["AS"] < 1.0
    assert results["no S_CL"]["covered"]["CL"] < 1.0
    assert results["no S_O"]["covered"]["O"] < 1.0
    # ...while the other sections keep covering their own faults.
    assert results["no S_AS"]["covered"]["CL"] == 1.0
    assert results["no S_CL"]["covered"]["AS"] == 1.0
    assert results["no S_O"]["covered"]["AS"] == 1.0
    # Disabling sections reduces ABFT time.
    assert results["S_AS only"]["abft_seconds"] < results["all sections"]["abft_seconds"]

"""Figure 11: per-training-step recovery overhead, checkpoint/restore vs ATTNChecker.

Two reproductions:

* **Modelled A100** — the recovery cost model prices per-step checkpointing
  plus restore-and-re-execute against ATTNChecker's detection + in-place
  correction; the paper reports >200 % for checkpoint/restore vs <10 % for
  ATTNChecker, a 24x-49x reduction.
* **Measured CPU** — real per-step checkpoint save/restore of the tiny models
  on this host (the benchmarked callable) compared against the measured
  ATTNChecker per-step ABFT time, demonstrating the same ordering end to end
  on the actual implementation.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import MAIN_MODELS, make_batch, make_model
from repro.analysis import format_percent, format_table
from repro.core import ATTNChecker
from repro.models import get_config
from repro.perfmodel import RecoveryCostModel
from repro.training import AdamW, CheckpointManager, Trainer, TrainerConfig

#: Overhead-reduction factors reported in Figure 11.
PAPER_IMPROVEMENT = {"bert-base": 32, "gpt2": 34, "gpt-neo": 24, "roberta": 49}


def modelled_comparison():
    return {
        name: RecoveryCostModel(get_config(name, size="paper"), batch_size=8).compare()
        for name in MAIN_MODELS
    }


def measured_cpu_comparison(model_name: str = "bert-base", tmp_dir: str = None):
    """Measured on this host: CR = save+load+re-execute; ATTN = ABFT time."""
    model = make_model(model_name)
    batch = make_batch(model, n=8)
    checker = ATTNChecker()
    trainer = Trainer(model, config=TrainerConfig(learning_rate=1e-3), checker=checker)
    trainer.train_step(batch)  # warm-up
    step = trainer.train_step(batch)

    manager = CheckpointManager(directory=tmp_dir)
    optimizer = AdamW(model.parameters(), lr=1e-3)
    start = time.perf_counter()
    manager.save(1, model, optimizer)
    manager.restore(model, optimizer)
    ckpt_seconds = time.perf_counter() - start

    cr_overhead = (ckpt_seconds + step.step_seconds) / step.step_seconds
    attn_overhead = step.abft_seconds / step.step_seconds
    return cr_overhead, attn_overhead


def test_fig11_recovery_overhead_modelled(benchmark, report):
    table = benchmark(modelled_comparison)

    rows = [
        [name,
         format_percent(table[name].checkpoint_restore_overhead, digits=0),
         format_percent(table[name].attnchecker_overhead),
         f"{table[name].improvement:.0f}x",
         f"{PAPER_IMPROVEMENT[name]}x"]
        for name in MAIN_MODELS
    ]
    report(format_table(
        ["model", "checkpoint/restore", "ATTNChecker", "reduction", "paper"],
        rows,
        title="Figure 11 — per-step recovery overhead (modelled A100)",
    ))
    benchmark.extra_info["figure11"] = {
        name: {
            "cr": table[name].checkpoint_restore_overhead,
            "attn": table[name].attnchecker_overhead,
            "improvement": table[name].improvement,
        }
        for name in MAIN_MODELS
    }

    for name in MAIN_MODELS:
        comparison = table[name]
        # Checkpoint/restore costs multiple steps per recovery (paper: >200 %).
        assert comparison.checkpoint_restore_overhead > 2.0
        # ATTNChecker recovery stays around the paper's <10 % regime.
        assert comparison.attnchecker_overhead < 0.15
        # The reduction factor is tens of x, the paper's headline claim.
        assert comparison.improvement > 20.0


def test_fig11_recovery_overhead_measured_cpu(benchmark, report, tmp_path):
    cr, attn = benchmark.pedantic(
        measured_cpu_comparison, kwargs={"tmp_dir": str(tmp_path)}, rounds=1, iterations=1
    )
    report(
        "Figure 11 (measured, CPU/NumPy, bert-base tiny): "
        f"checkpoint/restore recovery = {format_percent(cr, digits=0)} of a step, "
        f"ATTNChecker ABFT time = {format_percent(attn)} of a step, "
        f"reduction = {cr / max(attn, 1e-9):.0f}x"
    )
    benchmark.extra_info["measured_cr"] = cr
    benchmark.extra_info["measured_attn"] = attn
    assert cr > 1.0          # restoring always costs at least the re-executed step
    assert attn < cr          # ATTNChecker recovery is cheaper than checkpoint/restore

"""Overlapped vs non-overlapped protected gradient all-reduce.

Measures the end-to-end training-step time of :class:`DataParallelTrainer`
on the thread executor with ``overlap_grad_reduce`` off and on, for
W ∈ {1, 2, 4} ranks.  The overlapped path launches each gradient bucket's
checksum-protected ``contribute`` from inside backward the moment the
bucket's last gradient accumulates, with the last rank folding eagerly, so
reduction work hides behind the remaining backprop instead of serialising
after it.

Hard gates (the run fails if they break):

* overlapped and non-overlapped training produce byte-identical weights,
  both equal to the phase-split serial reference;
* the collective checksum dispatch counters match the bucket-aware
  ``SectionCostModel.collective_checksum_dispatches_per_step`` exactly;
* on hosts with at least two CPUs, the best overlapped step time across the
  sweep is strictly below the best non-overlapped step time (interleaved
  min-of-repeats, so scheduler noise hits both arms alike).

The speedup gate is conditional on real parallel hardware because on a
single-CPU host there is, by construction, no idle core for the in-backward
reductions to run on — wall-clock overlap is physically impossible there and
only the bucketed path's dispatch savings show up.  Single-CPU runs record
the measured ratios (with ``"single_cpu_host": true``) instead of asserting
them, the same record-don't-gate treatment the Figure-12 harness gives
wall-clock efficiencies on shared hosts.

Results land in ``BENCH_overlap.json`` (path overridable via
``BENCH_OVERLAP_JSON``).
"""

import json
import os
import time

import numpy as np

from repro.analysis import format_percent, format_table
from repro.core import SectionCostModel
from repro.training import DataParallelConfig, DataParallelTrainer, ReplicaSpec

WORKERS = (1, 2, 4)
SHARDS = 4
GLOBAL_BATCH = 8
BUCKET_CAP_MB = 0.2
WARMUP_STEPS = 1
MEASURED_STEPS = 2
#: Interleaved repeats per arm; min-of-repeats filters one-off scheduler hits.
REPEATS = 3


def _batch(seed: int, batch: int = GLOBAL_BATCH, seq: int = 10, vocab: int = 100):
    rng = np.random.default_rng(seed)
    return {
        "input_ids": rng.integers(0, vocab, size=(batch, seq)),
        "attention_mask": np.ones((batch, seq), dtype=np.int64),
        "labels": rng.integers(0, 2, size=(batch,)),
    }


BATCHES = [_batch(300 + i) for i in range(WARMUP_STEPS + MEASURED_STEPS)]


def _states_equal(a, b):
    return set(a) == set(b) and all(
        np.array_equal(np.asarray(a[k]), np.asarray(b[k])) for k in a
    )


def _run_once(workers: int, overlap: bool):
    config = DataParallelConfig(
        workers=workers,
        shards=SHARDS,
        executor="thread",
        overlap_grad_reduce=overlap,
        bucket_cap_mb=BUCKET_CAP_MB,
    )
    trainer = DataParallelTrainer(
        model_spec=ReplicaSpec(name="bert-base", size="tiny", seed=7, num_labels=2),
        config=config,
    )
    try:
        results = []
        for batch in BATCHES[:WARMUP_STEPS]:
            trainer.train_step(batch)
        begin = time.perf_counter()
        for batch in BATCHES[WARMUP_STEPS:]:
            results.append(trainer.train_step(batch))
        step_seconds = (time.perf_counter() - begin) / MEASURED_STEPS
        return {
            "step_seconds": step_seconds,
            "state": trainer.state_dict(),
            "num_params": len(trainer.runners[0].params),
            "buckets": results[-1].buckets,
            "overlap_efficiency": results[-1].overlap_efficiency,
            "collective_counters": trainer.collective_counters(),
            "bucket_counters": trainer.bucket_counters(),
            "total_steps": WARMUP_STEPS + MEASURED_STEPS,
        }
    finally:
        trainer.close()


def run_sweep():
    """Interleave the two arms repeat-by-repeat and keep the best of each."""
    points = []
    for workers in WORKERS:
        plain = overlapped = None
        for _ in range(REPEATS):
            for overlap in (False, True):
                run = _run_once(workers, overlap)
                best = overlapped if overlap else plain
                if best is None or run["step_seconds"] < best["step_seconds"]:
                    if overlap:
                        overlapped = run
                    else:
                        plain = run
        points.append({"workers": workers, "plain": plain, "overlapped": overlapped})
    return points


def _serial_reference():
    config = DataParallelConfig(workers=1, shards=SHARDS, executor="serial")
    trainer = DataParallelTrainer(
        model_spec=ReplicaSpec(name="bert-base", size="tiny", seed=7, num_labels=2),
        config=config,
    )
    try:
        for batch in BATCHES:
            trainer.train_step(batch)
        return trainer.state_dict()
    finally:
        trainer.close()


def test_overlap_speedup(benchmark, report):
    points = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    reference = _serial_reference()

    # Hard gate 1: both arms train byte-identical weights at every worker
    # count, all equal to the phase-split serial reference.
    byte_identical = all(
        _states_equal(reference, p[arm]["state"])
        for p in points
        for arm in ("plain", "overlapped")
    )
    assert byte_identical

    # Hard gate 2: bucket dispatch counters match the bucket-aware cost model
    # exactly — one encode per bucket (plus the loss slot) per rank, one
    # verify per bucket plus loss, per step.
    for p in points:
        run = p["overlapped"]
        per_step = SectionCostModel.collective_checksum_dispatches_per_step(
            num_gradients=run["num_params"] + 1,
            world_size=SHARDS,
            num_buckets=run["buckets"],
        )
        counters = run["collective_counters"]
        assert counters["checksum_encodes"] == per_step["encode"] * run["total_steps"]
        assert counters["checksum_verifies"] == per_step["verify"] * run["total_steps"]
        assert counters["mismatches"] == 0
        launches = run["bucket_counters"]["bucket_launches"]
        assert launches == run["buckets"] * SHARDS * run["total_steps"]
    counters_match = True

    # Hard gate 3 (multi-CPU hosts): overlapping pays.  Compare the best step
    # time of each arm across the whole sweep; per-worker ratios are recorded
    # below.  See the module docstring for why a single-CPU host records the
    # ratio instead of asserting it.
    best_plain = min(p["plain"]["step_seconds"] for p in points)
    best_overlapped = min(p["overlapped"]["step_seconds"] for p in points)
    single_cpu = (os.cpu_count() or 1) < 2
    if not single_cpu:
        assert best_overlapped < best_plain

    rows = []
    for p in points:
        plain, over = p["plain"], p["overlapped"]
        speedup = plain["step_seconds"] / over["step_seconds"]
        rows.append({
            "workers": p["workers"],
            "buckets": over["buckets"],
            "plain_step_seconds": plain["step_seconds"],
            "overlapped_step_seconds": over["step_seconds"],
            "speedup": speedup,
            "overlap_efficiency": over["overlap_efficiency"],
        })

    report(format_table(
        ["workers", "buckets", "plain (ms)", "overlapped (ms)", "speedup",
         "overlap efficiency"],
        [[r["workers"], r["buckets"],
          f"{r['plain_step_seconds'] * 1e3:.1f}",
          f"{r['overlapped_step_seconds'] * 1e3:.1f}",
          f"{r['speedup']:.2f}x",
          format_percent(r["overlap_efficiency"], digits=1)]
         for r in rows],
        title="Overlapped vs non-overlapped protected gradient all-reduce "
              f"(thread executor, {SHARDS} shards, {BUCKET_CAP_MB} MB buckets)",
    ))

    payload = {
        "figure": "overlap",
        "model": "bert-base/tiny",
        "shards": SHARDS,
        "bucket_cap_mb": BUCKET_CAP_MB,
        "measured_steps": MEASURED_STEPS,
        "repeats": REPEATS,
        "sweep": rows,
        "best_plain_step_seconds": best_plain,
        "best_overlapped_step_seconds": best_overlapped,
        "overlapped_strictly_faster": best_overlapped < best_plain,
        "single_cpu_host": single_cpu,
        "speedup_gate_enforced": not single_cpu,
        "byte_identical": byte_identical,
        "counters_match_cost_model": counters_match,
    }
    benchmark.extra_info["overlap"] = payload
    path = os.environ.get("BENCH_OVERLAP_JSON", "BENCH_overlap.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)

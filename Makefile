# Local developer entry points.  CI's static-analysis job runs the exact
# same commands, so a green `make lint` locally is a green gate in CI.

PYTHONPATH := tools:src

.PHONY: test lint reprolint ruff mypy baseline bench

test:
	PYTHONPATH=src python -m pytest -x -q

# Run every benchmarks/bench_*.py harness and merge their BENCH_*.json
# artifacts into BENCH_summary.json (run_all.py sets the subprocess paths).
bench:
	python benchmarks/run_all.py

# Full static-analysis gate: project invariants first, generic lint after.
# ruff/mypy are optional locally (CI pins ruff==0.6.9, mypy==1.11.2); the
# reprolint gate always runs.
lint: reprolint
	@command -v ruff >/dev/null 2>&1 && ruff check src tools || echo "ruff not installed locally; CI runs ruff==0.6.9"
	@command -v mypy >/dev/null 2>&1 && mypy src/repro/backend src/repro/utils || echo "mypy not installed locally; CI runs mypy==1.11.2"

reprolint:
	PYTHONPATH=$(PYTHONPATH) python -m reprolint src/repro

ruff:
	ruff check src tools

mypy:
	mypy src/repro/backend src/repro/utils

# Regenerate the committed baseline (new entries get a TODO reason that must
# be replaced with a reviewed justification before committing).
baseline:
	PYTHONPATH=$(PYTHONPATH) python -m reprolint --write-baseline src/repro

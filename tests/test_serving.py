"""Tests for the protected inference serving path.

Covers the serving workload generator, the batched serving engine, the
equivalence campaign (fault-free protected decode byte-identical to
unprotected; per-GEMM / fused / fused+async agree on detection decisions),
per-request fault isolation (repair and eviction), and the O(1)-per-token
decode checksum dispatch counters against the serving cost-model entry.
"""

import numpy as np
import pytest

from repro.core import (
    VERIFICATION_MODE_CONFIGS,
    ATTNChecker,
    ATTNCheckerConfig,
    SectionCostModel,
)
from repro.faults import FaultInjector, FaultSpec
from repro.models import build_model
from repro.nn import ComposedHooks
from repro.serving import (
    RequestGenerator,
    ServingConfig,
    ServingEngine,
    ServingRequest,
)


def make_gpt2(seed: int = 0):
    model = build_model("gpt2", size="tiny", rng=np.random.default_rng(seed))
    model.eval()
    return model


def make_requests(model, num_requests: int = 4, seed: int = 5):
    return RequestGenerator(
        vocab_size=model.config.vocab_size,
        prompt_len_range=(3, 6),
        new_tokens_range=(3, 5),
        seed=seed,
    ).generate(num_requests)


def serve(model, requests, checker=None, injector=None, batch_size: int = 4,
          evict_uncorrected: bool = True):
    engine = ServingEngine(
        model,
        checker=checker,
        injector=injector,
        config=ServingConfig(
            max_batch_size=batch_size, evict_uncorrected=evict_uncorrected
        ),
    )
    return engine.run(requests)


class TestWorkload:
    def test_same_seed_same_stream(self):
        a = RequestGenerator(vocab_size=100, seed=3).generate(6)
        b = RequestGenerator(vocab_size=100, seed=3).generate(6)
        assert a == b

    def test_different_seed_different_stream(self):
        a = RequestGenerator(vocab_size=100, seed=3).generate(6)
        b = RequestGenerator(vocab_size=100, seed=4).generate(6)
        assert a != b

    def test_prompt_tokens_avoid_pad_id(self):
        requests = RequestGenerator(vocab_size=5, prompt_len_range=(8, 8), seed=0).generate(4)
        for request in requests:
            assert min(request.prompt) >= 1
            assert max(request.prompt) < 5

    def test_ranges_respected(self):
        requests = RequestGenerator(
            vocab_size=100, prompt_len_range=(2, 4), new_tokens_range=(1, 3), seed=1
        ).generate(20)
        assert all(2 <= r.prompt_len <= 4 for r in requests)
        assert all(1 <= r.max_new_tokens <= 3 for r in requests)

    def test_invalid_args_raise(self):
        with pytest.raises(ValueError):
            RequestGenerator(vocab_size=1)
        with pytest.raises(ValueError):
            RequestGenerator(vocab_size=100, prompt_len_range=(0, 3))
        with pytest.raises(ValueError):
            ServingRequest(request_id=0, prompt=(), max_new_tokens=2)
        with pytest.raises(ValueError):
            ServingRequest(request_id=0, prompt=(1,), max_new_tokens=0)


class TestDecodeEquivalence:
    """KV-cached decode must reproduce the full forward pass."""

    @pytest.mark.parametrize("name", ["gpt2", "gpt-neo"])
    def test_prefill_plus_decode_matches_full_forward(self, name):
        model = build_model(name, size="tiny", rng=np.random.default_rng(0))
        model.eval()
        config = model.config
        rng = np.random.default_rng(2)
        total_len = 8
        ids = rng.integers(1, config.vocab_size, size=(2, total_len), dtype=np.int64)
        mask = np.ones((2, total_len), dtype=np.float64)

        caches = model.new_kv_caches(2, max_len=total_len)
        hidden = model.prefill(ids[:, :4], mask[:, :4], caches)
        steps = [np.asarray(hidden.data[:, -1, :])]
        for t in range(4, total_len):
            hidden = model.decode_step(ids[:, t : t + 1], caches, attention_mask=mask)
            steps.append(np.asarray(hidden.data[:, 0, :]))

        full = np.asarray(model.encode(ids, mask).data)
        for offset, step_hidden in enumerate(steps):
            np.testing.assert_allclose(
                step_hidden, full[:, 3 + offset, :], rtol=0.0, atol=1e-12
            )

    def test_decode_respects_left_padding(self):
        # A left-padded prefill and an unpadded prefill of the same suffix
        # must decode different tokens only through position embeddings —
        # the padded positions themselves must not leak into attention.
        model = make_gpt2()
        config = model.config
        rng = np.random.default_rng(3)
        prompt = rng.integers(1, config.vocab_size, size=(1, 3), dtype=np.int64)
        padded_ids = np.concatenate([np.zeros((1, 2), dtype=np.int64), prompt], axis=1)
        mask = np.ones((1, 8), dtype=np.float64)
        mask[0, :2] = 0.0
        caches = model.new_kv_caches(1, max_len=8)
        hidden = model.prefill(padded_ids, mask[:, :5], caches)
        assert np.isfinite(np.asarray(hidden.data)).all()
        hidden = model.decode_step(
            np.asarray([[7]], dtype=np.int64), caches, attention_mask=mask
        )
        assert np.isfinite(np.asarray(hidden.data)).all()


class TestFaultFreeServing:
    """Fault-free protection must not perturb the served token stream."""

    @pytest.mark.parametrize("backend", ["fused", "per_gemm"])
    def test_protected_tokens_byte_identical(self, backend):
        requests_model = make_gpt2()
        baseline = serve(requests_model, make_requests(requests_model))

        model = make_gpt2()
        checker = ATTNChecker(ATTNCheckerConfig(backend=backend))
        model.set_attention_hooks(checker)
        protected = serve(model, make_requests(model), checker=checker)
        checker.close()

        assert [r.tokens for r in protected.results] == [
            r.tokens for r in baseline.results
        ]
        assert protected.num_evicted == 0
        assert protected.checker_stats["detections"] == 0
        assert protected.checker_stats["checks"] > 0

    @pytest.mark.parametrize("mode", sorted(VERIFICATION_MODE_CONFIGS))
    def test_verification_modes_serve_identically(self, mode):
        requests_model = make_gpt2()
        baseline = serve(requests_model, make_requests(requests_model))

        model = make_gpt2()
        checker = ATTNChecker(
            ATTNCheckerConfig(backend="fused", **VERIFICATION_MODE_CONFIGS[mode])
        )
        model.set_attention_hooks(checker)
        protected = serve(model, make_requests(model), checker=checker)
        checker.close()

        assert [r.tokens for r in protected.results] == [
            r.tokens for r in baseline.results
        ]
        assert protected.checker_stats["detections"] == 0

    def test_serving_timer_keys_present(self):
        model = make_gpt2()
        checker = ATTNChecker(ATTNCheckerConfig(backend="fused"))
        model.set_attention_hooks(checker)
        engine = ServingEngine(model, checker=checker)
        engine.run(make_requests(model))
        checker.close()
        keys = set(engine.timers.as_dict())
        assert {"serve/schedule", "serve/prefill", "serve/decode", "serve/verify"} <= keys


class TestFaultIsolation:
    """A corrupted request is repaired or evicted without touching batch-mates."""

    FAULT = dict(matrix="AS", layer_index=0, position=(1, 0, 0, 0))
    #: Four INFs forming a 2x2 block in request 1's first-head scores: every
    #: touched row and column holds two extreme errors, so both checksum
    #: passes abort (case 4) — a genuinely uncorrectable corruption.
    ABORT_BLOCK = [(1, 0, 1, 1), (1, 0, 1, 2), (1, 0, 2, 1), (1, 0, 2, 2)]

    def _specs(self, error_type):
        if error_type == "abort":
            return [
                FaultSpec(matrix="AS", error_type="inf", layer_index=0, position=p)
                for p in self.ABORT_BLOCK
            ]
        if error_type == "abort_numeric":
            # Same uncorrectable block but with finite deltas: the checksums
            # abort, yet nothing propagates to non-finite logits.
            return [
                FaultSpec(
                    matrix="AS", error_type="numeric", numeric_delta=100.0,
                    layer_index=0, position=p,
                )
                for p in self.ABORT_BLOCK
            ]
        return [FaultSpec(error_type=error_type, **self.FAULT)]

    def _serve_with_fault(self, error_type, backend="fused", mode="immediate",
                          evict_uncorrected=True):
        model = make_gpt2()
        checker = ATTNChecker(
            ATTNCheckerConfig(backend=backend, **VERIFICATION_MODE_CONFIGS[mode])
        )
        injector = FaultInjector(
            self._specs(error_type), rng=np.random.default_rng(0), enabled=False
        )
        model.set_attention_hooks(ComposedHooks([injector, checker]))
        injector.arm()
        report = serve(
            model,
            make_requests(model, num_requests=3),
            checker=checker,
            injector=injector,
            batch_size=3,
            evict_uncorrected=evict_uncorrected,
        )
        checker.close()
        return report

    @pytest.fixture(scope="class")
    def clean_tokens(self):
        model = make_gpt2()
        report = serve(model, make_requests(model, num_requests=3), batch_size=3)
        return [r.tokens for r in report.results]

    @pytest.mark.parametrize("backend", ["fused", "per_gemm"])
    def test_corrected_fault_is_repaired_in_place(self, backend, clean_tokens):
        report = self._serve_with_fault("near_inf", backend=backend)
        assert report.checker_stats["detections"] >= 1
        assert report.checker_stats["corrections"] >= 1
        assert report.num_evicted == 0
        # The repair is attributed to the corrupted request only.
        repaired = [r.repaired_detections for r in report.results]
        assert repaired[1] >= 1
        assert repaired[0] == 0 and repaired[2] == 0
        # Fully repaired: every request's tokens match the clean run.
        assert [r.tokens for r in report.results] == clean_tokens

    @pytest.mark.parametrize("backend", ["fused", "per_gemm"])
    def test_uncorrectable_fault_evicts_only_dirty_request(self, backend, clean_tokens):
        report = self._serve_with_fault("abort", backend=backend)
        assert report.checker_stats["detections"] >= 1
        statuses = [r.status for r in report.results]
        assert statuses[1] == "evicted"
        assert statuses[0] == "completed" and statuses[2] == "completed"
        # Batch-mates are unaffected by the eviction.
        tokens = [r.tokens for r in report.results]
        assert tokens[0] == clean_tokens[0]
        assert tokens[2] == clean_tokens[2]

    def test_detection_only_mode_counts_without_evicting(self):
        report = self._serve_with_fault("abort_numeric", evict_uncorrected=False)
        assert report.checker_stats["detections"] >= 1
        assert report.num_evicted == 0

    def test_unprotected_nonfinite_logits_evict(self, clean_tokens):
        # Without a checker the engine's last line of defence is the logits
        # finiteness check: the poisoned request is evicted, mates keep going.
        model = make_gpt2()
        spec = FaultSpec(error_type="inf", **self.FAULT)
        injector = FaultInjector([spec], rng=np.random.default_rng(0), enabled=False)
        model.set_attention_hooks(injector)
        injector.arm()
        report = serve(
            model, make_requests(model, num_requests=3), injector=injector, batch_size=3
        )
        model.set_attention_hooks(None)
        statuses = [r.status for r in report.results]
        assert statuses[1] == "evicted"
        assert statuses[0] == "completed" and statuses[2] == "completed"
        tokens = [r.tokens for r in report.results]
        assert tokens[0] == clean_tokens[0]
        assert tokens[2] == clean_tokens[2]

    def test_per_gemm_agrees_with_fused_on_detection_decisions(self, clean_tokens):
        reference = self._serve_with_fault("near_inf", backend="fused")
        other = self._serve_with_fault("near_inf", backend="per_gemm")
        assert [r.status for r in other.results] == [
            r.status for r in reference.results
        ]
        assert [r.tokens for r in other.results] == [
            r.tokens for r in reference.results
        ]
        assert [r.repaired_detections > 0 for r in other.results] == [
            r.repaired_detections > 0 for r in reference.results
        ]
        assert (
            other.checker_stats["detections"] == reference.checker_stats["detections"]
        )
        assert (
            other.checker_stats["corrections"] == reference.checker_stats["corrections"]
        )

    def test_async_mode_detects_same_fault_but_evicts(self, clean_tokens):
        # Async verification detects the same corruption and attributes it to
        # the same request, but it runs after the boundary's values were
        # consumed — repair comes too late, so the dirty request is evicted
        # rather than repaired in place.  Batch-mates are still untouched.
        immediate = self._serve_with_fault("near_inf", mode="immediate")
        deferred = self._serve_with_fault("near_inf", mode="async")
        assert (
            deferred.checker_stats["detections"]
            >= immediate.checker_stats["detections"]
            >= 1
        )
        statuses = [r.status for r in deferred.results]
        assert statuses[1] == "evicted"
        assert statuses[0] == "completed" and statuses[2] == "completed"
        tokens = [r.tokens for r in deferred.results]
        assert tokens[0] == clean_tokens[0]
        assert tokens[2] == clean_tokens[2]


class TestDecodeDispatchCounters:
    """The O(1)-per-token claim, counter-verified against the cost model."""

    def test_serving_cost_model_entries(self):
        steady = SectionCostModel.serving_decode_checksum_gemm_dispatches_per_layer()
        cold = SectionCostModel.serving_decode_checksum_gemm_dispatches_per_layer(
            steady_state=False
        )
        assert steady == {"AS": 2, "CL": 2, "O": 1}
        assert cold == {"AS": 2, "CL": 3, "O": 2}

    def test_steady_state_decode_dispatches_constant_in_cache_length(self):
        model = make_gpt2()
        checker = ATTNChecker(ATTNCheckerConfig(backend="fused"))
        model.set_attention_hooks(checker)
        config = model.config
        rng = np.random.default_rng(7)
        total_len = config.max_seq_len
        ids = rng.integers(1, config.vocab_size, size=(2, 4), dtype=np.int64)
        mask = np.ones((2, total_len), dtype=np.float64)
        caches = model.new_kv_caches(2, max_len=total_len)
        model.prefill(ids, mask[:, :4], caches)

        def decode_delta():
            before = checker.dispatch_counts["gemm"]
            token = rng.integers(1, config.vocab_size, size=(2, 1), dtype=np.int64)
            model.decode_step(token, caches, attention_mask=mask)
            return checker.dispatch_counts["gemm"] - before

        cold = sum(
            SectionCostModel.serving_decode_checksum_gemm_dispatches_per_layer(
                steady_state=False
            ).values()
        )
        steady = sum(
            SectionCostModel.serving_decode_checksum_gemm_dispatches_per_layer().values()
        )
        # The first decode step pays cold weight-encoding work the protected
        # prefill has not already cached — more than steady state, bounded by
        # the cost model's fully-cold entry.
        first = decode_delta()
        assert steady * config.num_layers < first <= cold * config.num_layers
        workspace = checker.engine.workspace
        allocations_after_cold = workspace.allocations
        deltas = []
        while caches[0].length < total_len:
            deltas.append(decode_delta())
        checker.close()
        # Constant dispatch count at every cache length, matching the model.
        assert deltas == [steady * config.num_layers] * len(deltas)
        # Zero steady-state decode allocations from the workspace arena.
        assert workspace.allocations == allocations_after_cold


class TestSlotCompaction:
    """Dead slots stop stepping: decode cost tracks live requests."""

    BUDGETS = (6, 2, 2, 2)

    def _mixed_requests(self, model, budgets=BUDGETS, seed=11):
        rng = np.random.default_rng(seed)
        return [
            ServingRequest(
                request_id=i,
                prompt=tuple(
                    int(t) for t in rng.integers(1, model.config.vocab_size, size=4)
                ),
                max_new_tokens=budget,
            )
            for i, budget in enumerate(budgets)
        ]

    def _serve_counted(self, model, requests, checker=None, injector=None,
                       batch_size=4):
        engine = ServingEngine(
            model, checker=checker, injector=injector,
            config=ServingConfig(max_batch_size=batch_size),
        )
        return engine.run(requests)

    def test_decode_cost_tracks_live_requests(self):
        model = make_gpt2()
        report = self._serve_counted(model, self._mixed_requests(model))
        # Budget 6 drives 5 decode iterations.  All four slots step on the
        # first; the three budget-2 requests then complete, and the rest of
        # the decode runs at the two-slot floor instead of the full batch.
        assert report.decode_steps == 5
        assert report.decode_slot_steps == 4 + 2 * 4
        assert report.decode_slot_steps < report.decode_steps * len(self.BUDGETS)
        assert report.num_completed == len(self.BUDGETS)
        assert [r.num_tokens for r in report.results] == list(self.BUDGETS)

    def test_compaction_preserves_surviving_token_stream(self):
        # The bitwise guarantee behind the two-slot floor: the survivor's
        # tokens must match the run where nothing ever left the batch.
        model = make_gpt2()
        mixed = self._serve_counted(model, self._mixed_requests(model))
        uniform = self._serve_counted(
            model, self._mixed_requests(model, budgets=(6, 6, 6, 6))
        )
        assert uniform.decode_slot_steps == uniform.decode_steps * 4
        assert mixed.results[0].tokens == uniform.results[0].tokens

    def test_protected_compaction_matches_unprotected(self):
        baseline_model = make_gpt2()
        baseline = self._serve_counted(
            baseline_model, self._mixed_requests(baseline_model)
        )
        model = make_gpt2()
        checker = ATTNChecker(ATTNCheckerConfig(backend="fused"))
        model.set_attention_hooks(checker)
        protected = self._serve_counted(
            model, self._mixed_requests(model), checker=checker
        )
        checker.close()
        # The checksum side-state compacts with the slots: same schedule,
        # same tokens, no spurious detections.
        assert protected.decode_slot_steps == baseline.decode_slot_steps
        assert [r.tokens for r in protected.results] == [
            r.tokens for r in baseline.results
        ]
        assert protected.checker_stats["detections"] == 0

    def test_async_mode_keeps_full_width(self):
        # Async dirty masks drain late with historical batch widths, so the
        # engine must not compact under async verification.
        model = make_gpt2()
        checker = ATTNChecker(
            ATTNCheckerConfig(backend="fused", **VERIFICATION_MODE_CONFIGS["async"])
        )
        model.set_attention_hooks(checker)
        report = self._serve_counted(model, self._mixed_requests(model), checker=checker)
        checker.close()
        assert report.decode_slot_steps == report.decode_steps * len(self.BUDGETS)

    def test_eviction_stops_dead_slot_stepping(self):
        # An evicted slot leaves the physical batch: with three requests and
        # one eviction at prefill, every decode iteration runs two slots.
        model = make_gpt2()
        spec = FaultSpec(
            matrix="AS", error_type="inf", layer_index=0, position=(1, 0, 0, 0)
        )
        injector = FaultInjector([spec], rng=np.random.default_rng(0), enabled=False)
        model.set_attention_hooks(injector)
        injector.arm()
        report = self._serve_counted(
            model, make_requests(model, num_requests=3), batch_size=3,
            injector=injector,
        )
        model.set_attention_hooks(None)
        assert report.num_evicted == 1
        assert report.decode_slot_steps == report.decode_steps * 2

    def test_report_dict_exposes_counters(self):
        model = make_gpt2()
        report = self._serve_counted(model, self._mixed_requests(model))
        payload = report.to_dict()
        assert payload["decode_steps"] == report.decode_steps
        assert payload["decode_slot_steps"] == report.decode_slot_steps

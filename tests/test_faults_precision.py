"""Unit tests for the training-precision simulation hooks."""

import numpy as np
import pytest

from repro.core import ATTNChecker
from repro.faults import (
    FaultInjector,
    FaultSpec,
    PRECISION_FORMATS,
    PrecisionSimulationHooks,
    PropagationStudy,
    VulnerabilityStudy,
)
from repro.faults.precision import simulate_precision
from repro.models import build_model
from repro.nn import ComposedHooks, MultiHeadAttention, RecordingHooks
from repro.tensor.autograd import Tensor


@pytest.fixture
def rng():
    return np.random.default_rng(61)


@pytest.fixture
def attention(rng):
    return MultiHeadAttention(hidden_size=16, num_heads=4, dropout_p=0.0, rng=rng)


class TestSimulatePrecision:
    def test_float32_quantises_mantissa(self):
        values = np.array([1.0 + 1e-12, 2.0])
        out = simulate_precision(values.copy(), PRECISION_FORMATS["float32"])
        assert out[0] == np.float64(np.float32(1.0 + 1e-12))
        assert out.dtype == np.float64

    def test_float32_overflows_to_inf(self):
        values = np.array([1e39, -1e39, 1.0])
        out = simulate_precision(values.copy(), PRECISION_FORMATS["float32"])
        assert np.isposinf(out[0]) and np.isneginf(out[1]) and out[2] == 1.0

    def test_float16_overflow_threshold(self):
        values = np.array([70000.0, 60000.0])
        out = simulate_precision(values.copy(), PRECISION_FORMATS["float16"])
        assert np.isinf(out[0])
        assert np.isfinite(out[1])

    def test_bfloat16_keeps_fp32_range(self):
        values = np.array([1e38])
        out = simulate_precision(values.copy(), PRECISION_FORMATS["bfloat16"])
        assert np.isfinite(out[0])

    def test_nan_propagates(self):
        values = np.array([np.nan])
        out = simulate_precision(values.copy(), PRECISION_FORMATS["float32"])
        assert np.isnan(out[0])

    def test_float64_passthrough(self):
        values = np.array([1e200, -3.5])
        out = simulate_precision(values.copy(), PRECISION_FORMATS["float64"])
        assert np.array_equal(out, values)

    def test_in_place_semantics(self):
        values = np.array([1e39])
        returned = simulate_precision(values, PRECISION_FORMATS["float32"])
        assert returned is values
        assert np.isinf(values[0])


class TestPrecisionHooks:
    def test_unknown_format_rejected(self):
        with pytest.raises(KeyError):
            PrecisionSimulationHooks("int8")

    def test_processes_all_six_gemms(self, attention, rng):
        hooks = PrecisionSimulationHooks("float32")
        attention.set_hooks(hooks)
        attention(Tensor(rng.normal(size=(1, 4, 16))))
        attention.set_hooks(None)
        assert hooks.gemm_outputs_processed == 6

    def test_float64_format_is_identity(self, attention, rng):
        x = rng.normal(size=(1, 5, 16))
        attention.eval()
        attention.set_hooks(None)
        reference = attention(Tensor(x)).data.copy()
        attention.set_hooks(PrecisionSimulationHooks("float64"))
        out = attention(Tensor(x)).data.copy()
        attention.set_hooks(None)
        assert np.array_equal(out, reference)

    def test_float32_changes_results_only_at_rounding_level(self, attention, rng):
        x = rng.normal(size=(1, 5, 16))
        attention.eval()
        reference = attention(Tensor(x)).data.copy()
        attention.set_hooks(PrecisionSimulationHooks("float32"))
        out = attention(Tensor(x)).data.copy()
        attention.set_hooks(None)
        assert np.allclose(out, reference, rtol=1e-4, atol=1e-5)
        assert not np.array_equal(out, reference)

    def test_checker_still_transparent_under_float32(self, attention, rng):
        # Under reduced-precision compute, the checker needs the matching
        # detection tolerance (ABFTThresholds.for_precision) so fp32 rounding
        # of the operands never looks like a fault.
        from repro.core import ABFTThresholds, ATTNCheckerConfig

        x = rng.normal(size=(1, 5, 16))
        attention.eval()
        precision = PrecisionSimulationHooks("float32")
        attention.set_hooks(precision)
        reference = attention(Tensor(x)).data.copy()
        checker = ATTNChecker(ATTNCheckerConfig(thresholds=ABFTThresholds.for_precision("float32")))
        attention.set_hooks(ComposedHooks([PrecisionSimulationHooks("float32"), checker]))
        protected = attention(Tensor(x)).data.copy()
        attention.set_hooks(None)
        assert np.array_equal(protected, reference)
        assert checker.stats.total_corrections == 0

    def test_checker_corrects_faults_under_float32(self, attention, rng):
        from repro.core import ABFTThresholds, ATTNCheckerConfig

        x = rng.normal(size=(1, 5, 16))
        attention.eval()
        attention.set_hooks(PrecisionSimulationHooks("float32"))
        reference = attention(Tensor(x)).data.copy()
        injector = FaultInjector(
            [FaultSpec(matrix="AS", error_type="inf")],
            rng=np.random.default_rng(3),
            value_dtype=np.float32,
        )
        checker = ATTNChecker(ATTNCheckerConfig(thresholds=ABFTThresholds.for_precision("float32")))
        attention.set_hooks(ComposedHooks([PrecisionSimulationHooks("float32"), injector, checker]))
        protected = attention(Tensor(x)).data.copy()
        attention.set_hooks(None)
        assert checker.stats.total_corrections >= 1
        assert np.allclose(protected, reference, rtol=1e-4, atol=1e-5)


class TestInjectorValueDtype:
    def test_near_inf_magnitude_follows_value_dtype(self, attention, rng):
        fp32 = FaultInjector(
            [FaultSpec(matrix="Q", error_type="near_inf")], rng=np.random.default_rng(1),
            value_dtype=np.float32,
        )
        attention.set_hooks(fp32)
        attention(Tensor(rng.normal(size=(1, 5, 16))))
        attention.set_hooks(None)
        injected32 = abs(fp32.records[0].injected_value)
        assert 1e10 < injected32 <= float(np.finfo(np.float32).max)

        fp64 = FaultInjector(
            [FaultSpec(matrix="Q", error_type="near_inf")], rng=np.random.default_rng(1),
        )
        attention.set_hooks(fp64)
        attention(Tensor(rng.normal(size=(1, 5, 16))))
        attention.set_hooks(None)
        injected64 = abs(fp64.records[0].injected_value)
        assert injected64 > float(np.finfo(np.float32).max)


class TestStudiesWithPrecision:
    def test_propagation_study_accepts_precision(self, rng):
        model = build_model("bert-base", size="tiny", rng=np.random.default_rng(0))
        from repro.data import SyntheticMRPC

        data = SyntheticMRPC(num_examples=8, max_seq_len=model.config.max_seq_len,
                             vocab_size=model.config.vocab_size)
        study = PropagationStudy(model, data.encode(range(4)), precision="float32",
                                 rng=np.random.default_rng(1))
        result = study.trace("Q", "inf")
        assert result.cell("AS").startswith("1R")

    def test_vulnerability_study_accepts_precision(self):
        from repro.data import SyntheticMRPC

        def factory():
            return build_model("bert-small", size="tiny", rng=np.random.default_rng(0))

        model = factory()
        data = SyntheticMRPC(num_examples=16, max_seq_len=model.config.max_seq_len,
                             vocab_size=model.config.vocab_size)
        batches = [data.encode(range(0, 4)), data.encode(range(4, 8))]
        study = VulnerabilityStudy(factory, batches, precision="float32",
                                   rng=np.random.default_rng(2))
        results = study.run(matrices=("Q",), error_types=("inf",), trials=2)
        assert results[0].probability >= 0.5

"""Tests for the fused ProtectionEngine and its per-GEMM reference backend.

The central property: the fused section-level checksum-passing engine and the
original per-GEMM hook implementation must make **identical** detection and
correction decisions (and produce byte-identical protected outputs) under a
fault-injection campaign covering every target matrix and error type.
"""

import numpy as np
import pytest

from repro.core import (
    CHECKER_BACKENDS,
    ATTNChecker,
    ATTNCheckerConfig,
    ProtectedGemmChain,
    ProtectionEngine,
    SectionCostModel,
)
from repro.faults import FaultInjector, FaultSpec
from repro.models import get_config
from repro.nn import (
    SECTION_BOUNDARY_OPS,
    AttentionHooks,
    ComposedHooks,
    MultiHeadAttention,
    SectionContext,
)
from repro.nn.attention import AttentionOp
from repro.tensor.autograd import Tensor


@pytest.fixture
def rng():
    return np.random.default_rng(41)


def make_attention(seed=41, hidden=16, heads=4, bias=True):
    attn = MultiHeadAttention(
        hidden_size=hidden, num_heads=heads, dropout_p=0.0,
        rng=np.random.default_rng(seed), bias=bias,
    )
    attn.eval()
    return attn


def run_attention(attention, x, hooks):
    attention.set_hooks(hooks)
    try:
        return attention(Tensor(x)).data.copy()
    finally:
        attention.set_hooks(None)


def run_with_backend(backend, matrix, error_type, x, seed=7, bias=True, config_kwargs=None):
    """One single-fault protected forward pass; returns (output, decisions)."""
    attention = make_attention(bias=bias)
    injector = FaultInjector(
        [FaultSpec(matrix=matrix, error_type=error_type, layer_index=0)],
        rng=np.random.default_rng(seed),
    )
    checker = ATTNChecker(ATTNCheckerConfig(backend=backend, **(config_kwargs or {})))
    output = run_attention(attention, x, ComposedHooks([injector, checker]))
    checker.end_step()
    decisions = {
        name: (
            stats.checks_run,
            stats.detections,
            stats.corrections,
            stats.aborted_vectors,
            stats.residual_extreme,
            stats.operand_repairs,
        )
        for name, stats in checker.stats.sections.items()
    }
    return output, decisions


class TestBackendConfig:
    def test_default_backend_is_fused(self):
        checker = ATTNChecker()
        assert checker.backend == "fused"
        assert checker.engine is not None

    def test_per_gemm_backend_selectable(self):
        checker = ATTNChecker(ATTNCheckerConfig(backend="per_gemm"))
        assert checker.backend == "per_gemm"
        assert checker.engine is None

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            ATTNCheckerConfig(backend="cuda")

    def test_deferred_requires_fused(self):
        with pytest.raises(ValueError):
            ATTNCheckerConfig(backend="per_gemm", defer_verification=True)

    def test_dispatch_accounting(self):
        model = SectionCostModel(get_config("bert-base", size="paper"), batch_size=8)
        assert model.python_dispatches_per_layer("fused") == 3
        assert model.python_dispatches_per_layer("per_gemm") == 6
        with pytest.raises(KeyError):
            model.python_dispatches_per_layer("other")


class TestFusedTransparency:
    def test_clean_forward_bitwise_unchanged(self, rng):
        attention = make_attention()
        x = rng.normal(size=(2, 6, 16))
        reference = run_attention(attention, x, None)
        checker = ATTNChecker()  # fused
        protected = run_attention(attention, x, checker)
        assert np.array_equal(protected, reference)
        assert checker.stats.total_detections == 0

    def test_section_hook_fires_at_boundaries_only(self, rng):
        seen = []

        class Recorder(AttentionHooks):
            def on_section_output(self, ctx, out):
                seen.append((ctx.section, ctx.layer_index))
                return out

        attention = make_attention()
        run_attention(attention, rng.normal(size=(1, 4, 16)), Recorder())
        assert seen == [("AS", 0), ("CL", 0), ("O", 0)]

    def test_fused_checker_skips_per_gemm_dispatch(self, rng):
        # The 3-instead-of-6 dispatch claim: a fused checker declares it does
        # not consume per-GEMM outputs, so MultiHeadAttention never dispatches
        # the non-boundary GEMM hooks for it.
        calls = {"gemm": 0, "section": 0}

        class CountingFused(ATTNChecker):
            def on_gemm_output(self, ctx, out):
                calls["gemm"] += 1
                return super().on_gemm_output(ctx, out)

            def on_section_output(self, ctx, out):
                calls["section"] += 1
                return super().on_section_output(ctx, out)

        attention = make_attention()
        run_attention(attention, rng.normal(size=(1, 4, 16)), CountingFused())
        assert calls == {"gemm": 0, "section": 3}

    def test_per_gemm_checker_still_gets_all_six_dispatches(self, rng):
        calls = {"gemm": 0}

        class CountingRef(ATTNChecker):
            def on_gemm_output(self, ctx, out):
                calls["gemm"] += 1
                return super().on_gemm_output(ctx, out)

        attention = make_attention()
        run_attention(
            attention, rng.normal(size=(1, 4, 16)),
            CountingRef(ATTNCheckerConfig(backend="per_gemm")),
        )
        assert calls["gemm"] == 6

    def test_composed_injector_restores_gemm_dispatch(self, rng):
        # An injector composed with a fused checker consumes per-GEMM outputs,
        # so the dispatches come back for the composition (and injection into
        # a non-boundary matrix still works — covered by the campaign tests).
        attention = make_attention()
        injector = FaultInjector(
            [FaultSpec(matrix="Q", error_type="inf", layer_index=0)],
            rng=np.random.default_rng(7),
        )
        checker = ATTNChecker()
        hooks = ComposedHooks([injector, checker])
        assert injector.consumes_gemm_outputs()
        assert not checker.consumes_gemm_outputs()
        assert hooks.consumes_gemm_outputs()
        run_attention(attention, rng.normal(size=(2, 6, 16)), hooks)
        assert injector.num_injections == 1
        assert checker.stats.total_corrections >= 1

    def test_boundary_op_mapping_consistent_with_sections(self):
        from repro.core import PROTECTION_SECTIONS

        for op, section in SECTION_BOUNDARY_OPS.items():
            assert PROTECTION_SECTIONS[section].boundary_op == op.value
        assert set(SECTION_BOUNDARY_OPS) == {AttentionOp.QK, AttentionOp.APV, AttentionOp.CLO}


@pytest.mark.parametrize("matrix", ["Q", "K", "V", "AS", "CL", "O"])
@pytest.mark.parametrize("error_type", ["inf", "nan", "near_inf", "numeric"])
class TestBackendEquivalenceCampaign:
    """Property: fused and per-GEMM backends are byte-identical per scenario."""

    def test_identical_decisions_and_outputs(self, rng, matrix, error_type):
        x = rng.normal(size=(2, 6, 16))
        fused_out, fused_decisions = run_with_backend("fused", matrix, error_type, x)
        ref_out, ref_decisions = run_with_backend("per_gemm", matrix, error_type, x)
        assert fused_decisions == ref_decisions
        assert np.array_equal(fused_out, ref_out, equal_nan=True)


class TestBackendEquivalenceVariants:
    def test_identical_without_bias(self, rng):
        x = rng.normal(size=(2, 5, 16))
        fused_out, fused_dec = run_with_backend("fused", "AS", "inf", x, bias=False)
        ref_out, ref_dec = run_with_backend("per_gemm", "AS", "inf", x, bias=False)
        assert fused_dec == ref_dec
        assert np.array_equal(fused_out, ref_out, equal_nan=True)

    def test_identical_under_frequency_gating(self, rng):
        # Half frequency: the gating accumulators must advance identically, so
        # both backends check and skip the same passes.
        x = rng.normal(size=(1, 4, 16))
        results = {}
        for backend in CHECKER_BACKENDS:
            attention = make_attention()
            checker = ATTNChecker(ATTNCheckerConfig(
                backend=backend, frequencies={"AS": 0.5, "CL": 0.5, "O": 0.5},
            ))
            for _ in range(4):
                run_attention(attention, x, checker)
            results[backend] = {
                name: (s.checks_run, s.checks_skipped)
                for name, s in checker.stats.sections.items()
            }
        assert results["fused"] == results["per_gemm"]
        assert results["fused"]["AS"] == (2, 2)

    def test_fused_multi_fault_campaign_matches_reference(self, rng):
        # Several random faults across steps: accumulate statistics under both
        # backends and compare in aggregate.
        specs = [
            FaultSpec(matrix=m, error_type=e, layer_index=0)
            for m, e in [("Q", "inf"), ("V", "nan"), ("AS", "near_inf"), ("O", "numeric")]
        ]
        totals = {}
        for backend in CHECKER_BACKENDS:
            attention = make_attention()
            checker = ATTNChecker(ATTNCheckerConfig(backend=backend))
            for trial, spec in enumerate(specs):
                injector = FaultInjector([spec], rng=np.random.default_rng(100 + trial))
                x = np.random.default_rng(200 + trial).normal(size=(2, 6, 16))
                run_attention(attention, x, ComposedHooks([injector, checker]))
            totals[backend] = {
                name: (s.detections, s.corrections, s.aborted_vectors, s.residual_extreme)
                for name, s in checker.stats.sections.items()
            }
        assert totals["fused"] == totals["per_gemm"]
        assert sum(d for d, *_ in totals["fused"].values()) >= len(specs)


class TestDeferredVerification:
    def test_deferred_queues_then_flushes_in_one_batch(self, rng):
        attention = make_attention()
        checker = ATTNChecker(ATTNCheckerConfig(defer_verification=True))
        injector = FaultInjector(
            [FaultSpec(matrix="AS", error_type="inf", layer_index=0)],
            rng=np.random.default_rng(7),
        )
        run_attention(attention, rng.normal(size=(2, 6, 16)), ComposedHooks([injector, checker]))
        # Nothing verified yet: the three sections are queued.
        assert checker.stats.total_checks == 0
        assert checker.engine.pending_verifications == 3
        outcomes = checker.end_step()
        assert checker.engine.pending_verifications == 0
        assert len(outcomes) == 3
        assert checker.stats.total_detections >= 1
        assert checker.stats.total_checks == 3

    def test_deferred_clean_pass_reports_clean(self, rng):
        attention = make_attention()
        checker = ATTNChecker(ATTNCheckerConfig(defer_verification=True))
        run_attention(attention, rng.normal(size=(2, 6, 16)), checker)
        outcomes = checker.end_step()
        assert len(outcomes) == 3
        assert checker.stats.total_detections == 0

    def test_deferred_batches_multiple_layers(self, rng):
        # Two forward passes before the flush: same-shaped boundary matrices
        # stack into one batched verification per section.
        attention = make_attention()
        checker = ATTNChecker(ATTNCheckerConfig(defer_verification=True))
        x = rng.normal(size=(2, 6, 16))
        run_attention(attention, x, checker)
        run_attention(attention, x, checker)
        assert checker.engine.pending_verifications == 6
        outcomes = checker.end_step()
        assert len(outcomes) == 6
        assert checker.stats.total_checks == 6

    def test_end_step_noop_in_immediate_mode(self, rng):
        checker = ATTNChecker()
        assert checker.end_step() == []


class TestEngineStandalone:
    def test_unknown_section_raises(self):
        engine = ProtectionEngine()
        engine.begin_layer(0, {"AS": True, "CL": True, "O": True})
        ctx = SectionContext(
            section="XX", operands={}, layer_index=0, step=1,
            num_heads=2, head_dim=4, seq_len=4,
        )
        with pytest.raises(KeyError):
            engine.protect_section(ctx, np.zeros((1, 4, 4)))

    def test_no_layer_state_is_safe(self):
        engine = ProtectionEngine()
        ctx = SectionContext(
            section="AS", operands={}, layer_index=3, step=1,
            num_heads=2, head_dim=4, seq_len=4,
        )
        assert engine.protect_section(ctx, np.zeros((1, 4, 4))) is None

    def test_reset_clears_queue(self, rng):
        attention = make_attention()
        checker = ATTNChecker(ATTNCheckerConfig(defer_verification=True))
        run_attention(attention, rng.normal(size=(1, 4, 16)), checker)
        assert checker.engine.pending_verifications == 3
        checker.reset_stats()
        assert checker.engine.pending_verifications == 0


class TestProtectedGemmChain:
    def test_clean_chain_is_clean(self, rng):
        chain = ProtectedGemmChain()
        a = rng.normal(size=(12, 8))
        bs = [rng.normal(size=(8, 10)), rng.normal(size=(10, 6))]
        result = chain(a, bs)
        assert result.clean
        assert np.allclose(result.output, a @ bs[0] @ bs[1])

    @pytest.mark.parametrize("stage", [0, 1, 2])
    def test_fault_at_any_stage_detected_at_boundary(self, rng, stage):
        # A fault striking ANY member GEMM of the chain surfaces at the single
        # boundary verification — the checksum-passing property of Section 4.4.
        chain = ProtectedGemmChain()
        a = rng.normal(size=(12, 8))
        bs = [rng.normal(size=(8, 10)), rng.normal(size=(10, 6)), rng.normal(size=(6, 9))]

        def fault(s, out):
            if s == stage:
                out[1, 2] = np.inf
            return out

        result = chain(a, bs, fault_hook=fault)
        assert result.report.detected >= 1
        assert result.fully_corrected

    def test_final_stage_fault_fully_restored(self, rng):
        # A boundary-GEMM fault is repaired to the true value (earlier-stage
        # faults corrupt whole downstream rows/columns; those are the 1D cases
        # the attention engine retries with the orthogonal side).
        chain = ProtectedGemmChain()
        a = rng.normal(size=(12, 8))
        bs = [rng.normal(size=(8, 10)), rng.normal(size=(10, 6))]
        reference = a @ bs[0] @ bs[1]

        def fault(s, out):
            if s == 1:
                out[3, 4] = np.nan
            return out

        result = chain(a, bs, fault_hook=fault)
        assert result.report.corrected >= 1
        assert np.allclose(result.output, reference, rtol=1e-6, atol=1e-8)

    def test_empty_chain_rejected(self, rng):
        with pytest.raises(ValueError):
            ProtectedGemmChain()(rng.normal(size=(4, 4)), [])

    def test_needs_a_checksum_side(self):
        with pytest.raises(ValueError):
            ProtectedGemmChain(maintain_column=False, maintain_row=False)

"""Unit and property tests for the standalone protected GEMM."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ABFTThresholds, ProtectedMatmul, protected_matmul


@pytest.fixture
def rng():
    return np.random.default_rng(71)


class TestCleanPath:
    def test_matches_plain_matmul(self, rng):
        a = rng.normal(size=(6, 4))
        b = rng.normal(size=(4, 5))
        result = protected_matmul(a, b)
        assert np.allclose(result.output, a @ b)
        assert result.clean and result.fully_corrected

    def test_batched_operands(self, rng):
        a = rng.normal(size=(3, 6, 4))
        b = rng.normal(size=(3, 4, 5))
        result = protected_matmul(a, b)
        assert result.output.shape == (3, 6, 5)
        assert result.clean

    def test_checksums_attached(self, rng):
        result = protected_matmul(rng.normal(size=(4, 4)), rng.normal(size=(4, 4)))
        assert result.checksums.has_col() and result.checksums.has_row()

    def test_single_side_configuration(self, rng):
        gemm = ProtectedMatmul(maintain_column=True, maintain_row=False)
        result = gemm(rng.normal(size=(4, 4)), rng.normal(size=(4, 4)))
        assert result.checksums.has_col() and not result.checksums.has_row()

    def test_no_sides_rejected(self):
        with pytest.raises(ValueError):
            ProtectedMatmul(maintain_column=False, maintain_row=False)


class TestFaultyPath:
    @pytest.mark.parametrize("value", [np.inf, -np.inf, np.nan, 7.5e12])
    def test_single_extreme_fault_corrected(self, rng, value):
        a = rng.normal(size=(8, 6))
        b = rng.normal(size=(6, 7))

        def corrupt(out):
            out[3, 2] = value
            return out

        result = protected_matmul(a, b, fault_hook=corrupt)
        assert result.report.corrected >= 1
        assert result.fully_corrected
        assert np.allclose(result.output, a @ b, rtol=1e-6, atol=1e-8)

    def test_row_fault_corrected(self, rng):
        a = rng.normal(size=(8, 6))
        b = rng.normal(size=(6, 7))

        def corrupt(out):
            out[5, :] = np.inf
            return out

        result = protected_matmul(a, b, fault_hook=corrupt)
        assert np.allclose(result.output, a @ b, rtol=1e-6, atol=1e-8)

    def test_column_fault_needs_row_side(self, rng):
        a = rng.normal(size=(8, 6))
        b = rng.normal(size=(6, 7))

        def corrupt(out):
            out[:, 4] = np.nan
            return out

        with_both = protected_matmul(a, b, fault_hook=corrupt)
        assert np.allclose(with_both.output, a @ b, rtol=1e-6, atol=1e-8)

        column_only = protected_matmul(
            a, b, fault_hook=corrupt, maintain_row=False, maintain_column=True
        )
        assert not column_only.fully_corrected

    def test_custom_thresholds_respected(self, rng):
        a = rng.normal(size=(6, 5))
        b = rng.normal(size=(5, 4))
        loose = ABFTThresholds(detect_rtol=0.5, detect_atol=10.0)

        def corrupt(out):
            out[1, 1] += 0.5  # below the loose tolerance
            return out

        result = protected_matmul(a, b, fault_hook=corrupt, thresholds=loose)
        assert result.report.corrected == 0


class TestProperties:
    @given(
        seed=st.integers(0, 2**31 - 1),
        m=st.integers(2, 10),
        k=st.integers(2, 10),
        n=st.integers(1, 10),
        fault=st.sampled_from(["inf", "nan", "near_inf", "none"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_output_always_equals_true_product(self, seed, m, k, n, fault):
        rng = np.random.default_rng(seed)
        a = rng.uniform(-5, 5, size=(m, k))
        b = rng.uniform(-5, 5, size=(k, n))
        expected = a @ b
        row = int(rng.integers(0, m))
        col = int(rng.integers(0, n))

        def corrupt(out):
            if fault == "inf":
                out[row, col] = np.inf
            elif fault == "nan":
                out[row, col] = np.nan
            elif fault == "near_inf":
                out[row, col] = 4.2e13
            return out

        result = protected_matmul(a, b, fault_hook=corrupt)
        assert result.fully_corrected
        assert np.allclose(result.output, expected, rtol=1e-5, atol=1e-6)

"""Unit tests for error-pattern classification and matrix-level correction."""

import numpy as np
import pytest

from repro.core.checksums import ChecksumState, encode_column_checksums, encode_row_checksums
from repro.core.correction import correct_matrix
from repro.core.patterns import (
    ErrorPattern,
    classify_error_pattern,
    classify_error_types,
    describe_corruption,
    error_mask,
)
from repro.core.thresholds import ABFTThresholds


@pytest.fixture
def rng():
    return np.random.default_rng(31)


class TestErrorMask:
    def test_reference_based_mask(self, rng):
        ref = rng.normal(size=(4, 4))
        obs = ref.copy()
        obs[1, 2] += 10.0
        mask = error_mask(obs, ref)
        assert mask.sum() == 1 and mask[1, 2]

    def test_nan_in_both_is_not_an_error(self):
        ref = np.array([[np.nan, 1.0]])
        obs = np.array([[np.nan, 1.0]])
        assert not error_mask(obs, ref).any()

    def test_nan_only_in_observed_is_error(self):
        ref = np.array([[2.0, 1.0]])
        obs = np.array([[np.nan, 1.0]])
        assert error_mask(obs, ref)[0, 0]

    def test_without_reference_uses_extremeness(self):
        obs = np.array([[1.0, np.inf], [2e12, 3.0]])
        mask = error_mask(obs)
        assert mask.tolist() == [[False, True], [True, False]]

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            error_mask(rng.normal(size=(2, 2)), rng.normal(size=(3, 3)))


class TestPatternClassification:
    def test_none(self):
        assert classify_error_pattern(np.zeros((4, 4), dtype=bool)) is ErrorPattern.NONE

    def test_zero_d(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[1, 2] = True
        assert classify_error_pattern(mask) is ErrorPattern.ZERO_D

    def test_one_row(self):
        mask = np.zeros((4, 6), dtype=bool)
        mask[2, 1:5] = True
        assert classify_error_pattern(mask) is ErrorPattern.ONE_ROW

    def test_one_col(self):
        mask = np.zeros((5, 4), dtype=bool)
        mask[:, 3] = True
        assert classify_error_pattern(mask) is ErrorPattern.ONE_COL

    def test_two_d(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[0, 0] = mask[2, 3] = True
        assert classify_error_pattern(mask) is ErrorPattern.TWO_D

    def test_batched_masks_collapse(self):
        mask = np.zeros((3, 4, 4), dtype=bool)
        mask[0, 1, 2] = True
        mask[2, 1, 3] = True
        assert classify_error_pattern(mask) is ErrorPattern.ONE_ROW

    def test_requires_two_dims(self):
        with pytest.raises(ValueError):
            classify_error_pattern(np.zeros(4, dtype=bool))


class TestTypeClassification:
    def test_single_types(self):
        obs = np.array([[np.inf, 1.0], [1.0, 1.0]])
        mask = np.array([[True, False], [False, False]])
        assert classify_error_types(obs, mask).label() == "INF"
        obs[0, 0] = np.nan
        assert classify_error_types(obs, mask).label() == "NaN"
        obs[0, 0] = 1e12
        assert classify_error_types(obs, mask).label() == "nINF"
        obs[0, 0] = 17.0
        assert classify_error_types(obs, mask).label() == "num"

    def test_mixed_label(self):
        obs = np.array([[np.inf, np.nan]])
        mask = np.array([[True, True]])
        types = classify_error_types(obs, mask)
        assert types.mixed and types.label() == "M"

    def test_empty(self):
        types = classify_error_types(np.zeros((2, 2)), np.zeros((2, 2), dtype=bool))
        assert types.empty and types.label() == "-"

    def test_describe_corruption_table2_format(self, rng):
        ref = rng.normal(size=(5, 5))
        obs = ref.copy()
        assert describe_corruption(obs, ref) == "-"
        obs[2, :] = np.nan
        assert describe_corruption(obs, ref) == "1R-NaN"
        obs = ref.copy()
        obs[:, 1] = np.inf
        assert describe_corruption(obs, ref) == "1C-INF"


class TestCorrectMatrix:
    def test_requires_a_checksum_side(self, rng):
        with pytest.raises(ValueError):
            correct_matrix(rng.normal(size=(4, 4)), ChecksumState())

    def test_column_only_deterministic(self, rng):
        m = rng.normal(size=(2, 6, 5))
        cs = ChecksumState(col=encode_column_checksums(m))
        ref = m.copy()
        m[0, 3, 1] = np.inf
        report = correct_matrix(m, cs)
        assert report.used_column_side and not report.used_row_side
        assert report.fully_corrected
        assert np.allclose(m, ref, rtol=1e-6, atol=1e-8)

    def test_row_only_deterministic(self, rng):
        m = rng.normal(size=(2, 6, 5))
        cs = ChecksumState(row=encode_row_checksums(m))
        ref = m.copy()
        m[1, 2, 4] = np.nan
        report = correct_matrix(m, cs)
        assert report.used_row_side and not report.used_column_side
        assert np.allclose(m, ref, rtol=1e-6, atol=1e-8)

    def test_nondeterministic_1r_uses_column_side_only(self, rng):
        # A 1R pattern (fault originated in the left operand): the column
        # checksums repair it and the row side must NOT run, because its
        # checksums may derive from the corrupted operand.
        m = rng.normal(size=(1, 6, 5))
        cs = ChecksumState(col=encode_column_checksums(m), row=encode_row_checksums(m))
        ref = m.copy()
        m[0, 3, :] = np.inf
        report = correct_matrix(m, cs)
        assert report.used_column_side and not report.used_row_side
        assert np.allclose(m, ref, rtol=1e-6, atol=1e-8)

    def test_nondeterministic_1c_falls_back_to_row_side(self, rng):
        # A 1C pattern whose column checksums were derived from the corrupted
        # operand (consistent corruption): the row side must repair it and the
        # column checksums must be refreshed.
        clean = rng.normal(size=(1, 6, 5))
        corrupted = clean.copy()
        corrupted[0, :, 2] = 7.7e12
        cs = ChecksumState(
            col=encode_column_checksums(corrupted),  # consistent with corruption
            row=encode_row_checksums(clean),          # derived from clean inputs
        )
        report = correct_matrix(corrupted, cs)
        assert report.used_row_side
        assert report.checksums_recomputed
        assert np.allclose(corrupted, clean, rtol=1e-6, atol=1e-8)
        assert np.allclose(cs.col, encode_column_checksums(clean), rtol=1e-6, atol=1e-6)

    def test_clean_matrix_reports_clean(self, rng):
        m = rng.normal(size=(2, 5, 5))
        cs = ChecksumState(col=encode_column_checksums(m), row=encode_row_checksums(m))
        report = correct_matrix(m, cs)
        assert report.clean and report.fully_corrected

    def test_numeric_1c_false_negative_recovered_by_row_side(self, rng):
        # Non-extreme consistent corruption: column side sees nothing (false
        # negative, as the paper describes); row side must still fix it.
        clean = rng.normal(size=(1, 6, 5))
        corrupted = clean.copy()
        corrupted[0, :, 1] += 3.0
        cs = ChecksumState(
            col=encode_column_checksums(corrupted),
            row=encode_row_checksums(clean),
        )
        report = correct_matrix(corrupted, cs)
        assert report.used_row_side
        assert np.allclose(corrupted, clean, rtol=1e-6, atol=1e-7)

    def test_2d_pattern_not_correctable(self, rng):
        m = rng.normal(size=(1, 6, 5))
        cs = ChecksumState(col=encode_column_checksums(m), row=encode_row_checksums(m))
        m[0, 1:4, 1:4] = np.nan
        report = correct_matrix(m, cs)
        assert not report.fully_corrected
        assert report.residual_extreme > 0

"""Unit tests for the instrumented multi-head attention."""

import numpy as np
import pytest

from repro.nn.attention import (
    ATTENTION_MATRIX_NAMES,
    AttentionHooks,
    AttentionOp,
    ComposedHooks,
    GemmContext,
    MultiHeadAttention,
    RecordingHooks,
)
from repro.tensor.autograd import Tensor


@pytest.fixture
def rng():
    return np.random.default_rng(3)


@pytest.fixture
def attention(rng):
    return MultiHeadAttention(hidden_size=16, num_heads=4, dropout_p=0.0, rng=rng)


class TestAttentionOp:
    def test_output_matrix_names(self):
        assert AttentionOp.XQ.output_matrix == "Q"
        assert AttentionOp.QK.output_matrix == "AS"
        assert AttentionOp.APV.output_matrix == "CL"
        assert AttentionOp.CLO.output_matrix == "O"

    def test_all_matrices_listed(self):
        assert set(ATTENTION_MATRIX_NAMES) == {"Q", "K", "V", "AS", "AP", "CL", "O"}


class TestForwardShapes:
    def test_output_shape_matches_input(self, attention, rng):
        x = Tensor(rng.normal(size=(2, 6, 16)))
        assert attention(x).shape == (2, 6, 16)

    def test_invalid_head_divisor_raises(self, rng):
        with pytest.raises(ValueError):
            MultiHeadAttention(hidden_size=10, num_heads=3, rng=rng)

    def test_gradients_reach_all_projections(self, attention, rng):
        x = Tensor(rng.normal(size=(2, 6, 16)), requires_grad=True)
        attention(x).sum().backward()
        for proj in (attention.w_q, attention.w_k, attention.w_v, attention.w_o):
            assert proj.weight.grad is not None
        assert x.grad is not None

    def test_attention_output_is_weighted_average_of_values(self, rng):
        # With a single head and uniform scores the context is the mean of V.
        attn = MultiHeadAttention(hidden_size=4, num_heads=1, dropout_p=0.0, rng=rng, bias=False)
        # Force Q and K to zero so all scores are equal -> AP uniform.
        attn.w_q.weight.data[:] = 0.0
        attn.w_k.weight.data[:] = 0.0
        x = rng.normal(size=(1, 5, 4))
        recorder = RecordingHooks()
        attn.set_hooks(recorder)
        attn(Tensor(x))
        matrices = recorder.matrices(0)
        ap = matrices["AP"]
        assert np.allclose(ap, 1.0 / 5)


class TestMasking:
    def test_causal_mask_blocks_future(self, rng):
        attn = MultiHeadAttention(hidden_size=8, num_heads=2, dropout_p=0.0, causal=True, rng=rng)
        recorder = RecordingHooks()
        attn.set_hooks(recorder)
        attn(Tensor(rng.normal(size=(1, 5, 8))))
        ap = recorder.matrices(0)["AP"]
        upper = np.triu(np.ones((5, 5)), k=1).astype(bool)
        assert np.all(ap[0, 0][upper] < 1e-6)

    def test_padding_mask_zeroes_padded_keys(self, rng):
        attn = MultiHeadAttention(hidden_size=8, num_heads=2, dropout_p=0.0, rng=rng)
        recorder = RecordingHooks()
        attn.set_hooks(recorder)
        mask = np.ones((1, 6))
        mask[0, -2:] = 0.0
        attn(Tensor(rng.normal(size=(1, 6, 8))), attention_mask=mask)
        ap = recorder.matrices(0)["AP"]
        assert np.all(ap[..., -2:] < 1e-6)

    def test_local_window_restricts_attention(self, rng):
        attn = MultiHeadAttention(
            hidden_size=8, num_heads=2, dropout_p=0.0, causal=True, local_window=2, rng=rng
        )
        recorder = RecordingHooks()
        attn.set_hooks(recorder)
        attn(Tensor(rng.normal(size=(1, 6, 8))))
        ap = recorder.matrices(0)["AP"]
        # Position 5 may only attend to positions 4 and 5 (window of 2).
        assert np.all(ap[0, 0, 5, :3] < 1e-6)

    def test_build_mask_none_when_not_needed(self, attention):
        assert attention.build_mask(4, None) is None


class TestHooks:
    def test_recording_hooks_capture_all_matrices(self, attention, rng):
        recorder = RecordingHooks()
        attention.set_hooks(recorder)
        attention(Tensor(rng.normal(size=(2, 5, 16))))
        captured = recorder.matrices(0)
        for name in ("Q", "K", "V", "AS", "AP", "CL", "O"):
            assert name in captured

    def test_gemm_context_fields(self, attention, rng):
        seen = []

        class Probe(AttentionHooks):
            def on_gemm_output(self, ctx: GemmContext, out):
                seen.append((ctx.op, ctx.a.shape, ctx.b.shape, out.shape, ctx.num_heads))
                return out

        attention.set_hooks(Probe())
        attention(Tensor(rng.normal(size=(2, 5, 16))))
        ops = [s[0] for s in seen]
        assert ops == [
            AttentionOp.XQ, AttentionOp.XK, AttentionOp.XV,
            AttentionOp.QK, AttentionOp.APV, AttentionOp.CLO,
        ]
        qk = seen[3]
        assert qk[1] == (2, 4, 5, 4) and qk[2] == (2, 4, 4, 5) and qk[3] == (2, 4, 5, 5)

    def test_hook_can_modify_output(self, attention, rng):
        class Corrupt(AttentionHooks):
            def on_gemm_output(self, ctx, out):
                if ctx.op is AttentionOp.CLO:
                    out[...] = 0.0
                return out

        attention.set_hooks(Corrupt())
        out = attention(Tensor(rng.normal(size=(1, 4, 16))))
        # Output equals just the bias of W_O (plus output dropout disabled).
        assert np.allclose(out.data, attention.w_o.bias.data)

    def test_composed_hooks_run_in_order(self, attention, rng):
        order = []

        class A(AttentionHooks):
            def on_gemm_output(self, ctx, out):
                order.append("A")
                return out

        class B(AttentionHooks):
            def on_gemm_output(self, ctx, out):
                order.append("B")
                return out

        attention.set_hooks(ComposedHooks([A(), B()]))
        attention(Tensor(rng.normal(size=(1, 3, 16))))
        assert order[:2] == ["A", "B"]

    def test_start_end_called_once_per_forward(self, attention, rng):
        counts = {"start": 0, "end": 0}

        class Counter(AttentionHooks):
            def on_attention_start(self, layer_index, step):
                counts["start"] += 1

            def on_attention_end(self, layer_index, step):
                counts["end"] += 1

        attention.set_hooks(Counter())
        attention(Tensor(rng.normal(size=(1, 3, 16))))
        attention(Tensor(rng.normal(size=(1, 3, 16))))
        assert counts == {"start": 2, "end": 2}

    def test_detaching_hooks_restores_plain_forward(self, attention, rng):
        attention.set_hooks(RecordingHooks())
        attention.set_hooks(None)
        x = Tensor(rng.normal(size=(1, 3, 16)))
        out = attention(x)
        assert out.shape == (1, 3, 16)

    def test_hook_outputs_are_deterministic_given_same_input(self, attention, rng):
        x = rng.normal(size=(1, 4, 16))
        attention.eval()
        rec1, rec2 = RecordingHooks(), RecordingHooks()
        attention.set_hooks(rec1)
        attention(Tensor(x))
        attention.set_hooks(rec2)
        attention(Tensor(x))
        for name in ("Q", "AS", "O"):
            assert np.allclose(rec1.matrices(0)[name], rec2.matrices(0)[name])


class TestMaskCache:
    """Regressions for the bounded, identity-keyed combined-mask cache."""

    def _attn(self, rng):
        return MultiHeadAttention(
            hidden_size=8, num_heads=2, dropout_p=0.0, causal=True, rng=rng
        )

    def test_same_mask_object_is_served_from_cache(self, rng):
        attn = self._attn(rng)
        mask = np.ones((1, 5))
        mask[0, :2] = 0.0
        first = attn.build_mask(5, mask)
        second = attn.build_mask(5, mask)
        assert first is second

    def test_stale_id_entry_is_not_served(self, rng):
        # The cache key includes id(attention_mask); ids are recycled after
        # garbage collection, so a hit must also verify the *stored object*
        # is the caller's mask.  Poison an entry to simulate the collision.
        attn = self._attn(rng)
        old_mask = np.ones((1, 4))
        old_mask[0, 0] = 0.0
        poisoned = attn.build_mask(4, old_mask)
        new_mask = np.ones((1, 4))
        for key, entry in list(attn._combined_mask_cache.items()):
            attn._combined_mask_cache[
                key[:-1] + (id(new_mask),)
            ] = entry
        rebuilt = attn.build_mask(4, new_mask)
        assert rebuilt is not poisoned
        # And the rebuilt mask reflects the new (unpadded) values.
        host = np.asarray(rebuilt)
        assert host[0, 0, -1, :].max() == 0.0

    def test_cache_is_bounded_fifo(self, rng):
        from repro.nn.attention import _MASK_CACHE_MAX

        attn = self._attn(rng)
        masks = []
        for i in range(_MASK_CACHE_MAX + 4):
            mask = np.ones((1, 5))
            mask[0, : 1 + i % 4] = 0.0
            masks.append(mask)  # keep alive so ids stay distinct
            attn.build_mask(5, mask)
        assert len(attn._combined_mask_cache) <= _MASK_CACHE_MAX


class TestFullyMaskedRows:
    """Fully-masked query rows are zeroed after the softmax (left padding)."""

    def test_fully_masked_query_rows_have_zero_probs(self, rng):
        attn = MultiHeadAttention(
            hidden_size=8, num_heads=2, dropout_p=0.0, causal=True, rng=rng
        )
        recorder = RecordingHooks()
        attn.set_hooks(recorder)
        x = rng.normal(size=(2, 5, 8))
        mask = np.ones((2, 5))
        mask[1, :3] = 0.0  # left padding: rows 0..2 of member 1 see no keys
        attn(Tensor(x), attention_mask=mask)
        ap = recorder.matrices(0)["AP"]
        assert np.array_equal(ap[1, :, :3, :], np.zeros_like(ap[1, :, :3, :]))
        # Live rows are still proper distributions.
        assert np.allclose(ap[1, :, 3:, :].sum(axis=-1), 1.0)
        assert np.allclose(ap[0].sum(axis=-1), 1.0)

    def test_padded_member_does_not_perturb_batch_mates(self, rng):
        attn = MultiHeadAttention(
            hidden_size=8, num_heads=2, dropout_p=0.0, causal=True, rng=rng
        )
        attn.eval()
        x = rng.normal(size=(2, 5, 8))
        mask = np.ones((2, 5))
        mask[1, :4] = 0.0
        batched = attn(Tensor(x), attention_mask=mask).data[0]
        solo = attn(Tensor(x[:1]), attention_mask=np.ones((1, 5))).data[0]
        assert np.allclose(batched, solo, rtol=0.0, atol=1e-15)


class TestDecodeMaskCache:
    """The decode pad mask is built once per mask object and sliced per step."""

    def test_decode_pad_mask_cached_by_identity(self, rng):
        from repro.nn.attention import LayerKVCache

        attn = MultiHeadAttention(
            hidden_size=8, num_heads=2, dropout_p=0.0, causal=True, rng=rng
        )
        attn.eval()
        cache = LayerKVCache(1, 2, 4, max_len=6, xp=np)
        mask = np.ones((1, 6))
        attn(Tensor(rng.normal(size=(1, 3, 8))), attention_mask=mask[:, :3], kv_cache=cache)
        attn.forward_step(Tensor(rng.normal(size=(1, 1, 8))), cache, attention_mask=mask)
        first = attn._decode_pad_mask(mask)
        attn.forward_step(Tensor(rng.normal(size=(1, 1, 8))), cache, attention_mask=mask)
        assert attn._decode_pad_mask(mask) is first

"""Unit tests for the tokenizer, synthetic corpus and data loader."""

import numpy as np
import pytest

from repro.data import DataLoader, HashingTokenizer, SyntheticMRPC, batch_iterator


class TestHashingTokenizer:
    def test_token_ids_deterministic(self):
        tok = HashingTokenizer(vocab_size=128)
        assert tok.token_id("market") == tok.token_id("market")
        assert tok.token_id("market") == HashingTokenizer(vocab_size=128).token_id("market")

    def test_token_ids_in_range(self):
        tok = HashingTokenizer(vocab_size=64)
        for word in ("alpha", "beta", "gamma", "market", "a" * 50):
            tid = tok.token_id(word)
            assert tok.NUM_SPECIAL <= tid < 64

    def test_case_insensitive(self):
        tok = HashingTokenizer()
        assert tok.token_id("Market") == tok.token_id("market")

    def test_empty_word_is_unk(self):
        assert HashingTokenizer().token_id("") == HashingTokenizer.UNK

    def test_too_small_vocab_raises(self):
        with pytest.raises(ValueError):
            HashingTokenizer(vocab_size=4)

    def test_encode_pair_layout(self):
        tok = HashingTokenizer(vocab_size=128)
        ids, mask = tok.encode_pair("a b c", "d e", max_length=12)
        assert ids.shape == (12,) and mask.shape == (12,)
        assert ids[0] == tok.CLS
        assert (ids == tok.SEP).sum() == 2
        assert mask.sum() == 3 + 3 + 2  # CLS + 2 SEP + 5 words
        assert np.all(ids[int(mask.sum()):] == tok.PAD)

    def test_encode_pair_truncates_long_inputs(self):
        tok = HashingTokenizer(vocab_size=128)
        long = " ".join(["word"] * 50)
        ids, mask = tok.encode_pair(long, long, max_length=16)
        assert ids.shape == (16,)
        assert mask.sum() == 16

    def test_encode_pair_min_length_raises(self):
        with pytest.raises(ValueError):
            HashingTokenizer().encode_pair("a", "b", max_length=4)

    def test_encode_batch_shapes(self):
        tok = HashingTokenizer(vocab_size=128)
        ids, mask = tok.encode_batch([("a b", "c"), ("d", "e f g")], max_length=10)
        assert ids.shape == (2, 10) and mask.shape == (2, 10)


class TestSyntheticMRPC:
    def test_deterministic_for_seed(self):
        a = SyntheticMRPC(num_examples=20, seed=3)
        b = SyntheticMRPC(num_examples=20, seed=3)
        assert [e.sentence_a for e in a.examples] == [e.sentence_a for e in b.examples]
        assert np.array_equal(a.labels(), b.labels())

    def test_different_seed_differs(self):
        a = SyntheticMRPC(num_examples=20, seed=3)
        b = SyntheticMRPC(num_examples=20, seed=4)
        assert [e.sentence_a for e in a.examples] != [e.sentence_a for e in b.examples]

    def test_positive_fraction_respected(self):
        data = SyntheticMRPC(num_examples=400, positive_fraction=0.67, seed=0)
        assert 0.55 < data.labels().mean() < 0.8

    def test_paraphrases_overlap_more_than_negatives(self):
        data = SyntheticMRPC(num_examples=300, seed=1)
        overlaps = {0: [], 1: []}
        for ex in data.examples:
            a, b = set(ex.sentence_a.split()), set(ex.sentence_b.split())
            overlaps[ex.label].append(len(a & b) / max(1, len(a | b)))
        assert np.mean(overlaps[1]) > np.mean(overlaps[0]) + 0.2

    def test_encode_shapes_and_dtypes(self):
        data = SyntheticMRPC(num_examples=16, max_seq_len=16, vocab_size=256)
        encoded = data.encode()
        assert encoded["input_ids"].shape == (16, 16)
        assert encoded["input_ids"].dtype == np.int64
        assert encoded["attention_mask"].shape == (16, 16)
        assert encoded["labels"].shape == (16,)
        assert encoded["input_ids"].max() < 256

    def test_encode_subset(self):
        data = SyntheticMRPC(num_examples=16, max_seq_len=16)
        encoded = data.encode([0, 5, 7])
        assert len(encoded["labels"]) == 3

    def test_train_dev_split_disjoint_and_complete(self):
        data = SyntheticMRPC(num_examples=50)
        train, dev = data.train_dev_split(dev_fraction=0.2)
        assert set(train).isdisjoint(dev)
        assert sorted(train + dev) == list(range(50))
        assert len(dev) == 10

    def test_invalid_args_raise(self):
        with pytest.raises(ValueError):
            SyntheticMRPC(num_examples=0)
        with pytest.raises(ValueError):
            SyntheticMRPC(num_examples=4, positive_fraction=1.5)
        with pytest.raises(ValueError):
            SyntheticMRPC(num_examples=4).train_dev_split(dev_fraction=0.0)


class TestDataLoader:
    def test_batch_iterator_chunks(self):
        data = SyntheticMRPC(num_examples=10, max_seq_len=16)
        batches = list(batch_iterator(data.encode(), batch_size=4))
        assert [len(b["labels"]) for b in batches] == [4, 4, 2]

    def test_batch_iterator_drop_last(self):
        data = SyntheticMRPC(num_examples=10, max_seq_len=16)
        batches = list(batch_iterator(data.encode(), batch_size=4, drop_last=True))
        assert [len(b["labels"]) for b in batches] == [4, 4]

    def test_loader_len_and_iteration(self):
        data = SyntheticMRPC(num_examples=33, max_seq_len=16)
        loader = DataLoader(data, batch_size=8)
        assert len(loader) == 4
        batches = list(loader)
        assert len(batches) == 4
        assert all(len(b["labels"]) == 8 for b in batches)

    def test_loader_without_drop_last(self):
        data = SyntheticMRPC(num_examples=33, max_seq_len=16)
        loader = DataLoader(data, batch_size=8, drop_last=False, shuffle=False)
        assert len(loader) == 5

    def test_loader_respects_indices(self):
        data = SyntheticMRPC(num_examples=40, max_seq_len=16)
        loader = DataLoader(data, batch_size=4, indices=list(range(8)), shuffle=False)
        assert len(loader) == 2

    def test_shuffle_changes_order_but_not_content(self):
        data = SyntheticMRPC(num_examples=16, max_seq_len=16)
        unshuffled = DataLoader(data, batch_size=16, shuffle=False).batches()[0]
        shuffled = DataLoader(data, batch_size=16, shuffle=True, seed=11).batches()[0]
        assert not np.array_equal(unshuffled["labels"], shuffled["labels"]) or not np.array_equal(
            unshuffled["input_ids"], shuffled["input_ids"]
        )
        assert sorted(unshuffled["labels"].tolist()) == sorted(shuffled["labels"].tolist())

    def test_invalid_batch_size_raises(self):
        data = SyntheticMRPC(num_examples=8, max_seq_len=16)
        with pytest.raises(ValueError):
            DataLoader(data, batch_size=0)
        with pytest.raises(ValueError):
            list(batch_iterator(data.encode(), batch_size=0))

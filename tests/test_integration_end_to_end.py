"""End-to-end integration tests across subsystems.

These tests reproduce, at reduced scale, the headline experiments of the
paper: protected fine-tuning matches fault-free fine-tuning (Figure 6),
ATTNChecker corrects injected extreme errors during real training steps
(Section 5.2), unprotected training collapses into non-trainable states
(Table 4), and the checkpoint/restore baseline recovers but at much higher
cost (Figure 11).
"""

import math

import numpy as np
import pytest

from repro.core import ATTNChecker, ATTNCheckerConfig
from repro.data import DataLoader, SyntheticMRPC
from repro.faults import FaultInjector, FaultSpec
from repro.models import build_model
from repro.training import CheckpointManager, Trainer, TrainerConfig


def make_setup(model_name="bert-small", batch_size=8, num_examples=32, seed=0):
    model = build_model(model_name, size="tiny", rng=np.random.default_rng(seed))
    data = SyntheticMRPC(
        num_examples=num_examples,
        max_seq_len=model.config.max_seq_len,
        vocab_size=model.config.vocab_size,
        seed=17,
    )
    loader = DataLoader(data, batch_size=batch_size, shuffle=False, seed=3)
    return model, loader.batches()


class TestProtectedTrainingMatchesFaultFree:
    def test_figure6_loss_curves_close(self):
        # Fault-free run.
        model_a, batches = make_setup(seed=0)
        trainer_a = Trainer(model_a, config=TrainerConfig(learning_rate=1e-3))
        clean = trainer_a.train(batches, epochs=2).epoch_losses()

        # Faulty run protected by ATTNChecker: one INF fault per epoch.
        model_b, batches_b = make_setup(seed=0)
        injector = FaultInjector(
            [FaultSpec(matrix="Q", error_type="inf")], rng=np.random.default_rng(5)
        )
        checker = ATTNChecker()
        trainer_b = Trainer(
            model_b,
            config=TrainerConfig(learning_rate=1e-3),
            checker=checker,
            fault_hooks=[injector],
        )
        protected = []
        for _ in range(2):
            injector.arm()
            for batch in batches_b:
                trainer_b.train_step(batch)
            trainer_b.metrics.end_epoch()
        protected = trainer_b.metrics.epoch_losses()

        assert checker.stats.total_corrections > 0
        assert trainer_b.metrics.num_non_trainable() == 0
        # Both runs converge; the recovered run stays close to the clean one.
        assert clean[-1] < clean[0]
        assert protected[-1] < protected[0]
        for c, p in zip(clean, protected):
            assert abs(c - p) < 0.25

    def test_checker_overhead_recorded_per_step(self):
        model, batches = make_setup()
        checker = ATTNChecker()
        trainer = Trainer(model, config=TrainerConfig(learning_rate=1e-3), checker=checker)
        result = trainer.train_step(batches[0])
        assert result.abft_seconds > 0
        assert result.abft_seconds < result.step_seconds


class TestUnprotectedTrainingCollapses:
    @pytest.mark.parametrize("error_type", ["inf", "nan"])
    def test_inf_nan_in_q_cause_non_trainable_state(self, error_type):
        model, batches = make_setup(seed=1)
        injector = FaultInjector(
            [FaultSpec(matrix="Q", error_type=error_type)], rng=np.random.default_rng(11)
        )
        trainer = Trainer(model, config=TrainerConfig(learning_rate=1e-3), fault_hooks=[injector])
        first = trainer.train_step(batches[0])
        second = trainer.train_step(batches[1])
        assert first.non_trainable or second.non_trainable

    def test_near_inf_often_benign(self):
        # near-INF faults frequently leave training alive (low phi in Table 4
        # for V/AS/CL); check that at least the mechanism does not always
        # collapse.
        outcomes = []
        for trial in range(3):
            model, batches = make_setup(seed=trial)
            injector = FaultInjector(
                [FaultSpec(matrix="CL", error_type="near_inf")],
                rng=np.random.default_rng(trial),
            )
            trainer = Trainer(model, config=TrainerConfig(learning_rate=1e-3), fault_hooks=[injector])
            first = trainer.train_step(batches[0])
            second = trainer.train_step(batches[1])
            outcomes.append(first.non_trainable or second.non_trainable)
        assert not all(outcomes)


class TestCheckpointRestoreBaseline:
    def test_recovery_via_restore_is_possible_but_costly(self):
        model, batches = make_setup(seed=2)
        manager = CheckpointManager()
        injector = FaultInjector(
            [FaultSpec(matrix="Q", error_type="nan")], rng=np.random.default_rng(5)
        )
        trainer = Trainer(
            model,
            config=TrainerConfig(
                learning_rate=1e-3, checkpoint_every=1, restore_on_non_trainable=True
            ),
            fault_hooks=[injector],
            checkpoints=manager,
        )
        # Clean step creates the checkpoint to fall back to.
        injector.disarm()
        trainer.train_step(batches[0])
        injector.arm()
        result = trainer.train_step(batches[1])
        follow_up = trainer.train_step(batches[2])
        assert manager.num_saves >= 2
        assert not follow_up.non_trainable
        # Either the faulty step itself recovered via restore, or the injected
        # fault was benign; in the recovered case a restore must have happened.
        if result.restored_from_checkpoint:
            assert manager.num_restores >= 1

    def test_attnchecker_avoids_restores_entirely(self):
        model, batches = make_setup(seed=3)
        manager = CheckpointManager()
        injector = FaultInjector(
            [FaultSpec(matrix="Q", error_type="nan")], rng=np.random.default_rng(5)
        )
        checker = ATTNChecker()
        trainer = Trainer(
            model,
            config=TrainerConfig(
                learning_rate=1e-3, checkpoint_every=1, restore_on_non_trainable=True
            ),
            fault_hooks=[injector],
            checker=checker,
            checkpoints=manager,
        )
        for batch in batches[:3]:
            injector.arm()
            result = trainer.train_step(batch)
            assert not result.non_trainable
        assert manager.num_restores == 0
        assert checker.stats.total_corrections >= 1


class TestMultiModelProtection:
    @pytest.mark.parametrize("name", ["bert-base", "gpt2", "gpt-neo", "roberta"])
    def test_protected_training_step_stays_finite_for_all_families(self, name):
        model, batches = make_setup(model_name=name, seed=4)
        injector = FaultInjector(
            [FaultSpec(matrix="AS", error_type="inf")], rng=np.random.default_rng(7)
        )
        checker = ATTNChecker()
        trainer = Trainer(
            model, config=TrainerConfig(learning_rate=1e-3),
            checker=checker, fault_hooks=[injector],
        )
        result = trainer.train_step(batches[0])
        assert math.isfinite(result.loss)
        assert checker.stats.total_corrections >= 1
        assert checker.stats.total_residual_extreme == 0


class TestAdaptiveFrequenciesInTraining:
    def test_reduced_frequencies_reduce_measured_abft_time(self):
        model_full, batches = make_setup(seed=6)
        checker_full = ATTNChecker()
        trainer_full = Trainer(model_full, config=TrainerConfig(learning_rate=1e-3), checker=checker_full)
        for batch in batches[:2]:
            trainer_full.train_step(batch)

        model_half, batches_b = make_setup(seed=6)
        checker_half = ATTNChecker(
            ATTNCheckerConfig(frequencies={"AS": 0.5, "CL": 0.5, "O": 0.0})
        )
        trainer_half = Trainer(model_half, config=TrainerConfig(learning_rate=1e-3), checker=checker_half)
        for batch in batches_b[:2]:
            trainer_half.train_step(batch)

        assert checker_half.overhead_seconds() < checker_full.overhead_seconds()
        assert checker_half.stats.sections["O"].checks_run == 0

"""Unit tests for the model configuration system and the model zoo."""

import numpy as np
import pytest

from repro.models import (
    BertForSequenceClassification,
    GPT2ForSequenceClassification,
    GPTNeoForSequenceClassification,
    RobertaForSequenceClassification,
    build_model,
    get_config,
    list_models,
)
from repro.models.config import ModelConfig
from repro.models.registry import OVERHEAD_MODEL_NAMES, PAPER_CONFIGS, PAPER_MODEL_NAMES, TINY_CONFIGS
from repro.nn.attention import RecordingHooks


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestModelConfig:
    def test_head_dim(self):
        config = get_config("bert-base", size="paper")
        assert config.head_dim == 64

    def test_invalid_heads_raises(self):
        with pytest.raises(ValueError):
            ModelConfig(
                name="x", family="bert", vocab_size=10, hidden_size=10, num_layers=1,
                num_heads=3, intermediate_size=10, max_seq_len=8,
            )

    def test_invalid_family_raises(self):
        with pytest.raises(ValueError):
            ModelConfig(
                name="x", family="mamba", vocab_size=10, hidden_size=8, num_layers=1,
                num_heads=2, intermediate_size=10, max_seq_len=8,
            )

    def test_scaled_returns_new_config(self):
        config = get_config("bert-base", size="paper")
        smaller = config.scaled(hidden_size=96, num_heads=4)
        assert smaller.hidden_size == 96 and config.hidden_size == 768

    def test_parameter_count_bert_base_order_of_magnitude(self):
        config = get_config("bert-base", size="paper")
        # BERT-base has ~110M parameters; embeddings at seq 128 shrink it a bit.
        assert 80e6 < config.parameter_count() < 130e6

    def test_gemm_ratio_above_99_percent(self):
        for name in PAPER_MODEL_NAMES:
            config = get_config(name, size="paper")
            assert config.attention_gemm_ratio(batch_size=8) > 0.99

    def test_local_attention_alternation(self):
        config = get_config("gpt-neo", size="paper")
        assert not config.layer_uses_local_attention(0)
        assert config.layer_uses_local_attention(1)
        assert not config.layer_uses_local_attention(2)

    def test_attention_flops_scale_with_batch(self):
        config = get_config("bert-base", size="paper")
        assert config.attention_gemm_flops(16) == 2 * config.attention_gemm_flops(8)


class TestRegistry:
    def test_list_models_sizes(self):
        assert set(list_models("paper")) == set(PAPER_CONFIGS)
        assert set(list_models("tiny")) == set(TINY_CONFIGS)

    def test_paper_model_names_subset(self):
        assert set(PAPER_MODEL_NAMES) <= set(PAPER_CONFIGS)
        assert set(OVERHEAD_MODEL_NAMES) <= set(PAPER_CONFIGS)

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            get_config("llama-7b")

    def test_unknown_size_raises(self):
        with pytest.raises(ValueError):
            get_config("bert-base", size="huge")

    def test_build_model_families(self, rng):
        assert isinstance(build_model("bert-base", rng=rng), BertForSequenceClassification)
        assert isinstance(build_model("roberta", rng=rng), RobertaForSequenceClassification)
        assert isinstance(build_model("gpt2", rng=rng), GPT2ForSequenceClassification)
        assert isinstance(build_model("gpt-neo", rng=rng), GPTNeoForSequenceClassification)

    def test_build_model_num_labels_override(self, rng):
        model = build_model("bert-base", rng=rng, num_labels=5)
        assert model.config.num_labels == 5

    def test_bert_sizes_ordered_by_parameters(self, rng):
        sizes = [build_model(n, rng=np.random.default_rng(0)).num_parameters()
                 for n in ("bert-small", "bert-base", "bert-large")]
        assert sizes[0] < sizes[1] < sizes[2]


class TestForwardPasses:
    @pytest.mark.parametrize("name", ["bert-base", "roberta", "gpt2", "gpt-neo"])
    def test_forward_and_loss(self, name, rng):
        model = build_model(name, rng=np.random.default_rng(1))
        config = model.config
        ids = rng.integers(0, config.vocab_size, size=(3, config.max_seq_len))
        mask = np.ones((3, config.max_seq_len))
        labels = np.array([0, 1, 0])
        out = model(ids, attention_mask=mask, labels=labels)
        assert out.logits.shape == (3, config.num_labels)
        assert np.isfinite(out.loss_value)
        assert out.hidden_states.shape == (3, config.max_seq_len, config.hidden_size)

    @pytest.mark.parametrize("name", ["bert-base", "gpt2"])
    def test_backward_populates_all_gradients(self, name, rng):
        model = build_model(name, rng=np.random.default_rng(1))
        config = model.config
        ids = rng.integers(0, config.vocab_size, size=(2, config.max_seq_len))
        out = model(ids, attention_mask=np.ones((2, config.max_seq_len)), labels=np.array([0, 1]))
        out.loss.backward()
        missing = [n for n, p in model.named_parameters() if p.grad is None]
        assert missing == []

    def test_forward_without_labels_has_no_loss(self, tiny_bert, small_batch):
        out = tiny_bert(small_batch["input_ids"], attention_mask=small_batch["attention_mask"])
        assert out.loss is None and out.loss_value is None

    def test_attention_layers_enumeration(self, tiny_bert):
        layers = tiny_bert.attention_layers()
        assert len(layers) == tiny_bert.config.num_layers

    def test_set_attention_hooks_attaches_everywhere(self, rng):
        model = build_model("gpt2", rng=np.random.default_rng(2))
        recorder = RecordingHooks()
        model.set_attention_hooks(recorder)
        config = model.config
        ids = rng.integers(0, config.vocab_size, size=(2, config.max_seq_len))
        model(ids, attention_mask=np.ones((2, config.max_seq_len)))
        assert set(recorder.records) == set(range(config.num_layers))
        model.set_attention_hooks(None)

    def test_gpt2_last_token_pooling_uses_mask(self, rng):
        model = build_model("gpt2", rng=np.random.default_rng(3))
        config = model.config
        ids = rng.integers(4, config.vocab_size, size=(1, config.max_seq_len))
        full_mask = np.ones((1, config.max_seq_len))
        short_mask = np.ones((1, config.max_seq_len))
        short_mask[0, 4:] = 0.0
        model.eval()
        logits_full = model(ids, attention_mask=full_mask).logits.data
        logits_short = model(ids, attention_mask=short_mask).logits.data
        model.train()
        assert not np.allclose(logits_full, logits_short)

    def test_deterministic_given_seed(self, rng):
        a = build_model("bert-base", rng=np.random.default_rng(5))
        b = build_model("bert-base", rng=np.random.default_rng(5))
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert np.array_equal(pa.data, pb.data)

    def test_eval_mode_is_deterministic(self, rng):
        model = build_model("roberta", rng=np.random.default_rng(6))
        config = model.config
        ids = rng.integers(0, config.vocab_size, size=(2, config.max_seq_len))
        mask = np.ones((2, config.max_seq_len))
        model.eval()
        first = model(ids, attention_mask=mask).logits.data
        second = model(ids, attention_mask=mask).logits.data
        model.train()
        assert np.array_equal(first, second)

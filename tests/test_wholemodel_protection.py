"""Whole-model protection: the FFN sections, the widened fault taxonomy and
the optimizer-state checksum.

Covers the PR's acceptance criteria beyond the attention-scope golden pin:

* scope plumbing — ``protect_scope`` validation, FF1/FF2 frequency gating,
  attention-scope checkers ignoring instrumented FFN blocks;
* FFN fault campaigns — extreme errors injected into ``H`` / ``FO`` are
  detected and repaired in training forwards *and* in serving decode, with
  the repair attributed to the corrupted request only;
* counter agreement — measured checksum-GEMM dispatches match the extended
  :class:`SectionCostModel` exactly, in the training loop (every step pays
  the post-update weight re-encode, i.e. the cold column) and in
  steady-state serving decode (O(1) per token, zero hot-path allocations);
* the flip-kind taxonomy (exponent MSB / mantissa LSB / adjacent double bit
  / stuck zero) with per-kind campaign counters;
* the AdamW float64 moment checksum surfacing ``OptimizerStateCorruption``
  at checkpoint save and on snapshot restore.
"""

import numpy as np
import pytest

from repro.core import (
    PROTECT_SCOPES,
    SECTION_REGISTRY,
    VERIFICATION_MODE_CONFIGS,
    ATTNChecker,
    ATTNCheckerConfig,
    SectionCostModel,
    sections_for_scope,
)
from repro.data import SyntheticMRPC
from repro.faults import (
    FLIP_KINDS,
    DetectionCorrectionCampaign,
    FaultInjector,
    FaultSpec,
)
from repro.models import build_model
from repro.nn import ComposedHooks
from repro.serving import RequestGenerator, ServingConfig, ServingEngine
from repro.training import (
    AdamW,
    CheckpointManager,
    OptimizerStateCorruption,
    Trainer,
    TrainerConfig,
)

NUM_TRIALS = 2


def make_bert(seed: int = 0):
    return build_model("bert-base", size="tiny", rng=np.random.default_rng(seed))


def make_batch(model, batch: int = 4, unmasked: bool = True):
    data = SyntheticMRPC(num_examples=16, max_seq_len=model.config.max_seq_len,
                         vocab_size=model.config.vocab_size)
    encoded = dict(data.encode(range(batch)))
    if unmasked:
        encoded["attention_mask"] = np.ones_like(encoded["attention_mask"])
    return encoded


class TestScopePlumbing:
    def test_registry_contains_ffn_sections(self):
        assert {"AS", "CL", "O", "FF1", "FF2"} <= set(SECTION_REGISTRY)
        assert SECTION_REGISTRY["FF1"].boundary_matrix == "H"
        assert SECTION_REGISTRY["FF2"].boundary_matrix == "FO"
        assert SECTION_REGISTRY["FF1"].block == "ffn"
        assert SECTION_REGISTRY["AS"].block == "attention"

    def test_scope_section_sets(self):
        assert set(sections_for_scope("attention")) == {"AS", "CL", "O"}
        assert set(sections_for_scope("attention+ffn")) == {"AS", "CL", "O", "FF1", "FF2"}
        assert set(sections_for_scope("full")) == set(SECTION_REGISTRY)

    def test_unknown_scope_rejected(self):
        with pytest.raises((KeyError, ValueError)):
            ATTNCheckerConfig(protect_scope="attention+lora")

    def test_ffn_frequencies_rejected_outside_scope(self):
        with pytest.raises((KeyError, ValueError)):
            ATTNCheckerConfig(frequencies={"FF1": 1.0})

    def test_ffn_frequencies_accepted_in_scope(self):
        config = ATTNCheckerConfig(
            protect_scope="attention+ffn", frequencies={"FF1": 0.5, "FF2": 1.0}
        )
        assert config.frequencies["FF1"] == 0.5
        assert set(config.active_sections) == {"AS", "CL", "O", "FF1", "FF2"}

    def test_attention_scope_checker_ignores_instrumented_ffn(self):
        """FFN hooks fire on every instrumented model; an attention-scope
        checker must treat them as a no-op (this is what preserves the
        golden pin) — no FF stats, no extra dispatches."""
        model = make_bert()
        batch = make_batch(model)
        checker = ATTNChecker(ATTNCheckerConfig())
        model.set_attention_hooks(checker)
        model.eval()
        model(batch["input_ids"], attention_mask=batch["attention_mask"])
        model.set_attention_hooks(None)
        assert set(checker.stats.sections) == {"AS", "CL", "O"}
        per_layer = SectionCostModel.checksum_gemm_dispatches_per_layer(
            "fused", steady_state=False
        )
        assert checker.dispatch_counts["gemm"] == \
            sum(per_layer.values()) * model.config.num_layers
        checker.close()

    def test_ffn_sections_gate_on_frequency(self):
        model = make_bert()
        batch = make_batch(model)
        checker = ATTNChecker(ATTNCheckerConfig(
            protect_scope="attention+ffn",
            frequencies={"AS": 0.0, "CL": 0.0, "O": 0.0, "FF1": 0.0, "FF2": 1.0},
        ))
        model.set_attention_hooks(checker)
        model.eval()
        model(batch["input_ids"], attention_mask=batch["attention_mask"])
        model.set_attention_hooks(None)
        assert checker.stats.sections["FF2"].checks_run == model.config.num_layers
        assert checker.stats.sections["FF1"].checks_run == 0
        assert checker.stats.sections["FF1"].checks_skipped == model.config.num_layers
        checker.close()


class TestFFNFaultCampaign:
    """Extreme errors in H / FO: 100% detection, correction and recovery."""

    @pytest.fixture(scope="class")
    def campaign_results(self):
        model = make_bert()
        campaign = DetectionCorrectionCampaign(
            model,
            make_batch(model, batch=2),
            checker_config=ATTNCheckerConfig(protect_scope="attention+ffn"),
            rng=np.random.default_rng(11),
        )
        return campaign.run(
            matrices=("H", "FO"),
            error_types=("inf", "nan", "near_inf"),
            trials=NUM_TRIALS,
        )

    def test_all_extreme_ffn_faults_detected_and_corrected(self, campaign_results):
        assert DetectionCorrectionCampaign.all_corrected(campaign_results)
        assert len(campaign_results) == 6
        assert all(r.trials == NUM_TRIALS for r in campaign_results)

    def test_per_gemm_backend_agrees_with_fused(self):
        for backend in ("fused", "per_gemm"):
            model = make_bert()
            batch = make_batch(model, batch=2)
            outcomes = {}
            for matrix in ("H", "FO"):
                injector = FaultInjector(
                    [FaultSpec(matrix=matrix, error_type="inf", layer_index=0,
                               position=(0, 1, 2))],
                    rng=np.random.default_rng(0),
                )
                checker = ATTNChecker(ATTNCheckerConfig(
                    backend=backend, protect_scope="attention+ffn"))
                model.eval()
                model.set_attention_hooks(ComposedHooks([injector, checker]))
                output = model(batch["input_ids"], attention_mask=batch["attention_mask"])
                model.set_attention_hooks(None)
                outcomes[matrix] = (
                    checker.stats.total_detections,
                    checker.stats.total_corrections,
                    checker.stats.total_residual_extreme,
                    output.logits.data.copy(),
                )
                checker.close()
            if backend == "fused":
                fused = outcomes
            else:
                for matrix in ("H", "FO"):
                    assert fused[matrix][:3] == outcomes[matrix][:3]
                    np.testing.assert_array_equal(fused[matrix][3], outcomes[matrix][3])


class TestTrainingDispatchCounters:
    def test_training_dispatches_match_cost_model_exactly(self):
        """Every training step pays the cold column of the cost model: the
        optimizer update invalidates the weight-derived encodings, so the
        FF2 row checksum (like attention's weight encodings) re-encodes
        each step.  Totals must match the model exactly — no hidden work."""
        model = make_bert()
        batch = make_batch(model)
        checker = ATTNChecker(ATTNCheckerConfig(protect_scope="attention+ffn"))
        trainer = Trainer(model, config=TrainerConfig(learning_rate=5e-4),
                          checker=checker)
        steps = 3
        for _ in range(steps):
            trainer.train_step(batch)
        per_layer = SectionCostModel.checksum_gemm_dispatches_per_layer(
            "fused", steady_state=False, scope="attention+ffn"
        )
        expected = sum(per_layer.values()) * model.config.num_layers * steps
        assert checker.dispatch_counts["gemm"] == expected
        sections = sections_for_scope("attention+ffn")
        assert checker.dispatch_counts["detect"] == \
            len(sections) * model.config.num_layers * steps
        checker.close()

    def test_workspace_slots_match_cost_model(self):
        model = make_bert()
        batch = make_batch(model)
        checker = ATTNChecker(ATTNCheckerConfig(protect_scope="attention+ffn"))
        model.set_attention_hooks(checker)
        model.eval()
        model(batch["input_ids"], attention_mask=batch["attention_mask"])
        model.set_attention_hooks(None)
        assert len(checker.engine.workspace) == SectionCostModel.checksum_workspace_slots(
            "immediate", scope="attention+ffn"
        )
        checker.close()

    @pytest.mark.parametrize("mode", ["immediate", "deferred", "async"])
    def test_ffn_faults_detected_in_every_verification_mode(self, mode):
        model = make_bert()
        batch = make_batch(model)
        injector = FaultInjector(
            [FaultSpec(matrix="H", error_type="near_inf", layer_index=0)],
            rng=np.random.default_rng(2),
        )
        checker = ATTNChecker(ATTNCheckerConfig(
            protect_scope="attention+ffn", **VERIFICATION_MODE_CONFIGS[mode]))
        trainer = Trainer(model, config=TrainerConfig(learning_rate=5e-4),
                          checker=checker, fault_hooks=[injector])
        for _ in range(2):
            trainer.train_step(batch)
        trainer.drain_verifications(batch=batch)
        assert injector.num_injections == 1
        assert checker.stats.sections["FF1"].detections >= 1
        if mode == "immediate":
            # Immediate mode repairs in place before the GELU consumes H.
            assert checker.stats.sections["FF1"].corrections >= 1
            assert checker.stats.total_residual_extreme == 0
        elif mode == "async":
            # Async surfaces the corrupted step as a stale (dirty) boundary
            # that the trainer's stale-step machinery owns.
            assert checker.stats.total_stale_detections >= 1
        checker.close()


class TestServingDecodeFFN:
    def test_steady_state_decode_dispatches_match_cost_model(self):
        model = build_model("gpt2", size="tiny", rng=np.random.default_rng(0))
        model.eval()
        checker = ATTNChecker(ATTNCheckerConfig(protect_scope="attention+ffn"))
        model.set_attention_hooks(checker)
        config = model.config
        rng = np.random.default_rng(7)
        total_len = config.max_seq_len
        ids = rng.integers(1, config.vocab_size, size=(2, 4), dtype=np.int64)
        mask = np.ones((2, total_len), dtype=np.float64)
        caches = model.new_kv_caches(2, max_len=total_len)
        model.prefill(ids, mask[:, :4], caches)

        def decode_delta():
            before = checker.dispatch_counts["gemm"]
            token = rng.integers(1, config.vocab_size, size=(2, 1), dtype=np.int64)
            model.decode_step(token, caches, attention_mask=mask)
            return checker.dispatch_counts["gemm"] - before

        steady = sum(
            SectionCostModel.serving_decode_checksum_gemm_dispatches_per_layer(
                scope="attention+ffn"
            ).values()
        )
        cold = sum(
            SectionCostModel.serving_decode_checksum_gemm_dispatches_per_layer(
                steady_state=False, scope="attention+ffn"
            ).values()
        )
        first = decode_delta()
        assert steady * config.num_layers < first <= cold * config.num_layers
        workspace = checker.engine.workspace
        allocations_after_cold = workspace.allocations
        deltas = []
        while caches[0].length < total_len:
            deltas.append(decode_delta())
        # O(1) per token for the FFN sections too, exactly on the model.
        assert deltas == [steady * config.num_layers] * len(deltas)
        # Zero steady-state allocations with the FFN sections enabled.
        assert workspace.allocations == allocations_after_cold
        model.set_attention_hooks(None)
        checker.close()

    @pytest.mark.parametrize("matrix,position", [("H", (1, 0, 3)), ("FO", (1, 0, 2))])
    def test_decode_ffn_fault_repaired_and_attributed(self, matrix, position):
        def run(specs):
            model = build_model("gpt2", size="tiny", rng=np.random.default_rng(0))
            model.eval()
            checker = ATTNChecker(ATTNCheckerConfig(protect_scope="attention+ffn"))
            requests = RequestGenerator(
                vocab_size=model.config.vocab_size, prompt_len_range=(3, 6),
                new_tokens_range=(3, 5), seed=5,
            ).generate(3)
            injector = None
            if specs:
                injector = FaultInjector(specs, rng=np.random.default_rng(0), enabled=False)
                model.set_attention_hooks(ComposedHooks([injector, checker]))
                injector.arm()
            else:
                model.set_attention_hooks(checker)
            engine = ServingEngine(
                model, checker=checker, injector=injector,
                config=ServingConfig(max_batch_size=3),
            )
            report = engine.run(requests)
            model.set_attention_hooks(None)
            checker.close()
            return report

        clean = run([])
        faulty = run([FaultSpec(matrix=matrix, error_type="near_inf",
                                layer_index=0, position=position)])
        assert faulty.checker_stats["detections"] >= 1
        assert faulty.num_evicted == 0
        repaired = [r.repaired_detections for r in faulty.results]
        assert repaired[1] >= 1
        assert repaired[0] == 0 and repaired[2] == 0
        assert [r.tokens for r in faulty.results] == [r.tokens for r in clean.results]


class TestFlipKinds:
    def test_spec_validation(self):
        assert set(FLIP_KINDS) == {
            "exponent_msb", "mantissa_lsb", "adjacent_double_bit", "stuck_zero"
        }
        assert FaultSpec(matrix="AS", error_type="near_inf").flip_kind == "exponent_msb"
        with pytest.raises(KeyError):
            FaultSpec(matrix="AS", error_type="near_inf", flip_kind="sign_bit")
        with pytest.raises(ValueError):
            FaultSpec(matrix="AS", error_type="inf", flip_kind="stuck_zero")

    def test_injector_counts_per_kind(self):
        model = make_bert()
        batch = make_batch(model)
        injector = FaultInjector(
            [
                FaultSpec(matrix="H", error_type="near_inf", layer_index=0,
                          flip_kind="stuck_zero"),
                FaultSpec(matrix="AS", error_type="near_inf", layer_index=0,
                          flip_kind="mantissa_lsb"),
            ],
            rng=np.random.default_rng(4),
        )
        model.eval()
        model.set_attention_hooks(injector)
        model(batch["input_ids"], attention_mask=batch["attention_mask"])
        model.set_attention_hooks(None)
        assert injector.num_injections == 2
        assert injector.injections_by_kind["stuck_zero"] == 1
        assert injector.injections_by_kind["mantissa_lsb"] == 1
        assert injector.injections_by_kind["exponent_msb"] == 0
        kinds = {r.flip_kind for r in injector.records}
        assert kinds == {"stuck_zero", "mantissa_lsb"}
        zero_record = next(r for r in injector.records if r.flip_kind == "stuck_zero")
        assert zero_record.injected_value == 0.0

    def test_mantissa_lsb_is_ulp_sized(self):
        from repro.utils.floatbits import apply_flip_kind
        value = np.float64(1.5)
        flipped = float(apply_flip_kind("mantissa_lsb", value, dtype=np.float64))
        assert flipped != 1.5
        assert abs(flipped - 1.5) < 1e-12

    def test_campaign_mix_reports_per_kind_counters(self):
        model = make_bert()
        campaign = DetectionCorrectionCampaign(
            model,
            make_batch(model, batch=2),
            checker_config=ATTNCheckerConfig(protect_scope="attention+ffn"),
            rng=np.random.default_rng(6),
        )
        weights = {"exponent_msb": 1.0, "mantissa_lsb": 1.0,
                   "adjacent_double_bit": 1.0, "stuck_zero": 1.0}
        (result,) = campaign.run(
            matrices=("H",), error_types=("near_inf",), trials=8,
            flip_kind_weights=weights,
        )
        assert result.flip_kind_mix == {k: 0.25 for k in weights}
        assert sum(result.trials_by_kind.values()) == 8
        # Extreme kinds that fired were detected and corrected; the ULP-sized
        # mantissa flip is benign by construction and goes unnoticed.
        for kind in ("exponent_msb", "adjacent_double_bit", "stuck_zero"):
            if result.trials_by_kind.get(kind):
                assert result.detection_rate_for_kind(kind) == 1.0
                assert result.correction_rate_for_kind(kind) == 1.0
        if result.trials_by_kind.get("mantissa_lsb"):
            assert result.detected_by_kind["mantissa_lsb"] == 0

    def test_default_campaign_replays_historically(self):
        """No mix -> no extra RNG draws: results identical to a run built on
        the same seed before the flip-kind taxonomy existed."""
        def run(**kwargs):
            model = make_bert()
            campaign = DetectionCorrectionCampaign(
                model, make_batch(model, batch=2),
                rng=np.random.default_rng(9),
            )
            results = campaign.run(matrices=("AS",), error_types=("near_inf",),
                                   trials=2, **kwargs)
            return [(r.detected, r.corrected, r.output_matches_reference)
                    for r in results]

        assert run() == run(flip_kind_weights=None)


class TestOptimizerStateChecksum:
    def _trained(self, steps: int = 2):
        model = make_bert()
        batch = make_batch(model)
        optimizer = AdamW(model.parameters(), lr=5e-4)
        for _ in range(steps):
            model.zero_grad()
            output = model(batch["input_ids"], attention_mask=batch["attention_mask"],
                           labels=batch["labels"])
            output.loss.backward()
            optimizer.step()
        return model, optimizer

    def test_clean_state_verifies_and_roundtrips(self):
        model, optimizer = self._trained()
        optimizer.verify_moments()
        CheckpointManager().save(2, model, optimizer)
        fresh = AdamW(model.parameters(), lr=5e-4)
        fresh.load_state_dict(optimizer.state_dict())
        fresh.verify_moments()

    def test_live_corruption_raises_on_save(self):
        model, optimizer = self._trained()
        optimizer._m[3][(0,) * np.ndim(optimizer._m[3])] += 1e-3
        with pytest.raises(OptimizerStateCorruption):
            optimizer.verify_moments()
        with pytest.raises(OptimizerStateCorruption):
            CheckpointManager().save(2, model, optimizer)

    def test_poisoned_snapshot_raises_on_restore(self):
        _, optimizer = self._trained()
        state = optimizer.state_dict()
        key = "m.5"
        state[key][(0,) * state[key].ndim] += 1.0
        fresh = AdamW(optimizer.parameters, lr=5e-4)
        with pytest.raises(OptimizerStateCorruption):
            fresh.load_state_dict(state)

    def test_legacy_snapshot_without_checksums_loads(self):
        _, optimizer = self._trained()
        legacy = {k: v for k, v in optimizer.state_dict().items()
                  if not k.startswith("moment_checksum")}
        fresh = AdamW(optimizer.parameters, lr=5e-4)
        fresh.load_state_dict(legacy)
        fresh.verify_moments()

    def test_on_disk_checkpoint_roundtrip_verifies(self, tmp_path):
        model, optimizer = self._trained()
        manager = CheckpointManager(directory=str(tmp_path))
        manager.save(2, model, optimizer)
        manager.restore(model, optimizer)
        optimizer.verify_moments()

    def test_stale_rollback_window_carries_checksums(self):
        """The trainer's rollback snapshots embed the moment checksums, so a
        poisoned in-memory snapshot is caught at restore time."""
        model = make_bert()
        batch = make_batch(model)
        checker = ATTNChecker(ATTNCheckerConfig(
            protect_scope="attention+ffn", **VERIFICATION_MODE_CONFIGS["async"]))
        trainer = Trainer(
            model,
            config=TrainerConfig(learning_rate=5e-4, stale_policy="reexecute"),
            checker=checker,
        )
        # Four steps: the retained window (max_pending_steps + 1 = 3) then
        # holds only snapshots taken after at least one optimizer update,
        # i.e. ones that carry populated moment buffers and checksums.
        for _ in range(4):
            trainer.train_step(batch)
        assert trainer._stale_snapshots
        _, _, optimizer_state = trainer._stale_snapshots[0]
        assert any(k.startswith("moment_checksum") for k in optimizer_state)
        key = next(k for k in optimizer_state if k.startswith("m."))
        optimizer_state[key][(0,) * optimizer_state[key].ndim] += 1.0
        with pytest.raises(OptimizerStateCorruption):
            trainer._rollback_to_clean_state()
        trainer.drain_verifications(batch=batch)
        checker.close()


class TestScopeCLI:
    def test_protect_scope_flag_runs_quickstart(self, capsys):
        from repro.cli import main
        assert main(["quickstart", "--matrix", "FO", "--error-type", "inf",
                     "--protect-scope", "attention+ffn"]) == 0
        out = capsys.readouterr().out
        assert "detections           : 1" in out
        assert "corrections          : 1" in out

    def test_scopes_constant(self):
        assert PROTECT_SCOPES == ("attention", "attention+ffn", "full")

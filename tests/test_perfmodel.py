"""Unit tests for the analytical GPU performance model."""

import numpy as np
import pytest

from repro.models import get_config
from repro.perfmodel import (
    A100_SPEC,
    AttentionCostModel,
    EncoderThroughputModel,
    GPUSpec,
    KernelCostModel,
    KernelLaunch,
    MultiGPUScaleModel,
    RecoveryCostModel,
    TrainingStepCostModel,
    checksum_encode_time_cublas,
    checksum_encode_time_custom,
    gemm_time,
    roofline_time,
)
from repro.perfmodel.scale import BILLION_SCALE_MODELS, LargeModelSpec


class TestGPUSpec:
    def test_a100_defaults(self):
        assert A100_SPEC.memory_bandwidth == pytest.approx(2.0e12)
        assert A100_SPEC.peak_flops > 1e14

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            GPUSpec(peak_flops=-1)
        with pytest.raises(ValueError):
            GPUSpec(kernel_launch_overhead=-1e-6)

    def test_invalid_launch_rejected(self):
        with pytest.raises(ValueError):
            KernelLaunch(flops=-1)
        with pytest.raises(ValueError):
            KernelLaunch(compute_efficiency=0.0)


class TestRoofline:
    def test_compute_bound_kernel(self):
        launch = KernelLaunch(flops=1e12, bytes=1e3, compute_efficiency=1.0, bandwidth_efficiency=1.0, launches=0)
        assert roofline_time(launch) == pytest.approx(1e12 / A100_SPEC.peak_flops)

    def test_bandwidth_bound_kernel(self):
        launch = KernelLaunch(flops=1e3, bytes=1e12, compute_efficiency=1.0, bandwidth_efficiency=1.0, launches=0)
        assert roofline_time(launch) == pytest.approx(1e12 / A100_SPEC.memory_bandwidth)

    def test_launch_overhead_dominates_tiny_kernels(self):
        launch = KernelLaunch(flops=10, bytes=10)
        assert roofline_time(launch) >= A100_SPEC.kernel_launch_overhead

    def test_time_monotone_in_work(self):
        small = KernelLaunch(flops=1e9, bytes=1e6)
        large = KernelLaunch(flops=1e12, bytes=1e9)
        assert roofline_time(large) > roofline_time(small)


class TestKernels:
    def test_gemm_time_scales_with_size(self):
        assert gemm_time(4096, 4096, 4096) > gemm_time(512, 512, 512)

    def test_small_gemm_uses_lower_efficiency(self):
        # Same FLOPs split over many small batched GEMMs is slower than one
        # big GEMM (cuBLAS batched-small regime).
        big = gemm_time(2048, 2048, 2048)
        small = gemm_time(128, 128, 64, batch=2048 * 2048 * 2048 / (128 * 128 * 64))
        assert small > big

    def test_custom_encoder_faster_than_cublas(self):
        elements = 192 * 128 * 768
        assert checksum_encode_time_custom(elements) < checksum_encode_time_cublas(elements, num_blocks=192)

    def test_kernel_cost_model_wrappers(self):
        model = KernelCostModel()
        assert model.gemm(256, 256, 256) > 0
        assert model.elementwise(1e6) > 0
        assert model.encode_custom(1e6) > 0
        assert model.encode_cublas(1e6, 64) > model.encode_custom(1e6)


class TestAttentionCostModel:
    @pytest.fixture
    def model(self):
        return AttentionCostModel(get_config("bert-base", size="paper"), batch_size=8)

    def test_forward_time_positive_and_scales_with_batch(self, model):
        bigger = AttentionCostModel(get_config("bert-base", size="paper"), batch_size=32)
        assert 0 < model.attention_forward_time() < bigger.attention_forward_time()

    def test_training_step_is_three_times_forward(self, model):
        assert model.attention_step_time() == pytest.approx(3 * model.attention_forward_time())

    def test_abft_breakdown_sections(self, model):
        breakdown = model.abft_breakdown()
        for name in ("AS", "CL", "O"):
            assert breakdown.section_total(name) >= 0
        assert breakdown.total() > 0

    def test_frequencies_scale_abft_time(self, model):
        full = model.abft_time()
        half = model.abft_time(frequencies={"AS": 0.5, "CL": 0.5, "O": 0.5})
        zero = model.abft_time(frequencies={"AS": 0.0, "CL": 0.0, "O": 0.0})
        assert zero == 0.0
        assert half == pytest.approx(full / 2)

    def test_optimized_overhead_is_single_digit_percent(self, model):
        assert 0.01 < model.attention_overhead(optimized=True) < 0.25

    def test_non_optimized_overhead_several_times_larger(self, model):
        ratio = model.attention_overhead(optimized=False) / model.attention_overhead(optimized=True)
        assert ratio > 3.0

    def test_correction_time_patterns(self, model):
        assert model.correction_time("0D") <= model.correction_time("1D")
        assert model.correction_time("O") > 0
        with pytest.raises(KeyError):
            model.correction_time("3D")


class TestTrainingStepCostModel:
    @pytest.fixture
    def model(self):
        return TrainingStepCostModel(get_config("bert-base", size="paper"), batch_size=8)

    def test_step_time_exceeds_attention_time(self, model):
        assert model.step_time() > model.attention_step_time()

    def test_step_overhead_below_attention_overhead(self, model):
        assert model.step_overhead() < model.attention_overhead()

    def test_paper_shape_figure7(self):
        # Per-step overhead is a few percent, attention overhead roughly 2-3x
        # larger, for every model of Figure 7.
        for name in ("bert-small", "bert-base", "bert-large", "gpt2", "gpt-neo", "roberta"):
            tm = TrainingStepCostModel(get_config(name, size="paper"), batch_size=8)
            assert 0.01 < tm.step_overhead() < 0.12
            assert tm.attention_overhead() > tm.step_overhead()

    def test_paper_shape_figure8_optimisation_gap(self):
        for name in ("bert-base", "gpt2", "gpt-neo", "roberta"):
            tm = TrainingStepCostModel(get_config(name, size="paper"), batch_size=16)
            gap = tm.attention_overhead(optimized=False) / tm.attention_overhead(optimized=True)
            assert gap > 3.0

    def test_section_times_cover_three_sections(self, model):
        times = model.section_times()
        assert set(times) == {"AS", "CL", "O"}
        assert all(t > 0 for t in times.values())


class TestEncoderThroughput:
    def test_custom_beats_cublas_everywhere(self):
        sweep = EncoderThroughputModel()
        custom = sweep.model_custom()
        cublas = sweep.model_cublas()
        for c, b in zip(custom, cublas):
            assert c.throughput_tbps > b.throughput_tbps

    def test_custom_reaches_high_bandwidth_fraction(self):
        sweep = EncoderThroughputModel()
        top = sweep.model_custom()[-1]
        assert top.throughput_tbps > 0.8 * A100_SPEC.memory_bandwidth / 1e12

    def test_cublas_stays_below_ten_percent(self):
        sweep = EncoderThroughputModel()
        for point in sweep.model_cublas():
            assert point.throughput_tbps < 0.10 * A100_SPEC.memory_bandwidth / 1e12

    def test_speedup_of_order_thirteen(self):
        sweep = EncoderThroughputModel()
        speedup = EncoderThroughputModel.speedup(sweep.model_custom(), sweep.model_cublas())
        assert 5.0 < speedup < 20.0

    def test_measured_numpy_throughput_positive(self):
        sweep = EncoderThroughputModel()
        points = sweep.measure_numpy(batch_sizes=(8, 16), repeats=1)
        assert all(p.throughput_tbps > 0 for p in points)

    def test_throughput_increases_with_batch(self):
        sweep = EncoderThroughputModel()
        tbps = [p.throughput_tbps for p in sweep.model_custom()]
        assert tbps == sorted(tbps)


class TestRecoveryModel:
    def test_figure11_shape(self):
        for name in ("bert-base", "gpt2", "gpt-neo", "roberta"):
            comparison = RecoveryCostModel(get_config(name, size="paper"), batch_size=8).compare()
            assert comparison.checkpoint_restore_overhead > 2.0       # > 200 %
            assert comparison.attnchecker_overhead < 0.15             # < 15 %
            assert comparison.improvement > 20.0                      # tens of x

    def test_correction_overheads_small_and_ordered(self):
        model = RecoveryCostModel(get_config("bert-base", size="paper"), batch_size=8)
        overheads = model.correction_overheads()
        assert overheads["0D"] <= overheads["1D"]
        assert overheads["O"] < 0.05
        assert all(v < 0.05 for v in overheads.values())

    def test_invalid_framework_factor(self):
        with pytest.raises(ValueError):
            RecoveryCostModel(get_config("bert-base", size="paper"), 8, framework_factor=0.5)

    def test_checkpoint_bytes_match_parameter_count(self):
        config = get_config("bert-base", size="paper")
        model = RecoveryCostModel(config, batch_size=8)
        assert model.checkpoint_bytes() == pytest.approx(config.parameter_count() * 4)


class TestScaleModel:
    def test_parameter_counts_match_names(self):
        assert BILLION_SCALE_MODELS["30B"].parameter_count == pytest.approx(30e9, rel=0.15)
        assert BILLION_SCALE_MODELS["60B"].parameter_count == pytest.approx(60e9, rel=0.15)
        assert BILLION_SCALE_MODELS["100B"].parameter_count == pytest.approx(100e9, rel=0.15)

    def test_figure12_overhead_nearly_constant(self):
        points = MultiGPUScaleModel(num_gpus=1024).sweep()
        overheads = [p.abft_overhead for p in points]
        assert all(0.001 < o < 0.12 for o in overheads)
        assert max(overheads) / min(overheads) < 1.8

    def test_step_time_grows_with_model_size(self):
        points = MultiGPUScaleModel(num_gpus=1024).sweep()
        times = [p.step_seconds for p in points]
        assert times == sorted(times)

    def test_allreduce_scales_with_parameters(self):
        model = MultiGPUScaleModel(num_gpus=1024)
        small = model.evaluate(BILLION_SCALE_MODELS["30B"])
        large = model.evaluate(BILLION_SCALE_MODELS["100B"])
        assert large.allreduce_seconds > small.allreduce_seconds

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            MultiGPUScaleModel(num_gpus=0)
        with pytest.raises(ValueError):
            MultiGPUScaleModel(mfu=0.0)

    def test_custom_spec(self):
        spec = LargeModelSpec(name="tiny", hidden_size=1024, num_layers=4, num_heads=16)
        point = MultiGPUScaleModel(num_gpus=8).evaluate(spec)
        assert point.step_seconds > 0 and point.abft_overhead > 0

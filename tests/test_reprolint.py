"""Tests for reprolint, the AST-based invariant checker (tools/reprolint).

Every rule gets a positive fixture (the invariant violated → the rule fires)
and a negative fixture (compliant code → silence), exercised on synthetic
trees that mirror the real repo layout.  The engine-level behaviours —
inline suppressions, line-number-free fingerprints, the committed-baseline
round trip and stale-entry detection — are covered separately, and a final
gate test runs the real tool over ``src/repro`` against the committed
baseline, which is exactly the CI ``static-analysis`` job.
"""

from __future__ import annotations

import json
import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "tools"))

from reprolint.baselines import Baseline, BaselineEntry  # noqa: E402
from reprolint.cli import main as reprolint_main  # noqa: E402
from reprolint.engine import (  # noqa: E402
    PARSE_ERROR_RULE,
    LintRunner,
    parse_suppressions,
)
from reprolint.rules import all_rules  # noqa: E402


def write_tree(root: Path, files: dict) -> None:
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")


def lint(root: Path, files: dict, baseline=None):
    write_tree(root, files)
    runner = LintRunner(root, all_rules())
    return runner.run([Path("src/repro")], baseline)


def rules_fired(result):
    return sorted({f.rule for f in result.new})


# ---------------------------------------------------------------------------
# rule registry / catalog
# ---------------------------------------------------------------------------


def test_registry_ids_and_catalog_metadata():
    rules = all_rules()
    assert [r.id for r in rules] == [
        "BK001", "DT001", "XF001", "TH001", "WS001", "LY001",
    ]
    for rule in rules:
        assert rule.invariant, rule.id
        assert rule.rationale, rule.id
        assert rule.example, rule.id


# ---------------------------------------------------------------------------
# BK001 — xp-genericity
# ---------------------------------------------------------------------------


def test_bk001_flags_numpy_import_and_uses_in_core(tmp_path):
    result = lint(tmp_path, {
        "src/repro/core/bad.py": """
            import numpy as np

            def kernel(x):
                return np.sum(np.asarray(x))
        """,
    })
    bk = [f for f in result.new if f.rule == "BK001"]
    details = {f.detail for f in bk}
    assert "import:numpy" in details
    assert "use:np.sum" in details
    assert "use:np.asarray" in details


def test_bk001_flags_from_numpy_import(tmp_path):
    result = lint(tmp_path, {
        "src/repro/core/bad.py": "from numpy.linalg import norm\n",
    })
    assert rules_fired(result) == ["BK001"]


def test_bk001_silent_on_xp_generic_core_and_on_other_layers(tmp_path):
    result = lint(tmp_path, {
        "src/repro/core/good.py": """
            from repro.backend import namespace_of

            def kernel(x):
                xp = namespace_of(x)
                return xp.sum(x, dtype=xp.float64)
        """,
        # numpy is fine outside core/
        "src/repro/nn/layers.py": "import numpy as np\n",
        "src/repro/faults/injector.py": "import numpy as np\n",
    })
    assert result.new == []


# ---------------------------------------------------------------------------
# DT001 — float64 accumulation
# ---------------------------------------------------------------------------


def test_dt001_flags_reduction_without_float64(tmp_path):
    result = lint(tmp_path, {
        "src/repro/core/checksums.py": """
            def encode_column_checksums(x, xp):
                return xp.sum(x, axis=0)
        """,
    })
    assert rules_fired(result) == ["DT001"]
    assert result.new[0].detail == "call:sum"


def test_dt001_silent_with_float64_dtype_or_outside_scope(tmp_path):
    result = lint(tmp_path, {
        "src/repro/core/checksums.py": """
            def encode_column_checksums(x, xp):
                return xp.sum(x, axis=0, dtype=xp.float64)

            def some_helper(x, xp):
                return xp.sum(x, axis=0)  # not a checksum encode/detect function
        """,
        # sum without dtype in a non-checksum core file is out of DT001 scope
        "src/repro/core/other.py": """
            def encode_thing(x, xp):
                return xp.mean(x)
        """,
    })
    assert result.new == []


def test_dt001_flags_eec_abft_check_functions(tmp_path):
    result = lint(tmp_path, {
        "src/repro/core/eec_abft.py": """
            def check_columns(flat, xp):
                return xp.sum(flat, axis=1)
        """,
    })
    assert rules_fired(result) == ["DT001"]


# ---------------------------------------------------------------------------
# XF001 — host-transfer leak
# ---------------------------------------------------------------------------


def test_xf001_flags_exports_outside_seam(tmp_path):
    result = lint(tmp_path, {
        "src/repro/core/leaky.py": """
            def snapshot(arr, backend):
                host = arr.numpy()
                other = arr.cpu()
                third = backend.to_numpy(arr)
                return host, other, third
        """,
    })
    xf = [f for f in result.new if f.rule == "XF001"]
    assert {f.detail for f in xf} == {"export:numpy", "export:cpu", "export:to_numpy"}


def test_xf001_silent_in_seam_functions_and_backend_layer(tmp_path):
    result = lint(tmp_path, {
        # the engine's adoption/write-back seam is allowlisted by name
        "src/repro/core/engine.py": """
            def _write_back_section(pinned, out):
                return pinned.to_numpy(out)
        """,
        # the backend layer implements the exports; excluded wholesale
        "src/repro/backend/torch_backend.py": """
            def to_numpy(self, array):
                return array.cpu().numpy()
        """,
        # dict.get(key) takes arguments: not a device export
        "src/repro/core/config_reader.py": """
            def read(options):
                return options.get("mode")
        """,
    })
    assert result.new == []


# ---------------------------------------------------------------------------
# TH001 — lock discipline
# ---------------------------------------------------------------------------


def test_th001_flags_unlocked_shared_attribute_access(tmp_path):
    result = lint(tmp_path, {
        "src/repro/core/engine.py": """
            class ProtectionEngine:
                def _join_worker(self):
                    self._shutdown = False
        """,
    })
    assert rules_fired(result) == ["TH001"]
    assert result.new[0].symbol == "ProtectionEngine._join_worker"


def test_th001_silent_under_lock_in_locked_methods_and_init(tmp_path):
    result = lint(tmp_path, {
        "src/repro/core/engine.py": """
            class ProtectionEngine:
                def __init__(self):
                    self._shutdown = False
                    self._inflight = 0

                def _join_worker(self):
                    with self._cv:
                        self._shutdown = True

                def _harvest_locked(self):
                    return self._completed
        """,
    })
    assert result.new == []


def test_th001_nested_function_resets_lock_context(tmp_path):
    # A closure defined under the lock runs later, without it.
    result = lint(tmp_path, {
        "src/repro/core/engine.py": """
            class ProtectionEngine:
                def submit(self):
                    with self._cv:
                        def callback():
                            return self._inflight
                        return callback
        """,
    })
    assert rules_fired(result) == ["TH001"]


def test_th001_covers_comm_collective_rendezvous_state(tmp_path):
    result = lint(tmp_path, {
        "src/repro/comm/collective.py": """
            class ThreadCollective:
                def contribute(self):
                    self._entries["k"] = []

                def finish(self):
                    with self._cv:
                        return self._results["k"]
        """,
    })
    assert rules_fired(result) == ["TH001"]
    assert result.new[0].detail == "attr:_entries"


def test_th001_covers_protected_collective_accounting(tmp_path):
    result = lint(tmp_path, {
        "src/repro/comm/protected.py": """
            class ProtectedCollective:
                def __init__(self):
                    self._mismatches = 0

                def counters(self):
                    return self._checksum_encodes

                def fold_timers(self):
                    with self._lock:
                        self._verify_seconds = 0.0
        """,
    })
    assert rules_fired(result) == ["TH001"]
    assert result.new[0].detail == "attr:_checksum_encodes"


def test_th001_shared_attrs_are_per_file(tmp_path):
    # The engine's attr names are not shared state in comm files and vice
    # versa — the rule scopes its attribute sets per file.
    result = lint(tmp_path, {
        "src/repro/comm/collective.py": """
            class ThreadCollective:
                def poke(self):
                    self._inbox = []
        """,
        "src/repro/core/engine.py": """
            class ProtectionEngine:
                def poke(self):
                    self._entries = {}
        """,
    })
    assert result.new == []


def test_th001_covers_bucket_accounting(tmp_path):
    # BucketAccounting's launch counters and overlap timing accumulators are
    # bumped from every rank's worker thread mid-backward; unlocked access is
    # a finding, locked access and __init__ are clean.
    result = lint(tmp_path, {
        "src/repro/comm/bucketing.py": """
            class BucketAccounting:
                def __init__(self):
                    self._launches = 0

                def record_launch(self):
                    self._overlapped_launches += 1

                def counters(self):
                    with self._lock:
                        return self._retries
        """,
    })
    assert rules_fired(result) == ["TH001"]
    assert result.new[0].detail == "attr:_overlapped_launches"


def test_th001_covers_deposit_copy_counter(tmp_path):
    # The copy-on-deposit elision counter is rendezvous state like the
    # entries map: reads outside _cv are findings too.
    result = lint(tmp_path, {
        "src/repro/comm/collective.py": """
            class ThreadCollective:
                def deposit_copies(self):
                    return self._deposit_copies
        """,
    })
    assert rules_fired(result) == ["TH001"]
    assert result.new[0].detail == "attr:_deposit_copies"


def test_th001_registry_seam_files_hold_no_shared_state(tmp_path):
    # The op/section registries are immutable declarations: hooks.py and
    # sections.py carry no worker-shared attribute set, so even an engine
    # attr name touched there is out of scope.  Cross-thread state for a new
    # section handler belongs in engine.py (and in the rule's map).
    result = lint(tmp_path, {
        "src/repro/core/hooks.py": """
            class OpRegistry:
                def poke(self):
                    self._inflight = 0
        """,
        "src/repro/core/sections.py": """
            class SectionRegistry:
                def poke(self):
                    self._inbox = []
        """,
    })
    assert result.new == []


# ---------------------------------------------------------------------------
# WS001 — workspace contract
# ---------------------------------------------------------------------------


def test_ws001_flags_raw_namespace_calls_in_engine(tmp_path):
    result = lint(tmp_path, {
        "src/repro/core/engine.py": """
            def _protect(xp, a, b):
                return xp.matmul(a, b)
        """,
    })
    assert rules_fired(result) == ["WS001"]


def test_ws001_contract_is_section_generic(tmp_path):
    # The whole-model refactor made the engine hot path iterate *registered*
    # sections; a verify handler written for a new block (here: the FFN's
    # FF1) inherits the out= obligation without the rule naming sections.
    result = lint(tmp_path, {
        "src/repro/core/engine.py": """
            def _verify_ff1_boundary(xp, cs_x, w_up):
                return xp.matmul(cs_x, w_up)
        """,
    })
    ws = [f for f in result.new if f.rule == "WS001"]
    assert [f.detail for f in ws] == ["call:matmul"]
    assert "_verify_ff1_boundary" in ws[0].symbol


def test_ws001_per_gemm_reference_backend_stays_out_of_scope(tmp_path):
    # attention_checker.py hosts the deliberately allocation-per-call
    # reference backend the fused engine is benchmarked against.
    result = lint(tmp_path, {
        "src/repro/core/attention_checker.py": """
            def _handle_ff_down(xp, h, w_down):
                return xp.matmul(h, w_down)
        """,
    })
    assert result.new == []


def test_ws001_silent_on_into_helpers_and_outside_engine(tmp_path):
    result = lint(tmp_path, {
        "src/repro/core/engine.py": """
            from repro.core.workspace import matmul_into

            def _protect(xp, a, b, out):
                return matmul_into(xp, a, b, out)
        """,
        # raw matmul is allowed outside the engine hot path (e.g. the
        # queued-checksum bypass in checksums.py is the design)
        "src/repro/core/other_kernels.py": """
            def combine(xp, a, b):
                return xp.matmul(a, b)
        """,
    })
    assert result.new == []


# ---------------------------------------------------------------------------
# LY001 — layering
# ---------------------------------------------------------------------------


def test_ly001_flags_upward_imports(tmp_path):
    result = lint(tmp_path, {
        "src/repro/core/checker.py": "from repro.nn.attention import AttentionHooks\n",
        "src/repro/backend/helper.py": "import repro.core.checksums\n",
    })
    ly = [f for f in result.new if f.rule == "LY001"]
    assert {f.detail for f in ly} == {
        "import:repro.nn.attention",
        "import:repro.core.checksums",
    }


def test_ly001_allows_type_checking_gated_and_downward_imports(tmp_path):
    result = lint(tmp_path, {
        "src/repro/core/adaptive.py": """
            from typing import TYPE_CHECKING

            from repro.backend import namespace_of

            if TYPE_CHECKING:
                from repro.models.config import ModelConfig
        """,
        # nn importing core is the sanctioned direction
        "src/repro/nn/attention.py": "from repro.core.hooks import AttentionHooks\n",
    })
    assert result.new == []


def test_ly001_comm_layer_sits_beside_core_above_backend(tmp_path):
    result = lint(tmp_path, {
        # comm may import the backend seam and utils...
        "src/repro/comm/collective.py": """
            from repro.backend import namespace_of
            from repro.utils.timing import TimingRegistry
        """,
        # ...but not core or the model stack.
        "src/repro/comm/protected.py": """
            from repro.core.checksums import encode_column_checksums
            from repro.training.trainer import Trainer
        """,
    })
    ly = [f for f in result.new if f.rule == "LY001"]
    assert {f.detail for f in ly} == {
        "import:repro.core.checksums",
        "import:repro.training.trainer",
    }


def test_ly001_registry_seam_must_not_import_newer_upper_layers(tmp_path):
    # The op/section registries are the seam every instrumented block declares
    # itself through; the forbidden maps also cover the layers that postdate
    # the original rule (faults / serving / analysis), so a block-specific
    # import cannot re-specialize the generalized seam.
    result = lint(tmp_path, {
        "src/repro/core/hooks.py": "from repro.faults.injector import FaultSpec\n",
        "src/repro/core/sections.py": "import repro.serving.engine\n",
        "src/repro/comm/collective.py": "from repro.analysis import reporting\n",
    })
    ly = [f for f in result.new if f.rule == "LY001"]
    assert {f.detail for f in ly} == {
        "import:repro.faults.injector",
        "import:repro.serving.engine",
        "import:repro.analysis",
    }


def test_ly001_bucketing_inherits_the_comm_contract(tmp_path):
    # comm/bucketing.py operates on raw backend arrays; importing the
    # autograd tensor layer (where the readiness hooks live) or the trainer
    # that drives it would invert the seam.
    result = lint(tmp_path, {
        "src/repro/comm/bucketing.py": """
            from repro.backend import backend_of
            from repro.tensor.autograd import Tensor
            from repro.training.parallel import DataParallelTrainer
        """,
    })
    ly = [f for f in result.new if f.rule == "LY001"]
    assert {f.detail for f in ly} == {
        "import:repro.tensor.autograd",
        "import:repro.training.parallel",
    }


def test_ly001_nn_reexport_of_registry_types_is_downward(tmp_path):
    # repro.nn.attention re-exporting the registry enums (FeedForwardOp,
    # FFN_SECTION_BOUNDARY_OPS) is the sanctioned direction: nn -> core.
    result = lint(tmp_path, {
        "src/repro/nn/attention.py": """
            from repro.core.hooks import (
                FFN_SECTION_BOUNDARY_OPS,
                AttentionOp,
                FeedForwardOp,
            )
        """,
    })
    assert result.new == []


# ---------------------------------------------------------------------------
# suppressions
# ---------------------------------------------------------------------------


def test_inline_suppression_silences_one_line(tmp_path):
    result = lint(tmp_path, {
        "src/repro/core/engine.py": """
            def _protect(xp, a, b):
                first = xp.matmul(a, b)  # reprolint: disable=WS001
                second = xp.matmul(a, b)
                return first, second
        """,
    })
    assert len([f for f in result.new if f.rule == "WS001"]) == 1
    assert result.suppressed == 1


def test_standalone_suppression_comment_covers_next_line(tmp_path):
    result = lint(tmp_path, {
        "src/repro/core/engine.py": """
            def _protect(xp, a, b):
                # reprolint: disable=WS001
                return xp.matmul(a, b)
        """,
    })
    assert result.new == []
    assert result.suppressed == 1


def test_file_level_suppression_and_multi_rule_syntax(tmp_path):
    result = lint(tmp_path, {
        "src/repro/core/engine.py": """
            # reprolint: disable-file=WS001,TH001
            class ProtectionEngine:
                def _protect(self, xp, a, b):
                    self._shutdown = True
                    return xp.matmul(a, b)
        """,
    })
    assert result.new == []
    assert result.suppressed == 2


def test_parse_suppressions_shapes():
    file_disabled, line_disabled = parse_suppressions(
        "x = 1  # reprolint: disable=BK001,WS001\n"
        "# reprolint: disable-file=XF001\n"
    )
    assert file_disabled == {"XF001"}
    assert line_disabled[1] == {"BK001", "WS001"}


# ---------------------------------------------------------------------------
# fingerprints
# ---------------------------------------------------------------------------


def test_fingerprints_survive_line_number_drift(tmp_path):
    source = """
        def _protect(xp, a, b):
            return xp.matmul(a, b)
    """
    first = lint(tmp_path / "a", {"src/repro/core/engine.py": source})
    shifted = "\n\n\n# a comment\n" + textwrap.dedent(source)
    second = lint(tmp_path / "b", {"src/repro/core/engine.py": shifted})
    assert first.new[0].fingerprint == second.new[0].fingerprint
    assert first.new[0].line != second.new[0].line


def test_fingerprints_distinguish_repeated_identical_findings(tmp_path):
    result = lint(tmp_path, {
        "src/repro/core/engine.py": """
            def _protect(xp, a, b):
                return xp.matmul(a, b) + xp.matmul(a, b)
        """,
    })
    prints = [f.fingerprint for f in result.new]
    assert len(prints) == 2
    assert len(set(prints)) == 2


# ---------------------------------------------------------------------------
# baseline round trip
# ---------------------------------------------------------------------------


def test_baseline_round_trip_and_gating(tmp_path):
    files = {
        "src/repro/core/engine.py": """
            def _protect(xp, a, b):
                return xp.matmul(a, b)
        """,
    }
    result = lint(tmp_path, files)
    assert len(result.new) == 1

    baseline = Baseline.from_findings(result.new)
    path = tmp_path / "baseline.json"
    baseline.save(path)
    loaded = Baseline.load(path)
    assert loaded.fingerprint_paths() == baseline.fingerprint_paths()
    assert loaded.entries[0].reason.startswith("TODO")

    gated = lint(tmp_path, files, baseline=loaded.fingerprint_paths())
    assert gated.new == []
    assert len(gated.baselined) == 1
    assert gated.clean


def test_baseline_preserves_curated_reasons_on_rewrite(tmp_path):
    files = {
        "src/repro/core/engine.py": """
            def _protect(xp, a, b):
                return xp.matmul(a, b)
        """,
    }
    result = lint(tmp_path, files)
    first = Baseline.from_findings(result.new)
    curated = Baseline(entries=[
        BaselineEntry(**{**e.to_json(), "reason": "reviewed: deliberate"})
        for e in first.entries
    ])
    rewritten = Baseline.from_findings(result.new, previous=curated)
    assert rewritten.entries[0].reason == "reviewed: deliberate"


def test_stale_baseline_entries_scoped_to_scanned_files(tmp_path):
    files = {
        "src/repro/core/engine.py": "def _protect(xp):\n    return xp\n",
    }
    stale_entry = {"deadbeefdeadbeef": "src/repro/core/engine.py"}
    result = lint(tmp_path, files, baseline=stale_entry)
    assert result.stale_fingerprints == ["deadbeefdeadbeef"]
    assert not result.clean or result.stale_fingerprints  # CLI treats stale as failure

    unscanned_entry = {"deadbeefdeadbeef": "src/repro/training/trainer.py"}
    result = lint(tmp_path / "other", files, baseline=unscanned_entry)
    assert result.stale_fingerprints == []


def test_parse_error_reports_rl999_and_is_never_baselined(tmp_path):
    files = {"src/repro/core/broken.py": "def broken(:\n"}
    result = lint(tmp_path, files)
    assert [f.rule for f in result.new] == [PARSE_ERROR_RULE]
    fingerprint = result.new[0].fingerprint
    gated = lint(
        tmp_path, files, baseline={fingerprint: "src/repro/core/broken.py"}
    )
    assert [f.rule for f in gated.new] == [PARSE_ERROR_RULE]


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def _cli_tree(tmp_path: Path) -> Path:
    write_tree(tmp_path, {
        "src/repro/core/engine.py": """
            def _protect(xp, a, b):
                return xp.matmul(a, b)
        """,
    })
    return tmp_path


def test_cli_exit_codes_and_json_output(tmp_path, capsys):
    root = _cli_tree(tmp_path)
    code = reprolint_main(["--root", str(root), "--format", "json", "src/repro"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["clean"] is False
    assert [f["rule"] for f in payload["new"]] == ["WS001"]

    code = reprolint_main(["--root", str(root), "--write-baseline", "src/repro"])
    capsys.readouterr()
    assert code == 0
    assert (root / "tools/reprolint/baseline.json").is_file()

    code = reprolint_main(["--root", str(root), "src/repro"])
    out = capsys.readouterr().out
    assert code == 0
    assert "clean" in out


def test_cli_output_file_and_list_rules(tmp_path, capsys):
    root = _cli_tree(tmp_path)
    report = root / "report.json"
    code = reprolint_main([
        "--root", str(root), "--format", "json", "--output", str(report),
        "src/repro",
    ])
    assert code == 1
    assert json.loads(report.read_text())["new"]

    assert reprolint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("BK001", "DT001", "XF001", "TH001", "WS001", "LY001"):
        assert rule_id in out


def test_cli_usage_errors_exit_2(tmp_path):
    with pytest.raises(SystemExit) as excinfo:
        reprolint_main(["--root", str(tmp_path / "missing"), "src/repro"])
    assert excinfo.value.code == 2
    with pytest.raises(SystemExit) as excinfo:
        reprolint_main(["--root", str(tmp_path), "no/such/path"])
    assert excinfo.value.code == 2


# ---------------------------------------------------------------------------
# the real repo stays clean — the CI gate, as a test
# ---------------------------------------------------------------------------


def test_repo_is_clean_against_committed_baseline(capsys):
    code = reprolint_main(["--root", str(REPO_ROOT), "src/repro"])
    out = capsys.readouterr().out
    assert code == 0, f"reprolint found new findings or stale entries:\n{out}"


def test_committed_baseline_reasons_are_reviewed():
    baseline = Baseline.load(REPO_ROOT / "tools/reprolint/baseline.json")
    for entry in baseline.entries:
        assert entry.reason and not entry.reason.startswith("TODO"), entry

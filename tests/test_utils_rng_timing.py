"""Unit tests for the RNG stream registry and the timing utilities."""

import time

import numpy as np
import pytest

from repro.utils.rng import RandomState, new_rng, spawn_rngs
from repro.utils.timing import Timer, TimingRegistry, timed


class TestNewRng:
    def test_default_seed_is_deterministic(self):
        assert new_rng().integers(0, 1000) == new_rng().integers(0, 1000)

    def test_explicit_seed_reproducible(self):
        a = new_rng(7).normal(size=5)
        b = new_rng(7).normal(size=5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(new_rng(1).normal(size=8), new_rng(2).normal(size=8))


class TestSpawn:
    def test_spawn_count(self):
        children = spawn_rngs(new_rng(0), 5)
        assert len(children) == 5

    def test_spawned_streams_are_independent(self):
        children = spawn_rngs(new_rng(0), 2)
        a = children[0].normal(size=16)
        b = children[1].normal(size=16)
        assert not np.allclose(a, b)

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(new_rng(0), -1)

    def test_spawn_zero_is_empty(self):
        assert spawn_rngs(new_rng(0), 0) == []


class TestRandomState:
    def test_same_name_same_stream_object(self):
        state = RandomState(seed=5)
        assert state.stream("init") is state.stream("init")

    def test_streams_isolated_by_name(self):
        state = RandomState(seed=5)
        a = state.stream("a").normal(size=4)
        b = state.stream("b").normal(size=4)
        assert not np.allclose(a, b)

    def test_stream_deterministic_across_instances(self):
        a = RandomState(seed=5).stream("faults").normal(size=4)
        b = RandomState(seed=5).stream("faults").normal(size=4)
        assert np.array_equal(a, b)

    def test_reset_recreates_streams(self):
        state = RandomState(seed=5)
        first = state.stream("x").normal(size=3)
        state.reset()
        second = state.stream("x").normal(size=3)
        assert np.array_equal(first, second)


class TestTimer:
    def test_measures_positive_time(self):
        timer = Timer()
        with timer.measure():
            time.sleep(0.001)
        assert timer.elapsed > 0
        assert timer.count == 1

    def test_mean_over_multiple_measurements(self):
        timer = Timer()
        for _ in range(3):
            with timer.measure():
                pass
        assert timer.count == 3
        assert timer.mean == pytest.approx(timer.elapsed / 3)

    def test_double_start_raises(self):
        timer = Timer().start()
        with pytest.raises(RuntimeError):
            timer.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset(self):
        timer = Timer()
        with timer.measure():
            pass
        timer.reset()
        assert timer.elapsed == 0.0 and timer.count == 0

    def test_timed_contextmanager(self):
        with timed() as t:
            time.sleep(0.001)
        assert t.elapsed > 0


class TestTimingRegistry:
    def test_accumulates_by_key(self):
        registry = TimingRegistry()
        with registry.measure("a/x"):
            pass
        with registry.measure("a/y"):
            pass
        with registry.measure("b/z"):
            pass
        assert registry.total("a/") == pytest.approx(
            registry.elapsed("a/x") + registry.elapsed("a/y")
        )
        assert registry.total() >= registry.total("a/")

    def test_unknown_key_elapsed_is_zero(self):
        assert TimingRegistry().elapsed("missing") == 0.0

    def test_keys_sorted(self):
        registry = TimingRegistry()
        registry.timer("b")
        registry.timer("a")
        assert registry.keys() == ["a", "b"]

    def test_report_contains_keys(self):
        registry = TimingRegistry()
        with registry.measure("encode"):
            pass
        assert "encode" in registry.report()

    def test_reset_clears(self):
        registry = TimingRegistry()
        with registry.measure("x"):
            pass
        registry.reset()
        assert registry.as_dict() == {}

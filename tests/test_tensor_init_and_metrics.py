"""Unit tests for parameter initialisers and the training metrics container."""

import math

import numpy as np
import pytest

from repro.tensor.init import fan_in_out, kaiming_uniform, normal_init, xavier_uniform, zeros_init
from repro.training.metrics import StepResult, TrainingMetrics


@pytest.fixture
def rng():
    return np.random.default_rng(5)


class TestFanInOut:
    def test_2d(self):
        assert fan_in_out((4, 8)) == (4, 8)

    def test_1d(self):
        assert fan_in_out((6,)) == (6, 6)

    def test_higher_rank_uses_receptive_field(self):
        fan_in, fan_out = fan_in_out((3, 4, 8))
        assert fan_in == 4 * 3 and fan_out == 8 * 3

    def test_empty_shape_rejected(self):
        with pytest.raises(ValueError):
            fan_in_out(())


class TestInitialisers:
    def test_xavier_bounds(self, rng):
        w = xavier_uniform((100, 200), rng)
        limit = math.sqrt(6.0 / 300)
        assert w.shape == (100, 200)
        assert np.abs(w).max() <= limit

    def test_xavier_gain_scales_limit(self, rng):
        small = np.abs(xavier_uniform((50, 50), np.random.default_rng(1), gain=0.5)).max()
        large = np.abs(xavier_uniform((50, 50), np.random.default_rng(1), gain=2.0)).max()
        assert large > small

    def test_kaiming_bounds(self, rng):
        w = kaiming_uniform((64, 64), rng)
        gain = math.sqrt(2.0 / (1.0 + 5.0))
        bound = math.sqrt(3.0) * gain / math.sqrt(64)
        assert np.abs(w).max() <= bound + 1e-12

    def test_normal_std(self, rng):
        w = normal_init((200, 200), rng, std=0.02)
        assert w.std() == pytest.approx(0.02, rel=0.1)
        assert abs(w.mean()) < 0.001

    def test_zeros(self):
        w = zeros_init((3, 4))
        assert np.array_equal(w, np.zeros((3, 4)))

    def test_deterministic_given_rng_seed(self):
        a = xavier_uniform((10, 10), np.random.default_rng(7))
        b = xavier_uniform((10, 10), np.random.default_rng(7))
        assert np.array_equal(a, b)


class TestStepResult:
    def test_non_trainable_detects_nan(self):
        assert StepResult(step=1, loss=float("nan"), step_seconds=0.1, attention_seconds=0.01).non_trainable
        assert not StepResult(step=1, loss=0.5, step_seconds=0.1, attention_seconds=0.01).non_trainable


class TestTrainingMetrics:
    def make(self, losses, epochs=None):
        metrics = TrainingMetrics()
        for i, loss in enumerate(losses):
            metrics.record(StepResult(step=i + 1, loss=loss, step_seconds=0.1,
                                      attention_seconds=0.02, abft_seconds=0.005,
                                      corrections=1 if i % 2 else 0))
            if epochs and (i + 1) in epochs:
                metrics.end_epoch()
        return metrics

    def test_epoch_losses_mean_per_epoch(self):
        metrics = self.make([1.0, 0.8, 0.6, 0.4], epochs=[2, 4])
        assert metrics.epoch_losses() == [pytest.approx(0.9), pytest.approx(0.5)]

    def test_epoch_losses_without_boundaries_uses_all_steps(self):
        metrics = self.make([1.0, 0.5])
        assert metrics.epoch_losses() == [pytest.approx(0.75)]

    def test_nan_losses_excluded_from_epoch_mean(self):
        metrics = self.make([1.0, float("nan"), 0.5], epochs=[3])
        assert metrics.epoch_losses() == [pytest.approx(0.75)]
        assert metrics.num_non_trainable() == 1

    def test_all_nan_epoch_is_nan(self):
        metrics = self.make([float("nan"), float("nan")], epochs=[2])
        assert math.isnan(metrics.epoch_losses()[0])

    def test_timing_totals(self):
        metrics = self.make([0.5, 0.4, 0.3])
        assert metrics.total_step_seconds() == pytest.approx(0.3)
        assert metrics.total_attention_seconds() == pytest.approx(0.06)
        assert metrics.total_abft_seconds() == pytest.approx(0.015)
        assert metrics.mean_step_seconds() == pytest.approx(0.1)

    def test_corrections_counted(self):
        metrics = self.make([0.5, 0.4, 0.3, 0.2])
        assert metrics.total_corrections() == 2

    def test_as_dict_keys(self):
        summary = self.make([0.5, 0.4]).as_dict()
        assert {"num_steps", "mean_loss", "mean_step_seconds", "non_trainable_steps",
                "corrections", "total_abft_seconds", "total_attention_seconds"} <= set(summary)
        assert summary["num_steps"] == 2

    def test_empty_metrics(self):
        metrics = TrainingMetrics()
        assert metrics.mean_step_seconds() == 0.0
        assert metrics.num_non_trainable() == 0

"""Unit tests for the standard layers."""

import numpy as np
import pytest

from repro.nn.layers import Dropout, Embedding, GELUActivation, LayerNorm, Linear, ReLUActivation, TanhActivation
from repro.tensor.autograd import Tensor


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestLinear:
    def test_forward_matches_manual(self, rng):
        layer = Linear(4, 3, rng=rng)
        x = rng.normal(size=(5, 4))
        out = layer(Tensor(x))
        assert np.allclose(out.data, x @ layer.weight.data + layer.bias.data)

    def test_weight_orientation_is_in_by_out(self, rng):
        layer = Linear(6, 2, rng=rng)
        assert layer.weight.data.shape == (6, 2)

    def test_no_bias(self, rng):
        layer = Linear(4, 3, rng=rng, bias=False)
        assert layer.bias is None
        out = layer(Tensor(rng.normal(size=(2, 4))))
        assert out.shape == (2, 3)

    def test_gradients_flow_to_weight_and_bias(self, rng):
        layer = Linear(4, 3, rng=rng)
        out = layer(Tensor(rng.normal(size=(2, 4))))
        out.sum().backward()
        assert layer.weight.grad is not None and layer.bias.grad is not None
        assert np.allclose(layer.bias.grad, 2.0)

    def test_batched_3d_input(self, rng):
        layer = Linear(4, 3, rng=rng)
        out = layer(Tensor(rng.normal(size=(2, 5, 4))))
        assert out.shape == (2, 5, 3)


class TestLayerNorm:
    def test_output_normalised(self, rng):
        layer = LayerNorm(8)
        x = rng.normal(loc=5, scale=3, size=(4, 8))
        out = layer(Tensor(x))
        assert np.allclose(out.data.mean(axis=-1), 0.0, atol=1e-6)

    def test_learnable_affine_changes_output(self, rng):
        layer = LayerNorm(8)
        layer.weight.data = np.full(8, 3.0)
        layer.bias.data = np.full(8, -1.0)
        x = rng.normal(size=(2, 8))
        out = layer(Tensor(x))
        plain = LayerNorm(8)(Tensor(x))
        assert np.allclose(out.data, 3.0 * plain.data - 1.0)

    def test_gradients(self, rng):
        layer = LayerNorm(6)
        out = layer(Tensor(rng.normal(size=(3, 6)), requires_grad=True))
        out.sum().backward()
        assert layer.weight.grad is not None and layer.bias.grad is not None


class TestEmbedding:
    def test_lookup_shape(self, rng):
        emb = Embedding(20, 8, rng=rng)
        out = emb(np.array([[1, 2, 3], [4, 5, 6]]))
        assert out.shape == (2, 3, 8)

    def test_lookup_matches_rows(self, rng):
        emb = Embedding(10, 4, rng=rng)
        out = emb(np.array([3, 7]))
        assert np.allclose(out.data[0], emb.weight.data[3])
        assert np.allclose(out.data[1], emb.weight.data[7])

    def test_gradient_accumulates_for_repeated_index(self, rng):
        emb = Embedding(10, 4, rng=rng)
        out = emb(np.array([2, 2, 2]))
        out.sum().backward()
        assert np.allclose(emb.weight.grad[2], 3.0)


class TestDropout:
    def test_eval_mode_identity(self, rng):
        layer = Dropout(0.5, rng=rng)
        layer.eval()
        x = Tensor(rng.normal(size=(10, 10)))
        assert np.array_equal(layer(x).data, x.data)

    def test_train_mode_zeroes_elements(self, rng):
        layer = Dropout(0.5, rng=rng)
        out = layer(Tensor(np.ones((50, 50))))
        assert (out.data == 0).any()

    def test_invalid_probability_raises(self):
        with pytest.raises(ValueError):
            Dropout(1.5)


class TestActivationModules:
    def test_gelu_module(self, rng):
        x = rng.normal(size=(3, 3))
        assert np.allclose(GELUActivation()(Tensor(x)).data, 0.5 * x * (1 + np.tanh(np.sqrt(2 / np.pi) * (x + 0.044715 * x**3))))

    def test_relu_module(self):
        out = ReLUActivation()(Tensor(np.array([-1.0, 2.0])))
        assert np.array_equal(out.data, [0.0, 2.0])

    def test_tanh_module(self):
        out = TanhActivation()(Tensor(np.array([0.0, 100.0])))
        assert out.data[0] == 0.0 and out.data[1] == pytest.approx(1.0)

"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_is_accepted(self):
        args = build_parser().parse_args(["list"])
        assert args.experiment == "list"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_defaults(self):
        args = build_parser().parse_args(["fig7"])
        assert args.batch_size == 8 and args.model == "bert-base"

    def test_rate_list_parsed(self):
        args = build_parser().parse_args(["fig10", "--rates", "13", "20"])
        assert args.rates == [13, 20]

    def test_registry_covers_all_figures_and_tables(self):
        expected = {"quickstart", "train", "train_parallel", "serve", "backends",
                    "verification_modes", "table2", "table3",
                    "sec52", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12"}
        assert expected == set(EXPERIMENTS)

    def test_backend_flag_parsed(self):
        args = build_parser().parse_args(["quickstart", "--backend", "per_gemm"])
        assert args.backend == "per_gemm"
        assert build_parser().parse_args(["quickstart"]).backend == "fused"

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["quickstart", "--backend", "cuda"])

    def test_async_flag_parsed(self):
        args = build_parser().parse_args(["quickstart", "--async"])
        assert args.async_verification is True
        assert build_parser().parse_args(["quickstart"]).async_verification is False

    def test_model_array_backend_flag_parsed(self):
        args = build_parser().parse_args(["train", "--model-array-backend", "numpy"])
        assert args.model_array_backend == "numpy"
        assert build_parser().parse_args(["train"]).model_array_backend is None

    def test_unknown_model_array_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--model-array-backend", "jax"])


class TestMain:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    @pytest.mark.parametrize("experiment", ["table3", "fig7", "fig8", "fig9", "fig11", "fig12"])
    def test_analytical_experiments_run(self, capsys, experiment):
        assert main([experiment]) == 0
        out = capsys.readouterr().out
        assert "—" in out  # the table title
        assert len(out.splitlines()) > 3

    def test_fig10_with_custom_rates(self, capsys):
        assert main(["fig10", "--rates", "13", "200"]) == 0
        out = capsys.readouterr().out
        assert "f_AS" in out and "200" in out

    def test_quickstart_corrects_a_fault(self, capsys):
        assert main(["quickstart", "--matrix", "AS", "--error-type", "inf"]) == 0
        out = capsys.readouterr().out
        assert "corrections          : " in out
        corrections = int(out.split("corrections          : ")[1].splitlines()[0])
        assert corrections >= 1
        assert "residual extremes    : 0" in out

    def test_quickstart_with_per_gemm_backend(self, capsys):
        assert main(["quickstart", "--backend", "per_gemm",
                     "--matrix", "AS", "--error-type", "inf"]) == 0
        out = capsys.readouterr().out
        assert "backend              : per_gemm" in out
        corrections = int(out.split("corrections          : ")[1].splitlines()[0])
        assert corrections >= 1

    def test_quickstart_with_async_verification(self, capsys):
        assert main(["quickstart", "--async", "--matrix", "AS", "--error-type", "inf"]) == 0
        out = capsys.readouterr().out
        assert "verification mode    : async" in out
        corrections = int(out.split("corrections          : ")[1].splitlines()[0])
        assert corrections >= 1
        stale = int(out.split("stale detections     : ")[1].splitlines()[0])
        assert stale >= 1

    def test_async_requires_fused_backend(self):
        with pytest.raises(ValueError):
            main(["quickstart", "--async", "--backend", "per_gemm"])

    def test_train_reports_zero_transfer_on_shared_backend(self, capsys):
        assert main(["train", "--steps", "2", "--model-array-backend", "numpy"]) == 0
        out = capsys.readouterr().out
        assert "model substrate numpy" in out
        assert "xfer total 0.000 ms (zero host round-trips)" in out
        assert len([l for l in out.splitlines() if l and l[0].isdigit()]) == 2

    def test_train_with_async_verification(self, capsys):
        assert main(["train", "--steps", "2", "--async"]) == 0
        out = capsys.readouterr().out
        assert "xfer total 0.000 ms" in out

    def test_quickstart_reports_model_substrate(self, capsys):
        assert main(["quickstart", "--model-array-backend", "numpy"]) == 0
        out = capsys.readouterr().out
        assert "model substrate      : numpy" in out

    def test_backends_experiment_reports_equivalence(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "byte-identical on all 18 scenarios" in out
        assert "NO" not in out.split("identical")[-1]

    def test_verification_modes_experiment(self, capsys):
        assert main(["verification_modes"]) == 0
        out = capsys.readouterr().out
        assert "deferred/async detection decisions byte-identical" in out
        assert "async corrections match immediate" in out
        for mode in ("immediate", "deferred", "async"):
            assert mode in out

    def test_sec52_reports_full_coverage(self, capsys):
        assert main(["sec52", "--trials", "1"]) == 0
        out = capsys.readouterr().out
        assert "ALL extreme errors corrected" in out

    def test_table2_prints_propagation_rows(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "1R" in out and "1C" in out

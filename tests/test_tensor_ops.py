"""Unit tests for the pure NumPy kernels in repro.tensor.ops."""

import numpy as np
import pytest

from repro.tensor import ops


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestBatchedMatmul:
    def test_matches_numpy(self, rng):
        a = rng.normal(size=(3, 4, 5))
        b = rng.normal(size=(5, 6))
        assert np.allclose(ops.batched_matmul(a, b), a @ b)

    def test_backward_shapes(self, rng):
        a = rng.normal(size=(2, 3, 4))
        b = rng.normal(size=(4, 5))
        grad = rng.normal(size=(2, 3, 5))
        ga, gb = ops.matmul_backward(grad, a, b)
        assert ga.shape == a.shape and gb.shape == b.shape

    def test_backward_values_against_numerical(self, rng):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(4, 2))
        grad = np.ones((3, 2))
        ga, gb = ops.matmul_backward(grad, a, b)
        eps = 1e-6
        idx = (1, 2)
        a_pert = a.copy()
        a_pert[idx] += eps
        numerical = (np.sum(a_pert @ b) - np.sum(a @ b)) / eps
        assert ga[idx] == pytest.approx(numerical, rel=1e-4)


class TestUnbroadcast:
    def test_no_broadcast_is_identity(self, rng):
        g = rng.normal(size=(3, 4))
        assert np.array_equal(ops.unbroadcast(g, (3, 4)), g)

    def test_sums_leading_axes(self, rng):
        g = rng.normal(size=(5, 3, 4))
        out = ops.unbroadcast(g, (3, 4))
        assert np.allclose(out, g.sum(axis=0))

    def test_sums_size_one_axes(self, rng):
        g = rng.normal(size=(3, 4))
        out = ops.unbroadcast(g, (1, 4))
        assert out.shape == (1, 4)
        assert np.allclose(out, g.sum(axis=0, keepdims=True))

    def test_bias_shape(self, rng):
        g = rng.normal(size=(2, 3, 4))
        out = ops.unbroadcast(g, (4,))
        assert out.shape == (4,)
        assert np.allclose(out, g.sum(axis=(0, 1)))


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        x = rng.normal(size=(4, 7))
        assert np.allclose(ops.softmax(x).sum(axis=-1), 1.0)

    def test_shift_invariance(self, rng):
        x = rng.normal(size=(3, 5))
        assert np.allclose(ops.softmax(x), ops.softmax(x + 100.0))

    def test_large_values_stable(self):
        x = np.array([[1000.0, 1000.0]])
        out = ops.softmax(x)
        assert np.allclose(out, 0.5)

    def test_inf_input_produces_nan_row(self):
        # +inf in a row makes the shifted exponent inf - inf = nan somewhere,
        # which is the propagation behaviour Table 2 documents (1R-NaN in AP).
        x = np.array([[1.0, np.inf, 2.0]])
        out = ops.softmax(x)
        assert np.isnan(out).any()

    def test_backward_matches_numerical(self, rng):
        x = rng.normal(size=(2, 5))
        out = ops.softmax(x)
        grad_out = rng.normal(size=(2, 5))
        analytic = ops.softmax_backward(grad_out, out)
        eps = 1e-6
        idx = (1, 3)
        x_pert = x.copy()
        x_pert[idx] += eps
        numerical = np.sum(grad_out * (ops.softmax(x_pert) - out)) / eps
        assert analytic[idx] == pytest.approx(numerical, rel=1e-3, abs=1e-6)


class TestLogSoftmax:
    def test_exp_matches_softmax(self, rng):
        x = rng.normal(size=(3, 6))
        assert np.allclose(np.exp(ops.log_softmax(x)), ops.softmax(x))

    def test_backward_matches_numerical(self, rng):
        x = rng.normal(size=(2, 4))
        out = ops.log_softmax(x)
        grad_out = rng.normal(size=(2, 4))
        analytic = ops.log_softmax_backward(grad_out, out)
        eps = 1e-6
        idx = (0, 2)
        x_pert = x.copy()
        x_pert[idx] += eps
        numerical = np.sum(grad_out * (ops.log_softmax(x_pert) - out)) / eps
        assert analytic[idx] == pytest.approx(numerical, rel=1e-3, abs=1e-6)


class TestActivations:
    def test_gelu_known_values(self):
        assert ops.gelu(np.array(0.0)) == pytest.approx(0.0)
        assert float(ops.gelu(np.array(10.0))) == pytest.approx(10.0, rel=1e-3)
        assert float(ops.gelu(np.array(-10.0))) == pytest.approx(0.0, abs=1e-3)

    def test_gelu_backward_numerical(self, rng):
        x = rng.normal(size=7)
        grad = np.ones(7)
        analytic = ops.gelu_backward(grad, x)
        eps = 1e-6
        numerical = (ops.gelu(x + eps) - ops.gelu(x)) / eps
        assert np.allclose(analytic, numerical, rtol=1e-3, atol=1e-5)

    def test_relu(self):
        x = np.array([-1.0, 0.0, 2.0])
        assert np.array_equal(ops.relu(x), [0.0, 0.0, 2.0])
        assert np.array_equal(ops.relu_backward(np.ones(3), x), [0.0, 0.0, 1.0])

    def test_tanh_backward(self, rng):
        x = rng.normal(size=5)
        out = ops.tanh(x)
        eps = 1e-6
        numerical = (ops.tanh(x + eps) - out) / eps
        assert np.allclose(ops.tanh_backward(np.ones(5), out), numerical, rtol=1e-3, atol=1e-6)


class TestLayerNorm:
    def test_normalises_last_axis(self, rng):
        x = rng.normal(loc=3.0, scale=2.0, size=(4, 8))
        out, _, _ = ops.layer_norm(x, np.ones(8), np.zeros(8))
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-7)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-3)

    def test_affine_applied(self, rng):
        x = rng.normal(size=(2, 4))
        gamma = np.full(4, 2.0)
        beta = np.full(4, 1.0)
        out, x_hat, _ = ops.layer_norm(x, gamma, beta)
        assert np.allclose(out, 2.0 * x_hat + 1.0)

    def test_backward_matches_numerical(self, rng):
        x = rng.normal(size=(3, 6))
        gamma = rng.normal(size=6)
        beta = rng.normal(size=6)
        grad = rng.normal(size=(3, 6))
        out, x_hat, inv_std = ops.layer_norm(x, gamma, beta)
        dx, dgamma, dbeta = ops.layer_norm_backward(grad, x_hat, inv_std, gamma)
        eps = 1e-6
        idx = (1, 4)
        x_pert = x.copy()
        x_pert[idx] += eps
        out_pert, _, _ = ops.layer_norm(x_pert, gamma, beta)
        numerical = np.sum(grad * (out_pert - out)) / eps
        assert dx[idx] == pytest.approx(numerical, rel=1e-3, abs=1e-6)
        g_pert = gamma.copy()
        g_pert[2] += eps
        out_pert, _, _ = ops.layer_norm(x, g_pert, beta)
        numerical = np.sum(grad * (out_pert - out)) / eps
        assert dgamma[2] == pytest.approx(numerical, rel=1e-3, abs=1e-6)
        assert np.allclose(dbeta, grad.sum(axis=0))


class TestDropoutMask:
    def test_p_zero_all_ones(self, rng):
        assert np.all(ops.dropout_mask((10, 10), 0.0, rng) == 1.0)

    def test_scaling_preserves_expectation(self, rng):
        mask = ops.dropout_mask((200, 200), 0.3, rng)
        assert mask.mean() == pytest.approx(1.0, rel=0.05)

    def test_values_are_zero_or_scaled(self, rng):
        mask = ops.dropout_mask((50, 50), 0.5, rng)
        assert set(np.unique(mask)).issubset({0.0, 2.0})

    def test_invalid_p_raises(self, rng):
        with pytest.raises(ValueError):
            ops.dropout_mask((2, 2), 1.0, rng)
        with pytest.raises(ValueError):
            ops.dropout_mask((2, 2), -0.1, rng)


class TestLossHelpers:
    def test_one_hot(self):
        out = ops.one_hot(np.array([0, 2]), 3)
        assert np.array_equal(out, [[1, 0, 0], [0, 0, 1]])

    def test_one_hot_out_of_range_raises(self):
        with pytest.raises(ValueError):
            ops.one_hot(np.array([3]), 3)

    def test_cross_entropy_uniform(self):
        logits = np.zeros((4, 3))
        labels = np.array([0, 1, 2, 0])
        assert ops.cross_entropy(logits, labels) == pytest.approx(np.log(3))

    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        labels = np.array([0, 1])
        assert ops.cross_entropy(logits, labels) == pytest.approx(0.0, abs=1e-6)

    def test_cross_entropy_nan_propagates(self):
        logits = np.array([[np.nan, 0.0]])
        assert np.isnan(ops.cross_entropy(logits, np.array([0])))

    def test_cross_entropy_backward_numerical(self, rng):
        logits = rng.normal(size=(5, 4))
        labels = rng.integers(0, 4, size=5)
        grad = ops.cross_entropy_backward(logits, labels)
        eps = 1e-6
        idx = (2, 1)
        pert = logits.copy()
        pert[idx] += eps
        numerical = (ops.cross_entropy(pert, labels) - ops.cross_entropy(logits, labels)) / eps
        assert grad[idx] == pytest.approx(numerical, rel=1e-4, abs=1e-8)

"""Unit tests for checksum encoding and propagation."""

import numpy as np
import pytest

from repro.core.checksums import (
    ChecksumState,
    adjust_column_checksums_for_bias,
    adjust_row_checksums_for_bias,
    checksum_weights,
    encode_column_checksums,
    encode_per_head_row_checksums_of_weight,
    encode_row_checksums,
    merge_head_column_checksums,
    recompute_column_sums,
    recompute_row_sums,
    split_head_column_checksums,
    update_column_checksums_through_gemm,
    update_row_checksums_through_gemm,
)


@pytest.fixture
def rng():
    return np.random.default_rng(17)


class TestWeights:
    def test_values(self):
        v1, v2 = checksum_weights(4)
        assert np.array_equal(v1, [1, 1, 1, 1])
        assert np.array_equal(v2, [1, 2, 3, 4])

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            checksum_weights(0)


class TestEncoding:
    def test_column_checksums_shape_and_values(self, rng):
        m = rng.normal(size=(3, 5, 4))
        cs = encode_column_checksums(m)
        assert cs.shape == (3, 2, 4)
        assert np.allclose(cs[..., 0, :], m.sum(axis=-2))
        weights = np.arange(1, 6)
        assert np.allclose(cs[..., 1, :], np.einsum("i,bij->bj", weights, m))

    def test_row_checksums_shape_and_values(self, rng):
        m = rng.normal(size=(2, 4, 6))
        cs = encode_row_checksums(m)
        assert cs.shape == (2, 4, 2)
        assert np.allclose(cs[..., 0], m.sum(axis=-1))
        weights = np.arange(1, 7)
        assert np.allclose(cs[..., 1], np.einsum("j,bij->bi", weights, m))

    def test_recompute_matches_encode(self, rng):
        m = rng.normal(size=(2, 3, 7, 5))
        cs = encode_column_checksums(m)
        u, w = recompute_column_sums(m)
        assert np.allclose(cs[..., 0, :], u) and np.allclose(cs[..., 1, :], w)
        rcs = encode_row_checksums(m)
        ru, rw = recompute_row_sums(m)
        assert np.allclose(rcs[..., 0], ru) and np.allclose(rcs[..., 1], rw)


class TestPropagation:
    def test_column_checksums_propagate_through_gemm(self, rng):
        a = rng.normal(size=(2, 6, 4))
        b = rng.normal(size=(4, 3))
        c = a @ b
        carried = update_column_checksums_through_gemm(encode_column_checksums(a), b)
        assert np.allclose(carried, encode_column_checksums(c))

    def test_row_checksums_propagate_through_gemm(self, rng):
        a = rng.normal(size=(2, 6, 4))
        b = rng.normal(size=(4, 3))
        c = a @ b
        carried = update_row_checksums_through_gemm(a, encode_row_checksums(b))
        assert np.allclose(carried, encode_row_checksums(c))

    def test_column_bias_adjustment(self, rng):
        a = rng.normal(size=(5, 4))
        bias = rng.normal(size=4)
        cs = adjust_column_checksums_for_bias(encode_column_checksums(a), bias, num_rows=5)
        assert np.allclose(cs, encode_column_checksums(a + bias))

    def test_row_bias_adjustment(self, rng):
        a = rng.normal(size=(5, 4))
        bias = rng.normal(size=4)
        cs = adjust_row_checksums_for_bias(encode_row_checksums(a), bias)
        assert np.allclose(cs, encode_row_checksums(a + bias))

    def test_chained_propagation_two_gemms(self, rng):
        # col(X) -> col(Q) -> col(AS) through two GEMMs, as section S_AS does.
        x = rng.normal(size=(7, 6))
        w_q = rng.normal(size=(6, 6))
        k_t = rng.normal(size=(6, 7))
        q = x @ w_q
        attention_scores = q @ k_t
        carried = update_column_checksums_through_gemm(
            update_column_checksums_through_gemm(encode_column_checksums(x), w_q), k_t
        )
        assert np.allclose(carried, encode_column_checksums(attention_scores))


class TestHeadSplitting:
    def test_split_matches_per_head_encoding(self, rng):
        batch, seq, heads, dh = 2, 6, 4, 3
        proj = rng.normal(size=(batch, seq, heads * dh))
        cs_full = encode_column_checksums(proj)
        per_head_cs = split_head_column_checksums(cs_full, heads)
        # Reference: split the data itself, then encode per head.
        split_data = proj.reshape(batch, seq, heads, dh).transpose(0, 2, 1, 3)
        assert per_head_cs.shape == (batch, heads, 2, dh)
        assert np.allclose(per_head_cs, encode_column_checksums(split_data))

    def test_merge_is_inverse_of_split(self, rng):
        cs = rng.normal(size=(3, 2, 12))
        assert np.allclose(merge_head_column_checksums(split_head_column_checksums(cs, 4)), cs)

    def test_split_invalid_args(self, rng):
        with pytest.raises(ValueError):
            split_head_column_checksums(rng.normal(size=(3, 2, 10)), 4)
        with pytest.raises(ValueError):
            split_head_column_checksums(rng.normal(size=(3, 3, 12)), 4)
        with pytest.raises(ValueError):
            merge_head_column_checksums(rng.normal(size=(3, 4, 3, 5)))

    def test_per_head_weight_row_checksums(self, rng):
        d_in, heads, dh = 8, 2, 3
        w = rng.normal(size=(d_in, heads * dh))
        x = rng.normal(size=(4, 5, d_in))
        rowcs_w = encode_per_head_row_checksums_of_weight(w, heads)
        assert rowcs_w.shape == (d_in, heads, 2)
        carried = np.einsum("bsd,dhw->bhsw", x, rowcs_w)
        v = x @ w
        v_heads = v.reshape(4, 5, heads, dh).transpose(0, 2, 1, 3)
        assert np.allclose(carried, encode_row_checksums(v_heads))

    def test_per_head_weight_invalid_divisor(self, rng):
        with pytest.raises(ValueError):
            encode_per_head_row_checksums_of_weight(rng.normal(size=(4, 10)), 4)


class TestChecksumState:
    def test_encode_both_sides(self, rng):
        m = rng.normal(size=(4, 5))
        state = ChecksumState.encode(m, col=True, row=True)
        assert state.has_col() and state.has_row()
        assert state.verify(m)

    def test_verify_detects_corruption(self, rng):
        m = rng.normal(size=(4, 5))
        state = ChecksumState.encode(m)
        m[2, 3] += 5.0
        assert not state.verify(m)

    def test_copy_is_deep(self, rng):
        m = rng.normal(size=(4, 5))
        state = ChecksumState.encode(m, col=True, row=True)
        clone = state.copy()
        clone.col[...] = 0.0
        assert not np.allclose(state.col, clone.col)

    def test_empty_state_verifies_anything(self, rng):
        assert ChecksumState().verify(rng.normal(size=(3, 3)))


class TestLowPrecisionEncoding:
    """Regression tests for the dtype-unsafe encoding bug.

    The encoders used to build the Huang–Abraham weight vectors in
    ``matrix.dtype``, so fp16/fp32 inputs accumulated the weighted sums in low
    precision and fault-free data failed the default detection tolerances.
    Checksums must always be accumulated in float64.
    """

    @pytest.mark.parametrize("dtype", [np.float16, np.float32])
    def test_encoders_return_float64(self, rng, dtype):
        m = rng.normal(size=(32, 24)).astype(dtype)
        assert encode_column_checksums(m).dtype == np.float64
        assert encode_row_checksums(m).dtype == np.float64

    def test_out_dtype_casts_back(self, rng):
        m = rng.normal(size=(16, 8)).astype(np.float32)
        assert encode_column_checksums(m, out_dtype=np.float32).dtype == np.float32
        assert encode_row_checksums(m, out_dtype=np.float16).dtype == np.float16

    @pytest.mark.parametrize("dtype", [np.float16, np.float32])
    def test_encoding_matches_float64_reference(self, rng, dtype):
        m = rng.normal(size=(64, 48)).astype(dtype)
        reference = encode_column_checksums(m.astype(np.float64))
        assert np.allclose(encode_column_checksums(m), reference, rtol=1e-12, atol=1e-12)

    @pytest.mark.parametrize("dtype", [np.float16, np.float32])
    def test_fault_free_low_precision_matrix_is_clean(self, rng, dtype):
        # The headline regression: checking an fp16/fp32 matrix against its
        # own freshly-encoded checksums must produce ZERO detections at the
        # default (float64) thresholds.
        from repro.core.eec_abft import check_columns, check_rows
        from repro.core.thresholds import ABFTThresholds

        m = rng.normal(size=(4, 64, 48)).astype(dtype)
        col_report = check_columns(m, encode_column_checksums(m), ABFTThresholds())
        row_report = check_rows(m, encode_row_checksums(m), ABFTThresholds())
        assert col_report.clean and col_report.num_aborted == 0
        assert row_report.clean and row_report.num_aborted == 0

    @pytest.mark.parametrize("dtype", [np.float16, np.float32])
    def test_fault_free_low_precision_gemm_is_clean(self, rng, dtype):
        # Checksums encoded from fp16/fp32 operands and carried through the
        # GEMM must agree with the (exactly computed) product at the default
        # thresholds: the carried checksum and the product see the same
        # float64 arithmetic once encoding accumulates in float64.
        from repro.core.eec_abft import check_columns
        from repro.core.thresholds import ABFTThresholds

        a = rng.normal(size=(2, 32, 24)).astype(dtype)
        b = rng.normal(size=(24, 16)).astype(dtype)
        product = np.matmul(a.astype(np.float64), b.astype(np.float64))
        carried = update_column_checksums_through_gemm(encode_column_checksums(a), b)
        report = check_columns(product, carried, ABFTThresholds())
        assert report.clean

    @pytest.mark.parametrize("dtype", [np.float16, np.float32])
    def test_low_precision_error_still_detected_and_corrected(self, rng, dtype):
        from repro.core.eec_abft import check_columns
        from repro.core.thresholds import ABFTThresholds

        m = rng.normal(size=(32, 16)).astype(dtype)
        cs = encode_column_checksums(m)
        ref = m.copy()
        m[7, 3] = np.inf
        report = check_columns(m, cs, ABFTThresholds())
        assert report.num_detected == 1
        assert report.num_corrected == 1
        assert np.allclose(m, ref, rtol=1e-2, atol=1e-3)

    def test_per_head_weight_encoding_accumulates_in_float64(self, rng):
        w = rng.normal(size=(32, 16)).astype(np.float16)
        encoded = encode_per_head_row_checksums_of_weight(w, num_heads=4)
        reference = encode_per_head_row_checksums_of_weight(
            w.astype(np.float64), num_heads=4
        )
        assert encoded.dtype == np.float64
        assert np.allclose(encoded, reference, rtol=1e-12, atol=1e-12)

    def test_recompute_sums_accumulate_in_float64(self, rng):
        m = rng.normal(size=(48, 32)).astype(np.float16)
        unweighted, weighted = recompute_column_sums(m)
        ref_u, ref_w = recompute_column_sums(m.astype(np.float64))
        assert unweighted.dtype == np.float64 and weighted.dtype == np.float64
        assert np.allclose(unweighted, ref_u, rtol=1e-12, atol=1e-12)
        assert np.allclose(weighted, ref_w, rtol=1e-12, atol=1e-12)

    def test_bias_adjust_promotes_to_float64(self, rng):
        col = encode_column_checksums(rng.normal(size=(8, 6)).astype(np.float32),
                                      out_dtype=np.float32)
        adjusted = adjust_column_checksums_for_bias(col, rng.normal(size=6), num_rows=8)
        assert adjusted.dtype == np.float64
        row = encode_row_checksums(rng.normal(size=(8, 6)).astype(np.float32),
                                   out_dtype=np.float32)
        adjusted_row = adjust_row_checksums_for_bias(row, rng.normal(size=6))
        assert adjusted_row.dtype == np.float64

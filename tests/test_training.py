"""Unit tests for optimisers, schedulers, checkpointing and the trainer."""

import math

import numpy as np
import pytest

from repro.data import DataLoader, SyntheticMRPC
from repro.models import build_model
from repro.nn.layers import Linear
from repro.nn.module import Module, Parameter
from repro.tensor.autograd import Tensor, cross_entropy_loss
from repro.training import (
    AdamW,
    CheckpointManager,
    ConstantSchedule,
    LinearWarmupSchedule,
    SGD,
    Trainer,
    TrainerConfig,
)
from repro.training.trainer import clip_gradients


def quadratic_model():
    """A single-parameter model minimising (w - 3)^2."""

    class Quad(Module):
        def __init__(self):
            super().__init__()
            self.w = Parameter(np.array([0.0]))

        def forward(self):
            diff = self.w - 3.0
            return (diff * diff).sum()

    return Quad()


class TestSGD:
    def test_converges_on_quadratic(self):
        model = quadratic_model()
        opt = SGD(model.parameters(), lr=0.1)
        for _ in range(100):
            model.zero_grad()
            model().backward()
            opt.step()
        assert model.w.data[0] == pytest.approx(3.0, abs=1e-3)

    def test_momentum_accelerates(self):
        plain, with_momentum = quadratic_model(), quadratic_model()
        opt_a = SGD(plain.parameters(), lr=0.01)
        opt_b = SGD(with_momentum.parameters(), lr=0.01, momentum=0.9)
        for _ in range(30):
            for model, opt in ((plain, opt_a), (with_momentum, opt_b)):
                model.zero_grad()
                model().backward()
                opt.step()
        assert abs(with_momentum.w.data[0] - 3.0) < abs(plain.w.data[0] - 3.0)

    def test_weight_decay_shrinks_weights(self):
        model = quadratic_model()
        model.w.data[:] = 10.0
        opt = SGD(model.parameters(), lr=0.0001, weight_decay=100.0)
        model.zero_grad()
        model().backward()
        opt.step()
        assert model.w.data[0] < 10.0

    def test_invalid_args(self):
        model = quadratic_model()
        with pytest.raises(ValueError):
            SGD(model.parameters(), lr=-1.0)
        with pytest.raises(ValueError):
            SGD(model.parameters(), lr=0.1, momentum=1.5)
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_state_dict_roundtrip(self):
        model = quadratic_model()
        opt = SGD(model.parameters(), lr=0.1, momentum=0.9)
        model.zero_grad()
        model().backward()
        opt.step()
        state = opt.state_dict()
        other = SGD(model.parameters(), lr=0.1, momentum=0.9)
        other.load_state_dict(state)
        assert other.step_count == 1
        assert np.allclose(other._velocity[0], opt._velocity[0])


class TestAdamW:
    def test_converges_on_quadratic(self):
        model = quadratic_model()
        opt = AdamW(model.parameters(), lr=0.1, weight_decay=0.0)
        for _ in range(300):
            model.zero_grad()
            model().backward()
            opt.step()
        assert model.w.data[0] == pytest.approx(3.0, abs=1e-2)

    def test_skips_parameters_without_grad(self):
        model = quadratic_model()
        opt = AdamW(model.parameters(), lr=0.1)
        opt.step()  # no backward called; should not raise or change weights
        assert model.w.data[0] == 0.0

    def test_invalid_betas(self):
        model = quadratic_model()
        with pytest.raises(ValueError):
            AdamW(model.parameters(), betas=(1.2, 0.9))

    def test_state_dict_roundtrip(self):
        model = quadratic_model()
        opt = AdamW(model.parameters(), lr=0.01)
        model.zero_grad()
        model().backward()
        opt.step()
        other = AdamW(model.parameters(), lr=0.01)
        other.load_state_dict(opt.state_dict())
        assert np.allclose(other._m[0], opt._m[0]) and np.allclose(other._v[0], opt._v[0])


class TestSchedules:
    def test_constant(self):
        model = quadratic_model()
        opt = SGD(model.parameters(), lr=0.5)
        sched = ConstantSchedule(opt)
        for _ in range(5):
            assert sched.step() == 0.5

    def test_linear_warmup_then_decay(self):
        model = quadratic_model()
        opt = SGD(model.parameters(), lr=1.0)
        sched = LinearWarmupSchedule(opt, warmup_steps=5, total_steps=10)
        lrs = [sched.step() for _ in range(10)]
        assert lrs[0] == pytest.approx(0.2)
        assert lrs[4] == pytest.approx(1.0)
        assert lrs[-1] == pytest.approx(0.0)
        assert max(lrs) == pytest.approx(1.0)

    def test_invalid_schedule_args(self):
        model = quadratic_model()
        opt = SGD(model.parameters(), lr=1.0)
        with pytest.raises(ValueError):
            LinearWarmupSchedule(opt, warmup_steps=5, total_steps=0)
        with pytest.raises(ValueError):
            LinearWarmupSchedule(opt, warmup_steps=11, total_steps=10)


class TestClipGradients:
    def test_large_gradients_clipped_to_norm(self):
        layer = Linear(4, 4, rng=np.random.default_rng(0))
        layer.weight.grad = np.full((4, 4), 10.0)
        layer.bias.grad = np.zeros(4)
        norm = clip_gradients(layer, max_norm=1.0)
        assert norm > 1.0
        new_norm = math.sqrt(float(np.sum(layer.weight.grad ** 2)))
        assert new_norm == pytest.approx(1.0, rel=1e-3)

    def test_small_gradients_untouched(self):
        layer = Linear(2, 2, rng=np.random.default_rng(0))
        layer.weight.grad = np.full((2, 2), 0.01)
        clip_gradients(layer, max_norm=1.0)
        assert np.allclose(layer.weight.grad, 0.01)

    def test_nonfinite_norm_left_alone(self):
        layer = Linear(2, 2, rng=np.random.default_rng(0))
        layer.weight.grad = np.array([[np.inf, 0.0], [0.0, 0.0]])
        norm = clip_gradients(layer, max_norm=1.0)
        assert math.isinf(norm)
        assert np.isinf(layer.weight.grad).any()


class TestCheckpointManager:
    def test_in_memory_save_restore(self):
        model = build_model("bert-small", size="tiny", rng=np.random.default_rng(0))
        manager = CheckpointManager()
        original = {k: v.copy() for k, v in model.state_dict().items()}
        manager.save(1, model)
        for p in model.parameters():
            p.data = p.data + 1.0
        manager.restore(model)
        for key, value in model.state_dict().items():
            assert np.allclose(value, original[key])

    def test_on_disk_save_restore(self, tmp_path):
        model = build_model("bert-small", size="tiny", rng=np.random.default_rng(0))
        opt = AdamW(model.parameters(), lr=1e-3)
        manager = CheckpointManager(directory=str(tmp_path))
        manager.save(3, model, opt)
        assert manager.latest.path is not None
        for p in model.parameters():
            p.data = p.data * 0.0
        manager.restore(model, opt)
        assert not np.allclose(model.parameters()[0].data, 0.0)

    def test_keep_last_prunes_old_files(self, tmp_path):
        model = build_model("bert-small", size="tiny", rng=np.random.default_rng(0))
        manager = CheckpointManager(directory=str(tmp_path), keep_last=2)
        for step in range(5):
            manager.save(step, model)
        assert len(manager.records) == 2
        assert len(list(tmp_path.glob("checkpoint_*.npz"))) == 2

    def test_restore_without_checkpoint_raises(self):
        model = build_model("bert-small", size="tiny", rng=np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            CheckpointManager().restore(model)

    def test_timing_counters(self):
        model = build_model("bert-small", size="tiny", rng=np.random.default_rng(0))
        manager = CheckpointManager()
        manager.save(1, model)
        manager.restore(model)
        assert manager.num_saves == 1 and manager.num_restores == 1
        assert manager.mean_save_seconds >= 0.0 and manager.mean_load_seconds >= 0.0

    def test_invalid_keep_last(self):
        with pytest.raises(ValueError):
            CheckpointManager(keep_last=0)


class TestTrainer:
    @pytest.fixture
    def setup(self):
        model = build_model("bert-small", size="tiny", rng=np.random.default_rng(0))
        data = SyntheticMRPC(
            num_examples=32, max_seq_len=model.config.max_seq_len,
            vocab_size=model.config.vocab_size, seed=5,
        )
        loader = DataLoader(data, batch_size=8, shuffle=False)
        return model, loader.batches()

    def test_single_step_updates_weights(self, setup):
        model, batches = setup
        before = model.parameters()[0].data.copy()
        trainer = Trainer(model, config=TrainerConfig(learning_rate=1e-3))
        result = trainer.train_step(batches[0])
        assert np.isfinite(result.loss)
        assert not np.allclose(model.parameters()[0].data, before)
        assert result.step_seconds > 0 and result.attention_seconds > 0

    def test_loss_decreases_over_epochs(self, setup):
        model, batches = setup
        trainer = Trainer(model, config=TrainerConfig(learning_rate=1e-3))
        metrics = trainer.train(batches, epochs=3)
        losses = metrics.epoch_losses()
        assert len(losses) == 3
        assert losses[-1] < losses[0]

    def test_metrics_accumulate(self, setup):
        model, batches = setup
        trainer = Trainer(model, config=TrainerConfig(learning_rate=1e-3))
        trainer.train(batches[:2], epochs=2)
        assert len(trainer.metrics.steps) == 4
        summary = trainer.metrics.as_dict()
        assert summary["num_steps"] == 4
        assert summary["non_trainable_steps"] == 0

    def test_evaluate_reports_accuracy(self, setup):
        model, batches = setup
        trainer = Trainer(model, config=TrainerConfig(learning_rate=1e-3))
        result = trainer.evaluate(batches)
        assert 0.0 <= result["accuracy"] <= 1.0
        assert np.isfinite(result["loss"])

    def test_checkpoint_every_step_saves(self, setup):
        model, batches = setup
        manager = CheckpointManager()
        trainer = Trainer(
            model,
            config=TrainerConfig(learning_rate=1e-3, checkpoint_every=1),
            checkpoints=manager,
        )
        trainer.train_step(batches[0])
        trainer.train_step(batches[1])
        assert manager.num_saves == 2

    def test_nan_loss_triggers_restore(self, setup):
        model, batches = setup
        manager = CheckpointManager()
        trainer = Trainer(
            model,
            config=TrainerConfig(
                learning_rate=1e-3, checkpoint_every=1, restore_on_non_trainable=True
            ),
            checkpoints=manager,
        )
        trainer.train_step(batches[0])  # creates a checkpoint
        # Poison the weights so the next step yields a NaN loss.
        model.parameters()[0].data[:] = np.nan
        result = trainer.train_step(batches[1])
        assert result.restored_from_checkpoint
        assert np.isfinite(result.loss)
        assert manager.num_restores >= 1

"""Unit tests for the EEC-ABFT detection / correction kernel."""

import numpy as np
import pytest

from repro.core.checksums import encode_column_checksums, encode_row_checksums
from repro.core.eec_abft import ColumnCheckReport, check_columns, check_rows
from repro.core.thresholds import ABFTThresholds


@pytest.fixture
def rng():
    return np.random.default_rng(23)


@pytest.fixture
def thresholds():
    return ABFTThresholds()


def protected_matrix(rng, shape=(4, 8, 6)):
    m = rng.normal(size=shape)
    return m, encode_column_checksums(m), m.copy()


class TestCleanData:
    def test_no_false_positives(self, rng, thresholds):
        m, cs, ref = protected_matrix(rng)
        report = check_columns(m, cs, thresholds)
        assert report.clean
        assert report.num_corrected == 0 and report.num_aborted == 0
        assert np.array_equal(m, ref)

    def test_no_false_positives_large_values(self, rng, thresholds):
        m = rng.normal(size=(2, 16, 8)) * 1e4
        report = check_columns(m, encode_column_checksums(m), thresholds)
        assert report.clean

    def test_no_false_positives_after_realistic_gemm(self, rng, thresholds):
        # Checksums carried through a GEMM differ from recomputed ones only by
        # round-off; detection must not fire.
        a = rng.normal(size=(8, 64, 32))
        b = rng.normal(size=(32, 48))
        c = a @ b
        carried = np.matmul(encode_column_checksums(a), b)
        report = check_columns(c, carried, thresholds)
        assert report.clean


class TestSingleErrors:
    @pytest.mark.parametrize(
        "inject",
        [np.inf, -np.inf, np.nan, 4.2e12, -7.7e13],
        ids=["+inf", "-inf", "nan", "+near_inf", "-near_inf"],
    )
    def test_extreme_single_error_restored(self, rng, thresholds, inject):
        m, cs, ref = protected_matrix(rng)
        m[1, 3, 2] = inject
        report = check_columns(m, cs, thresholds)
        assert report.num_detected == 1
        assert report.num_corrected == 1
        assert np.allclose(m, ref, rtol=1e-6, atol=1e-8)

    def test_numeric_single_error_restored(self, rng, thresholds):
        m, cs, ref = protected_matrix(rng)
        m[2, 5, 1] += 37.5
        report = check_columns(m, cs, thresholds)
        assert report.num_corrected == 1
        assert np.allclose(m, ref, rtol=1e-7, atol=1e-9)

    def test_corrected_index_reported(self, rng, thresholds):
        m, cs, ref = protected_matrix(rng, shape=(1, 8, 6))
        m[0, 5, 2] = np.inf
        report = check_columns(m, cs, thresholds)
        assert report.corrected_indices[0, 2] == 5

    def test_case_classification(self, rng, thresholds):
        m, cs, _ = protected_matrix(rng, shape=(1, 8, 6))
        m[0, 2, 0] = np.inf     # delta1 becomes inf  -> case 2
        m[0, 3, 1] = np.nan     # delta1 becomes nan  -> case 3
        m[0, 4, 2] += 11.0      # finite delta        -> case 1
        report = check_columns(m, cs, thresholds)
        assert report.case2[0, 0] and report.case3[0, 1] and report.case1[0, 2]

    def test_tiny_numeric_error_below_tolerance_ignored(self, rng, thresholds):
        m, cs, ref = protected_matrix(rng)
        m[0, 0, 0] += 1e-12
        report = check_columns(m, cs, thresholds)
        assert report.num_corrected == 0


class TestPropagatedPatterns:
    def test_1r_pattern_corrected_by_column_checksums(self, rng, thresholds):
        m, cs, ref = protected_matrix(rng, shape=(2, 3, 8, 6))
        m[0, 1, 4, :] = np.inf  # a whole row: one error per column
        report = check_columns(m, cs, thresholds)
        assert report.num_corrected == 6
        assert np.allclose(m, ref, rtol=1e-6, atol=1e-8)

    def test_1c_pattern_corrected_by_row_checksums(self, rng, thresholds):
        m = rng.normal(size=(2, 5, 7))
        rcs = encode_row_checksums(m)
        ref = m.copy()
        m[1, :, 3] = 9.9e11     # a whole column: one error per row
        report = check_rows(m, rcs, thresholds)
        assert report.num_corrected == 5
        assert np.allclose(m, ref, rtol=1e-6, atol=1e-8)

    def test_mixed_types_across_columns(self, rng, thresholds):
        m, cs, ref = protected_matrix(rng, shape=(1, 10, 8))
        m[0, 1, 0] = np.inf
        m[0, 2, 1] = np.nan
        m[0, 3, 2] = -2.2e13
        m[0, 4, 3] += 55.0
        report = check_columns(m, cs, thresholds)
        assert report.num_corrected == 4
        assert np.allclose(m, ref, rtol=1e-6, atol=1e-8)

    def test_two_errors_in_one_vector_abort(self, rng, thresholds):
        m, cs, ref = protected_matrix(rng, shape=(1, 10, 4))
        m[0, 1, 2] = np.inf
        m[0, 7, 2] = np.nan
        report = check_columns(m, cs, thresholds)
        assert report.num_aborted == 1
        assert report.num_corrected == 0

    def test_consistent_corruption_reported_as_abort(self, rng, thresholds):
        # Checksums computed FROM the corrupted data are consistent with it;
        # extreme values must still be flagged (case 4) rather than silently
        # accepted.
        m = rng.normal(size=(1, 6, 5))
        m[0, 2, 3] = 5e12
        cs = encode_column_checksums(m)  # consistent with the corruption
        report = check_columns(m, cs, thresholds)
        assert report.num_detected >= 1
        assert report.num_aborted >= 1
        assert report.num_corrected == 0


class TestRowColumnEquivalence:
    def test_row_check_is_transposed_column_check(self, rng, thresholds):
        m = rng.normal(size=(3, 6, 9))
        rcs = encode_row_checksums(m)
        ref = m.copy()
        m[2, 4, 7] = np.nan
        report = check_rows(m, rcs, thresholds)
        assert report.num_corrected == 1
        assert np.allclose(m, ref, rtol=1e-6, atol=1e-8)

    def test_row_check_corrects_in_place_through_view(self, rng, thresholds):
        # check_rows internally transposes; corrections must land in the
        # original array even though reshape of the transposed view copies.
        m = rng.normal(size=(2, 4, 5))
        rcs = encode_row_checksums(m)
        ref = m.copy()
        m[0, 2, 2] = np.inf
        check_rows(m, rcs, thresholds)
        assert np.isfinite(m).all()
        assert np.allclose(m, ref, rtol=1e-6, atol=1e-8)


class TestValidation:
    def test_shape_mismatch_raises(self, rng, thresholds):
        m = rng.normal(size=(4, 5))
        with pytest.raises(ValueError):
            check_columns(m, np.zeros((2, 4)), thresholds)

    def test_checksum_axis_must_be_two(self, rng, thresholds):
        m = rng.normal(size=(4, 5))
        with pytest.raises(ValueError):
            check_columns(m, np.zeros((3, 5)), thresholds)

    def test_detect_only_mode_leaves_data_untouched(self, rng, thresholds):
        m, cs, _ = protected_matrix(rng)
        m[0, 0, 0] = np.inf
        snapshot = m.copy()
        report = check_columns(m, cs, thresholds, correct=False)
        assert report.num_detected == 1
        assert np.array_equal(
            np.nan_to_num(m, nan=0.0, posinf=1.0, neginf=-1.0),
            np.nan_to_num(snapshot, nan=0.0, posinf=1.0, neginf=-1.0),
        )


class TestThresholds:
    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            ABFTThresholds(near_inf=1e4, correct=1e5)
        with pytest.raises(ValueError):
            ABFTThresholds(detect_rtol=0.0)
        with pytest.raises(ValueError):
            ABFTThresholds(index_rtol=0.9)

    def test_is_extreme_mask(self):
        th = ABFTThresholds()
        data = np.array([1.0, np.inf, np.nan, 2e10, 2e9])
        assert th.is_extreme(data).tolist() == [False, True, True, True, False]

    def test_detection_tolerance_scales_with_magnitude(self):
        th = ABFTThresholds()
        small = th.detection_tolerance(np.array(1.0))
        large = th.detection_tolerance(np.array(1e6))
        assert large > small

    def test_paper_default_values(self):
        th = ABFTThresholds()
        assert th.near_inf == 1e10 and th.correct == 1e5


def _report(n, detected=(), corrected=(), aborted=(), case1=(), case2=(), case3=(),
            indices=None):
    def mask(idx):
        m = np.zeros(n, dtype=bool)
        m[list(idx)] = True
        return m

    ci = np.full(n, -1, dtype=np.int64)
    for position, value in (indices or {}).items():
        ci[position] = value
    return ColumnCheckReport(
        detected=mask(detected),
        corrected=mask(corrected),
        aborted=mask(aborted),
        case1=mask(case1),
        case2=mask(case2),
        case3=mask(case3),
        corrected_indices=ci,
    )


class TestReportMerge:
    """Regression tests for ColumnCheckReport.merge.

    The original implementation combined ``aborted`` with ``&`` (so an abort
    raised by only one pass silently vanished) and discarded ``other``'s case
    masks and corrected indices outright.
    """

    def test_detected_and_corrected_are_or(self):
        a = _report(4, detected=(0,), corrected=(0,))
        b = _report(4, detected=(2,), corrected=(2,))
        merged = a.merge(b)
        assert merged.detected.tolist() == [True, False, True, False]
        assert merged.corrected.tolist() == [True, False, True, False]

    def test_abort_survives_when_neither_pass_corrects(self):
        # Regression: `aborted & other.aborted` dropped an abort reported by
        # only one side even though nothing repaired the vector.
        a = _report(3, detected=(1,), aborted=(1,))
        b = _report(3)
        merged = a.merge(b)
        assert merged.aborted.tolist() == [False, True, False]
        assert merged.num_aborted == 1

    def test_abort_cleared_by_orthogonal_correction(self):
        # A vector the column pass aborted on but the row pass repaired must
        # not be reported as aborted.
        a = _report(3, detected=(1,), aborted=(1,))
        b = _report(3, detected=(1,), corrected=(1,), indices={1: 5})
        merged = a.merge(b)
        assert merged.aborted.tolist() == [False, False, False]
        assert merged.corrected.tolist() == [False, True, False]

    def test_case_masks_merged_not_dropped(self):
        # Regression: other's case1/case2/case3 masks were discarded.
        a = _report(4, detected=(0,), case1=(0,))
        b = _report(4, detected=(2, 3), case2=(2,), case3=(3,))
        merged = a.merge(b)
        assert merged.case1.tolist() == [True, False, False, False]
        assert merged.case2.tolist() == [False, False, True, False]
        assert merged.case3.tolist() == [False, False, False, True]

    def test_corrected_indices_merged_not_dropped(self):
        # Regression: other's corrected_indices were discarded.
        a = _report(4, corrected=(0,), indices={0: 2})
        b = _report(4, corrected=(3,), indices={3: 7})
        merged = a.merge(b)
        assert merged.corrected_indices.tolist() == [2, -1, -1, 7]

    def test_self_index_wins_when_both_located(self):
        a = _report(2, corrected=(0,), indices={0: 1})
        b = _report(2, corrected=(0,), indices={0: 4})
        assert a.merge(b).corrected_indices.tolist() == [1, -1]

    def test_mismatched_shapes_concatenate_every_field(self):
        # Col pass over n=3 columns merged with a row pass over m=2 rows:
        # disjoint vector sets, everything concatenates.
        a = _report(3, detected=(1,), aborted=(1,), case2=(1,))
        b = _report(2, detected=(0,), corrected=(0,), case1=(0,), indices={0: 9})
        merged = a.merge(b)
        assert merged.detected.tolist() == [False, True, False, True, False]
        assert merged.corrected.tolist() == [False, False, False, True, False]
        assert merged.aborted.tolist() == [False, True, False, False, False]
        assert merged.case1.tolist() == [False, False, False, True, False]
        assert merged.case2.tolist() == [False, True, False, False, False]
        assert merged.corrected_indices.tolist() == [-1, -1, -1, 9, -1]

    def test_merge_of_real_col_and_row_passes(self, rng, thresholds):
        m = rng.normal(size=(5, 4))
        col = encode_column_checksums(m)
        row = encode_row_checksums(m)
        m[2, 1] = np.inf
        col_report = check_columns(m, col, thresholds)
        row_report = check_rows(m, row, thresholds)
        merged = col_report.merge(row_report)
        # 4 columns + 5 rows = 9 concatenated vectors.
        assert merged.detected.shape == (9,)
        assert merged.num_corrected >= 1

"""Unit tests for the adaptive ABFT detection-frequency optimiser (Section 4.5)."""

import math

import numpy as np
import pytest

from repro.core.adaptive import (
    ERROR_TYPES,
    AdaptiveFrequencyOptimizer,
    ErrorRates,
    OperationVulnerability,
    SectionReliabilityModel,
    TABLE4_VULNERABILITY,
    optimize_abft_frequencies,
)
from repro.core.sections import PROTECTION_SECTIONS
from repro.models import get_config


@pytest.fixture
def config():
    return get_config("bert-base", size="paper")


@pytest.fixture
def vulnerability():
    return OperationVulnerability.from_table4("bert-base")


def reliability(config, vulnerability, rate=1e-24, multiplier=36.0):
    return SectionReliabilityModel(
        config, batch_size=16, error_rates=ErrorRates.uniform(rate),
        vulnerability=vulnerability, flops_multiplier=multiplier,
    )


class TestErrorRates:
    def test_uniform(self):
        rates = ErrorRates.uniform(1e-20)
        assert rates.inf == rates.nan == rates.near_inf == 1e-20

    def test_from_figure10_units(self):
        rates = ErrorRates.from_errors_per_1e25_flops(13)
        assert rates.inf == pytest.approx(13e-25)

    def test_rate_lookup(self):
        rates = ErrorRates(inf=1.0, nan=2.0, near_inf=3.0)
        assert [rates.rate(e) for e in ERROR_TYPES] == [1.0, 2.0, 3.0]
        with pytest.raises(KeyError):
            rates.rate("bogus")


class TestVulnerability:
    def test_table4_contains_all_four_models(self):
        assert set(TABLE4_VULNERABILITY) == {"bert-base", "gpt2", "gpt-neo", "roberta"}

    def test_from_table4_maps_matrices_to_ops(self, vulnerability):
        assert vulnerability.get("xq", "inf") == 1.0
        assert vulnerability.get("qk", "near_inf") == pytest.approx(0.002)
        # The O matrix is not in Table 4; it falls back to the CL column.
        assert vulnerability.get("clo", "inf") == 1.0

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            OperationVulnerability.from_table4("t5")

    def test_from_measurements(self):
        vuln = OperationVulnerability.from_measurements({"xq": {"inf": 0.5}})
        assert vuln.get("xq", "inf") == 0.5
        assert vuln.get("xq", "nan", default=0.9) == 0.9

    def test_near_inf_less_vulnerable_than_inf(self, vulnerability):
        for op in ("xq", "xk", "xv", "qk", "apv"):
            assert vulnerability.get(op, "near_inf") <= vulnerability.get(op, "inf")


class TestReliabilityModel:
    def test_poisson_probabilities_sum_sensibly(self, config, vulnerability):
        rel = reliability(config, vulnerability)
        p0 = rel.p_errors("xq", "inf", 0)
        p1 = rel.p_errors("xq", "inf", 1)
        assert 0 < p0 <= 1 and 0 <= p1 < 1
        assert p0 > p1  # rare-error regime

    def test_zero_rate_degenerate(self, config, vulnerability):
        rel = SectionReliabilityModel(
            config, 16, ErrorRates.uniform(0.0), vulnerability
        )
        assert rel.p_errors("xq", "inf", 0) == 1.0
        assert rel.p_errors("xq", "inf", 1) == 0.0
        assert rel.r_free("AS") == 1.0

    def test_r_free_decreases_with_rate(self, config, vulnerability):
        low = reliability(config, vulnerability, rate=1e-25)
        high = reliability(config, vulnerability, rate=1e-20)
        for name in PROTECTION_SECTIONS:
            assert high.r_free(name) < low.r_free(name)

    def test_r_single_requires_member_operation(self, config, vulnerability):
        rel = reliability(config, vulnerability)
        with pytest.raises(KeyError):
            rel.r_single("AS", "apv", "inf")

    def test_fault_coverage_monotone_in_frequency(self, config, vulnerability):
        rel = reliability(config, vulnerability, rate=1e-18)
        for name in PROTECTION_SECTIONS:
            fc0 = rel.fault_coverage(name, 0.0)
            fc_half = rel.fault_coverage(name, 0.5)
            fc1 = rel.fault_coverage(name, 1.0)
            assert fc0 <= fc_half <= fc1 <= 1.0 + 1e-12

    def test_full_frequency_coverage_close_to_one(self, config, vulnerability):
        rel = reliability(config, vulnerability, rate=1e-18)
        fc = rel.attention_fault_coverage({"AS": 1.0, "CL": 1.0, "O": 1.0})
        assert fc > 1.0 - 1e-6

    def test_invalid_frequency_rejected(self, config, vulnerability):
        rel = reliability(config, vulnerability)
        with pytest.raises(ValueError):
            rel.fault_coverage("AS", 1.5)

    def test_vulnerability_mass_positive_and_ordered(self, config, vulnerability):
        rel = reliability(config, vulnerability, rate=1e-20)
        masses = {name: rel.vulnerability_mass(name) for name in PROTECTION_SECTIONS}
        assert all(m > 0 for m in masses.values())
        # S_AS covers three GEMMs including the most vulnerable ones (Q, K).
        assert masses["AS"] > masses["O"]

    def test_fce_is_mass_per_time(self, config, vulnerability):
        rel = reliability(config, vulnerability, rate=1e-20)
        for name in PROTECTION_SECTIONS:
            expected = rel.vulnerability_mass(name) / rel.section_times[name]
            assert rel.fault_coverage_efficiency(name) == pytest.approx(expected)


class TestOptimizer:
    def test_low_error_rate_needs_no_abft(self, config, vulnerability):
        plan = optimize_abft_frequencies(
            config, 16, ErrorRates.from_errors_per_1e25_flops(1.0), vulnerability,
            target_coverage=1 - 1e-11, flops_multiplier=36.0,
        )
        assert all(f == 0.0 for f in plan.frequencies.values())
        assert plan.relative_overhead == 0.0
        assert plan.meets_target

    def test_high_error_rate_enables_full_abft(self, config, vulnerability):
        plan = optimize_abft_frequencies(
            config, 16, ErrorRates.uniform(1e-15), vulnerability,
            target_coverage=1 - 1e-11, flops_multiplier=36.0,
        )
        assert all(f == pytest.approx(1.0) for f in plan.frequencies.values())
        assert plan.relative_overhead == pytest.approx(1.0)

    def test_overhead_monotone_in_error_rate(self, config, vulnerability):
        overheads = []
        for rate in (50, 100, 200, 400, 800):
            plan = optimize_abft_frequencies(
                config, 16, ErrorRates.from_errors_per_1e25_flops(rate), vulnerability,
                target_coverage=1 - 1e-11, flops_multiplier=36.0,
            )
            overheads.append(plan.relative_overhead)
        assert overheads == sorted(overheads)
        assert overheads[-1] > 0

    def test_plan_meets_target_when_feasible(self, config, vulnerability):
        plan = optimize_abft_frequencies(
            config, 16, ErrorRates.from_errors_per_1e25_flops(500), vulnerability,
            target_coverage=1 - 1e-11, flops_multiplier=36.0,
        )
        assert plan.meets_target
        assert plan.achieved_coverage >= plan.target_coverage - 1e-15

    def test_greedy_prefers_most_efficient_section(self, config, vulnerability):
        rel = reliability(config, vulnerability, rate=3e-23)
        plan = AdaptiveFrequencyOptimizer(rel).optimize(1 - 1e-11)
        if any(0 < f < 1 for f in plan.frequencies.values()):
            order = sorted(
                PROTECTION_SECTIONS, key=rel.fault_coverage_efficiency, reverse=True
            )
            # Sections after the first fractional one must be disabled.
            seen_fractional = False
            for name in order:
                f = plan.frequencies[name]
                if seen_fractional:
                    assert f == 0.0
                if 0 < f < 1:
                    seen_fractional = True

    def test_invalid_target_rejected(self, config, vulnerability):
        rel = reliability(config, vulnerability)
        with pytest.raises(ValueError):
            AdaptiveFrequencyOptimizer(rel).optimize(0.0)

    def test_custom_section_times_change_allocation(self, config, vulnerability):
        rate = ErrorRates.from_errors_per_1e25_flops(300)
        cheap_o = optimize_abft_frequencies(
            config, 16, rate, vulnerability, target_coverage=1 - 1e-11,
            flops_multiplier=36.0, section_times={"AS": 1.0, "CL": 1.0, "O": 1e-6},
        )
        assert cheap_o.abft_time <= sum(cheap_o.section_times.values())
        assert cheap_o.meets_target

"""Bucketed, backward-overlapped protected gradient all-reduce.

Covers the :mod:`repro.comm.bucketing` layer (reverse-registration
partitioning, flat roundtrips, readiness tracking), the eager-reduce
collective mode, and the overlapped :class:`DataParallelTrainer` path — whose
non-negotiable gate is byte-identity to the phase-split serial reference for
any bucket cap and worker count, on thread and process executors alike.
Bucket-granular dirty retries and the bucket-aware dispatch accounting of
``SectionCostModel.collective_checksum_dispatches_per_step`` are
counter-verified.
"""

import numpy as np
import pytest

from repro.comm import GradientBucketer, ThreadCollective
from repro.core import SectionCostModel
from repro.faults import CollectiveFaultInjector, CollectiveFaultSpec
from repro.training import DataParallelConfig, DataParallelTrainer, ReplicaSpec


def make_batch(seed: int, batch: int = 8, seq: int = 10, vocab: int = 100):
    rng = np.random.default_rng(seed)
    return {
        "input_ids": rng.integers(0, vocab, size=(batch, seq)),
        "attention_mask": np.ones((batch, seq), dtype=np.int64),
        "labels": rng.integers(0, 2, size=(batch,)),
    }


BATCHES = [make_batch(200 + i) for i in range(2)]
SPEC = ReplicaSpec(name="bert-base", size="tiny", seed=7, num_labels=2)

#: Caps chosen to exercise many-bucket, few-bucket and single-bucket
#: partitions of the ~0.65 MiB tiny-BERT gradient set.
CAPS = (0.013, 0.08, 16.0)


def train_overlapped(workers, shards, executor="thread", cap=0.08, policy="record",
                     overlap=True, collective_injector=None, protection=None,
                     steps=2):
    config = DataParallelConfig(
        workers=workers,
        shards=shards,
        executor=executor,
        stale_policy=policy,
        overlap_grad_reduce=overlap,
        bucket_cap_mb=cap,
        protection=protection,
    )
    trainer = DataParallelTrainer(
        model_spec=SPEC, config=config, collective_injector=collective_injector
    )
    try:
        results = [trainer.train_step(batch) for batch in BATCHES[:steps]]
        return trainer.state_dict(), results, trainer
    finally:
        trainer.close()


def states_equal(a, b):
    return set(a) == set(b) and all(
        np.array_equal(np.asarray(a[k]), np.asarray(b[k])) for k in a
    )


@pytest.fixture(scope="module")
def reference_state():
    """Phase-split serial reference at shards=4 — the byte-identity anchor."""
    state, _, _ = train_overlapped(workers=1, shards=4, executor="serial",
                                   overlap=False)
    return state


class TestGradientBucketer:
    def test_partition_is_reverse_registration_order(self):
        arrays = [np.zeros((10, 4)), np.zeros((7,)), np.zeros((3, 3)), np.zeros((5,))]
        bucketer = GradientBucketer(arrays, bucket_cap_mb=60 * 8 / 2**20)
        # Bucket 0 fills back-to-front: params 3, 2, 1 (5 + 9 + 7 = 21 elems),
        # then param 0 (40 elems) overflows the 60-element cap into bucket 1.
        assert bucketer.buckets[0].param_indices == (3, 2, 1)
        assert bucketer.buckets[1].param_indices == (0,)
        assert bucketer.buckets[0].offsets == (0, 5, 14)
        assert bucketer.buckets[0].total_size == 21

    def test_every_param_owned_by_exactly_one_bucket(self):
        arrays = [np.zeros((i + 1,)) for i in range(9)]
        bucketer = GradientBucketer(arrays, bucket_cap_mb=10 * 8 / 2**20)
        owned = [pi for spec in bucketer.buckets for pi in spec.param_indices]
        assert sorted(owned) == list(range(9))
        assert set(bucketer.param_to_bucket) == set(range(9))

    def test_oversized_param_gets_singleton_bucket(self):
        arrays = [np.zeros((100,)), np.zeros((2,))]
        bucketer = GradientBucketer(arrays, bucket_cap_mb=10 * 8 / 2**20)
        assert [spec.param_indices for spec in bucketer.buckets] == [(1,), (0,)]

    def test_dtype_boundary_closes_bucket(self):
        arrays = [np.zeros((2,), dtype=np.float64), np.zeros((2,), dtype=np.float32)]
        bucketer = GradientBucketer(arrays, bucket_cap_mb=1.0)
        assert bucketer.num_buckets == 2
        assert bucketer.buckets[0].dtype == np.dtype(np.float32)
        assert bucketer.buckets[1].dtype == np.dtype(np.float64)

    def test_flatten_unflatten_roundtrip(self):
        arrays = [np.zeros((4, 3)), np.zeros((5,)), np.zeros((2, 2))]
        bucketer = GradientBucketer(arrays, bucket_cap_mb=1.0)
        grads = [np.full(a.shape, i + 1.0) for i, a in enumerate(arrays)]
        for bucket in range(bucketer.num_buckets):
            flat = bucketer.flatten(bucket, grads, np)
            for pi, view in bucketer.unflatten(bucket, flat).items():
                np.testing.assert_array_equal(view, grads[pi])

    def test_flatten_zero_fills_missing_gradients(self):
        arrays = [np.zeros((3,)), np.zeros((2,))]
        bucketer = GradientBucketer(arrays, bucket_cap_mb=1.0)
        flat = bucketer.flatten(0, [None, np.array([5.0, 6.0])], np)
        np.testing.assert_array_equal(flat, [5.0, 6.0, 0.0, 0.0, 0.0])

    def test_validation(self):
        with pytest.raises(ValueError, match="empty parameter list"):
            GradientBucketer([], bucket_cap_mb=1.0)
        with pytest.raises(ValueError, match="bucket_cap_mb"):
            GradientBucketer([np.zeros(2)], bucket_cap_mb=0.0)


class TestBucketReadiness:
    def test_mark_returns_bucket_on_completion(self):
        arrays = [np.zeros((4,)), np.zeros((4,)), np.zeros((4,))]
        bucketer = GradientBucketer(arrays, bucket_cap_mb=8 * 8 / 2**20)
        tracker = bucketer.tracker()
        # Bucket 0 = params (2, 1); bucket 1 = params (0,).
        assert tracker.mark(2) is None
        assert tracker.mark(1) == 0
        assert tracker.pending() == [1]
        assert tracker.mark(0) == 1
        assert tracker.pending() == []

    def test_double_mark_is_an_error(self):
        bucketer = GradientBucketer([np.zeros((2,))], bucket_cap_mb=1.0)
        tracker = bucketer.tracker()
        tracker.mark(0)
        with pytest.raises(RuntimeError, match="marked ready twice"):
            tracker.mark(0)

    def test_reset_restarts_readiness(self):
        bucketer = GradientBucketer([np.zeros((2,))], bucket_cap_mb=1.0)
        tracker = bucketer.tracker()
        assert tracker.mark(0) == 0
        tracker.reset()
        assert tracker.pending() == [0]
        assert tracker.mark(0) == 0


class TestEagerReduce:
    def test_eager_fold_is_bit_identical_to_lazy(self):
        # Float addition is not associative: both modes must fold the same
        # rank order, so catastrophic-cancellation payloads stay identical.
        values = [np.array([0.1, 1e16]), np.array([0.2, -1e16]), np.array([0.3, 1.0])]
        outs = []
        for eager in (False, True):
            coll = ThreadCollective(3, op="mean", eager_reduce=eager)
            for rank in (2, 0, 1):
                coll.contribute("k", rank, [values[rank]])
            outs.append(coll.finish("k", 0)[0])
        np.testing.assert_array_equal(outs[0], outs[1])

    def test_last_contributor_folds_before_finish(self):
        coll = ThreadCollective(2, op="sum", eager_reduce=True)
        coll.contribute("k", 0, [np.array([1.0])])
        coll.contribute("k", 1, [np.array([2.0])])
        # The rendezvous folded inside the last contribute: the result is
        # ready before any rank blocks in finish.
        with coll._cv:
            assert "k" in coll._results
            assert "k" not in coll._entries
        assert coll.finish("k", 0)[0][0] == 3.0
        assert coll.finish("k", 1)[0][0] == 3.0


class TestOverlappedByteIdentity:
    """The non-negotiable gate: overlapped == non-overlapped == serial,
    byte-for-byte, for any bucket cap and worker count."""

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("cap", CAPS)
    def test_thread_overlapped_matches_serial_reference(
        self, workers, cap, reference_state
    ):
        state, results, _ = train_overlapped(
            workers=workers, shards=4, executor="thread", cap=cap
        )
        assert states_equal(reference_state, state)
        assert results[0].buckets >= 1
        if cap == CAPS[0]:
            assert results[0].buckets > 4

    def test_serial_overlapped_matches_serial_reference(self, reference_state):
        state, _, _ = train_overlapped(workers=1, shards=4, executor="serial")
        assert states_equal(reference_state, state)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_process_overlapped_matches_serial_reference(
        self, workers, reference_state
    ):
        state, results, _ = train_overlapped(
            workers=workers, shards=4, executor="process"
        )
        assert states_equal(reference_state, state)
        assert results[0].buckets >= 1

    def test_overlapped_matches_non_overlapped_same_worker_count(self):
        plain, _, _ = train_overlapped(workers=2, shards=2, overlap=False)
        overlapped, _, _ = train_overlapped(workers=2, shards=2, cap=0.02)
        assert states_equal(plain, overlapped)

    def test_deferred_mode_with_checker_matches_reference(self):
        # A checker under "reexecute" forces deferred launches (a re-executed
        # shard must not double-contribute); the result is still identical.
        from repro.core import ATTNCheckerConfig

        plain, _, _ = train_overlapped(workers=2, shards=2, overlap=False)
        state, _, trainer = train_overlapped(
            workers=2,
            shards=2,
            cap=0.05,
            policy="reexecute",
            protection=ATTNCheckerConfig(backend="fused"),
        )
        assert states_equal(plain, state)
        counters = trainer.bucket_counters()
        assert counters["bucket_launches"] > 0
        assert counters["overlapped_launches"] == 0


class TestOverlapAccounting:
    def test_timer_keys_and_efficiency(self):
        _, results, trainer = train_overlapped(workers=2, shards=4, cap=0.08)
        keys = set(trainer.timers.as_dict())
        assert {"comm/bucket", "comm/overlap", "comm/drain"} <= keys
        result = results[0]
        assert 0.0 <= result.overlap_efficiency <= 1.0
        assert result.overlap_seconds > 0.0
        # Immediate mode on the thread executor: every bucket launch of every
        # rank fired from inside backward.
        counters = trainer.bucket_counters()
        assert counters["overlapped_launches"] == counters["bucket_launches"]
        assert counters["bucket_launches"] == result.buckets * 4 * len(BATCHES)

    def test_dispatch_counters_match_bucket_aware_cost_model(self):
        _, results, trainer = train_overlapped(workers=2, shards=4, cap=0.08)
        num_params = len(trainer.runners[0].params)
        per_step = SectionCostModel.collective_checksum_dispatches_per_step(
            num_gradients=num_params + 1,
            world_size=4,
            num_buckets=results[0].buckets,
        )
        counters = trainer.collective_counters()
        assert counters["checksum_encodes"] == per_step["encode"] * len(BATCHES)
        assert counters["checksum_verifies"] == per_step["verify"] * len(BATCHES)
        assert counters["mismatches"] == 0

    def test_bucketed_cost_model_collapses_dispatches(self):
        flat = SectionCostModel.collective_checksum_dispatches_per_step(42, 4)
        bucketed = SectionCostModel.collective_checksum_dispatches_per_step(
            42, 4, num_buckets=12
        )
        assert flat == {"encode": 168, "verify": 42}
        assert bucketed == {"encode": 52, "verify": 13}
        assert bucketed["encode"] < flat["encode"]
        assert bucketed["verify"] < flat["verify"]

    def test_bucketed_cost_model_validates_num_buckets(self):
        with pytest.raises(ValueError, match="num_buckets"):
            SectionCostModel.collective_checksum_dispatches_per_step(
                42, 4, num_buckets=0
            )
        with pytest.raises(ValueError, match="num_buckets"):
            SectionCostModel.collective_checksum_dispatches_per_step(
                42, 4, num_buckets=42
            )


class TestBucketGranularRetry:
    def _injector(self, bucket: int, rank: int = 1):
        return CollectiveFaultInjector(
            [
                CollectiveFaultSpec(
                    step=1,
                    rank=rank,
                    array_index=0,
                    position=2,
                    key_contains=f"bucket{bucket}",
                )
            ]
        )

    def test_reexecute_retries_only_the_dirty_bucket(self, reference_state):
        injector = self._injector(bucket=3)
        state, results, trainer = train_overlapped(
            workers=2, shards=4, cap=0.08, policy="reexecute",
            collective_injector=injector,
        )
        # Exactly one retry, on exactly the struck bucket; recovery is
        # byte-identical to the fault-free reference.
        assert trainer.bucket_counters()["bucket_retries"] == {3: 1}
        assert results[0].reduction_reexecutions == 1
        assert results[0].dirty_reductions == 0
        assert results[1].reduction_reexecutions == 0
        assert trainer.collective_counters()["mismatches"] == 1
        assert states_equal(reference_state, state)

    def test_record_policy_counts_dirty_bucket_without_retry(self):
        injector = self._injector(bucket=1)
        _, results, trainer = train_overlapped(
            workers=2, shards=4, cap=0.08, policy="record",
            collective_injector=injector,
        )
        assert results[0].dirty_reductions == 1
        assert results[0].reduction_reexecutions == 0
        assert trainer.bucket_counters()["bucket_retries"] == {}

    def test_process_executor_retry_recovers(self, reference_state):
        injector = self._injector(bucket=2)
        state, results, trainer = train_overlapped(
            workers=2, shards=4, executor="process", cap=0.08,
            policy="reexecute", collective_injector=injector,
        )
        assert trainer.bucket_counters()["bucket_retries"] == {2: 1}
        assert results[0].reduction_reexecutions == 1
        assert states_equal(reference_state, state)

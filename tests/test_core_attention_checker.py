"""Unit and integration tests for the ATTNChecker hook and protection sections."""

import numpy as np
import pytest

from repro.core import (
    ATTNChecker,
    ATTNCheckerConfig,
    ABFTThresholds,
    PROTECTION_SECTIONS,
    SectionCostModel,
)
from repro.faults import FaultInjector, FaultSpec
from repro.models import build_model, get_config
from repro.nn import ComposedHooks, MultiHeadAttention
from repro.tensor.autograd import Tensor


@pytest.fixture
def rng():
    return np.random.default_rng(41)


@pytest.fixture
def attention(rng):
    return MultiHeadAttention(hidden_size=16, num_heads=4, dropout_p=0.0, rng=rng)


def run_attention(attention, x, hooks):
    attention.set_hooks(hooks)
    try:
        return attention(Tensor(x)).data.copy()
    finally:
        attention.set_hooks(None)


class TestSections:
    def test_three_sections_defined(self):
        assert set(PROTECTION_SECTIONS) == {"AS", "CL", "O"}

    def test_sections_cover_all_six_gemms(self):
        covered = [op for s in PROTECTION_SECTIONS.values() for op in s.operations]
        assert sorted(covered) == sorted(["xq", "xk", "qk", "xv", "apv", "clo"])

    def test_nondeterministic_flags(self):
        assert PROTECTION_SECTIONS["AS"].nondeterministic
        assert PROTECTION_SECTIONS["CL"].nondeterministic
        assert not PROTECTION_SECTIONS["O"].nondeterministic

    def test_section_cost_model_positive(self):
        model = SectionCostModel(get_config("bert-base", size="paper"), batch_size=8)
        for name in PROTECTION_SECTIONS:
            costs = model.section_costs(name)
            assert costs.detection_path_flops > 0
            assert costs.total_flops >= costs.detection_path_flops

    def test_abft_flops_small_relative_to_gemms(self):
        model = SectionCostModel(get_config("bert-base", size="paper"), batch_size=8)
        assert model.abft_relative_overhead() < 0.15

    def test_unknown_section_raises(self):
        model = SectionCostModel(get_config("bert-base", size="paper"), batch_size=8)
        with pytest.raises(KeyError):
            model.section_costs("XYZ")


class TestCheckerConfig:
    def test_default_frequencies_full(self):
        config = ATTNCheckerConfig()
        assert config.frequencies == {"AS": 1.0, "CL": 1.0, "O": 1.0}

    def test_invalid_frequency_rejected(self):
        with pytest.raises(ValueError):
            ATTNCheckerConfig(frequencies={"AS": 1.5})
        with pytest.raises(KeyError):
            ATTNCheckerConfig(frequencies={"XX": 0.5})

    def test_set_frequencies_validation(self):
        checker = ATTNChecker()
        with pytest.raises(ValueError):
            checker.set_frequencies({"AS": -0.1})
        checker.set_frequencies({"AS": 0.5})
        assert checker.config.frequencies["AS"] == 0.5


class TestTransparency:
    def test_clean_forward_is_bitwise_unchanged(self, attention, rng):
        x = rng.normal(size=(2, 6, 16))
        attention.eval()
        reference = run_attention(attention, x, None)
        checker = ATTNChecker()
        protected = run_attention(attention, x, checker)
        assert np.array_equal(protected, reference)
        assert checker.stats.total_detections == 0
        assert checker.stats.total_corrections == 0

    def test_clean_training_model_unperturbed(self, rng):
        model = build_model("bert-base", size="tiny", rng=np.random.default_rng(0))
        model.eval()
        ids = rng.integers(0, model.config.vocab_size, size=(4, model.config.max_seq_len))
        mask = np.ones((4, model.config.max_seq_len))
        reference = model(ids, attention_mask=mask).logits.data.copy()
        checker = ATTNChecker()
        model.set_attention_hooks(checker)
        protected = model(ids, attention_mask=mask).logits.data.copy()
        model.set_attention_hooks(None)
        assert np.array_equal(protected, reference)
        assert checker.stats.total_detections == 0

    def test_timers_record_abft_work(self, attention, rng):
        checker = ATTNChecker()
        run_attention(attention, rng.normal(size=(2, 6, 16)), checker)
        assert checker.overhead_seconds() > 0
        per_section = checker.section_overhead_seconds()
        assert set(per_section) == {"AS", "CL", "O"}
        assert all(v >= 0 for v in per_section.values())

    def test_summary_mentions_sections(self, attention, rng):
        checker = ATTNChecker()
        run_attention(attention, rng.normal(size=(1, 4, 16)), checker)
        text = checker.summary()
        assert "[AS]" in text and "[CL]" in text and "[O]" in text


@pytest.mark.parametrize("matrix", ["Q", "K", "V", "AS", "CL", "O"])
@pytest.mark.parametrize("error_type", ["inf", "nan", "near_inf"])
class TestInjectedErrorsCorrected:
    def test_single_fault_detected_corrected_and_output_restored(
        self, attention, rng, matrix, error_type
    ):
        x = rng.normal(size=(2, 6, 16))
        attention.eval()
        reference = run_attention(attention, x, None)
        injector = FaultInjector(
            [FaultSpec(matrix=matrix, error_type=error_type, layer_index=0)],
            rng=np.random.default_rng(7),
        )
        checker = ATTNChecker()
        protected = run_attention(attention, x, ComposedHooks([injector, checker]))
        assert injector.num_injections == 1
        assert checker.stats.total_detections >= 1
        assert checker.stats.total_corrections >= 1
        assert checker.stats.total_residual_extreme == 0
        assert np.allclose(protected, reference, rtol=1e-6, atol=1e-6)


class TestWithoutChecker:
    @pytest.mark.parametrize("error_type", ["inf", "nan"])
    def test_unprotected_forward_is_corrupted(self, attention, rng, error_type):
        x = rng.normal(size=(2, 6, 16))
        attention.eval()
        reference = run_attention(attention, x, None)
        injector = FaultInjector(
            [FaultSpec(matrix="Q", error_type=error_type)], rng=np.random.default_rng(7)
        )
        corrupted = run_attention(attention, x, injector)
        assert not np.allclose(
            np.nan_to_num(corrupted), np.nan_to_num(reference), rtol=1e-5, atol=1e-5
        ) or np.isnan(corrupted).any()


class TestOperandRepair:
    def test_repair_operands_keeps_backward_finite(self, rng):
        model = build_model("bert-base", size="tiny", rng=np.random.default_rng(0))
        ids = rng.integers(0, model.config.vocab_size, size=(4, model.config.max_seq_len))
        mask = np.ones((4, model.config.max_seq_len))
        labels = rng.integers(0, 2, size=4)
        injector = FaultInjector(
            [FaultSpec(matrix="K", error_type="inf")], rng=np.random.default_rng(3)
        )
        checker = ATTNChecker(ATTNCheckerConfig(repair_operands=True))
        model.set_attention_hooks(ComposedHooks([injector, checker]))
        out = model(ids, attention_mask=mask, labels=labels)
        out.loss.backward()
        model.set_attention_hooks(None)
        assert np.isfinite(out.loss_value)
        assert all(np.isfinite(p.grad).all() for p in model.parameters() if p.grad is not None)
        assert checker.stats.sections["AS"].operand_repairs >= 1


class TestDetectionFrequencies:
    def test_zero_frequency_skips_checks(self, attention, rng):
        checker = ATTNChecker(ATTNCheckerConfig(frequencies={"AS": 0.0, "CL": 0.0, "O": 0.0}))
        run_attention(attention, rng.normal(size=(1, 4, 16)), checker)
        assert checker.stats.total_checks == 0
        skipped = sum(s.checks_skipped for s in checker.stats.sections.values())
        assert skipped >= 3

    def test_half_frequency_checks_every_other_pass(self, attention, rng):
        checker = ATTNChecker(ATTNCheckerConfig(frequencies={"AS": 0.5, "CL": 0.5, "O": 0.5}))
        x = rng.normal(size=(1, 4, 16))
        for _ in range(4):
            run_attention(attention, x, checker)
        assert checker.stats.sections["AS"].checks_run == 2
        assert checker.stats.sections["AS"].checks_skipped == 2

    def test_full_frequency_checks_every_pass(self, attention, rng):
        checker = ATTNChecker()
        x = rng.normal(size=(1, 4, 16))
        for _ in range(3):
            run_attention(attention, x, checker)
        assert checker.stats.sections["AS"].checks_run == 3

    def test_disabled_section_misses_faults_but_o_section_still_catches_them(self, attention, rng):
        # With S_AS disabled, a fault in Q propagates; S_O's checksums derive
        # from AP x V so a Q fault is absorbed into them (not detectable
        # there), demonstrating why sectioning matters.
        x = rng.normal(size=(1, 6, 16))
        attention.eval()
        injector = FaultInjector([FaultSpec(matrix="AS", error_type="inf")], rng=np.random.default_rng(5))
        checker = ATTNChecker(ATTNCheckerConfig(frequencies={"AS": 0.0, "CL": 1.0, "O": 1.0}))
        run_attention(attention, x, ComposedHooks([injector, checker]))
        assert checker.stats.sections["AS"].checks_run == 0

    def test_reset_stats(self, attention, rng):
        checker = ATTNChecker()
        run_attention(attention, rng.normal(size=(1, 4, 16)), checker)
        checker.reset_stats()
        assert checker.stats.total_checks == 0
        assert checker.overhead_seconds() == 0.0

"""Unit tests for the Module / Parameter system."""

import numpy as np
import pytest

from repro.nn.layers import LayerNorm, Linear
from repro.nn.module import Module, ModuleList, Parameter


class TinyNet(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 8, rng=np.random.default_rng(0))
        self.fc2 = Linear(8, 2, rng=np.random.default_rng(1))
        self.norm = LayerNorm(8)

    def forward(self, x):
        return self.fc2(self.norm(self.fc1(x)))


class TestRegistration:
    def test_parameters_registered_via_setattr(self):
        net = TinyNet()
        names = [name for name, _ in net.named_parameters()]
        assert "fc1.weight" in names and "fc2.bias" in names and "norm.weight" in names

    def test_num_parameters(self):
        net = TinyNet()
        expected = 4 * 8 + 8 + 8 * 2 + 2 + 8 + 8
        assert net.num_parameters() == expected

    def test_named_modules_includes_children(self):
        net = TinyNet()
        module_names = [name for name, _ in net.named_modules()]
        assert "" in module_names and "fc1" in module_names and "norm" in module_names

    def test_register_parameter_explicit(self):
        module = Module()
        module.register_parameter("w", Parameter(np.zeros(3)))
        assert [n for n, _ in module.named_parameters()] == ["w"]

    def test_parameter_is_tensor_with_grad(self):
        p = Parameter(np.zeros((2, 2)))
        assert p.requires_grad


class TestTrainEval:
    def test_train_flag_propagates(self):
        net = TinyNet()
        net.eval()
        assert not net.training and not net.fc1.training
        net.train()
        assert net.training and net.norm.training


class TestGradients:
    def test_zero_grad_clears_all(self):
        net = TinyNet()
        from repro.tensor.autograd import Tensor

        out = net(Tensor(np.random.default_rng(0).normal(size=(3, 4))))
        out.sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())


class TestStateDict:
    def test_roundtrip(self):
        net = TinyNet()
        state = net.state_dict()
        other = TinyNet()
        other.load_state_dict(state)
        for (_, a), (_, b) in zip(net.named_parameters(), other.named_parameters()):
            assert np.array_equal(a.data, b.data)

    def test_state_dict_is_a_copy(self):
        net = TinyNet()
        state = net.state_dict()
        state["fc1.weight"][:] = 0.0
        assert not np.array_equal(net.fc1.weight.data, state["fc1.weight"])

    def test_strict_load_rejects_missing_keys(self):
        net = TinyNet()
        state = net.state_dict()
        state.pop("fc1.weight")
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_strict_load_rejects_unexpected_keys(self):
        net = TinyNet()
        state = net.state_dict()
        state["bogus"] = np.zeros(1)
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_non_strict_load_ignores_extra(self):
        net = TinyNet()
        state = net.state_dict()
        state["bogus"] = np.zeros(1)
        net.load_state_dict(state, strict=False)

    def test_shape_mismatch_raises(self):
        net = TinyNet()
        state = net.state_dict()
        state["fc1.weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            net.load_state_dict(state)


class TestModuleList:
    def test_indexing_and_len(self):
        layers = ModuleList([Linear(2, 2), Linear(2, 2)])
        assert len(layers) == 2
        assert isinstance(layers[1], Linear)

    def test_parameters_of_children_are_visible(self):
        layers = ModuleList([Linear(2, 2, bias=False), Linear(2, 2, bias=False)])
        assert len(layers.parameters()) == 2

    def test_iteration(self):
        layers = ModuleList([Linear(2, 2), Linear(2, 3)])
        out_features = [l.out_features for l in layers]
        assert out_features == [2, 3]

    def test_calling_container_raises(self):
        with pytest.raises(RuntimeError):
            ModuleList([Linear(2, 2)])(None)

    def test_append_registers_module(self):
        layers = ModuleList()
        layers.append(Linear(3, 3))
        assert any(name.startswith("0.") for name, _ in layers.named_parameters())

"""Unit tests for IEEE-754 bit manipulation helpers."""

import numpy as np
import pytest

from repro.utils.floatbits import (
    EXPONENT_BITS,
    MANTISSA_BITS,
    bits_to_float,
    classify_value,
    flip_bit,
    flip_exponent_msb,
    float_to_bits,
    is_extreme,
    make_inf,
    make_nan,
    make_near_inf,
)


class TestBitViews:
    def test_roundtrip_float32(self):
        values = np.array([0.0, 1.0, -2.5, 3.14159], dtype=np.float32)
        assert np.array_equal(bits_to_float(float_to_bits(values), np.float32), values)

    def test_roundtrip_float64(self):
        values = np.array([0.0, 1.0, -2.5, 1e300], dtype=np.float64)
        assert np.array_equal(bits_to_float(float_to_bits(values), np.float64), values)

    def test_scalar_input_uses_requested_dtype(self):
        bits = float_to_bits(1.0, dtype=np.float32)
        assert bits.dtype == np.uint32

    def test_one_bit_pattern_of_one(self):
        # 1.0f has exponent 127 and zero mantissa: 0x3F800000.
        assert int(float_to_bits(np.float32(1.0))) == 0x3F800000


class TestFlipBit:
    def test_flip_sign_bit_negates(self):
        flipped = flip_bit(np.float32(3.5), 31, dtype=np.float32)
        assert float(flipped) == -3.5

    def test_flip_is_involution(self):
        value = np.float32(123.456)
        twice = flip_bit(flip_bit(value, 12), 12)
        assert float(twice) == pytest.approx(float(value))

    def test_flip_mantissa_bit_small_change(self):
        value = np.float32(1.0)
        flipped = flip_bit(value, 0)
        assert abs(float(flipped) - 1.0) < 1e-6
        assert float(flipped) != 1.0

    def test_out_of_range_bit_raises(self):
        with pytest.raises(ValueError):
            flip_bit(np.float32(1.0), 32)

    def test_array_input_flips_every_element(self):
        values = np.ones(5, dtype=np.float32)
        flipped = flip_bit(values, 31)
        assert np.all(flipped == -1.0)


class TestExponentFlip:
    def test_flip_exponent_msb_makes_huge_value(self):
        # 0.7 has biased exponent 126 (MSB clear); setting the MSB multiplies
        # the magnitude by 2^128, producing a huge but representable value.
        flipped = flip_exponent_msb(np.float32(0.7))
        assert np.isfinite(flipped)
        assert abs(float(flipped)) > 1e30

    def test_flip_exponent_msb_of_one_point_five_is_nan(self):
        # 1.5 sits at biased exponent 127: the flip lands on the all-ones
        # exponent with a non-zero mantissa, which IEEE-754 defines as NaN —
        # exactly the "one error type can transit to another" effect the
        # paper describes for bit-flips.
        assert np.isnan(flip_exponent_msb(np.float32(1.5)))

    def test_flip_exponent_msb_float64(self):
        flipped = flip_exponent_msb(np.float64(0.7), dtype=np.float64)
        assert abs(float(flipped)) > 1e300 or np.isinf(flipped)

    def test_exponent_bit_counts(self):
        assert EXPONENT_BITS[np.dtype(np.float32)] == 8
        assert MANTISSA_BITS[np.dtype(np.float32)] == 23
        assert EXPONENT_BITS[np.dtype(np.float64)] == 11
        assert MANTISSA_BITS[np.dtype(np.float64)] == 52


class TestValueFactories:
    def test_make_inf_signs(self):
        assert np.isposinf(make_inf(+1))
        assert np.isneginf(make_inf(-1))

    def test_make_nan(self):
        assert np.isnan(make_nan())

    def test_make_near_inf_is_finite_and_large(self):
        value = make_near_inf(1.7)
        assert np.isfinite(value)
        assert abs(float(value)) > 1e10

    def test_make_near_inf_zero_base_falls_back(self):
        value = make_near_inf(0.0)
        assert np.isfinite(value)
        assert abs(float(value)) > 1e10

    def test_make_near_inf_array(self):
        values = make_near_inf(np.array([1.0, -2.0, 0.5]))
        assert values.shape == (3,)
        assert np.all(np.isfinite(values))
        assert np.all(np.abs(values) > 1e10)


class TestClassification:
    def test_is_extreme_flags_inf_nan_near_inf(self):
        data = np.array([1.0, np.inf, np.nan, 5e12, -3.0])
        mask = is_extreme(data)
        assert mask.tolist() == [False, True, True, True, False]

    def test_is_extreme_respects_threshold(self):
        data = np.array([5e9, 5e12])
        assert is_extreme(data, near_inf_threshold=1e10).tolist() == [False, True]
        assert is_extreme(data, near_inf_threshold=1e13).tolist() == [False, False]

    @pytest.mark.parametrize(
        "value,expected",
        [
            (1.0, "normal"),
            (float("inf"), "inf"),
            (float("nan"), "nan"),
            (1e12, "near_inf"),
            (-1e12, "near_inf"),
            (-5.0, "normal"),
        ],
    )
    def test_classify_value(self, value, expected):
        assert classify_value(value) == expected

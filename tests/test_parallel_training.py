"""Tests for the data-parallel trainer and the checksum-protected collective.

Covers the collective seam (two-phase rendezvous, deterministic rank-ordered
reduction, broadcast, failure poisoning), the checksum-linearity property of
the protected all-reduce across dtypes/shapes, the N-worker vs 1-worker
byte-equivalence of trained weights, dirty-reduction detection and recovery
under every ``stale_policy``, per-rank fault-injector spawning, and the
collective dispatch accounting against the cost model.
"""

import threading

import numpy as np
import pytest

from repro.comm import (
    CollectiveClosed,
    CollectiveError,
    DirtyReductionError,
    ProtectedCollective,
    ThreadCollective,
    gradient_checksum,
    gradient_checksums,
)
from repro.core import SectionCostModel
from repro.faults import (
    CollectiveFaultInjector,
    CollectiveFaultSpec,
    FaultInjector,
    FaultSpec,
)
from repro.training import (
    DataParallelConfig,
    DataParallelTrainer,
    ReplicaSpec,
    StaleDetectionAbort,
)
from repro.utils.timing import TimingRegistry


def make_batch(seed: int, batch: int = 8, seq: int = 10, vocab: int = 100):
    rng = np.random.default_rng(seed)
    return {
        "input_ids": rng.integers(0, vocab, size=(batch, seq)),
        "attention_mask": np.ones((batch, seq), dtype=np.int64),
        "labels": rng.integers(0, 2, size=(batch,)),
    }


BATCHES = [make_batch(100 + i) for i in range(3)]
SPEC = ReplicaSpec(name="bert-base", size="tiny", seed=7, num_labels=2)


def train_to_state(workers, shards, executor=None, policy="record", injector=None,
                   collective_injector=None, protection=None, steps=3):
    config = DataParallelConfig(
        workers=workers,
        shards=shards,
        executor=executor or ("serial" if workers == 1 else "thread"),
        stale_policy=policy,
        protection=protection,
    )
    trainer = DataParallelTrainer(
        model_spec=SPEC, config=config, injector=injector,
        collective_injector=collective_injector,
    )
    try:
        for batch in BATCHES[:steps]:
            trainer.train_step(batch)
        return trainer.state_dict(), trainer
    finally:
        trainer.close()


def states_equal(a, b):
    return set(a) == set(b) and all(
        np.array_equal(np.asarray(a[k]), np.asarray(b[k])) for k in a
    )


class TestThreadCollective:
    def test_all_reduce_sum_and_mean(self):
        coll = ThreadCollective(2, op="sum")
        coll.contribute("k", 0, [np.array([1.0, 2.0])])
        coll.contribute("k", 1, [np.array([3.0, 4.0])])
        out0 = coll.finish("k", 0)
        out1 = coll.finish("k", 1)
        np.testing.assert_array_equal(out0[0], [4.0, 6.0])
        np.testing.assert_array_equal(out1[0], [4.0, 6.0])

        mean = ThreadCollective(2, op="mean")
        mean.contribute("k", 0, [np.array([1.0, 2.0])])
        mean.contribute("k", 1, [np.array([3.0, 4.0])])
        np.testing.assert_array_equal(mean.finish("k", 0)[0], [2.0, 3.0])

    def test_reduction_is_rank_ordered_regardless_of_arrival(self):
        # float addition is not associative; both arrival orders must still
        # fold rank 0 + rank 1 + rank 2, bit-identically.
        values = [np.array([0.1, 1e16]), np.array([0.2, -1e16]), np.array([0.3, 1.0])]
        results = []
        for order in ((0, 1, 2), (2, 1, 0)):
            coll = ThreadCollective(3, op="sum")
            for rank in order:
                coll.contribute("k", rank, [values[rank]])
            results.append(coll.finish("k", 0)[0])
        np.testing.assert_array_equal(results[0], results[1])

    def test_mean_of_world_one_is_bitwise_identity(self):
        coll = ThreadCollective(1, op="mean")
        value = np.array([0.1, 0.3, 1e-17])
        out = coll.all_reduce("k", 0, [value])[0]
        np.testing.assert_array_equal(out, value)

    def test_hookless_deposit_makes_zero_copies(self):
        # Perf contract: without a fault hook the deposit aliases the
        # caller's arrays (the fold only reads them), so a training step
        # pays no defensive copy per contribution.
        coll = ThreadCollective(2, op="sum")
        coll.contribute("k", 0, [np.array([1.0, 2.0]), np.array([3.0])])
        coll.contribute("k", 1, [np.array([4.0, 5.0]), np.array([6.0])])
        assert coll.deposit_copies() == 0
        np.testing.assert_array_equal(coll.finish("k", 0)[0], [5.0, 7.0])

    def test_hookless_fold_does_not_mutate_contributed_arrays(self):
        # Zero-copy must still never write back into the caller's buffers:
        # the fold copies the rank-0 entry before accumulating.
        values = [np.array([1.0, 2.0]), np.array([10.0, 20.0])]
        coll = ThreadCollective(2, op="sum")
        for rank, value in enumerate(values):
            coll.contribute("k", rank, [value])
        np.testing.assert_array_equal(coll.finish("k", 0)[0], [11.0, 22.0])
        np.testing.assert_array_equal(values[0], [1.0, 2.0])
        np.testing.assert_array_equal(values[1], [10.0, 20.0])

    def test_hooked_deposits_are_copied_and_counted(self):
        # With a fault hook installed the deposit is the corruptible "send
        # buffer": it must be a copy so injected faults never touch the
        # caller's live gradients, and the counter proves the copies happen.
        coll = ThreadCollective(1, op="sum", fault_hook=lambda key, rank, arrays: None)
        value = np.array([1.0, 2.0])
        coll.contribute("k", 0, [value, np.array([3.0])])
        assert coll.deposit_copies() == 2
        value[0] = 99.0
        np.testing.assert_array_equal(coll.finish("k", 0)[0], [1.0, 2.0])

    def test_broadcast(self):
        coll = ThreadCollective(3)
        payload = [np.array([1.0, 2.0]), np.array([[3.0]])]
        out0 = coll.broadcast("w", 0, payload, root=0)
        out1 = coll.broadcast("w", 1, root=0)
        out2 = coll.broadcast("w", 2, root=0)
        for out in (out0, out1, out2):
            np.testing.assert_array_equal(out[0], payload[0])
            np.testing.assert_array_equal(out[1], payload[1])

    def test_two_phase_lets_one_thread_own_many_ranks(self):
        coll = ThreadCollective(4, op="sum")
        for rank in range(4):
            coll.contribute("k", rank, [np.array([float(rank)])])
        for rank in range(4):
            assert coll.finish("k", rank)[0][0] == 6.0

    def test_threaded_rendezvous(self):
        coll = ThreadCollective(4, op="sum")
        outs = [None] * 4

        def worker(rank):
            outs[rank] = coll.all_reduce("k", rank, [np.array([1.0])])

        threads = [threading.Thread(target=worker, args=(r,)) for r in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(o[0][0] == 4.0 for o in outs)

    def test_mismatched_widths_fail(self):
        coll = ThreadCollective(2)
        coll.contribute("k", 0, [np.zeros(2)])
        coll.contribute("k", 1, [np.zeros(2), np.zeros(3)])
        with pytest.raises(CollectiveError):
            coll.finish("k", 0)

    def test_double_contribution_fails(self):
        coll = ThreadCollective(2)
        coll.contribute("k", 0, [np.zeros(2)])
        with pytest.raises(CollectiveError):
            coll.contribute("k", 0, [np.zeros(2)])

    def test_poison_unblocks_waiters(self):
        coll = ThreadCollective(2)
        coll.contribute("k", 0, [np.zeros(2)])
        caught = []

        def waiter():
            try:
                coll.finish("k", 0)
            except CollectiveError as exc:
                caught.append(exc)

        thread = threading.Thread(target=waiter)
        thread.start()
        coll.poison(RuntimeError("boom"))
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert len(caught) == 1
        assert isinstance(caught[0].__cause__, RuntimeError)

    def test_close_raises_collective_closed(self):
        coll = ThreadCollective(2)
        coll.close()
        with pytest.raises(CollectiveClosed):
            coll.contribute("k", 0, [np.zeros(2)])

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            ThreadCollective(0)
        with pytest.raises(ValueError):
            ThreadCollective(2, op="max")
        coll = ThreadCollective(2)
        with pytest.raises(ValueError):
            coll.contribute("k", 2, [np.zeros(1)])


class TestChecksumLinearity:
    """The invariant the protected all-reduce rests on, across dtypes/shapes."""

    SHAPES = [(7,), (3, 5), (2, 3, 4), (1,), (64, 9)]
    DTYPES = [np.float64, np.float32, np.float16]

    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("shape", SHAPES)
    def test_checksum_of_sum_equals_sum_of_checksums(self, shape, dtype):
        rng = np.random.default_rng(hash((shape, np.dtype(dtype).name)) % 2**32)
        world = 4
        contributions = [
            (rng.standard_normal(shape) * 3).astype(dtype) for _ in range(world)
        ]
        summed = np.zeros(shape, dtype=np.float64)
        checksum_sum = np.zeros(2)
        for c in contributions:
            summed += c.astype(np.float64)
            checksum_sum += gradient_checksum(c)
        np.testing.assert_allclose(
            gradient_checksum(summed), checksum_sum, rtol=1e-9, atol=1e-9
        )

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_protected_all_reduce_clean_across_dtypes(self, dtype):
        rng = np.random.default_rng(3)
        coll = ProtectedCollective(ThreadCollective(3, op="mean"))
        arrays = {
            rank: [
                rng.standard_normal((4, 5)).astype(dtype),
                rng.standard_normal((7,)).astype(dtype),
            ]
            for rank in range(3)
        }
        for rank in range(3):
            coll.contribute("k", rank, arrays[rank])
        for rank in range(3):
            reduced = coll.finish("k", rank)
            assert len(reduced) == 2
        counters = coll.counters()
        assert counters == {
            "checksum_encodes": 6, "checksum_verifies": 2, "mismatches": 0,
        }

    def test_gradient_checksums_shape_and_empty(self):
        stack = gradient_checksums([np.zeros((2, 2)), np.ones(3)])
        assert stack.shape == (2, 2)
        assert stack[1, 0] == 3.0
        with pytest.raises(ValueError):
            gradient_checksums([])


class TestProtectedCollectiveDetection:
    def _corrupting_hook(self, target_rank, array_index, value):
        def hook(key, rank, arrays):
            if rank == target_rank and "#retry" not in key:
                arrays[array_index].flat[0] = value
        return hook

    @pytest.mark.parametrize("value", [np.inf, np.nan, 1e6])
    def test_corrupted_payload_is_detected(self, value):
        coll = ProtectedCollective(
            ThreadCollective(2, op="sum", fault_hook=self._corrupting_hook(1, 0, value))
        )
        for rank in range(2):
            coll.contribute("k", rank, [np.ones(4), np.ones(3)])
        with pytest.raises(DirtyReductionError) as excinfo:
            coll.finish("k", 0)
        assert excinfo.value.dirty_indices == [0]
        assert coll.counters()["mismatches"] == 1
        # The peer sees the same cached verdict without a second verify.
        with pytest.raises(DirtyReductionError):
            coll.finish("k", 1)
        counters = coll.counters()
        assert counters["checksum_verifies"] == 2
        assert counters["mismatches"] == 1

    def test_corrupted_checksum_matrix_is_detected(self):
        # Corruption can also strike the checksums themselves in transit —
        # the identity breaks either way.
        coll = ProtectedCollective(
            ThreadCollective(2, op="sum", fault_hook=self._corrupting_hook(0, 2, np.inf))
        )
        for rank in range(2):
            coll.contribute("k", rank, [np.ones(4), np.ones(3)])
        with pytest.raises(DirtyReductionError):
            coll.finish("k", 0)

    def test_both_sides_nonfinite_is_unverifiable_not_dirty(self):
        # A legitimately non-finite contribution (e.g. a NaN shard loss)
        # makes both the reduced checksum and the recomputation non-finite;
        # that is unverifiable, not a collective fault.
        coll = ProtectedCollective(ThreadCollective(2, op="sum"))
        for rank in range(2):
            coll.contribute("k", rank, [np.array([np.nan, 1.0])])
        reduced = coll.finish("k", 0)
        assert np.isnan(reduced[0][0])
        assert coll.counters()["mismatches"] == 0

    def test_fold_timers(self):
        timers = TimingRegistry()
        coll = ProtectedCollective(ThreadCollective(1), timers=timers)
        coll.all_reduce("k", 0, [np.ones(8)])
        coll.fold_timers()
        keys = set(timers.as_dict())
        assert {"comm/allreduce", "comm/verify"} <= keys

    def test_cost_model_dispatch_accounting(self):
        expected = SectionCostModel.collective_checksum_dispatches_per_step(
            num_gradients=5, world_size=3
        )
        assert expected == {"encode": 15, "verify": 5}
        coll = ProtectedCollective(ThreadCollective(3))
        for rank in range(3):
            coll.contribute("k", rank, [np.ones(2) for _ in range(5)])
        for rank in range(3):
            coll.finish("k", rank)
        counters = coll.counters()
        assert counters["checksum_encodes"] == expected["encode"]
        assert counters["checksum_verifies"] == expected["verify"]
        with pytest.raises(ValueError):
            SectionCostModel.collective_checksum_dispatches_per_step(0, 1)
        with pytest.raises(ValueError):
            SectionCostModel.collective_checksum_dispatches_per_step(1, 0)


class TestWorkerEquivalence:
    """N workers must train byte-identically to the 1-worker reference."""

    @pytest.mark.parametrize("workers", [2, 4])
    def test_thread_workers_byte_identical_to_serial(self, workers):
        reference, _ = train_to_state(workers=1, shards=4)
        state, trainer = train_to_state(workers=workers, shards=4, executor="thread")
        assert states_equal(reference, state)
        # Collective dispatch accounting matches the cost model at any W.
        num_params = len(reference)
        per_step = SectionCostModel.collective_checksum_dispatches_per_step(
            num_gradients=num_params + 1, world_size=4
        )
        counters = trainer.collective_counters()
        assert counters["checksum_encodes"] == per_step["encode"] * len(BATCHES)
        assert counters["checksum_verifies"] == per_step["verify"] * len(BATCHES)
        assert counters["mismatches"] == 0

    def test_process_workers_byte_identical_to_serial(self):
        reference, _ = train_to_state(workers=1, shards=2)
        state, _ = train_to_state(workers=2, shards=2, executor="process")
        assert states_equal(reference, state)

    def test_different_shard_counts_differ(self):
        # Sanity: the equivalence is per shard count, not universal — the
        # decomposition itself changes the (mean-of-means) arithmetic.
        two, _ = train_to_state(workers=1, shards=2)
        four, _ = train_to_state(workers=1, shards=4)
        assert not states_equal(two, four)

    def test_timer_keys_present(self):
        config = DataParallelConfig(workers=2, shards=2)
        trainer = DataParallelTrainer(model_spec=SPEC, config=config)
        try:
            result = trainer.train_step(BATCHES[0])
            keys = set(trainer.timers.as_dict())
            assert {"comm/allreduce", "comm/verify", "parallel/step"} <= keys
            assert result.step == 1
            assert np.isfinite(result.loss)
            assert len(result.shard_losses) == 2
        finally:
            trainer.close()

    def test_indivisible_batch_rejected(self):
        config = DataParallelConfig(workers=1, shards=3, executor="serial")
        trainer = DataParallelTrainer(model_spec=SPEC, config=config)
        try:
            with pytest.raises(ValueError, match="divisible"):
                trainer.train_step(make_batch(0, batch=8))
        finally:
            trainer.close()

    def test_batch_smaller_than_shards_rejected(self):
        # 2 rows over 4 shards would leave two shards empty; an empty shard
        # yields a NaN loss and zero gradients, poisoning the global mean.
        config = DataParallelConfig(workers=1, shards=4, executor="serial")
        trainer = DataParallelTrainer(model_spec=SPEC, config=config)
        try:
            with pytest.raises(ValueError, match="smaller than shards"):
                trainer.train_step(make_batch(0, batch=2))
        finally:
            trainer.close()

    def test_empty_batch_rejected(self):
        config = DataParallelConfig(workers=1, shards=2, executor="serial")
        trainer = DataParallelTrainer(model_spec=SPEC, config=config)
        try:
            with pytest.raises(ValueError, match="smaller than shards"):
                trainer.train_step(make_batch(0, batch=0))
        finally:
            trainer.close()

    def test_uneven_remainder_rejected_not_truncated(self):
        # 10 rows over 4 shards must raise, not silently drop the remainder:
        # unequal shards would break mean-of-means == global-batch gradient.
        config = DataParallelConfig(workers=1, shards=4, executor="serial")
        trainer = DataParallelTrainer(model_spec=SPEC, config=config)
        try:
            with pytest.raises(ValueError, match="divisible"):
                trainer.train_step(make_batch(0, batch=10))
        finally:
            trainer.close()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DataParallelConfig(workers=0)
        with pytest.raises(ValueError):
            DataParallelConfig(workers=4, shards=2)
        with pytest.raises(ValueError):
            DataParallelConfig(executor="mpi")
        with pytest.raises(ValueError):
            DataParallelConfig(stale_policy="retry")
        with pytest.raises(ValueError):
            DataParallelTrainer(config=DataParallelConfig(workers=1))


class TestDirtyReductionPolicies:
    """An injected collective fault is detected and handled per stale_policy."""

    def _injector(self, error_type="numeric", rank=1, step=2):
        return CollectiveFaultInjector(
            [CollectiveFaultSpec(step=step, rank=rank, error_type=error_type)], seed=3
        )

    def test_record_counts_and_proceeds(self):
        state, trainer = train_to_state(
            workers=2, shards=2, policy="record", collective_injector=self._injector()
        )
        dirty = [r.dirty_reductions for r in trainer.metrics]
        assert dirty == [0, 1, 0]
        assert trainer.collective_counters()["mismatches"] == 1
        # The corrupted reduction was adopted: weights differ from clean.
        reference, _ = train_to_state(workers=1, shards=2)
        assert not states_equal(reference, state)

    @pytest.mark.parametrize("error_type", ["numeric", "inf", "nan"])
    def test_reexecute_recovers_byte_identically(self, error_type):
        reference, _ = train_to_state(workers=1, shards=2)
        state, trainer = train_to_state(
            workers=2, shards=2, policy="reexecute",
            collective_injector=self._injector(error_type=error_type),
        )
        retries = [r.reduction_reexecutions for r in trainer.metrics]
        assert retries == [0, 1, 0]
        assert trainer.collective_counters()["mismatches"] == 1
        # The transient fault does not recur on the retry key, and the
        # re-reduction from the retained clean contributions restores the
        # exact clean trajectory.
        assert states_equal(reference, state)

    def test_abort_raises_stale_detection_abort(self):
        config = DataParallelConfig(workers=2, shards=2, stale_policy="abort")
        trainer = DataParallelTrainer(
            model_spec=SPEC, config=config, collective_injector=self._injector()
        )
        try:
            trainer.train_step(BATCHES[0])
            with pytest.raises(StaleDetectionAbort, match="checksum-linearity"):
                trainer.train_step(BATCHES[1])
        finally:
            trainer.close()

    def test_injection_is_rank_attributed_and_deterministic(self):
        records = []
        for _ in range(2):
            injector = self._injector(rank=1, step=2)
            _, trainer = train_to_state(
                workers=2, shards=2, policy="record", collective_injector=injector
            )
            assert len(injector.records) == 1
            records.append(injector.records[0])
        first, second = records
        assert first.rank == 1 and first.step == 2
        assert first.key == "step2/grads"
        # Same seed, same rank generator: the campaign replays identically.
        assert (first.array_index, first.position, first.injected_value) == (
            second.array_index, second.position, second.injected_value,
        )


class TestPerRankProtection:
    """Per-rank checkers and spawned injectors compose with the collective."""

    def test_per_rank_checkers_run_independently(self):
        from repro.core import ATTNCheckerConfig

        protection = ATTNCheckerConfig(backend="fused")
        reference, _ = train_to_state(workers=1, shards=2)
        state, trainer = train_to_state(workers=2, shards=2, protection=protection)
        # Fault-free protection perturbs nothing: still byte-identical.
        assert states_equal(reference, state)

    def test_spawned_injector_targets_one_rank(self):
        spec = FaultSpec(matrix="AS", error_type="numeric", numeric_delta=1.0,
                         layer_index=0)
        parent = FaultInjector([spec], seed=5)
        config = DataParallelConfig(workers=2, shards=2, stale_policy="record")
        trainer = DataParallelTrainer(model_spec=SPEC, config=config, injector=parent)
        try:
            trainer.train_step(BATCHES[0])
            ranks = sorted(
                record.rank
                for runner in trainer.runners
                for record in runner.injector.records
            )
            # Every rank's spawned child fired its spec, and each record is
            # attributed to the rank it struck.
            assert ranks == [0, 1]
        finally:
            trainer.close()


class TestFaultInjectorSpawn:
    def test_spawn_requires_seed(self):
        parent = FaultInjector([], rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="seed"):
            parent.spawn(0)

    def test_spawn_is_deterministic_per_rank(self):
        spec = FaultSpec(matrix="AS", error_type="numeric")
        draws = {}
        for trial in range(2):
            parent = FaultInjector([spec], seed=9)
            draws[trial] = [
                parent.spawn(rank).rng.integers(0, 2**30) for rank in range(3)
            ]
        assert draws[0] == draws[1]
        # ...and the per-rank streams differ from each other.
        assert len(set(draws[0])) == 3

    def test_spawned_child_carries_rank_and_specs(self):
        spec = FaultSpec(matrix="AS", error_type="inf")
        parent = FaultInjector([spec], seed=9, enabled=False)
        child = parent.spawn(2)
        assert child.rank == 2
        assert child.specs == parent.specs
        assert child.enabled is False

"""Cross-array-backend dispatch, registry, and kernel-equivalence suite.

Parametrised over every *registered and installed* array backend — NumPy is
always present, CuPy/Torch are auto-skipped when their library is absent (the
CI torch job installs CPU torch so the adapter is exercised on every PR).

What this file pins down:

* **Registry contract** — ``get_backend("auto")`` is the NumPy backend on a
  NumPy-only host; unknown names list known vs. installed backends;
  registration/unregistration round-trips.
* **Kernel equivalence** — the generic :mod:`repro.tensor.ops` kernels and
  the checksum/EEC-ABFT stack produce the NumPy reference's results on every
  backend.
* **Fault campaign** — a synthetic single-layer attention pass per backend,
  one injected fault per scenario, across immediate / deferred / async
  verification: detection/correction decisions must be byte-identical to the
  NumPy reference and repaired boundaries numerically identical.
* **Full-model campaign** — the random-geometry campaign of
  ``test_verification_modes.py`` re-run with the engine *pinned* to each
  backend (exercising adoption + write-back on non-NumPy pins).
* **No host round-trips** — a counting/spy backend wrapped around NumPy runs
  the full campaign natively and proves the critical path performs zero
  ``to_numpy``/``from_numpy``/``asarray`` conversions; a simulated foreign
  backend proves the pinned path *does* adopt/write back and records the
  ``xfer/*`` timer keys.
"""

import math

import numpy as np
import pytest

from repro.backend import (
    KNOWN_ARRAY_BACKENDS,
    BackendUnavailable,
    NumpyBackend,
    available_array_backends,
    backend_of,
    clear_dispatch_cache,
    get_backend,
    known_array_backends,
    namespace_of,
    register_backend,
    resolve_backend_name,
    unregister_backend,
)
from repro.core import ATTNChecker, ATTNCheckerConfig, SectionCostModel
from repro.core.engine import ProtectionEngine
from repro.nn.attention import SectionContext
from repro.tensor import ops
from repro.utils.floatbits import flip_exponent_msb, flip_exponent_msb_inplace
from repro.utils.timing import XFER_D2H, XFER_H2D

from test_verification_modes import MODE_KWARGS, random_scenario, run_scenario

BACKENDS = list(available_array_backends())

SECTIONS_ENABLED = {"AS": True, "CL": True, "O": True}
TARGETS = ("Q", "K", "AS", "CL", "O")
ERRORS = ("inf", "nan", "near_inf")


def to_numpy(backend, value):
    return backend.to_numpy(value)


# ---------------------------------------------------------------------------
# Registry and dispatch contract
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_numpy_always_available(self):
        assert "numpy" in available_array_backends()
        assert set(available_array_backends()) <= set(KNOWN_ARRAY_BACKENDS)

    def test_auto_resolves_to_numpy_without_gpu_backend(self):
        # Acceptance criterion: with only NumPy installed, auto IS numpy.
        if available_array_backends() == ("numpy",):
            assert get_backend("auto") is get_backend("numpy")
            assert resolve_backend_name("auto") == "numpy"
        else:  # torch/cupy present (CI job): auto must still resolve cleanly
            assert resolve_backend_name("auto") in KNOWN_ARRAY_BACKENDS

    def test_backends_are_cached_singletons(self):
        for name in BACKENDS:
            assert get_backend(name) is get_backend(name)

    def test_unknown_name_lists_known_and_installed(self):
        with pytest.raises(ValueError, match=r"known backends.*installed"):
            get_backend("jax")
        with pytest.raises(ValueError, match="jax"):
            resolve_backend_name("jax")

    def test_missing_library_raises_backend_unavailable(self):
        missing = [n for n in KNOWN_ARRAY_BACKENDS if n not in BACKENDS]
        for name in missing:
            with pytest.raises(BackendUnavailable, match="installed"):
                resolve_backend_name(name)

    def test_register_unregister_roundtrip(self):
        register_backend("unit-test-backend", NumpyBackend)
        try:
            assert "unit-test-backend" in known_array_backends()
            assert get_backend("unit-test-backend").name == "numpy"
        finally:
            unregister_backend("unit-test-backend")
            clear_dispatch_cache()
        assert "unit-test-backend" not in known_array_backends()
        # The static in-tree tuple is never mutated by registration.
        assert KNOWN_ARRAY_BACKENDS == ("numpy", "cupy", "torch")

    def test_numpy_backend_cannot_be_unregistered(self):
        with pytest.raises(ValueError):
            unregister_backend("numpy")

    def test_dispatch_follows_array_type(self):
        a = np.zeros(3)
        assert backend_of(a) is get_backend("numpy")
        assert namespace_of(a).matmul is np.matmul
        # Scalars and lists fall back to the NumPy reference.
        assert backend_of(1.5) is get_backend("numpy")
        assert backend_of([1, 2]) is get_backend("numpy")


@pytest.mark.parametrize("name", BACKENDS)
class TestBackendProtocol:
    def test_roundtrip_and_identity(self, name):
        backend = get_backend(name)
        host = np.arange(12.0).reshape(3, 4)
        dev = backend.from_numpy(host)
        assert backend.is_backend_array(dev)
        assert np.array_equal(backend.to_numpy(dev), host)
        assert backend.dtype_of(dev) == np.dtype(np.float64)

    def test_copy_is_independent(self, name):
        backend = get_backend(name)
        dev = backend.from_numpy(np.zeros(4))
        clone = backend.copy(dev)
        clone[0] = 7.0
        assert float(backend.to_numpy(dev)[0]) == 0.0

    def test_uint_view_bitflip_in_place(self, name):
        backend = get_backend(name)
        dev = backend.asarray(np.array([1.0, 2.0]))
        view = backend.uint_view(dev)
        one = backend.xp.asarray(1, dtype=view.dtype)
        view[0] = view[0] ^ (one << 62)
        host = backend.to_numpy(dev)
        assert host[0] != 1.0 and host[1] == 2.0

    def test_synchronize_is_safe(self, name):
        get_backend(name).synchronize()


# ---------------------------------------------------------------------------
# Kernel equivalence vs the NumPy reference
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", BACKENDS)
@pytest.mark.parametrize("dtype", [np.float64, np.float32])
class TestKernelEquivalence:
    def _pair(self, name, dtype, shape, seed=0, scale=1.0):
        host = (np.random.default_rng(seed).normal(size=shape) * scale).astype(dtype)
        return host, get_backend(name).from_numpy(host.copy())

    def test_softmax_and_matmul(self, name, dtype):
        backend = get_backend(name)
        a_host, a_dev = self._pair(name, dtype, (2, 4, 5), seed=1)
        b_host, b_dev = self._pair(name, dtype, (2, 5, 3), seed=2)
        np.testing.assert_allclose(
            to_numpy(backend, ops.batched_matmul(a_dev, b_dev)),
            ops.batched_matmul(a_host, b_host), rtol=1e-5, atol=1e-6,
        )
        np.testing.assert_allclose(
            to_numpy(backend, ops.softmax(a_dev)), ops.softmax(a_host),
            rtol=1e-5, atol=1e-6,
        )

    def test_layer_norm_uses_biased_variance(self, name, dtype):
        backend = get_backend(name)
        x_host, x_dev = self._pair(name, dtype, (3, 6), seed=3)
        gamma = np.ones(6, dtype=dtype)
        beta = np.zeros(6, dtype=dtype)
        out_host, _, inv_host = ops.layer_norm(x_host, gamma, beta)
        out_dev, _, inv_dev = ops.layer_norm(
            x_dev, backend.from_numpy(gamma), backend.from_numpy(beta)
        )
        np.testing.assert_allclose(to_numpy(backend, out_dev), out_host,
                                   rtol=1e-4, atol=1e-5)
        np.testing.assert_allclose(to_numpy(backend, inv_dev), inv_host,
                                   rtol=1e-4, atol=1e-5)

    def test_gelu_and_backward(self, name, dtype):
        backend = get_backend(name)
        x_host, x_dev = self._pair(name, dtype, (4, 4), seed=4)
        g_host, g_dev = self._pair(name, dtype, (4, 4), seed=5)
        np.testing.assert_allclose(to_numpy(backend, ops.gelu(x_dev)),
                                   ops.gelu(x_host), rtol=1e-5, atol=1e-6)
        np.testing.assert_allclose(
            to_numpy(backend, ops.gelu_backward(g_dev, x_dev)),
            ops.gelu_backward(g_host, x_host), rtol=1e-5, atol=1e-6,
        )

    def test_full_reductions_honor_keepdims(self, name, dtype):
        """NumPy semantics: ``axis=None, keepdims=True`` keeps every axis as 1
        (Torch's native reductions silently drop it)."""
        xp = get_backend(name).xp
        _host, dev = self._pair(name, dtype, (2, 3, 4), seed=7)
        for fn in ("sum", "mean", "var", "max", "min"):
            assert tuple(getattr(xp, fn)(dev, keepdims=True).shape) == (1, 1, 1), fn
        assert tuple(xp.any(dev > 0, keepdims=True).shape) == (1, 1, 1)
        assert tuple(xp.all(xp.isfinite(dev), keepdims=True).shape) == (1, 1, 1)

    def test_cross_entropy_matches(self, name, dtype):
        backend = get_backend(name)
        logits_host, logits_dev = self._pair(name, dtype, (6, 3), seed=6)
        labels = np.array([0, 1, 2, 0, 1, 2])
        assert ops.cross_entropy(logits_dev, backend.from_numpy(labels)) == pytest.approx(
            ops.cross_entropy(logits_host, labels), rel=1e-5
        )


# ---------------------------------------------------------------------------
# Synthetic single-layer fault campaign, engine level
# ---------------------------------------------------------------------------

def _split_heads(xp, a, heads):
    b, s, d = a.shape
    return xp.moveaxis(a.reshape(b, s, heads, d // heads), -2, -3)


def _merge_heads(xp, a):
    b, h, s, dh = a.shape
    return xp.moveaxis(a, -3, -2).reshape(b, s, h * dh)


def _layer_params(seed, dtype=np.float64):
    rng = np.random.default_rng(900 + seed)
    b, s, heads, dh = 2, 5, 2, 4
    d = heads * dh
    make = lambda *shape: rng.normal(size=shape).astype(dtype)
    return {
        "geom": (b, s, heads, dh),
        "x": make(b, s, d),
        "w_q": make(d, d), "w_k": make(d, d), "w_v": make(d, d), "w_o": make(d, d),
        "bias_q": make(d), "bias_k": make(d), "bias_v": make(d),
    }


def _inject(boundary, error_type, position):
    if error_type == "inf":
        boundary[position] = math.inf
    elif error_type == "nan":
        boundary[position] = math.nan
    else:  # near_inf: in-place exponent-MSB flip on the owning backend
        flip_exponent_msb_inplace(boundary, position)


def run_layer_campaign(backend_name, seed, target, error_type, mode, dtype=np.float64):
    """One synthetic attention layer, natively on ``backend_name``'s arrays.

    Builds the six GEMMs by hand (so every operand is a native backend
    array), injects one fault, and drives the fused engine through its three
    section dispatches exactly as ``MultiHeadAttention`` would.  Returns the
    per-section decision signature and the (possibly repaired) boundary
    matrices exported to NumPy.
    """
    backend = get_backend(backend_name)
    xp = backend.xp
    p = _layer_params(seed, dtype=dtype)
    b, s, heads, dh = p["geom"]

    dev = {k: backend.from_numpy(np.array(v, copy=True))
           for k, v in p.items() if k != "geom"}
    engine = ProtectionEngine(
        deferred=(mode == "deferred"), asynchronous=(mode == "async"),
    )
    engine.begin_layer(0, SECTIONS_ENABLED)

    def ctx(section, operands):
        return SectionContext(
            section=section, operands=operands, layer_index=0, step=1,
            num_heads=heads, head_dim=dh, seq_len=s, backend=backend,
        )

    outcomes = []
    q_proj = xp.matmul(dev["x"], dev["w_q"]) + dev["bias_q"]
    k_proj = xp.matmul(dev["x"], dev["w_k"]) + dev["bias_k"]
    v_proj = xp.matmul(dev["x"], dev["w_v"]) + dev["bias_v"]
    if target == "Q":
        _inject(q_proj, error_type, (0, 1, 2))
    if target == "K":
        _inject(k_proj, error_type, (1, 2, 3))
    q = _split_heads(xp, q_proj, heads)
    k_t = xp.swapaxes(_split_heads(xp, k_proj, heads), -1, -2)
    v = _split_heads(xp, v_proj, heads)

    as_out = xp.matmul(q, k_t)
    if target == "AS":
        _inject(as_out, error_type, (0, 1, 2, 3))
    outcomes.append(engine.protect_section(ctx("AS", {
        "x": dev["x"], "w_q": dev["w_q"], "w_k": dev["w_k"],
        "bias_q": dev["bias_q"], "bias_k": dev["bias_k"], "q": q, "k_t": k_t,
    }), as_out))

    ap = ops.softmax(as_out * (1.0 / math.sqrt(dh)), axis=-1)
    cl_out = xp.matmul(ap, v)
    if target == "CL":
        _inject(cl_out, error_type, (1, 0, 2, 1))
    outcomes.append(engine.protect_section(ctx("CL", {
        "x": dev["x"], "w_v": dev["w_v"], "bias_v": dev["bias_v"], "ap": ap, "v": v,
    }), cl_out))

    merged = _merge_heads(xp, cl_out)
    o_out = xp.matmul(merged, dev["w_o"])
    if target == "O":
        _inject(o_out, error_type, (0, 2, 5))
    outcomes.append(engine.protect_section(ctx("O", {
        "cl": merged, "w_o": dev["w_o"],
    }), o_out))
    engine.end_layer(0)

    if mode == "deferred":
        outcomes = engine.flush()
    elif mode == "async":
        engine.submit_step()
        outcomes = engine.drain()
        engine.close()

    signature = tuple(
        (o.section, o.report.detected, o.report.corrected, o.report.aborted,
         o.report.residual_extreme, o.operand_repairs,
         None if o.repair is None else (o.repair.corrected, o.repair.residual_extreme))
        for o in outcomes if o is not None and o.report is not None
    )
    boundaries = {
        "AS": backend.to_numpy(as_out),
        "CL": backend.to_numpy(cl_out),
        "O": backend.to_numpy(o_out),
    }
    return signature, boundaries


@pytest.mark.parametrize("name", BACKENDS)
@pytest.mark.parametrize("mode", ["immediate", "deferred", "async"])
class TestSyntheticFaultCampaign:
    def test_decisions_match_numpy_reference(self, name, mode):
        for seed, target in enumerate(TARGETS):
            for error_type in ERRORS:
                ref_sig, ref_bounds = run_layer_campaign(
                    "numpy", seed, target, error_type, mode)
                sig, bounds = run_layer_campaign(name, seed, target, error_type, mode)
                assert sig == ref_sig, (name, mode, target, error_type)
                for section in ("AS", "CL", "O"):
                    np.testing.assert_allclose(
                        bounds[section], ref_bounds[section],
                        rtol=1e-9, atol=1e-9, equal_nan=True,
                        err_msg=f"{name}/{mode}/{target}/{error_type}/{section}",
                    )

    def test_clean_pass_detects_nothing(self, name, mode):
        signature, _ = run_layer_campaign(name, 0, "none", "inf", mode)
        assert signature  # every enabled section produced a verified report
        assert all(detected == 0 for _, detected, *_ in signature)

    def test_float32_data_corrects_against_float64_checksums(self, name, mode):
        """The paper's fp32 training regime: data float32, checksums float64.

        Pins the mixed-dtype paths (promotion in carried-checksum GEMMs,
        float64 repair values cast back into the float32 matrix) that a
        float64-only campaign cannot reach — on every installed backend.
        """
        for target in ("AS", "O"):
            ref_sig, ref_bounds = run_layer_campaign(
                "numpy", 1, target, "inf", mode, dtype=np.float32)
            sig, bounds = run_layer_campaign(
                name, 1, target, "inf", mode, dtype=np.float32)
            assert sig == ref_sig, (name, mode, target)
            assert any(detected for _, detected, *_ in sig)
            if mode == "immediate":
                assert any(corrected for _, _, corrected, *_ in sig)
            for section in ("AS", "CL", "O"):
                np.testing.assert_allclose(
                    bounds[section], ref_bounds[section],
                    rtol=1e-4, atol=1e-5, equal_nan=True,
                    err_msg=f"{name}/{mode}/{target}/{section}",
                )


# ---------------------------------------------------------------------------
# Full-model campaign with a pinned engine backend
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", BACKENDS)
@pytest.mark.parametrize("mode", ["fused", "fused+deferred", "fused+async"])
def test_full_model_campaign_pinned_backend_matches_reference(name, mode):
    """The random-geometry campaign with the engine pinned to each backend.

    The model substrate stays NumPy, so a non-NumPy pin exercises the
    adoption + write-back path end to end: decisions and protected outputs
    must match the follow-the-arrays reference exactly (counters) and
    numerically (outputs).
    """
    for seed in range(4):
        scenario = random_scenario(seed)
        reference = run_scenario(mode, scenario, seed)
        pinned = run_scenario(mode, scenario, seed, extra_config={"array_backend": name})
        assert pinned["stats"] == reference["stats"], (name, mode, seed)
        assert pinned["detection_sig"] == reference["detection_sig"]
        if name == "numpy":
            assert np.array_equal(pinned["output"], reference["output"], equal_nan=True)
        else:
            np.testing.assert_allclose(
                pinned["output"], reference["output"],
                rtol=1e-9, atol=1e-9, equal_nan=True,
            )


# ---------------------------------------------------------------------------
# Counting / spy backends: transfer behaviour of native vs pinned paths
# ---------------------------------------------------------------------------

class CountingBackend(NumpyBackend):
    """NumPy backend that counts every host<->backend conversion call."""

    name = "counting"

    def __init__(self):
        super().__init__()
        self.conversions = {"to_numpy": 0, "from_numpy": 0, "asarray": 0}

    def asarray(self, data, dtype=None):
        self.conversions["asarray"] += 1
        return super().asarray(data, dtype=dtype)

    def from_numpy(self, array, dtype=None):
        self.conversions["from_numpy"] += 1
        return super().from_numpy(array, dtype=dtype)

    def to_numpy(self, array):
        self.conversions["to_numpy"] += 1
        return super().to_numpy(array)


class _SimArray(np.ndarray):
    """Array type of the simulated foreign backend (a plain ndarray view)."""


class SimForeignBackend(NumpyBackend):
    """Simulates a foreign array library on top of NumPy.

    Its native type is the :class:`_SimArray` view subclass, so plain
    ``np.ndarray`` section outputs are *foreign* to it — pinning the engine
    to this backend forces the adoption/write-back path (and the ``xfer/*``
    timers) without needing CuPy or Torch installed.
    """

    name = "simforeign"

    def __init__(self):
        super().__init__()
        self.adopted = 0
        self.exported = 0

    def asarray(self, data, dtype=None):
        self.adopted += 1
        return np.asarray(data, dtype=dtype).view(_SimArray)

    def to_numpy(self, array):
        self.exported += 1
        return np.asarray(array).view(np.ndarray)

    def is_backend_array(self, obj):
        return isinstance(obj, _SimArray)


@pytest.fixture
def counting_backend():
    backend = CountingBackend()
    register_backend("counting", lambda: backend)
    clear_dispatch_cache()
    yield backend
    unregister_backend("counting")
    clear_dispatch_cache()


@pytest.fixture
def sim_foreign_backend():
    backend = SimForeignBackend()
    register_backend("simforeign", lambda: backend)
    clear_dispatch_cache()
    yield backend
    unregister_backend("simforeign")
    clear_dispatch_cache()


@pytest.mark.parametrize("mode", list(MODE_KWARGS))
def test_native_critical_path_performs_no_conversions(counting_backend, mode):
    """Acceptance criterion: no ndarray round-trips on the critical path.

    The counting backend's arrays *are* ndarrays, so pinning the engine to it
    keeps every section on the native path; the spy proves the engine never
    calls a backend conversion (``to_numpy`` / ``from_numpy`` / ``asarray``)
    while protecting, queueing, verifying or repairing — on any verification
    mode — and records zero transfer time.
    """
    for seed in range(3):
        scenario = random_scenario(seed)
        result = run_scenario(mode, scenario, seed,
                              extra_config={"array_backend": "counting"})
        assert sum(s[0] for s in result["stats"].values()) > 0  # checks ran
    assert counting_backend.conversions == {
        "to_numpy": 0, "from_numpy": 0, "asarray": 0,
    }


def test_pinned_foreign_backend_adopts_and_records_transfer_keys(sim_foreign_backend):
    """A pinned foreign backend must adopt operands and time the copies."""
    scenario = random_scenario(0)
    scenario.update({"matrix": "AS", "error_type": "inf"})
    reference = run_scenario("fused", scenario, 0)
    pinned = run_scenario("fused", scenario, 0,
                          extra_config={"array_backend": "simforeign"})
    # Decisions and repaired outputs survive the adoption round-trip intact.
    assert pinned["stats"] == reference["stats"]
    assert np.array_equal(pinned["output"], reference["output"], equal_nan=True)
    # Every section adopted its operands (h2d) and the corrected boundary was
    # written back (d2h); both directions were timed.
    assert sim_foreign_backend.adopted > 0
    assert sim_foreign_backend.exported > 0


def test_pinned_foreign_timer_keys_present_after_pass(sim_foreign_backend):
    scenario = random_scenario(0)
    scenario.update({"matrix": "AS", "error_type": "inf"})

    # Drive one pass with a handle on the checker to inspect its timers.
    from repro.faults import FaultInjector, FaultSpec
    from repro.nn import ComposedHooks, MultiHeadAttention
    from repro.tensor.autograd import Tensor

    attention = MultiHeadAttention(
        hidden_size=scenario["hidden"], num_heads=scenario["heads"],
        dropout_p=0.0, rng=np.random.default_rng(2000),
    )
    attention.eval()
    x = np.random.default_rng(3000).normal(
        size=(scenario["batch"], scenario["seq"], scenario["hidden"]))
    injector = FaultInjector([FaultSpec(matrix="AS", error_type="inf", layer_index=0)],
                             rng=np.random.default_rng(4000))
    checker = ATTNChecker(ATTNCheckerConfig(array_backend="simforeign"))
    attention.set_hooks(ComposedHooks([injector, checker]))
    attention(Tensor(x))
    attention.set_hooks(None)
    keys = checker.timers.keys()
    assert XFER_H2D in keys          # every section adopted its operands
    assert XFER_D2H in keys          # the repaired boundary was written back
    assert checker.transfer_seconds() >= 0.0
    assert checker.stats.total_corrections > 0


# ---------------------------------------------------------------------------
# Creation-follows-input: per-device namespace binding
# ---------------------------------------------------------------------------

class _TaggedArray(np.ndarray):
    """Array type of the device-tagged backend; carries a ``device`` label."""

    device = "dev0"


class _TaggedNamespace:
    """Namespace whose creation functions record the device they allocate on."""

    def __init__(self, base, device):
        self._base = base
        self.device = device

    def zeros(self, shape, dtype=None):
        out = np.zeros(shape, dtype=dtype).view(_TaggedArray)
        out.device = self.device
        return out

    def __getattr__(self, name):
        return getattr(self._base, name)


class DeviceTaggedBackend(NumpyBackend):
    """Simulates a multi-device library: a default device plus per-array
    namespace binding, without needing CUDA (or even torch) installed."""

    name = "devtagged"

    def __init__(self, default_device="dev1"):
        super().__init__()
        self.default_device = default_device
        self.xp = _TaggedNamespace(self.xp, default_device)
        self.namespace_requests = []

    def is_backend_array(self, obj):
        return isinstance(obj, _TaggedArray)

    def namespace_for(self, array):
        device = getattr(array, "device", self.default_device)
        self.namespace_requests.append(device)
        return _TaggedNamespace(NumpyBackend().xp, device)


class TestCreationFollowsInput:
    """Regression for the ROADMAP known gap: creation functions allocating on
    the backend's *default* device instead of the input's device."""

    def test_namespace_of_binds_to_the_arrays_device(self):
        backend = DeviceTaggedBackend(default_device="dev1")
        register_backend("devtagged", lambda: backend)
        clear_dispatch_cache()
        try:
            cpu_like = np.zeros((2, 2)).view(_TaggedArray)
            xp = namespace_of(cpu_like)
            # The namespace is bound to the array's own device, so a mask
            # created inside a kernel lands beside its input — not on the
            # backend's defaulting device.
            assert xp.device == "dev0"
            assert xp.zeros((1,)).device == "dev0"
            assert backend.xp.zeros((1,)).device == "dev1"
            assert backend.namespace_requests[-1] == "dev0"
        finally:
            unregister_backend("devtagged")
            clear_dispatch_cache()

    def test_default_namespace_for_is_xp(self):
        backend = NumpyBackend()
        assert backend.namespace_for(np.zeros(3)) is backend.xp


@pytest.mark.skipif("torch" not in BACKENDS, reason="torch not installed")
class TestTorchCreationDevice:
    """The Torch adapter's creation functions must follow the input's device.

    The ``meta`` device allocates without data, so a meta-defaulting backend
    exercises the cross-device case on a CPU-only host: before the fix, a CPU
    tensor driven through it met meta-resident checksum weights and report
    masks; with per-device namespace binding everything stays on CPU.
    """

    def test_namespace_follows_cpu_input_through_foreign_default(self):
        import torch

        from repro.backend.torch_backend import TorchBackend

        backend = TorchBackend(device="meta")
        assert backend.xp.zeros((2,)).device.type == "meta"
        cpu = torch.zeros(3)
        ns = backend.namespace_for(cpu)
        assert ns.zeros((2,)).device.type == "cpu"
        assert ns.ones((2,)).device.type == "cpu"
        assert ns.arange(4).device.type == "cpu"
        assert ns.full((2,), 7.0).device.type == "cpu"

    def test_namespace_instances_are_cached_per_device(self):
        import torch

        from repro.backend.torch_backend import TorchBackend

        backend = TorchBackend(device="meta")
        cpu = torch.zeros(3)
        assert backend.namespace_for(cpu) is backend.namespace_for(torch.ones(2))
        assert backend.namespace_for(cpu) is not backend.xp
        meta = torch.zeros(2, device="meta")
        assert backend.namespace_for(meta) is backend.xp

    def test_embedding_indices_and_grad_seed_adopt_beside_weight(self):
        """Host token ids and explicit host gradients adopt onto the data's
        device (via the device-bound namespace), not the backend's default."""
        import torch

        from repro.backend.torch_backend import TorchBackend
        from repro.tensor import autograd as ag
        from repro.tensor.autograd import Tensor

        backend = TorchBackend(device="meta")
        weight = Tensor(torch.randn(8, 4, dtype=torch.float64),
                        backend=backend, requires_grad=True)
        out = ag.embedding(weight, np.array([[0, 3], [2, 1]]))
        assert out.data.device.type == "cpu"
        total = out.sum()
        total.backward(np.asarray(1.0))     # host seed adopts beside the data
        assert weight.grad.device.type == "cpu"

    def test_registry_backend_checksums_stay_on_input_device(self):
        """End to end through the generic kernels: checksum weight vectors
        created inside ``encode_column_checksums`` land on the input's
        device (dispatch routes through ``namespace_for``)."""
        import torch

        from repro.core.checksums import encode_column_checksums

        x = get_backend("torch").from_numpy(np.random.default_rng(0).normal(size=(2, 3, 4)))
        cs = encode_column_checksums(x)
        assert cs.device == x.device


# ---------------------------------------------------------------------------
# Device-resident fault injection
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", BACKENDS)
@pytest.mark.parametrize("dtype", [np.float32, np.float64])
def test_inplace_exponent_flip_matches_host_reference(name, dtype):
    backend = get_backend(name)
    host = (np.arange(1, 7, dtype=dtype) / 3.0).reshape(2, 3)
    dev = backend.from_numpy(host.copy())
    flip_exponent_msb_inplace(dev, (1, 2), backend=backend)
    expected = host.copy()
    expected[1, 2] = flip_exponent_msb(expected[1, 2], dtype=dtype)
    np.testing.assert_array_equal(backend.to_numpy(dev), expected)
    # Flipping again restores the original bits exactly.
    flip_exponent_msb_inplace(dev, (1, 2), backend=backend)
    np.testing.assert_array_equal(backend.to_numpy(dev), host)


def test_inplace_flip_rejects_unsupported_dtype():
    with pytest.raises(TypeError):
        flip_exponent_msb_inplace(np.zeros(3, dtype=np.int64), (0,))


# ---------------------------------------------------------------------------
# SectionCostModel transfer accounting
# ---------------------------------------------------------------------------

class TestSectionCostModelTransfers:
    def _model(self, array_backend):
        from repro.models import get_config

        return SectionCostModel(get_config("bert-base", size="paper"),
                                batch_size=16, array_backend=array_backend)

    def test_host_backend_moves_zero_bytes(self):
        for name in ("numpy", "auto"):
            model = self._model(name)
            assert not model.device_resident
            assert model.transfer_bytes_per_layer() == {XFER_H2D: 0.0, XFER_D2H: 0.0}

    def test_device_backend_models_positive_traffic(self):
        model = self._model("torch")  # analytical: library need not be installed
        assert model.device_resident
        totals = model.transfer_bytes_per_layer()
        assert totals[XFER_H2D] > 0.0 and totals[XFER_D2H] > 0.0
        per_section = [model.section_transfer_bytes(s) for s in ("AS", "CL", "O")]
        assert totals[XFER_H2D] == sum(p[XFER_H2D] for p in per_section)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="jax"):
            self._model("jax")


# ---------------------------------------------------------------------------
# Config plumbing
# ---------------------------------------------------------------------------

class TestConfigPlumbing:
    def test_unknown_array_backend_rejected_at_config_time(self):
        with pytest.raises(ValueError, match="known backends"):
            ATTNCheckerConfig(array_backend="jax")

    def test_missing_array_backend_rejected_at_config_time(self):
        missing = [n for n in KNOWN_ARRAY_BACKENDS if n not in BACKENDS]
        for name in missing:
            with pytest.raises(BackendUnavailable):
                ATTNCheckerConfig(array_backend=name)

    def test_auto_is_default_and_unpinned(self):
        checker = ATTNChecker()
        assert checker.array_backend_name == "auto"
        assert checker.array_backend is None
        assert checker.engine.array_backend is None

    def test_orthogonal_to_checker_backend_axis(self):
        config = ATTNCheckerConfig(backend="per_gemm", array_backend="numpy")
        assert config.backend == "per_gemm"
        assert config.array_backend == "numpy"
        config = ATTNCheckerConfig(async_verification=True, array_backend="numpy")
        assert config.verification_mode == "async"

    def test_trainer_surfaces_array_backend(self):
        from repro.models import build_model
        from repro.training import Trainer, TrainerConfig

        def fresh_model():
            return build_model("bert-base", size="tiny", rng=np.random.default_rng(0))

        checker = ATTNChecker(ATTNCheckerConfig(array_backend="numpy"))
        trainer = Trainer(fresh_model(), config=TrainerConfig(), checker=checker)
        assert trainer.array_backend == "numpy"
        assert Trainer(fresh_model(), config=TrainerConfig()).array_backend == "numpy"

"""Fused batched checksum kernels, weight-encoding cache and workspace arena.

What this file pins, complementing ``test_verification_modes.py`` (which
already byte-compares the *default* fused schedule against the per-GEMM
reference over a random campaign):

* the optimised schedule (sibling-GEMM fusion + weight-encoding cache +
  checksum workspace) makes **byte-identical detection/correction decisions
  and outputs** vs the historical unfused sequence, across random geometry,
  dtypes, sections, faults and all three verification modes;
* the BLAS property the sibling fusion relies on — ``A @ [B1 | B2]`` is
  column-wise bitwise identical to ``A @ B1`` / ``A @ B2`` — holds on this
  platform (a loud canary if a BLAS build ever breaks it);
* the workspace is allocation-free in steady state (buffer identity stable
  across steps), never owns anything the deferred/async queues retain, and
  repair write-back does not leak corrupted state into reused buffers;
* the weight-encoding cache hits across fault-free forwards and is
  invalidated by optimizer steps, ``load_state_dict`` and the manual
  ``invalidate_weight_cache`` escape hatch for in-place weight edits;
* the engine's measured dispatch counters agree with
  ``SectionCostModel.checksum_gemm_dispatches_per_layer``;
* namespaces without the ``out=`` contract fall back value-correctly.
"""

import numpy as np
import pytest

from test_verification_modes import MODE_KWARGS, random_scenario, run_scenario

from repro.backend import register_backend, unregister_backend
from repro.backend.dispatch import clear_dispatch_cache
from repro.backend.numpy_backend import NumpyBackend, NumpyNamespace
from repro.core import (
    ATTNChecker,
    ATTNCheckerConfig,
    ChecksumWorkspace,
    SectionCostModel,
)
from repro.core.checksums import (
    checksum_weights,
    clear_checksum_weight_cache,
    stacked_checksum_weights,
)
from repro.core.workspace import einsum_into, matmul_into, stack_into
from repro.data import SyntheticMRPC
from repro.faults import FaultInjector, FaultSpec
from repro.models import build_model
from repro.nn import ComposedHooks, MultiHeadAttention
from repro.tensor.autograd import Tensor
from repro.training import Trainer, TrainerConfig
from repro.utils.versioning import bump_weights_version, weights_version

#: The historical per-visit schedule, as ATTNCheckerConfig kwargs.
LEGACY_SCHEDULE = {
    "fuse_sibling_gemms": False,
    "cache_weight_encodings": False,
    "reuse_workspace": False,
}


def make_attention(seed, hidden=16, heads=4, bias=True):
    attention = MultiHeadAttention(
        hidden_size=hidden, num_heads=heads, dropout_p=0.0,
        rng=np.random.default_rng(seed), bias=bias,
    )
    attention.eval()
    return attention


def forward(attention, checker, seed, batch=2, seq=5, injector=None):
    hooks = checker if injector is None else ComposedHooks([injector, checker])
    hidden = attention.hidden_size
    x = np.random.default_rng(seed).normal(size=(batch, seq, hidden))
    attention.set_hooks(hooks)
    try:
        out = attention(Tensor(x)).data.copy()
    finally:
        attention.set_hooks(None)
    outcomes = checker.end_step()
    return out, outcomes


# ---------------------------------------------------------------------------
# Byte-identical decisions: optimised schedule vs the unfused sequence
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("mode", ["fused", "fused+deferred", "fused+async"])
class TestFusedVsUnfusedEquivalence:
    """Property campaign: random geometry/dtype/section/fault, every mode."""

    def test_byte_identical_decisions_and_outputs(self, mode, seed):
        scenario = random_scenario(seed)
        optimised = run_scenario(mode, scenario, seed)
        legacy = run_scenario(mode, scenario, seed, extra_config=LEGACY_SCHEDULE)
        assert optimised["stats"] == legacy["stats"], (mode, seed, scenario)
        assert optimised["detection_sig"] == legacy["detection_sig"]
        assert optimised["decision_sig"] == legacy["decision_sig"]
        assert np.array_equal(optimised["output"], legacy["output"], equal_nan=True)


@pytest.mark.parametrize("seed", range(4))
def test_fused_schedule_matches_per_gemm_reference(seed):
    """Transitivity check, directly: optimised fused vs the per-GEMM oracle."""
    scenario = random_scenario(seed)
    fused = run_scenario("fused", scenario, seed)
    reference = run_scenario("per_gemm", scenario, seed)
    assert fused["stats"] == reference["stats"]
    assert np.array_equal(fused["output"], reference["output"], equal_nan=True)


@pytest.mark.parametrize("dtype", [np.float64, np.float32, np.float16])
def test_sibling_gemm_concat_is_bitwise_identical(dtype):
    """The BLAS property the sibling fusion relies on, pinned explicitly.

    If a platform's GEMM ever produced different bits for a column block
    depending on the other columns present, this canary fails before the
    (harder to localise) campaign equivalence tests do.
    """
    rng = np.random.default_rng(7)
    for batch, d in [(1, 16), (3, 32), (8, 96)]:
        cs = rng.standard_normal((batch, 2, d))
        w_q = rng.standard_normal((d, d)).astype(dtype)
        w_k = rng.standard_normal((d, d)).astype(dtype)
        fused = np.matmul(cs, np.concatenate([w_q, w_k], axis=-1))
        assert np.array_equal(fused[..., :d], np.matmul(cs, w_q))
        assert np.array_equal(fused[..., d:], np.matmul(cs, w_k))


# ---------------------------------------------------------------------------
# Workspace: steady-state reuse, queue isolation, repair aliasing
# ---------------------------------------------------------------------------

class TestChecksumWorkspace:
    def test_request_reuses_identical_buffer(self):
        from repro.backend import get_backend
        workspace = ChecksumWorkspace()
        xp = get_backend("numpy").xp
        first = workspace.request("slot", (3, 4), xp.float64, xp)
        second = workspace.request("slot", (3, 4), xp.float64, xp)
        assert first is second
        assert workspace.allocations == 1 and workspace.reuses == 1
        assert workspace.owns(first)
        assert not workspace.owns(np.zeros((3, 4)))

    def test_geometry_change_replaces_buffer_bounded_by_name(self):
        """One buffer per slot name: a new geometry evicts the old buffer
        instead of accumulating — memory stays bounded under shape churn."""
        from repro.backend import get_backend
        workspace = ChecksumWorkspace()
        xp = get_backend("numpy").xp
        a = workspace.request("slot", (3, 4), xp.float64, xp)
        b = workspace.request("slot", (4, 3), xp.float64, xp)
        c = workspace.request("other", (3, 4), xp.float64, xp)
        assert a is not b and a is not c
        assert len(workspace) == 2  # "slot" was replaced, not duplicated
        assert not workspace.owns(a)
        assert workspace.owns(b) and workspace.owns(c)
        # Returning to the previous geometry allocates afresh (no history).
        d = workspace.request("slot", (3, 4), xp.float64, xp)
        assert d is not a and len(workspace) == 2

    def test_reset_stats_and_steady_state_predicate(self):
        from repro.backend import get_backend
        workspace = ChecksumWorkspace()
        xp = get_backend("numpy").xp
        workspace.request("slot", (2, 2), xp.float64, xp)
        assert not workspace.steady_state
        workspace.reset_stats()
        workspace.request("slot", (2, 2), xp.float64, xp)
        assert workspace.allocations == 0 and workspace.reuses == 1
        assert workspace.steady_state
        workspace.clear()
        assert len(workspace) == 0

    @pytest.mark.parametrize("mode", ["fused", "fused+deferred", "fused+async"])
    def test_zero_steady_state_allocations(self, mode):
        """After one warm-up step the hot path allocates nothing new, and the
        slot count matches the cost model's accounting."""
        attention = make_attention(11)
        checker = ATTNChecker(ATTNCheckerConfig(**MODE_KWARGS[mode]))
        forward(attention, checker, seed=100)  # warm-up (allocates the slots)
        engine = checker.engine
        verification_mode = checker.verification_mode
        assert len(engine.workspace) == SectionCostModel.checksum_workspace_slots(
            verification_mode
        )
        engine.workspace.reset_stats()
        for step in range(3):
            forward(attention, checker, seed=101 + step)
        checker.drain()
        assert engine.workspace.allocations == \
            SectionCostModel.steady_state_hot_path_allocations() == 0
        assert engine.workspace.reuses > 0
        assert engine.workspace.steady_state
        checker.close()

    @pytest.mark.parametrize("mode", ["fused+deferred", "fused+async"])
    def test_queued_checksums_never_workspace_owned(self, mode):
        """Deferred/async queue items must not alias reusable buffers."""
        attention = make_attention(12)
        checker = ATTNChecker(ATTNCheckerConfig(**MODE_KWARGS[mode]))
        hidden = attention.hidden_size
        x = np.random.default_rng(55).normal(size=(2, 4, hidden))
        attention.set_hooks(checker)
        try:
            attention(Tensor(x))
        finally:
            attention.set_hooks(None)
        engine = checker.engine
        assert engine.pending_verifications > 0
        for item in engine._queue:
            assert not engine.workspace.owns(item.matrix)
            if item.checksums.col is not None:
                assert not engine.workspace.owns(item.checksums.col)
            if item.checksums.row is not None:
                assert not engine.workspace.owns(item.checksums.row)
        checker.end_step()
        checker.drain()
        checker.close()

    def test_repair_write_back_leaves_no_aliasing_residue(self):
        """A corrected pass must not leak corrupted state into reused buffers:
        the next clean pass through the same workspace reports clean and its
        output is bitwise what a fresh checker produces."""
        attention = make_attention(13)
        checker = ATTNChecker(ATTNCheckerConfig())
        injector = FaultInjector(
            [FaultSpec(matrix="AS", error_type="inf", layer_index=0)],
            rng=np.random.default_rng(9),
        )
        forward(attention, checker, seed=200, injector=injector)
        assert checker.stats.total_corrections > 0
        before = {n: (s.detections, s.corrections)
                  for n, s in checker.stats.sections.items()}
        clean_out, _ = forward(attention, checker, seed=201)
        after = {n: (s.detections, s.corrections)
                 for n, s in checker.stats.sections.items()}
        assert after == before  # the clean pass added no detections
        fresh_out, _ = forward(attention, ATTNChecker(ATTNCheckerConfig()), seed=201)
        assert np.array_equal(clean_out, fresh_out)


# ---------------------------------------------------------------------------
# Weight-encoding cache: hits, invalidation paths
# ---------------------------------------------------------------------------

class TestWeightEncodingCache:
    def test_hits_across_fault_free_forwards(self):
        attention = make_attention(21)
        checker = ATTNChecker(ATTNCheckerConfig())
        forward(attention, checker, seed=300)
        stats = checker.weight_cache_stats()
        # One entry per weight-derived encoding: [W_Q|W_K], its bias row,
        # rowcs(W_V) and the W_V bias terms.
        assert stats["entries"] == 4
        assert stats["misses"] == 4
        forward(attention, checker, seed=301)
        stats = checker.weight_cache_stats()
        assert stats["misses"] == 4 and stats["hits"] == 4

    def test_optimizer_step_invalidates(self):
        """A fault-free training run must stay detection-free: stale weight
        encodings after an optimizer update would false-positive instantly."""
        model = build_model("bert-base", size="tiny", rng=np.random.default_rng(5))
        data = SyntheticMRPC(
            num_examples=8, max_seq_len=model.config.max_seq_len,
            vocab_size=model.config.vocab_size,
        )
        batch = dict(data.encode(range(4)))
        checker = ATTNChecker(ATTNCheckerConfig())
        trainer = Trainer(model, config=TrainerConfig(learning_rate=1e-3), checker=checker)
        for _ in range(3):
            trainer.train_step(batch)
        assert checker.stats.total_detections == 0
        assert checker.stats.total_checks > 0
        # Every step re-derived the weight encodings (version bumped).
        stats = checker.weight_cache_stats()
        assert stats["misses"] >= 3 * model.config.num_layers

    def test_load_state_dict_invalidates(self):
        attention = make_attention(22)
        checker = ATTNChecker(ATTNCheckerConfig())
        forward(attention, checker, seed=400)
        donor = make_attention(23)  # different seed => different weights
        attention.load_state_dict(donor.state_dict())
        forward(attention, checker, seed=401)
        assert checker.stats.total_detections == 0

    def test_manual_invalidate_covers_in_place_mutation(self):
        attention = make_attention(24)
        checker = ATTNChecker(ATTNCheckerConfig())
        forward(attention, checker, seed=500)
        # In-place edit: same array object, same global version — the one
        # case the automatic invalidation cannot see.
        attention.w_v.weight.data[...] += 0.25
        checker.invalidate_weight_cache()
        forward(attention, checker, seed=501)
        assert checker.stats.total_detections == 0

    def test_bump_weights_version_is_monotonic(self):
        v0 = weights_version()
        assert bump_weights_version() == v0 + 1
        assert weights_version() == v0 + 1

    def test_pinned_foreign_engine_still_hits_cache(self):
        """Adoption copies fresh operands every visit; the cache must key on
        the stable pre-adoption host arrays, not the adopted copies."""

        class _ForeignArray(np.ndarray):
            pass

        class _ForeignBackend(NumpyBackend):
            name = "fusedforeign"

            def asarray(self, data, dtype=None):
                return np.asarray(data, dtype=dtype).view(_ForeignArray)

            def to_numpy(self, array):
                return np.asarray(array).view(np.ndarray)

            def is_backend_array(self, obj):
                return isinstance(obj, _ForeignArray)

        backend = _ForeignBackend()
        register_backend("fusedforeign", lambda: backend)
        clear_dispatch_cache()
        try:
            attention = make_attention(25)
            checker = ATTNChecker(ATTNCheckerConfig(array_backend="fusedforeign"))
            forward(attention, checker, seed=550)
            misses = checker.weight_cache_stats()["misses"]
            forward(attention, checker, seed=551)
            stats = checker.weight_cache_stats()
            assert stats["misses"] == misses  # nothing rebuilt...
            assert stats["hits"] == misses    # ...every entry served from cache
            assert checker.stats.total_detections == 0
        finally:
            unregister_backend("fusedforeign")
            clear_dispatch_cache()


# ---------------------------------------------------------------------------
# Dispatch accounting: measured counters vs the analytical model
# ---------------------------------------------------------------------------

class TestDispatchAccounting:
    def test_fused_counters_match_cost_model(self):
        attention = make_attention(31)
        checker = ATTNChecker(ATTNCheckerConfig())
        forward(attention, checker, seed=600)
        cold = sum(SectionCostModel.checksum_gemm_dispatches_per_layer(
            "fused", steady_state=False).values())
        assert checker.dispatch_counts["gemm"] == cold
        forward(attention, checker, seed=601)
        steady = sum(SectionCostModel.checksum_gemm_dispatches_per_layer(
            "fused", steady_state=True).values())
        assert checker.dispatch_counts["gemm"] == cold + steady

    def test_unfused_counters_match_cost_model(self):
        attention = make_attention(32)
        checker = ATTNChecker(ATTNCheckerConfig(**LEGACY_SCHEDULE))
        per_visit = sum(SectionCostModel.checksum_gemm_dispatches_per_layer(
            "unfused").values())
        forward(attention, checker, seed=700)
        forward(attention, checker, seed=701)
        assert checker.dispatch_counts["gemm"] == 2 * per_visit

    def test_fused_strictly_below_unfused(self):
        for steady in (True, False):
            fused = sum(SectionCostModel.checksum_gemm_dispatches_per_layer(
                "fused", steady_state=steady).values())
            unfused = sum(SectionCostModel.checksum_gemm_dispatches_per_layer(
                "unfused").values())
            assert fused < unfused

    def test_model_rejects_unknown_inputs(self):
        with pytest.raises(KeyError):
            SectionCostModel.checksum_gemm_dispatches_per_layer("batched")
        with pytest.raises(KeyError):
            SectionCostModel.checksum_workspace_slots("sometimes")

    def test_detect_counter_counts_boundary_verifications(self):
        attention = make_attention(33)
        checker = ATTNChecker(ATTNCheckerConfig())
        forward(attention, checker, seed=800)
        # Immediate mode: one verification per enabled section per layer.
        assert checker.dispatch_counts["detect"] == 3


# ---------------------------------------------------------------------------
# checksum_weights vector cache
# ---------------------------------------------------------------------------

class TestChecksumWeightCache:
    def test_same_vectors_returned_and_values_correct(self):
        clear_checksum_weight_cache()
        v1a, v2a = checksum_weights(6)
        v1b, v2b = checksum_weights(6)
        assert v1a is v1b and v2a is v2b
        np.testing.assert_array_equal(v1a, np.ones(6))
        np.testing.assert_array_equal(v2a, np.arange(1, 7, dtype=np.float64))
        v1c, _ = checksum_weights(7)
        assert v1c is not v1a

    def test_stacked_blocks_cached_per_axis(self):
        clear_checksum_weight_cache()
        col = stacked_checksum_weights(5, axis=0)
        row = stacked_checksum_weights(5, axis=1)
        assert col.shape == (2, 5) and row.shape == (5, 2)
        assert stacked_checksum_weights(5, axis=0) is col
        np.testing.assert_array_equal(col.T, row)
        clear_checksum_weight_cache()
        assert stacked_checksum_weights(5, axis=0) is not col


# ---------------------------------------------------------------------------
# The out= contract fallback
# ---------------------------------------------------------------------------

class _NoOutNamespace(NumpyNamespace):
    """A namespace that rejects ``out=`` on the workspace entry points."""

    @staticmethod
    def matmul(a, b):
        return np.matmul(a, b)

    @staticmethod
    def stack(arrays, axis=0):
        return np.stack(list(arrays), axis=axis)

    @staticmethod
    def einsum(equation, *operands):
        return np.einsum(equation, *operands)


class _NoOutBackend(NumpyBackend):
    name = "noout"

    def __init__(self):
        super().__init__()
        self.xp = _NoOutNamespace()


@pytest.fixture
def noout_backend():
    backend = _NoOutBackend()
    register_backend("noout", lambda: backend)
    clear_dispatch_cache()
    yield backend
    unregister_backend("noout")
    clear_dispatch_cache()


class TestOutContractFallback:
    def test_helpers_fall_back_value_correctly(self, noout_backend):
        xp = noout_backend.xp
        rng = np.random.default_rng(0)
        a, b = rng.standard_normal((4, 5)), rng.standard_normal((5, 3))
        out = np.empty((4, 3))
        np.testing.assert_array_equal(matmul_into(xp, a, b, out), a @ b)
        np.testing.assert_array_equal(
            einsum_into(xp, "ij,jk->ik", a, b, out=out),
            np.einsum("ij,jk->ik", a, b),
        )
        rows = [rng.standard_normal(3) for _ in range(4)]
        np.testing.assert_array_equal(
            stack_into(xp, rows, np.empty((4, 3))), np.stack(rows)
        )
        # Second calls exercise the memoised no-support path.
        np.testing.assert_array_equal(matmul_into(xp, a, b, out), a @ b)

    def test_engine_pinned_to_out_less_namespace_matches_reference(self, noout_backend):
        scenario = random_scenario(3)
        scenario.update({"matrix": "AS", "error_type": "inf"})
        reference = run_scenario("fused", scenario, 3)
        pinned = run_scenario("fused", scenario, 3,
                              extra_config={"array_backend": "noout"})
        assert pinned["stats"] == reference["stats"]
        assert np.array_equal(pinned["output"], reference["output"], equal_nan=True)

"""Shared fixtures for the test suite.

Heavy objects (models, datasets, encoded batches) are session-scoped: tests
treat them as read-only unless they explicitly build their own copies, which
keeps the full suite fast while still exercising realistic configurations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import DataLoader, SyntheticMRPC
from repro.models import build_model


@pytest.fixture
def rng():
    """Fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_bert():
    """A tiny BERT classifier (read-only across tests)."""
    return build_model("bert-base", size="tiny", rng=np.random.default_rng(0))


@pytest.fixture(scope="session")
def tiny_gpt2():
    """A tiny GPT-2 classifier (read-only across tests)."""
    return build_model("gpt2", size="tiny", rng=np.random.default_rng(0))


@pytest.fixture(scope="session")
def mrpc_dataset(tiny_bert):
    """Synthetic MRPC-style corpus matching the tiny model geometry."""
    return SyntheticMRPC(
        num_examples=64,
        max_seq_len=tiny_bert.config.max_seq_len,
        vocab_size=tiny_bert.config.vocab_size,
        seed=99,
    )


@pytest.fixture(scope="session")
def small_batch(mrpc_dataset):
    """One encoded batch of 8 examples."""
    return mrpc_dataset.encode(range(8))


@pytest.fixture(scope="session")
def full_attention_batch(mrpc_dataset):
    """A batch whose attention mask is all ones (no padding)."""
    batch = mrpc_dataset.encode(range(8))
    batch = dict(batch)
    batch["attention_mask"] = np.ones_like(batch["attention_mask"])
    return batch


def fresh_model(name: str = "bert-base", seed: int = 0):
    """Helper for tests that need a mutable model of their own."""
    return build_model(name, size="tiny", rng=np.random.default_rng(seed))

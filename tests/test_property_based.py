"""Property-based tests (hypothesis) for the core invariants.

The invariants checked here are the load-bearing ones for ABFT correctness:

* checksum linearity (checksums commute with GEMM and bias addition),
* EEC-ABFT exactness (any single extreme error is detected, located and the
  original value restored, for arbitrary shapes, positions and magnitudes),
* pattern classification consistency,
* autograd gradients agree with numerical differentiation for random DAG
  shapes,
* the adaptive optimiser always meets the coverage target when feasible and
  never allocates more time than always-on ABFT.
"""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core.adaptive import (
    AdaptiveFrequencyOptimizer,
    ErrorRates,
    OperationVulnerability,
    SectionReliabilityModel,
)
from repro.core.checksums import (
    encode_column_checksums,
    encode_row_checksums,
    update_column_checksums_through_gemm,
)
from repro.core.eec_abft import check_columns, check_rows
from repro.core.patterns import classify_error_pattern, ErrorPattern
from repro.core.thresholds import ABFTThresholds
from repro.models import get_config
from repro.tensor import ops

THRESHOLDS = ABFTThresholds()

# Bounded-magnitude floats keep round-off away from the detection tolerance
# while still exercising sign / scale diversity.
element = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False)


@st.composite
def matrix_and_fault(draw):
    """A random matrix plus a random single-fault description."""
    rows = draw(st.integers(min_value=2, max_value=12))
    cols = draw(st.integers(min_value=1, max_value=10))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    matrix = np.random.default_rng(seed).uniform(-10, 10, size=(rows, cols))
    row = draw(st.integers(min_value=0, max_value=rows - 1))
    col = draw(st.integers(min_value=0, max_value=cols - 1))
    fault = draw(
        st.sampled_from(["inf", "-inf", "nan", "near_inf", "-near_inf", "numeric"])
    )
    magnitude = draw(st.floats(min_value=1.0, max_value=1e4))
    return matrix, (row, col), fault, magnitude


def apply_fault(matrix, position, fault, magnitude):
    if fault == "inf":
        matrix[position] = np.inf
    elif fault == "-inf":
        matrix[position] = -np.inf
    elif fault == "nan":
        matrix[position] = np.nan
    elif fault == "near_inf":
        matrix[position] = 3.3e12 * magnitude
    elif fault == "-near_inf":
        matrix[position] = -4.1e13 * magnitude
    else:
        matrix[position] += magnitude + 1.0


class TestChecksumLinearity:
    @given(
        seed=st.integers(0, 2**31 - 1),
        m=st.integers(2, 10),
        k=st.integers(1, 10),
        n=st.integers(1, 10),
    )
    @settings(max_examples=40, deadline=None)
    def test_column_checksums_commute_with_gemm(self, seed, m, k, n):
        rng = np.random.default_rng(seed)
        a = rng.uniform(-5, 5, size=(m, k))
        b = rng.uniform(-5, 5, size=(k, n))
        carried = update_column_checksums_through_gemm(encode_column_checksums(a), b)
        assert np.allclose(carried, encode_column_checksums(a @ b), rtol=1e-9, atol=1e-9)

    @given(seed=st.integers(0, 2**31 - 1), m=st.integers(2, 12), n=st.integers(1, 12))
    @settings(max_examples=40, deadline=None)
    def test_checksums_are_linear_in_the_matrix(self, seed, m, n):
        rng = np.random.default_rng(seed)
        a = rng.uniform(-5, 5, size=(m, n))
        b = rng.uniform(-5, 5, size=(m, n))
        alpha, beta = rng.uniform(-3, 3, size=2)
        combined = encode_column_checksums(alpha * a + beta * b)
        separate = alpha * encode_column_checksums(a) + beta * encode_column_checksums(b)
        assert np.allclose(combined, separate, rtol=1e-9, atol=1e-9)

    @given(seed=st.integers(0, 2**31 - 1), m=st.integers(2, 10), n=st.integers(2, 10))
    @settings(max_examples=40, deadline=None)
    def test_row_checksums_are_column_checksums_of_transpose(self, seed, m, n):
        a = np.random.default_rng(seed).uniform(-5, 5, size=(m, n))
        assert np.allclose(encode_row_checksums(a), np.swapaxes(encode_column_checksums(a.T), -1, -2))


class TestEECABFTExactness:
    @given(case=matrix_and_fault())
    @settings(max_examples=80, deadline=None)
    def test_any_single_fault_is_corrected_with_column_checksums(self, case):
        matrix, position, fault, magnitude = case
        checksums = encode_column_checksums(matrix)
        reference = matrix.copy()
        apply_fault(matrix, position, fault, magnitude)
        assume(not np.allclose(matrix, reference, rtol=1e-9, atol=1e-9))
        report = check_columns(matrix, checksums, THRESHOLDS)
        assert report.num_detected >= 1
        assert report.num_aborted == 0
        assert np.allclose(matrix, reference, rtol=1e-5, atol=1e-5)

    @given(case=matrix_and_fault())
    @settings(max_examples=60, deadline=None)
    def test_any_single_fault_is_corrected_with_row_checksums(self, case):
        matrix, position, fault, magnitude = case
        assume(matrix.shape[1] >= 2)
        checksums = encode_row_checksums(matrix)
        reference = matrix.copy()
        apply_fault(matrix, position, fault, magnitude)
        assume(not np.allclose(matrix, reference, rtol=1e-9, atol=1e-9))
        report = check_rows(matrix, checksums, THRESHOLDS)
        assert report.num_detected >= 1
        assert np.allclose(matrix, reference, rtol=1e-5, atol=1e-5)

    @given(
        seed=st.integers(0, 2**31 - 1),
        rows=st.integers(2, 10),
        cols=st.integers(2, 8),
        fault_row=st.integers(0, 9),
    )
    @settings(max_examples=40, deadline=None)
    def test_whole_row_corruption_is_fully_restored(self, seed, rows, cols, fault_row):
        # A 1R pattern (one error per column) is always correctable from the
        # column checksums regardless of where the row lies.
        fault_row = fault_row % rows
        matrix = np.random.default_rng(seed).uniform(-10, 10, size=(rows, cols))
        checksums = encode_column_checksums(matrix)
        reference = matrix.copy()
        matrix[fault_row, :] = np.inf
        report = check_columns(matrix, checksums, THRESHOLDS)
        assert report.num_corrected == cols
        assert np.allclose(matrix, reference, rtol=1e-6, atol=1e-6)

    @given(seed=st.integers(0, 2**31 - 1), rows=st.integers(2, 12), cols=st.integers(1, 10))
    @settings(max_examples=40, deadline=None)
    def test_clean_matrices_never_modified(self, seed, rows, cols):
        matrix = np.random.default_rng(seed).uniform(-50, 50, size=(rows, cols))
        checksums = encode_column_checksums(matrix)
        snapshot = matrix.copy()
        report = check_columns(matrix, checksums, THRESHOLDS)
        assert report.clean
        assert np.array_equal(matrix, snapshot)


class TestPatternProperties:
    @given(
        rows=st.integers(1, 8),
        cols=st.integers(1, 8),
        points=st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7)), min_size=0, max_size=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_classification_matches_footprint_definition(self, rows, cols, points):
        mask = np.zeros((rows, cols), dtype=bool)
        for r, c in points:
            mask[r % rows, c % cols] = True
        pattern = classify_error_pattern(mask)
        n_rows = len(np.unique(np.nonzero(mask)[0])) if mask.any() else 0
        n_cols = len(np.unique(np.nonzero(mask)[1])) if mask.any() else 0
        if not mask.any():
            assert pattern is ErrorPattern.NONE
        elif mask.sum() == 1:
            assert pattern is ErrorPattern.ZERO_D
        elif n_rows == 1:
            assert pattern is ErrorPattern.ONE_ROW
        elif n_cols == 1:
            assert pattern is ErrorPattern.ONE_COL
        else:
            assert pattern is ErrorPattern.TWO_D


class TestAutogradProperties:
    @given(
        seed=st.integers(0, 2**31 - 1),
        m=st.integers(1, 6),
        k=st.integers(1, 6),
        n=st.integers(1, 6),
    )
    @settings(max_examples=30, deadline=None)
    def test_matmul_gradient_matches_numerical(self, seed, m, k, n):
        from repro.tensor.autograd import Tensor, matmul

        rng = np.random.default_rng(seed)
        a = Tensor(rng.uniform(-2, 2, size=(m, k)), requires_grad=True)
        b = Tensor(rng.uniform(-2, 2, size=(k, n)), requires_grad=True)
        out = matmul(a, b)
        weights = rng.uniform(-1, 1, size=(m, n))
        out.backward(weights)
        idx = (rng.integers(0, m), rng.integers(0, k))
        eps = 1e-6
        perturbed = a.data.copy()
        perturbed[idx] += eps
        numerical = np.sum(weights * (perturbed @ b.data - a.data @ b.data)) / eps
        assert a.grad[idx] == pytest.approx(numerical, rel=1e-3, abs=1e-6)

    @given(seed=st.integers(0, 2**31 - 1), rows=st.integers(1, 6), cols=st.integers(2, 8))
    @settings(max_examples=30, deadline=None)
    def test_softmax_output_is_a_probability_distribution(self, seed, rows, cols):
        x = np.random.default_rng(seed).uniform(-30, 30, size=(rows, cols))
        out = ops.softmax(x)
        assert np.all(out >= 0)
        assert np.allclose(out.sum(axis=-1), 1.0)


class TestAdaptiveProperties:
    VULN = OperationVulnerability.from_table4("bert-base")
    CONFIG = get_config("bert-base", size="paper")

    @given(rate=st.floats(min_value=1e-26, max_value=1e-16), target_exp=st.integers(6, 14))
    @settings(max_examples=40, deadline=None)
    def test_plan_is_feasible_and_never_exceeds_full_time(self, rate, target_exp):
        reliability = SectionReliabilityModel(
            self.CONFIG, 16, ErrorRates.uniform(rate), self.VULN, flops_multiplier=36.0
        )
        plan = AdaptiveFrequencyOptimizer(reliability).optimize(1 - 10.0 ** (-target_exp))
        assert all(0.0 <= f <= 1.0 for f in plan.frequencies.values())
        assert plan.abft_time <= plan.full_abft_time + 1e-12
        full_coverage = reliability.attention_fault_coverage({"AS": 1.0, "CL": 1.0, "O": 1.0})
        if full_coverage >= plan.target_coverage:
            assert plan.meets_target

    @given(rate_low=st.floats(1e-26, 1e-20), factor=st.floats(1.5, 100.0))
    @settings(max_examples=30, deadline=None)
    def test_overhead_monotone_in_error_rate(self, rate_low, factor):
        # Nearly monotone: the greedy allocates by first-order mass and then
        # refines against the exact coverage, so a tiny non-monotonic ripple
        # (well under the size of one section's share) is permitted.
        def overhead(rate):
            reliability = SectionReliabilityModel(
                self.CONFIG, 16, ErrorRates.uniform(rate), self.VULN, flops_multiplier=36.0
            )
            return AdaptiveFrequencyOptimizer(reliability).optimize(1 - 1e-11).relative_overhead

        assert overhead(rate_low * factor) >= overhead(rate_low) - 0.05

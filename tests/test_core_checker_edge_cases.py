"""Additional ATTNChecker edge cases: multi-layer models, local attention,
thresholds-for-precision, double faults and numeric faults."""

import numpy as np
import pytest

from repro.core import ABFTThresholds, ATTNChecker, ATTNCheckerConfig
from repro.faults import FaultInjector, FaultSpec
from repro.models import build_model
from repro.nn import ComposedHooks, MultiHeadAttention
from repro.tensor.autograd import Tensor


@pytest.fixture
def rng():
    return np.random.default_rng(83)


def protected_forward(model, batch, hooks):
    model.eval()
    model.set_attention_hooks(hooks)
    try:
        return model(batch["input_ids"], attention_mask=batch["attention_mask"]).logits.data.copy()
    finally:
        model.set_attention_hooks(None)
        model.train()


def make_batch(model, rng, n=4):
    config = model.config
    return {
        "input_ids": rng.integers(0, config.vocab_size, size=(n, config.max_seq_len)),
        "attention_mask": np.ones((n, config.max_seq_len)),
    }


class TestThresholdsForPrecision:
    def test_known_precisions(self):
        assert ABFTThresholds.for_precision("float64").detect_rtol < ABFTThresholds.for_precision("float32").detect_rtol
        assert ABFTThresholds.for_precision("float16").detect_rtol > ABFTThresholds.for_precision("float32").detect_rtol

    def test_unknown_precision_rejected(self):
        with pytest.raises(KeyError):
            ABFTThresholds.for_precision("int4")

    def test_overrides_forwarded(self):
        thresholds = ABFTThresholds.for_precision("float32", near_inf=1e8)
        assert thresholds.near_inf == 1e8


class TestMultiLayerProtection:
    def test_fault_in_deeper_layer_corrected(self, rng):
        model = build_model("bert-base", size="tiny", rng=np.random.default_rng(0))
        batch = make_batch(model, rng)
        reference = protected_forward(model, batch, None)
        last_layer = model.config.num_layers - 1
        injector = FaultInjector(
            [FaultSpec(matrix="AS", error_type="nan", layer_index=last_layer)],
            rng=np.random.default_rng(3),
        )
        checker = ATTNChecker()
        logits = protected_forward(model, batch, ComposedHooks([injector, checker]))
        assert injector.num_injections == 1
        assert injector.records[0].layer_index == last_layer
        assert checker.stats.total_corrections >= 1
        assert np.allclose(logits, reference, rtol=1e-6, atol=1e-6)

    def test_faults_in_two_layers_both_corrected(self, rng):
        model = build_model("gpt2", size="tiny", rng=np.random.default_rng(0))
        batch = make_batch(model, rng)
        reference = protected_forward(model, batch, None)
        injector = FaultInjector(
            [
                FaultSpec(matrix="Q", error_type="inf", layer_index=0),
                FaultSpec(matrix="CL", error_type="nan", layer_index=1),
            ],
            rng=np.random.default_rng(5),
        )
        checker = ATTNChecker()
        logits = protected_forward(model, batch, ComposedHooks([injector, checker]))
        assert injector.num_injections == 2
        assert checker.stats.total_residual_extreme == 0
        assert np.allclose(logits, reference, rtol=1e-6, atol=1e-6)


class TestLocalAttentionProtection:
    def test_gpt_neo_local_attention_layer_protected(self, rng):
        model = build_model("gpt-neo", size="tiny", rng=np.random.default_rng(0))
        # Layer 1 uses local attention in GPT-Neo's alternation.
        assert model.config.layer_uses_local_attention(1)
        batch = make_batch(model, rng)
        reference = protected_forward(model, batch, None)
        injector = FaultInjector(
            [FaultSpec(matrix="AS", error_type="inf", layer_index=1)],
            rng=np.random.default_rng(9),
        )
        checker = ATTNChecker()
        logits = protected_forward(model, batch, ComposedHooks([injector, checker]))
        assert checker.stats.total_corrections >= 1
        assert np.allclose(logits, reference, rtol=1e-6, atol=1e-6)


class TestNumericFaults:
    def test_numeric_fault_corrected_like_classic_abft(self, rng):
        attention = MultiHeadAttention(hidden_size=16, num_heads=4, dropout_p=0.0, rng=rng)
        attention.eval()
        x = rng.normal(size=(2, 6, 16))
        reference = attention(Tensor(x)).data.copy()
        injector = FaultInjector(
            [FaultSpec(matrix="AS", error_type="numeric", numeric_delta=25.0)],
            rng=np.random.default_rng(2),
        )
        checker = ATTNChecker()
        attention.set_hooks(ComposedHooks([injector, checker]))
        protected = attention(Tensor(x)).data.copy()
        attention.set_hooks(None)
        assert checker.stats.total_corrections >= 1
        assert np.allclose(protected, reference, rtol=1e-6, atol=1e-8)

    def test_tiny_numeric_fault_is_benign_and_ignored(self, rng):
        attention = MultiHeadAttention(hidden_size=16, num_heads=4, dropout_p=0.0, rng=rng)
        attention.eval()
        x = rng.normal(size=(1, 5, 16))
        injector = FaultInjector(
            [FaultSpec(matrix="O", error_type="numeric", numeric_delta=1e-10)],
            rng=np.random.default_rng(2),
        )
        checker = ATTNChecker()
        attention.set_hooks(ComposedHooks([injector, checker]))
        attention(Tensor(x))
        attention.set_hooks(None)
        # Below the round-off tolerance E: not detected, by design.
        assert checker.stats.total_corrections == 0


class TestDoubleFaultLimits:
    def test_two_faults_in_same_section_may_not_be_recoverable(self, rng):
        # The scheme guarantees correction of one error per section per
        # execution; two simultaneous faults in the same section can exceed
        # that.  The checker must never crash and must report honestly.
        attention = MultiHeadAttention(hidden_size=16, num_heads=4, dropout_p=0.0, rng=rng)
        attention.eval()
        x = rng.normal(size=(1, 6, 16))
        injector = FaultInjector(
            [
                FaultSpec(matrix="AS", error_type="inf", position=(0, 1, 2, 3)),
                FaultSpec(matrix="AS", error_type="nan", position=(0, 1, 4, 3)),
            ],
            rng=np.random.default_rng(4),
        )
        checker = ATTNChecker()
        attention.set_hooks(ComposedHooks([injector, checker]))
        out = attention(Tensor(x))
        attention.set_hooks(None)
        assert injector.num_injections == 2
        assert checker.stats.total_detections >= 1
        assert np.isfinite(out.data).all() or checker.stats.total_residual_extreme >= 0

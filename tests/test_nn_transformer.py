"""Unit tests for transformer layers and losses."""

import numpy as np
import pytest

from repro.nn.losses import CrossEntropyLoss
from repro.nn.transformer import FeedForward, TransformerLayer
from repro.nn.attention import RecordingHooks
from repro.tensor.autograd import Tensor


@pytest.fixture
def rng():
    return np.random.default_rng(11)


class TestFeedForward:
    def test_shape_preserved(self, rng):
        ffn = FeedForward(8, 32, rng=rng)
        out = ffn(Tensor(rng.normal(size=(2, 5, 8))))
        assert out.shape == (2, 5, 8)

    def test_gradients_flow(self, rng):
        ffn = FeedForward(8, 16, rng=rng)
        ffn(Tensor(rng.normal(size=(2, 3, 8)))).sum().backward()
        assert all(p.grad is not None for p in ffn.parameters())


class TestTransformerLayer:
    @pytest.mark.parametrize("style", ["post_ln", "pre_ln"])
    def test_forward_shape(self, rng, style):
        layer = TransformerLayer(8, 2, 16, norm_style=style, rng=rng)
        out = layer(Tensor(rng.normal(size=(2, 6, 8))))
        assert out.shape == (2, 6, 8)

    def test_invalid_norm_style_raises(self, rng):
        with pytest.raises(ValueError):
            TransformerLayer(8, 2, 16, norm_style="sandwich", rng=rng)

    def test_residual_connection_present_pre_ln(self, rng):
        # Zeroing all sublayer outputs leaves the input unchanged in pre-LN.
        layer = TransformerLayer(8, 2, 16, norm_style="pre_ln", dropout_p=0.0, rng=rng)
        for module in (layer.attention.w_o, layer.ffn.fc_out):
            module.weight.data[:] = 0.0
            module.bias.data[:] = 0.0
        x = rng.normal(size=(1, 4, 8))
        out = layer(Tensor(x))
        assert np.allclose(out.data, x)

    def test_set_hooks_reaches_attention(self, rng):
        layer = TransformerLayer(8, 2, 16, rng=rng, layer_index=5)
        recorder = RecordingHooks()
        layer.set_hooks(recorder)
        layer(Tensor(rng.normal(size=(1, 4, 8))))
        assert 5 in recorder.records
        assert "AS" in recorder.matrices(5)

    def test_gradients_flow_through_both_sublayers(self, rng):
        layer = TransformerLayer(8, 2, 16, rng=rng)
        x = Tensor(rng.normal(size=(2, 4, 8)), requires_grad=True)
        layer(x).sum().backward()
        assert x.grad is not None
        assert layer.attention.w_q.weight.grad is not None
        assert layer.ffn.fc_in.weight.grad is not None

    def test_causal_flag_forwarded(self, rng):
        layer = TransformerLayer(8, 2, 16, causal=True, rng=rng)
        assert layer.attention.causal


class TestCrossEntropyLossModule:
    def test_matches_manual_value(self, rng):
        logits = Tensor(np.zeros((4, 2)))
        loss = CrossEntropyLoss()(logits, np.array([0, 1, 0, 1]))
        assert float(loss.data) == pytest.approx(np.log(2))

    def test_nan_logits_give_nan_loss(self):
        logits = Tensor(np.array([[np.nan, 0.0]]))
        loss = CrossEntropyLoss()(logits, np.array([0]))
        assert np.isnan(float(loss.data))

"""Unit tests for workload accounting and report rendering."""

import numpy as np
import pytest

from repro.analysis import (
    attention_workload,
    format_percent,
    format_table,
    gemm_ratio_table,
    render_series,
    to_csv,
)
from repro.models import get_config


class TestWorkload:
    def test_table3_ratios_above_99_percent(self):
        table = gemm_ratio_table()
        assert set(table) == {"bert-base", "gpt2", "gpt-neo", "roberta"}
        for breakdown in table.values():
            assert breakdown.gemm_ratio > 0.99

    def test_breakdown_totals(self):
        breakdown = attention_workload(get_config("bert-base", size="paper"), batch_size=8)
        assert breakdown.total_flops == breakdown.gemm_flops + breakdown.other_flops
        assert breakdown.gemm_flops > breakdown.other_flops

    def test_ratio_stable_across_batch_sizes(self):
        config = get_config("gpt2", size="paper")
        r8 = attention_workload(config, batch_size=8).gemm_ratio
        r32 = attention_workload(config, batch_size=32).gemm_ratio
        assert r8 == pytest.approx(r32, rel=1e-6)

    def test_custom_model_list(self):
        table = gemm_ratio_table(model_names=("bert-small",))
        assert list(table) == ["bert-small"]


class TestReporting:
    def test_format_percent(self):
        assert format_percent(0.07) == "7.0%"
        assert format_percent(0.1234, digits=2) == "12.34%"
        assert format_percent(float("nan")) == "n/a"

    def test_format_table_alignment_and_content(self):
        text = format_table(["model", "overhead"], [["bert", 0.07], ["gpt2", 0.09]], title="Fig")
        lines = text.splitlines()
        assert lines[0] == "Fig"
        assert "model" in lines[1] and "overhead" in lines[1]
        assert "bert" in text and "gpt2" in text

    def test_format_table_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_render_series(self):
        text = render_series("Figure 9", [24, 48], [0.9, 1.2], x_label="batch", y_label="TB/s")
        assert "Figure 9" in text and "batch" in text and "24" in text

    def test_render_series_length_mismatch(self):
        with pytest.raises(ValueError):
            render_series("x", [1, 2], [1])

    def test_to_csv_escapes_commas_and_quotes(self):
        csv = to_csv(["a", "b"], [["x,y", 'say "hi"']])
        assert '"x,y"' in csv
        assert '"say ""hi"""' in csv
        assert csv.splitlines()[0] == "a,b"

    def test_to_csv_row_count(self):
        csv = to_csv(["a"], [[1], [2], [3]])
        assert len(csv.strip().splitlines()) == 4

"""Device-resident model substrate: autograd + model zoo on array backends.

PR 3 made the *checker* stack backend-generic; this suite pins the port of the
model substrate itself (``build_model(..., array_backend=...)``):

* **Golden seed outputs** — the pure-NumPy path is byte-identical to the
  pre-refactor engine: eval loss, three protected training-step losses and
  the final weight sum of every model family match hard-coded goldens
  captured before the port.
* **Zero host round-trips** — a counting/spy backend substrate runs full
  protected training steps (immediate / deferred / async, fused engine
  following the model) with *zero* backend conversion calls and zero
  ``xfer/*`` time: one shared backend means a device-resident step never
  crosses to the host.
* **Foreign substrate end to end** — the simulated-foreign backend (an
  ndarray-subclass array type) carries parameters, activations, gradients,
  optimizer state and rollback snapshots natively; decisions equal the NumPy
  reference; on-disk checkpoints export through the backend (timed under
  ``xfer/d2h``) and restore adopts back (``xfer/h2d``).
* **Torch substrate** (skipped without torch; the CPU-torch CI job runs it) —
  full-model training campaigns across the verification modes byte-compare
  detection/correction decisions against the NumPy reference and match
  losses numerically.
"""

import math
import tempfile

import numpy as np
import pytest

from repro.backend import (
    backend_available,
    clear_dispatch_cache,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.core import ATTNChecker, ATTNCheckerConfig
from repro.faults import FaultInjector, FaultSpec
from repro.models import build_model
from repro.data import SyntheticMRPC
from repro.training import Trainer, TrainerConfig
from repro.training.checkpoint import CheckpointManager
from repro.training.optimizer import SGD, AdamW
from repro.utils.timing import TimingRegistry, XFER_D2H, XFER_H2D

from test_backend_dispatch import CountingBackend, SimForeignBackend, _SimArray

#: Captured from the pure-NumPy substrate immediately before the port
#: (seed 7 weights, SyntheticMRPC seed 5, one INF fault into AS layer 0 with
#: injector seed 3, SGD lr=1e-3, fused immediate checker).  float repr
#: round-trips exactly, so equality below is bit-for-bit.
NUMPY_GOLDENS = {
    "bert-base": {
        "eval_loss": 0.6867275859147438,
        "train_losses": [0.6876505481681406, 0.6838802173853776, 0.687099831686353],
        "weight_sum": 238.9193632777852,
    },
    "gpt2": {
        "eval_loss": 0.6149454360417236,
        "train_losses": [0.6163925784059808, 0.598823111037262, 0.5969231659807177],
        "weight_sum": 237.37362011253674,
    },
    "gpt-neo": {
        "eval_loss": 0.6178459100594017,
        "train_losses": [0.619277882736872, 0.5968320334827545, 0.599659002867734],
        "weight_sum": 237.37356645387507,
    },
    "roberta": {
        "eval_loss": 0.6909992629799849,
        "train_losses": [0.6886603620038225, 0.6901893593304964, 0.6919492997779798],
        "weight_sum": 239.01045094450163,
    },
}

MODE_CONFIGS = {
    "immediate": {},
    "deferred": {"defer_verification": True},
    "async": {"async_verification": True},
}


def _batch_for(model, seed=5, batch=4, offset=0):
    data = SyntheticMRPC(
        num_examples=16 + offset + batch,
        max_seq_len=model.config.max_seq_len,
        vocab_size=model.config.vocab_size,
        seed=seed,
    )
    return dict(data.encode(range(offset, offset + batch)))


def run_protected_training(
    model_name,
    array_backend=None,
    mode="immediate",
    steps=3,
    matrix="AS",
    error_type="inf",
    optimizer_cls=SGD,
):
    """A short single-fault protected fine-tuning run on one substrate.

    Returns losses, detection/correction counters and the model+checker for
    further inspection.  Seeds match the :data:`NUMPY_GOLDENS` capture.
    """
    model = build_model(
        model_name, size="tiny", rng=np.random.default_rng(7),
        array_backend=array_backend,
    )
    batch = _batch_for(model)
    injector = FaultInjector(
        [FaultSpec(matrix=matrix, error_type=error_type, layer_index=0)],
        rng=np.random.default_rng(3),
    )
    checker = ATTNChecker(ATTNCheckerConfig(**MODE_CONFIGS[mode]))
    trainer = Trainer(
        model,
        config=TrainerConfig(learning_rate=1e-3),
        optimizer=optimizer_cls(model.parameters(), lr=1e-3),
        checker=checker,
        fault_hooks=[injector],
    )
    losses = [trainer.train_step(batch).loss for _ in range(steps)]
    trainer.drain_verifications(batch=batch)
    return {
        "model": model,
        "trainer": trainer,
        "checker": checker,
        "losses": losses,
        "detections": checker.stats.total_detections,
        "corrections": checker.stats.total_corrections,
        "weight_sum": float(sum(
            float(p.xp.sum(p.xp.astype(p.data, p.xp.float64)))
            for p in model.parameters()
        )),
    }


# ---------------------------------------------------------------------------
# NumPy path: byte-identical to the pre-refactor substrate
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("model_name", sorted(NUMPY_GOLDENS))
def test_numpy_substrate_matches_pre_refactor_goldens(model_name):
    golden = NUMPY_GOLDENS[model_name]
    model = build_model(model_name, size="tiny", rng=np.random.default_rng(7))
    batch = _batch_for(model)
    model.eval()
    out = model(batch["input_ids"], attention_mask=batch["attention_mask"],
                labels=batch["labels"])
    assert out.loss_value == golden["eval_loss"]

    result = run_protected_training(model_name)
    assert result["losses"] == golden["train_losses"]
    assert result["weight_sum"] == golden["weight_sum"]
    assert result["detections"] == 1 and result["corrections"] == 1


@pytest.mark.parametrize("array_backend", [None, "numpy"])
def test_non_integer_inputs_and_labels_are_coerced(array_backend):
    """Owning the array type must not skip the historical int64 coercion:
    float token ids / labels worked before the port and must keep working on
    both the default and the explicitly-named NumPy substrate."""
    model = build_model("bert-base", size="tiny", rng=np.random.default_rng(0),
                        array_backend=array_backend)
    model.eval()
    input_ids = np.array([[1.0, 2.0, 3.0, 4.0]])
    out = model(input_ids, labels=np.array([1.0]))
    assert math.isfinite(out.loss_value)
    reference = build_model("bert-base", size="tiny", rng=np.random.default_rng(0))
    reference.eval()
    expected = reference(np.array([[1, 2, 3, 4]]), labels=np.array([1])).loss_value
    assert out.loss_value == expected


def test_numpy_substrate_parameters_are_plain_ndarrays():
    model = build_model("bert-base", size="tiny")
    assert model.array_backend is None
    for p in model.parameters():
        assert type(p.data) is np.ndarray
        assert p.backend is get_backend("numpy")


# ---------------------------------------------------------------------------
# build_model plumbing
# ---------------------------------------------------------------------------

class TestBuildModelPlumbing:
    def test_unknown_backend_name_rejected(self):
        with pytest.raises(ValueError, match="known backends"):
            build_model("bert-base", size="tiny", array_backend="jax")

    def test_accepts_backend_instance_and_name(self):
        instance = get_backend("numpy")
        by_instance = build_model("bert-base", size="tiny", array_backend=instance)
        by_name = build_model("bert-base", size="tiny", array_backend="numpy")
        assert by_instance.array_backend is instance
        assert by_name.array_backend is instance  # registry instances are cached

    def test_backend_threads_to_every_layer(self):
        backend = get_backend("numpy")
        model = build_model("gpt-neo", size="tiny", array_backend=backend)
        for layer in model.attention_layers():
            assert layer.array_backend is backend
        for p in model.parameters():
            assert p.backend is backend

    def test_trainer_surfaces_model_substrate_backend(self):
        model = build_model("bert-base", size="tiny", array_backend="numpy")
        trainer = Trainer(model, config=TrainerConfig())
        assert trainer.model_array_backend == "numpy"
        assert trainer.array_backend == "numpy"


# ---------------------------------------------------------------------------
# Counting/spy substrate: zero host round-trips on a shared backend
# ---------------------------------------------------------------------------

@pytest.fixture
def counting_substrate():
    backend = CountingBackend()
    register_backend("counting-substrate", lambda: backend)
    clear_dispatch_cache()
    yield backend
    unregister_backend("counting-substrate")
    clear_dispatch_cache()


@pytest.mark.parametrize("mode", sorted(MODE_CONFIGS))
def test_full_protected_step_zero_conversions_on_shared_backend(counting_substrate, mode):
    """Acceptance criterion: a full protected training step (fused engine,
    async included) on a non-NumPy-named backend performs zero host
    round-trips when model and checker share the backend.

    The spy's arrays *are* ndarrays, so everything (forward, checker chain,
    backward, optimizer update, state snapshots) is native — the counters
    prove no ``to_numpy`` / ``from_numpy`` / ``asarray`` backend conversion
    runs anywhere in the step, and the checker's transfer keys stay zero.
    """
    result = run_protected_training(
        "bert-base", array_backend="counting-substrate", mode=mode,
        error_type="near_inf", optimizer_cls=AdamW,
    )
    assert result["detections"] >= 1
    assert counting_substrate.conversions == {
        "to_numpy": 0, "from_numpy": 0, "asarray": 0,
    }
    assert result["checker"].transfer_seconds() == 0.0
    # The substrate handle survived the whole op chain: every parameter and
    # optimizer slot still belongs to the spy instance.
    for p in result["model"].parameters():
        assert p.backend is counting_substrate


def test_counting_substrate_matches_numpy_goldens(counting_substrate):
    """The spy wrapper changes ownership bookkeeping only — same math,
    bit for bit, as the NumPy goldens."""
    result = run_protected_training("bert-base", array_backend="counting-substrate")
    golden = NUMPY_GOLDENS["bert-base"]
    assert result["losses"] == golden["train_losses"]
    assert result["weight_sum"] == golden["weight_sum"]
    assert counting_substrate.conversions["to_numpy"] == 0


# ---------------------------------------------------------------------------
# Simulated-foreign substrate: adoption, state, checkpoint transfer keys
# ---------------------------------------------------------------------------

@pytest.fixture
def foreign_substrate():
    backend = SimForeignBackend()
    register_backend("simforeign-substrate", lambda: backend)
    clear_dispatch_cache()
    yield backend
    unregister_backend("simforeign-substrate")
    clear_dispatch_cache()


class TestForeignSubstrate:
    def test_everything_stays_native_and_decisions_match_numpy(self, foreign_substrate):
        reference = run_protected_training("bert-base")
        result = run_protected_training(
            "bert-base", array_backend="simforeign-substrate")
        assert result["losses"] == reference["losses"]
        assert result["detections"] == reference["detections"]
        assert result["corrections"] == reference["corrections"]
        model, trainer = result["model"], result["trainer"]
        for p in model.parameters():
            assert isinstance(p.data, _SimArray)
            if p.grad is not None:
                assert isinstance(p.grad, _SimArray)
        # state_dict snapshots are backend-native (device state stays put).
        assert all(isinstance(v, _SimArray) for v in model.state_dict().values())
        for slot in trainer.optimizer._velocity:
            if slot is not None:
                assert isinstance(slot, _SimArray)

    def test_disk_checkpoint_exports_and_adopts_through_backend(self, foreign_substrate):
        model = build_model("bert-base", size="tiny", rng=np.random.default_rng(7),
                            array_backend="simforeign-substrate")
        batch = _batch_for(model)
        timers = TimingRegistry()
        with tempfile.TemporaryDirectory() as directory:
            manager = CheckpointManager(directory=directory, timers=timers)
            optimizer = AdamW(model.parameters(), lr=1e-3)
            trainer = Trainer(model, config=TrainerConfig(learning_rate=1e-3),
                              optimizer=optimizer)
            trainer.train_step(batch)
            exported_before = foreign_substrate.exported
            manager.save(trainer.global_step, model, optimizer)
            assert foreign_substrate.exported > exported_before        # d2h export
            assert timers.elapsed(XFER_D2H) > 0.0

            trainer.train_step(batch)
            adopted_before = foreign_substrate.adopted
            manager.restore(model, optimizer)
            assert foreign_substrate.adopted > adopted_before          # h2d adopt
            assert timers.elapsed(XFER_H2D) > 0.0
            for p in model.parameters():
                assert isinstance(p.data, _SimArray)
            for slot in optimizer._m:
                if slot is not None:
                    assert isinstance(slot, _SimArray)

    def test_in_memory_checkpoint_never_crosses_host(self, foreign_substrate):
        model = build_model("bert-base", size="tiny", rng=np.random.default_rng(7),
                            array_backend="simforeign-substrate")
        batch = _batch_for(model)
        timers = TimingRegistry()
        manager = CheckpointManager(timers=timers)   # in-memory
        trainer = Trainer(model, config=TrainerConfig(learning_rate=1e-3))
        trainer.train_step(batch)
        exported_before = foreign_substrate.exported
        manager.save(trainer.global_step, model, trainer.optimizer)
        manager.restore(model, trainer.optimizer)
        assert foreign_substrate.exported == exported_before
        assert timers.elapsed(XFER_D2H) == 0.0 and timers.elapsed(XFER_H2D) == 0.0
        for p in model.parameters():
            assert isinstance(p.data, _SimArray)

    def test_stale_reexecute_rollback_stays_native(self, foreign_substrate):
        model = build_model("bert-base", size="tiny", rng=np.random.default_rng(7),
                            array_backend="simforeign-substrate")
        batch = _batch_for(model)
        injector = FaultInjector(
            [FaultSpec(matrix="AS", error_type="inf", layer_index=0)],
            rng=np.random.default_rng(3),
        )
        checker = ATTNChecker(ATTNCheckerConfig(async_verification=True))
        trainer = Trainer(
            model, config=TrainerConfig(learning_rate=1e-3, stale_policy="reexecute"),
            checker=checker, fault_hooks=[injector],
        )
        for _ in range(3):
            trainer.train_step(batch)
        trainer.drain_verifications(batch=batch)
        assert checker.stats.total_detections >= 1
        for p in model.parameters():
            assert isinstance(p.data, _SimArray)
        for _, model_state, _ in trainer._stale_snapshots:
            assert all(isinstance(v, _SimArray) for v in model_state.values())


# ---------------------------------------------------------------------------
# Module/optimizer state-dict adoption contract
# ---------------------------------------------------------------------------

def test_load_state_dict_adopts_host_arrays(foreign_substrate):
    model = build_model("bert-base", size="tiny", rng=np.random.default_rng(7),
                        array_backend="simforeign-substrate")
    host_state = {k: np.asarray(v).view(np.ndarray).copy()
                  for k, v in model.state_dict().items()}
    model.load_state_dict(host_state)
    for p in model.parameters():
        assert isinstance(p.data, _SimArray)


def test_backward_seeds_root_gradient_on_owning_backend(foreign_substrate):
    from repro.tensor.autograd import Tensor

    x = Tensor(foreign_substrate.from_numpy(np.ones((2, 3))), requires_grad=True)
    loss = (x * 2.0).sum()
    loss.backward()
    assert isinstance(x.grad, _SimArray)
    np.testing.assert_array_equal(np.asarray(x.grad), np.full((2, 3), 2.0))


# ---------------------------------------------------------------------------
# Torch substrate (CPU wheels in CI; skipped when torch is absent)
# ---------------------------------------------------------------------------

needs_torch = pytest.mark.skipif(
    not backend_available("torch"), reason="torch not installed"
)


@needs_torch
class TestTorchSubstrate:
    def test_parameters_are_torch_tensors(self):
        backend = get_backend("torch")
        model = build_model("bert-base", size="tiny", array_backend="torch")
        for p in model.parameters():
            assert backend.is_backend_array(p.data)

    @pytest.mark.parametrize("mode", sorted(MODE_CONFIGS))
    @pytest.mark.parametrize("error_type", ["inf", "nan", "near_inf"])
    def test_training_campaign_decisions_match_numpy_reference(self, mode, error_type):
        reference = run_protected_training("bert-base", mode=mode, error_type=error_type)
        result = run_protected_training(
            "bert-base", array_backend="torch", mode=mode, error_type=error_type)
        # Decisions byte-compare; losses agree numerically (different BLAS).
        assert result["detections"] == reference["detections"]
        assert result["corrections"] == reference["corrections"]
        np.testing.assert_allclose(result["losses"], reference["losses"],
                                   rtol=1e-7, atol=1e-9)
        np.testing.assert_allclose(result["weight_sum"], reference["weight_sum"],
                                   rtol=1e-7)

    def test_shared_backend_records_zero_transfer(self):
        result = run_protected_training("gpt2", array_backend="torch", mode="async",
                                        error_type="near_inf")
        assert result["checker"].transfer_seconds() == 0.0

    def test_checkpoint_roundtrip_and_evaluate(self):
        backend = get_backend("torch")
        model = build_model("bert-base", size="tiny", rng=np.random.default_rng(7),
                            array_backend="torch")
        batch = _batch_for(model)
        with tempfile.TemporaryDirectory() as directory:
            manager = CheckpointManager(directory=directory, timers=TimingRegistry())
            trainer = Trainer(model, config=TrainerConfig(learning_rate=1e-3))
            trainer.train_step(batch)
            manager.save(trainer.global_step, model, trainer.optimizer)
            trainer.train_step(batch)
            manager.restore(model, trainer.optimizer)
        for p in model.parameters():
            assert backend.is_backend_array(p.data)
        metrics = trainer.evaluate([batch])
        assert math.isfinite(metrics["loss"])
        assert 0.0 <= metrics["accuracy"] <= 1.0

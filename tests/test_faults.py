"""Unit tests for the fault injector, propagation study, vulnerability study
and detection/correction campaign."""

import numpy as np
import pytest

from repro.core.patterns import ErrorPattern
from repro.faults import (
    DetectionCorrectionCampaign,
    FaultInjector,
    FaultSpec,
    PropagationStudy,
    VulnerabilityStudy,
)
from repro.faults.injector import TARGET_MATRICES
from repro.models import build_model
from repro.nn import MultiHeadAttention, RecordingHooks, ComposedHooks
from repro.tensor.autograd import Tensor


@pytest.fixture
def rng():
    return np.random.default_rng(53)


@pytest.fixture
def attention(rng):
    return MultiHeadAttention(hidden_size=16, num_heads=4, dropout_p=0.0, rng=rng)


class TestFaultSpec:
    def test_valid_spec(self):
        spec = FaultSpec(matrix="AS", error_type="inf")
        assert spec.op.value == "qk"

    def test_unknown_matrix_rejected(self):
        with pytest.raises(KeyError):
            FaultSpec(matrix="W", error_type="inf")

    def test_unknown_error_type_rejected(self):
        with pytest.raises(KeyError):
            FaultSpec(matrix="Q", error_type="flip")

    def test_all_target_matrices_map_to_distinct_ops(self):
        assert len(set(TARGET_MATRICES.values())) == len(TARGET_MATRICES)


class TestFaultInjector:
    @pytest.mark.parametrize("error_type,predicate", [
        ("inf", lambda v: np.isinf(v)),
        ("nan", lambda v: np.isnan(v)),
        ("near_inf", lambda v: np.isfinite(v) and abs(v) > 1e10),
        ("numeric", lambda v: np.isfinite(v)),
    ])
    def test_injected_value_class(self, attention, rng, error_type, predicate):
        injector = FaultInjector([FaultSpec(matrix="Q", error_type=error_type)], rng=rng)
        attention.set_hooks(injector)
        attention(Tensor(rng.normal(size=(1, 5, 16))))
        attention.set_hooks(None)
        assert injector.num_injections == 1
        record = injector.records[0]
        assert predicate(record.injected_value)

    def test_fixed_position_respected(self, attention, rng):
        spec = FaultSpec(matrix="AS", error_type="inf", position=(0, 1, 2, 3))
        injector = FaultInjector([spec], rng=rng)
        recorder = RecordingHooks()
        attention.set_hooks(ComposedHooks([injector, recorder]))
        attention(Tensor(rng.normal(size=(1, 5, 16))))
        attention.set_hooks(None)
        assert injector.records[0].position == (0, 1, 2, 3)
        assert np.isinf(recorder.matrices(0)["AS"][0, 1, 2, 3])

    def test_fires_at_most_once_by_default(self, attention, rng):
        injector = FaultInjector([FaultSpec(matrix="Q", error_type="inf")], rng=rng)
        attention.set_hooks(injector)
        attention(Tensor(rng.normal(size=(1, 5, 16))))
        attention(Tensor(rng.normal(size=(1, 5, 16))))
        attention.set_hooks(None)
        assert injector.num_injections == 1

    def test_arm_resets_counters(self, attention, rng):
        injector = FaultInjector([FaultSpec(matrix="Q", error_type="inf")], rng=rng)
        attention.set_hooks(injector)
        attention(Tensor(rng.normal(size=(1, 5, 16))))
        injector.arm()
        attention(Tensor(rng.normal(size=(1, 5, 16))))
        attention.set_hooks(None)
        assert injector.num_injections == 2

    def test_disarm_prevents_injection(self, attention, rng):
        injector = FaultInjector([FaultSpec(matrix="Q", error_type="inf")], rng=rng, enabled=False)
        attention.set_hooks(injector)
        attention(Tensor(rng.normal(size=(1, 5, 16))))
        attention.set_hooks(None)
        assert injector.num_injections == 0

    def test_layer_filter(self, rng):
        model = build_model("bert-base", size="tiny", rng=np.random.default_rng(0))
        spec = FaultSpec(matrix="Q", error_type="inf", layer_index=1)
        injector = FaultInjector([spec], rng=rng)
        model.set_attention_hooks(injector)
        ids = rng.integers(0, model.config.vocab_size, size=(2, model.config.max_seq_len))
        model(ids, attention_mask=np.ones((2, model.config.max_seq_len)))
        model.set_attention_hooks(None)
        assert injector.num_injections == 1
        assert injector.records[0].layer_index == 1

    def test_multiple_specs_fire_independently(self, attention, rng):
        specs = [FaultSpec(matrix="Q", error_type="inf"), FaultSpec(matrix="V", error_type="nan")]
        injector = FaultInjector(specs, rng=rng)
        attention.set_hooks(injector)
        attention(Tensor(rng.normal(size=(1, 5, 16))))
        attention.set_hooks(None)
        assert injector.num_injections == 2

    def test_records_original_value(self, attention, rng):
        injector = FaultInjector([FaultSpec(matrix="CL", error_type="inf")], rng=rng)
        attention.set_hooks(injector)
        attention(Tensor(rng.normal(size=(1, 5, 16))))
        attention.set_hooks(None)
        assert np.isfinite(injector.records[0].original_value)


class TestPropagationStudy:
    @pytest.fixture(scope="class")
    def study(self):
        model = build_model("bert-base", size="tiny", rng=np.random.default_rng(0))
        from repro.data import SyntheticMRPC

        data = SyntheticMRPC(
            num_examples=8, max_seq_len=model.config.max_seq_len,
            vocab_size=model.config.vocab_size,
        )
        return PropagationStudy(model, data.encode(range(4)), rng=np.random.default_rng(1))

    def test_reference_is_cached(self, study):
        assert study.reference_matrices() is study.reference_matrices()

    def test_inf_in_q_propagates_one_row(self, study):
        result = study.trace("Q", "inf")
        assert result.cell("Q").startswith("0D")
        assert result.cell("AS").startswith("1R")
        assert result.cell("O").startswith("1R")
        # Softmax turns the INF row into NaN downstream (Table 2).
        assert "NaN" in result.cell("AP") or "M" in result.cell("AP")

    def test_inf_in_k_propagates_one_column_then_2d(self, study):
        result = study.trace("K", "inf")
        assert result.cell("AS").startswith("1C")
        assert result.cell("CL").startswith("2D")

    def test_v_fault_skips_attention_scores(self, study):
        result = study.trace("V", "nan")
        assert result.cell("AS") == "-"
        assert result.cell("CL").startswith(("1C", "-"))

    def test_cl_fault_reaches_output_as_one_row(self, study):
        result = study.trace("CL", "inf")
        assert result.cell("O").startswith("1R")

    def test_run_table_covers_all_combinations(self, study):
        results = study.run_table(matrices=("Q", "AS"), error_types=("inf", "nan"), trials=1)
        assert len(results) == 4
        assert {(r.matrix, r.error_type) for r in results} == {
            ("Q", "inf"), ("Q", "nan"), ("AS", "inf"), ("AS", "nan"),
        }


class TestVulnerabilityStudy:
    @pytest.fixture(scope="class")
    def study(self):
        from repro.data import SyntheticMRPC

        def factory():
            return build_model("bert-small", size="tiny", rng=np.random.default_rng(0))

        model = factory()
        data = SyntheticMRPC(
            num_examples=16, max_seq_len=model.config.max_seq_len,
            vocab_size=model.config.vocab_size,
        )
        batches = [data.encode(range(0, 4)), data.encode(range(4, 8))]
        return VulnerabilityStudy(factory, batches, rng=np.random.default_rng(2))

    def test_requires_two_batches(self):
        with pytest.raises(ValueError):
            VulnerabilityStudy(lambda: None, [{}])

    def test_inf_fault_in_q_is_usually_fatal(self, study):
        results = study.run(matrices=("Q",), error_types=("inf",), trials=3)
        assert results[0].probability >= 2 / 3

    def test_results_have_probabilities_in_unit_interval(self, study):
        results = study.run(matrices=("Q", "V"), error_types=("nan",), trials=2)
        for r in results:
            assert 0.0 <= r.probability <= 1.0
            assert r.trials == 2

    def test_phi_table_layout(self, study):
        results = study.run(matrices=("Q", "AS"), error_types=("inf",), trials=1)
        phi = VulnerabilityStudy.as_phi_table(results)
        assert "xq" in phi and "qk" in phi
        assert "inf" in phi["xq"]


class TestDetectionCorrectionCampaign:
    @pytest.fixture(scope="class")
    def campaign(self):
        model = build_model("bert-base", size="tiny", rng=np.random.default_rng(0))
        from repro.data import SyntheticMRPC

        data = SyntheticMRPC(
            num_examples=8, max_seq_len=model.config.max_seq_len,
            vocab_size=model.config.vocab_size,
        )
        batch = data.encode(range(4))
        batch = dict(batch)
        batch["attention_mask"] = np.ones_like(batch["attention_mask"])
        return DetectionCorrectionCampaign(model, batch, rng=np.random.default_rng(3))

    def test_single_trial_flags(self, campaign):
        outcome = campaign.run_trial("AS", "inf")
        assert outcome["detected"] and outcome["corrected"] and outcome["matches"]

    def test_all_extreme_errors_corrected(self, campaign):
        results = campaign.run(
            matrices=("Q", "K", "V", "AS", "CL", "O"),
            error_types=("inf", "nan", "near_inf"),
            trials=2,
        )
        assert DetectionCorrectionCampaign.all_corrected(results)
        for r in results:
            assert r.recovery_rate == 1.0

    def test_benign_masked_faults_counted_separately(self):
        model = build_model("bert-base", size="tiny", rng=np.random.default_rng(0))
        from repro.data import SyntheticMRPC

        data = SyntheticMRPC(
            num_examples=8, max_seq_len=model.config.max_seq_len,
            vocab_size=model.config.vocab_size,
        )
        batch = dict(data.encode(range(4)))
        # Heavy padding so some faults land in masked-out positions.
        batch["attention_mask"][:, 4:] = 0.0
        campaign = DetectionCorrectionCampaign(model, batch, rng=np.random.default_rng(9))
        results = campaign.run(matrices=("V",), error_types=("near_inf",), trials=8)
        result = results[0]
        assert result.trials == 8
        assert result.benign_masked + result.detected >= result.trials - result.benign_masked
        assert result.recovery_rate == 1.0


class TestInjectorLifecycle:
    """Bounded record retention and the per-request serving seam."""

    def _attn(self, rng):
        return MultiHeadAttention(hidden_size=16, num_heads=4, dropout_p=0.0, rng=rng)

    def test_records_bounded_by_max_records(self, rng):
        attention = self._attn(rng)
        injector = FaultInjector(
            [FaultSpec(matrix="Q", error_type="numeric")], rng=rng, max_records=3
        )
        attention.set_hooks(injector)
        for _ in range(6):
            injector.arm()
            attention(Tensor(rng.normal(size=(1, 5, 16))))
        attention.set_hooks(None)
        assert len(injector.records) == 3
        assert injector.num_injections == 6  # monotonic despite eviction

    def test_max_records_validated(self, rng):
        with pytest.raises(ValueError, match="max_records"):
            FaultInjector([FaultSpec(matrix="Q", error_type="inf")], rng=rng, max_records=0)

    def test_begin_request_rearms_and_tags_records(self, rng):
        attention = self._attn(rng)
        injector = FaultInjector([FaultSpec(matrix="Q", error_type="inf")], rng=rng)
        attention.set_hooks(injector)
        injector.begin_request("req-a")
        attention(Tensor(rng.normal(size=(1, 5, 16))))
        attention(Tensor(rng.normal(size=(1, 5, 16))))  # spec already spent
        injector.begin_request("req-b")
        attention(Tensor(rng.normal(size=(1, 5, 16))))
        attention.set_hooks(None)
        assert injector.num_injections == 2  # once per request, not once ever
        assert [r.request_id for r in injector.records] == ["req-a", "req-b"]

    def test_begin_request_preserves_disarmed_state(self, rng):
        attention = self._attn(rng)
        injector = FaultInjector(
            [FaultSpec(matrix="Q", error_type="inf")], rng=rng, enabled=False
        )
        attention.set_hooks(injector)
        injector.begin_request("req-a")
        attention(Tensor(rng.normal(size=(1, 5, 16))))
        attention.set_hooks(None)
        assert injector.num_injections == 0

    def test_reset_clears_everything(self, rng):
        attention = self._attn(rng)
        injector = FaultInjector([FaultSpec(matrix="Q", error_type="inf")], rng=rng)
        attention.set_hooks(injector)
        injector.begin_request("req-a")
        attention(Tensor(rng.normal(size=(1, 5, 16))))
        injector.reset()
        attention(Tensor(rng.normal(size=(1, 5, 16))))
        attention.set_hooks(None)
        assert injector.num_injections == 1  # post-reset injection only
        assert len(injector.records) == 1
        assert injector.records[0].request_id is None

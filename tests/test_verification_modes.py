"""Cross-backend / cross-mode equivalence and fault-campaign harness.

Four checker configurations can protect the same attention pass:

* ``per_gemm``        — the reference backend (verifies inline at each GEMM),
* ``fused``           — the fused engine, immediate verification,
* ``fused+deferred``  — the fused engine, one batched pass per step,
* ``fused+async``     — the fused engine, batched passes on a worker thread
  with bounded-staleness repair of the retained boundary matrices.

The invariants this file enforces, over a property-style campaign of random
shapes, input dtypes and fault injections:

* ``per_gemm`` and ``fused`` make byte-identical decisions and outputs
  (the pre-existing guarantee, re-checked under random geometry);
* ``fused+deferred`` and ``fused+async`` make **byte-identical detection
  decisions** (they run the same batched verification code);
* within the staleness bound, ``fused+async`` makes the same **correction
  decisions** as immediate mode: the repair of the retained fault-site
  boundary reproduces immediate mode's correction counts, and both families
  agree on which boundary is the fault site;
* drained async results are deterministic across repeated runs;
* backpressure bounds the queue, ``reset()`` joins the worker, and worker
  exceptions propagate at the next drain instead of being swallowed.
"""

import threading
import time

import numpy as np
import pytest

from repro.core import (
    VERIFICATION_MODE_CONFIGS,
    ATTNChecker,
    ATTNCheckerConfig,
    ProtectionEngine,
    SectionCostModel,
)
from repro.core.checksums import ChecksumState, encode_column_checksums
from repro.core.engine import _DeferredCheck
from repro.data import SyntheticMRPC
from repro.faults import FaultInjector, FaultSpec
from repro.models import build_model
from repro.nn import ComposedHooks, MultiHeadAttention
from repro.tensor.autograd import Tensor
from repro.training import (
    StaleDetectionAbort,
    Trainer,
    TrainerConfig,
)

MATRICES = ("Q", "K", "V", "AS", "CL", "O")
ERRORS = ("inf", "nan", "near_inf", "numeric")
SECTION_RANK = {"AS": 0, "CL": 1, "O": 2}

MODE_KWARGS = {
    "per_gemm": {"backend": "per_gemm"},
    "fused": VERIFICATION_MODE_CONFIGS["immediate"],
    "fused+deferred": VERIFICATION_MODE_CONFIGS["deferred"],
    "fused+async": VERIFICATION_MODE_CONFIGS["async"],
}


# ---------------------------------------------------------------------------
# Campaign harness
# ---------------------------------------------------------------------------

def random_scenario(seed):
    """Random geometry + input dtype + fault for one campaign scenario."""
    rng = np.random.default_rng(1000 + seed)
    heads = int(rng.choice([2, 4]))
    head_dim = int(rng.choice([4, 8]))
    dtypes = (np.float64, np.float32)
    return {
        "batch": int(rng.integers(1, 4)),
        "seq": int(rng.integers(3, 9)),
        "heads": heads,
        "hidden": heads * head_dim,
        "dtype": dtypes[int(rng.integers(len(dtypes)))],
        "bias": bool(rng.integers(2)),
        "matrix": MATRICES[int(rng.integers(len(MATRICES)))],
        "error_type": ERRORS[int(rng.integers(len(ERRORS)))],
    }


def run_scenario(mode, scenario, seed, extra_config=None):
    """One single-fault protected forward pass under one checker mode.

    Returns everything the equivalence assertions need: the protected output,
    full per-section statistics, and the drained outcome signatures.
    ``extra_config`` merges additional :class:`ATTNCheckerConfig` kwargs
    (e.g. ``array_backend``) — the cross-array-backend campaign in
    ``test_backend_dispatch.py`` reuses this helper through it.
    """
    attention = MultiHeadAttention(
        hidden_size=scenario["hidden"], num_heads=scenario["heads"], dropout_p=0.0,
        rng=np.random.default_rng(2000 + seed), bias=scenario["bias"],
    )
    attention.eval()
    x = np.random.default_rng(3000 + seed).normal(
        size=(scenario["batch"], scenario["seq"], scenario["hidden"])
    ).astype(scenario["dtype"])
    injector = FaultInjector(
        [FaultSpec(matrix=scenario["matrix"], error_type=scenario["error_type"],
                   layer_index=0)],
        rng=np.random.default_rng(4000 + seed),
    )
    checker = ATTNChecker(ATTNCheckerConfig(**MODE_KWARGS[mode], **(extra_config or {})))
    attention.set_hooks(ComposedHooks([injector, checker]))
    try:
        output = attention(Tensor(x)).data.copy()
    finally:
        attention.set_hooks(None)
    outcomes = checker.end_step() + checker.drain()
    checker.close()

    stats = {
        name: (s.checks_run, s.detections, s.corrections, s.aborted_vectors,
               s.residual_extreme, s.operand_repairs)
        for name, s in checker.stats.sections.items()
    }
    detection_sig = tuple(
        (o.section, o.layer_index, o.step,
         o.report.detected, o.report.aborted, o.report.residual_extreme)
        for o in outcomes if o.report is not None
    )
    decision_sig = tuple(
        (o.section, o.layer_index, o.step, o.stale,
         o.report.detected, o.report.aborted, o.report.residual_extreme,
         None if o.repair is None else (o.repair.corrected, o.repair.residual_extreme))
        for o in outcomes if o.report is not None
    )
    dirty = {name for name, s in checker.stats.sections.items() if s.detections > 0}
    return {
        "output": output,
        "stats": stats,
        "detection_sig": detection_sig,
        "decision_sig": decision_sig,
        "dirty": dirty,
        "corrections": checker.stats.total_corrections,
        "stale": checker.stats.total_stale_detections,
        "outcomes": outcomes,
    }


def earliest_dirty(dirty):
    return min(dirty, key=SECTION_RANK.__getitem__) if dirty else None


@pytest.mark.parametrize("seed", range(10))
class TestCrossBackendEquivalenceCampaign:
    """Random-geometry single-fault campaign across all four configurations."""

    def test_per_gemm_and_fused_byte_identical(self, seed):
        scenario = random_scenario(seed)
        fused = run_scenario("fused", scenario, seed)
        reference = run_scenario("per_gemm", scenario, seed)
        assert fused["stats"] == reference["stats"]
        assert np.array_equal(fused["output"], reference["output"], equal_nan=True)

    def test_deferred_and_async_detection_byte_identical(self, seed):
        scenario = random_scenario(seed)
        deferred = run_scenario("fused+deferred", scenario, seed)
        asynchronous = run_scenario("fused+async", scenario, seed)
        assert deferred["detection_sig"] == asynchronous["detection_sig"]
        # The consumed forward output is the unrepaired one in both modes.
        assert np.array_equal(deferred["output"], asynchronous["output"], equal_nan=True)
        # Deferred never corrects; async's corrections come from the retained
        # repair, not from mutating the consumed values.
        deferred_corrections = sum(s[2] for s in deferred["stats"].values())
        assert deferred_corrections == 0

    def test_async_corrections_match_immediate_within_staleness_bound(self, seed):
        scenario = random_scenario(seed)
        immediate = run_scenario("fused", scenario, seed)
        asynchronous = run_scenario("fused+async", scenario, seed)
        # Single fault per pass: the bounded-staleness repair of the retained
        # fault-site boundary must reproduce immediate mode's correction
        # decisions exactly.
        assert asynchronous["corrections"] == immediate["corrections"]
        # Both families agree on the fault site (the earliest dirty boundary
        # in dataflow order); async may additionally flag downstream
        # propagation shadows that immediate mode's in-pass repair prevented.
        assert earliest_dirty(asynchronous["dirty"]) == earliest_dirty(immediate["dirty"])
        assert immediate["dirty"] <= asynchronous["dirty"]
        # Detection reach is identical: a fault immediate mode saw is never
        # missed by the batched pass.
        immediate_detected = sum(s[1] for s in immediate["stats"].values())
        async_detected = sum(s[1] for s in asynchronous["stats"].values())
        assert (async_detected > 0) == (immediate_detected > 0)

    def test_async_dirty_outcomes_flagged_stale_within_window(self, seed):
        scenario = random_scenario(seed)
        asynchronous = run_scenario("fused+async", scenario, seed)
        for outcome in asynchronous["outcomes"]:
            if outcome.report is not None and outcome.report.detected:
                assert outcome.stale
                assert 0 <= outcome.lag_steps <= ATTNCheckerConfig().max_pending_steps
            if outcome.repair is not None:
                assert outcome.stale

    def test_drained_outcomes_deterministic_across_runs(self, seed):
        scenario = random_scenario(seed)
        first = run_scenario("fused+async", scenario, seed)
        second = run_scenario("fused+async", scenario, seed)
        assert first["decision_sig"] == second["decision_sig"]
        assert first["stats"] == second["stats"]


# ---------------------------------------------------------------------------
# End-to-end fault campaign through the Trainer
# ---------------------------------------------------------------------------

def make_trainer(checker_kwargs, trainer_kwargs=None, matrix="AS",
                 error_type="numeric", steps=0):
    model = build_model("bert-base", size="tiny", rng=np.random.default_rng(0))
    data = SyntheticMRPC(
        num_examples=16, max_seq_len=model.config.max_seq_len,
        vocab_size=model.config.vocab_size,
    )
    batch = dict(data.encode(range(4)))
    injector = FaultInjector(
        [FaultSpec(matrix=matrix, error_type=error_type, layer_index=0)],
        rng=np.random.default_rng(5),
    )
    checker = ATTNChecker(ATTNCheckerConfig(**checker_kwargs))
    trainer = Trainer(
        model,
        config=TrainerConfig(learning_rate=1e-3, **(trainer_kwargs or {})),
        checker=checker,
        fault_hooks=[injector],
    )
    results = [trainer.train_step(batch) for _ in range(steps)]
    return trainer, checker, batch, results


class TestTrainerAsyncCampaign:
    def test_async_detection_correction_parity_with_immediate(self):
        _, imm_checker, _, imm_results = make_trainer({}, steps=3)

        trainer, checker, batch, results = make_trainer(
            {"async_verification": True, "max_pending_steps": 2}
        )
        for _ in range(3):
            results.append(trainer.train_step(batch))
            # end_step always submits the step's snapshot: nothing queued.
            assert checker.pending_verifications == 0
        trainer.drain_verifications()
        checker.close()

        assert checker.engine.pending_steps == 0
        # The single transient fault is detected in both runs, and the
        # bounded-staleness repair reproduces immediate-mode corrections in
        # the aggregated StepResult counters.
        imm_corrections = sum(r.corrections for r in imm_results)
        async_corrections = sum(r.corrections for r in results)
        assert imm_corrections >= 1
        assert async_corrections == imm_corrections
        assert sum(r.detections for r in imm_results) >= 1
        assert sum(r.detections for r in results) >= 1
        # The dirty boundary surfaced as a stale detection exactly once.
        assert sum(r.stale_detections for r in results) == 1
        assert checker.stats.total_stale_detections == 1
        assert all(r.stale_detections == 0 for r in imm_results)

    def test_async_clean_run_detects_nothing(self):
        model = build_model("bert-base", size="tiny", rng=np.random.default_rng(0))
        data = SyntheticMRPC(
            num_examples=16, max_seq_len=model.config.max_seq_len,
            vocab_size=model.config.vocab_size,
        )
        batch = dict(data.encode(range(4)))
        checker = ATTNChecker(ATTNCheckerConfig(async_verification=True))
        trainer = Trainer(model, config=TrainerConfig(learning_rate=1e-3), checker=checker)
        for _ in range(2):
            trainer.train_step(batch)
            assert checker.pending_verifications == 0
        trainer.drain_verifications()
        checker.close()
        assert checker.stats.total_detections == 0
        assert checker.stats.total_checks > 0
        assert trainer.metrics.total_stale_detections() == 0

    def test_reexecute_policy_recovers_the_step(self):
        trainer, checker, batch, results = make_trainer(
            {"async_verification": True, "max_pending_steps": 1},
            trainer_kwargs={"stale_policy": "reexecute"},
        )
        for _ in range(3):
            results.append(trainer.train_step(batch))
        trainer.drain_verifications()
        checker.close()
        # The stale dirty verification triggered a checkpoint-free
        # re-execution of the step on which it surfaced.
        assert any(r.reexecuted for r in results)
        assert trainer.metrics.num_reexecuted() >= 1
        # Re-execution is clean (the fault was transient), so training ends
        # in a trainable state.
        assert trainer.metrics.num_non_trainable() == 0

    def test_abort_policy_raises(self):
        trainer, checker, batch, results = make_trainer(
            {"async_verification": True, "max_pending_steps": 1},
            trainer_kwargs={"stale_policy": "abort"},
        )
        with pytest.raises(StaleDetectionAbort):
            for _ in range(4):
                trainer.train_step(batch)
        checker.close()

    def test_unknown_stale_policy_rejected(self):
        with pytest.raises(ValueError):
            TrainerConfig(stale_policy="retry")

    @staticmethod
    def _gate_worker(checker):
        """Hold the verification worker until the returned event is set."""
        engine = checker.engine
        release = threading.Event()
        original = engine._process_batch

        def gated(epoch, items):
            assert release.wait(timeout=10.0)
            return original(epoch, items)

        engine._process_batch = gated
        return release

    def test_abort_policy_applies_at_drain_barrier(self):
        # A fault on the final step only surfaces at the drain barrier; the
        # policy must still fire there, not be downgraded to 'record'.
        trainer, checker, batch, _ = make_trainer(
            {"async_verification": True, "max_pending_steps": 2},
            trainer_kwargs={"stale_policy": "abort"},
        )
        release = self._gate_worker(checker)
        trainer.train_step(batch)  # verdict still in flight: no abort here
        release.set()
        with pytest.raises(StaleDetectionAbort, match="drain"):
            trainer.drain_verifications()
        checker.close()

    def test_reexecute_policy_applies_at_drain_barrier(self):
        trainer, checker, batch, _ = make_trainer(
            {"async_verification": True, "max_pending_steps": 2},
            trainer_kwargs={"stale_policy": "reexecute"},
        )
        release = self._gate_worker(checker)
        first = trainer.train_step(batch)
        assert not first.reexecuted
        release.set()
        trainer.drain_verifications(batch=batch)
        checker.close()
        assert trainer.metrics.steps[-1].reexecuted
        assert trainer.metrics.total_stale_detections() == 1
        assert trainer.metrics.num_non_trainable() == 0


# ---------------------------------------------------------------------------
# Backpressure, lifecycle, and worker failure propagation
# ---------------------------------------------------------------------------

def make_check(section="O", step=1):
    """A real, clean work item (the engine's batched pass accepts it as-is)."""
    matrix = np.arange(16.0).reshape(1, 4, 4)
    return _DeferredCheck(section, 0, step, matrix,
                          ChecksumState(col=encode_column_checksums(matrix)))


class TestBackpressureAndLifecycle:
    def test_submit_blocks_at_max_pending_steps(self):
        engine = ProtectionEngine(asynchronous=True, max_pending_steps=1)
        started, release = threading.Event(), threading.Event()
        original = engine._process_batch

        def gated(epoch, items):
            started.set()
            assert release.wait(timeout=10.0)
            return original(epoch, items)

        engine._process_batch = gated
        engine._queue.append(make_check(step=1))
        engine.submit_step()
        assert started.wait(timeout=5.0)

        engine._queue.append(make_check(step=2))
        second = threading.Thread(target=engine.submit_step)
        second.start()
        second.join(timeout=0.25)
        # The bound is respected: the second submit is blocked, the queue of
        # in-flight steps has not grown.
        assert second.is_alive()
        assert engine.pending_steps == 1

        release.set()
        second.join(timeout=10.0)
        assert not second.is_alive()
        outcomes = engine.drain()
        assert len(outcomes) == 2
        assert engine.pending_steps == 0
        engine.close()

    def test_worker_exception_propagates_at_drain(self):
        engine = ProtectionEngine(asynchronous=True, max_pending_steps=2)
        original = engine._process_batch
        engine._process_batch = lambda epoch, items: (_ for _ in ()).throw(
            ValueError("verification worker exploded")
        )
        engine._queue.append(make_check())
        engine.submit_step()
        with pytest.raises(ValueError, match="verification worker exploded"):
            engine.drain()
        # The failure is delivered once; the engine is usable afterwards.
        assert engine.drain() == []
        engine._process_batch = original
        engine._queue.append(make_check())
        engine.submit_step()
        outcomes = engine.drain()
        assert len(outcomes) == 1 and outcomes[0].report.detected == 0
        engine.close()

    def test_worker_exception_propagates_at_harvest(self):
        checker = ATTNChecker(ATTNCheckerConfig(async_verification=True))
        engine = checker.engine
        engine._process_batch = lambda epoch, items: (_ for _ in ()).throw(
            RuntimeError("boom")
        )
        engine._queue.append(make_check())
        engine.submit_step()
        deadline = time.monotonic() + 10.0
        while engine.pending_steps and time.monotonic() < deadline:
            time.sleep(0.01)
        with pytest.raises(RuntimeError, match="boom"):
            checker.end_step()  # harvest is a drain point too
        checker.close()

    def test_close_with_inflight_batches_is_graceful(self):
        # close() must verify already-submitted batches before the worker
        # exits: their outcomes stay harvestable and a later drain() returns
        # instead of hanging on stranded in-flight accounting.
        engine = ProtectionEngine(asynchronous=True, max_pending_steps=4)
        release = threading.Event()
        original = engine._process_batch

        def gated(epoch, items):
            assert release.wait(timeout=10.0)
            return original(epoch, items)

        engine._process_batch = gated
        for step in (1, 2, 3):
            engine._queue.append(make_check(step=step))
            engine.submit_step()
        closer = threading.Thread(target=engine.close)
        closer.start()
        release.set()
        closer.join(timeout=10.0)
        assert not closer.is_alive()
        assert engine.pending_steps == 0
        outcomes = engine.drain()  # completes immediately, nothing stranded
        assert len(outcomes) == 3

    def test_pending_failure_raises_at_submit(self):
        engine = ProtectionEngine(asynchronous=True, max_pending_steps=2)
        engine._process_batch = lambda epoch, items: (_ for _ in ()).throw(
            ValueError("bad batch")
        )
        engine._queue.append(make_check())
        engine.submit_step()
        deadline = time.monotonic() + 10.0
        while engine.pending_steps and time.monotonic() < deadline:
            time.sleep(0.01)
        engine._queue.append(make_check(step=2))
        with pytest.raises(ValueError, match="bad batch"):
            engine.submit_step()
        # Delivered once: the engine is clean again afterwards.
        assert engine.drain() == []
        engine.close()

    def test_reset_joins_worker_cleanly(self):
        engine = ProtectionEngine(asynchronous=True, max_pending_steps=2)
        engine._queue.append(make_check())
        engine.submit_step()
        engine.reset()
        assert engine._worker is None
        assert engine.pending_steps == 0
        assert engine.pending_verifications == 0
        # The engine restarts a fresh worker on the next submit.
        engine._queue.append(make_check())
        engine.submit_step()
        assert len(engine.drain()) == 1
        engine.close()

    def test_checker_reset_stats_joins_worker(self, rng):
        scenario = random_scenario(0)
        checker = ATTNChecker(ATTNCheckerConfig(async_verification=True))
        attention = MultiHeadAttention(
            hidden_size=scenario["hidden"], num_heads=scenario["heads"],
            dropout_p=0.0, rng=rng,
        )
        attention.eval()
        attention.set_hooks(checker)
        attention(Tensor(np.random.default_rng(1).normal(
            size=(1, 4, scenario["hidden"]))))
        attention.set_hooks(None)
        checker.end_step()
        checker.reset_stats()
        assert checker.engine._worker is None
        assert checker.pending_verifications == 0
        assert checker.stats.total_checks == 0

    def test_flush_is_a_barrier_in_async_mode(self):
        engine = ProtectionEngine(asynchronous=True)
        engine._queue.append(make_check())
        outcomes = engine.flush()
        assert len(outcomes) == 1
        assert engine.pending_steps == 0
        engine.close()


# ---------------------------------------------------------------------------
# Configuration guards and dispatch accounting
# ---------------------------------------------------------------------------

class TestConfigGuards:
    def test_async_requires_fused_backend(self):
        with pytest.raises(ValueError, match="fused"):
            ATTNCheckerConfig(backend="per_gemm", async_verification=True)

    def test_async_and_deferred_mutually_exclusive(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            ATTNCheckerConfig(defer_verification=True, async_verification=True)

    @pytest.mark.parametrize("bad", [0, -1, 1.5])
    def test_max_pending_steps_must_be_positive_integer(self, bad):
        with pytest.raises(ValueError, match="max_pending_steps"):
            ATTNCheckerConfig(async_verification=True, max_pending_steps=bad)

    def test_verification_mode_property(self):
        assert ATTNCheckerConfig().verification_mode == "immediate"
        assert ATTNCheckerConfig(defer_verification=True).verification_mode == "deferred"
        assert ATTNCheckerConfig(async_verification=True).verification_mode == "async"
        assert ATTNChecker(ATTNCheckerConfig(async_verification=True)).verification_mode == "async"

    def test_engine_rejects_conflicting_modes(self):
        with pytest.raises(ValueError):
            ProtectionEngine(deferred=True, asynchronous=True)
        with pytest.raises(ValueError):
            ProtectionEngine(asynchronous=True, max_pending_steps=0)

    def test_submit_step_requires_async_mode(self):
        with pytest.raises(RuntimeError):
            ProtectionEngine(deferred=True).submit_step()


class TestDispatchAccounting:
    def test_verification_dispatches_per_mode(self):
        assert SectionCostModel.verification_dispatches_per_step("immediate", 12) == {
            "critical_path": 36, "off_critical_path": 0,
        }
        assert SectionCostModel.verification_dispatches_per_step("deferred", 12) == {
            "critical_path": 3, "off_critical_path": 0,
        }
        assert SectionCostModel.verification_dispatches_per_step("async", 12) == {
            "critical_path": 0, "off_critical_path": 3,
        }

    def test_invalid_inputs_rejected(self):
        with pytest.raises(KeyError):
            SectionCostModel.verification_dispatches_per_step("lazy", 2)
        with pytest.raises(ValueError):
            SectionCostModel.verification_dispatches_per_step("async", 0)

"""Unit tests for the reverse-mode autograd engine."""

import numpy as np
import pytest

from repro.tensor import autograd as ag
from repro.tensor.autograd import Tensor


@pytest.fixture
def rng():
    return np.random.default_rng(42)


def numerical_grad(fn, tensor, index, eps=1e-6):
    """Central-difference numerical gradient of a scalar-valued fn."""
    original = tensor.data[index]
    tensor.data[index] = original + eps
    plus = fn()
    tensor.data[index] = original - eps
    minus = fn()
    tensor.data[index] = original
    return (plus - minus) / (2 * eps)


class TestTensorBasics:
    def test_wraps_and_casts_to_float(self):
        t = Tensor(np.array([1, 2, 3]))
        assert np.issubdtype(t.dtype, np.floating)

    def test_shape_and_size(self, rng):
        t = Tensor(rng.normal(size=(2, 3)))
        assert t.shape == (2, 3) and t.size == 6 and t.ndim == 2

    def test_detach_cuts_graph(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        b = (a * 2.0).detach()
        assert not b.requires_grad

    def test_backward_shape_mismatch_raises(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        b = a * 2.0
        with pytest.raises(ValueError):
            b.backward(np.ones((4,)))

    def test_gradient_accumulates(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        (a * 1.0).sum().backward()
        (a * 1.0).sum().backward()
        assert np.allclose(a.grad, 2.0)

    def test_zero_grad(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        (a * 1.0).sum().backward()
        a.zero_grad()
        assert a.grad is None


class TestNoGrad:
    def test_no_grad_disables_graph(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        with ag.no_grad():
            b = a * 2.0
        assert not b.requires_grad
        assert ag.is_grad_enabled()

    def test_nested_restores_state(self):
        with ag.no_grad():
            with ag.no_grad():
                assert not ag.is_grad_enabled()
            assert not ag.is_grad_enabled()
        assert ag.is_grad_enabled()


class TestArithmeticGradients:
    @pytest.mark.parametrize("op", ["add", "sub", "mul", "div"])
    def test_binary_ops_numerical(self, rng, op):
        a = Tensor(rng.normal(size=(3, 4)) + 2.0, requires_grad=True)
        b = Tensor(rng.normal(size=(3, 4)) + 2.0, requires_grad=True)
        func = getattr(ag, op)

        def loss_fn():
            return float(func(a, b).data.sum())

        out = func(a, b)
        out.backward(np.ones_like(out.data))
        idx = (1, 2)
        assert a.grad[idx] == pytest.approx(numerical_grad(loss_fn, a, idx), rel=1e-4, abs=1e-6)
        assert b.grad[idx] == pytest.approx(numerical_grad(loss_fn, b, idx), rel=1e-4, abs=1e-6)

    def test_broadcast_bias_gradient(self, rng):
        x = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        bias = Tensor(rng.normal(size=(5,)), requires_grad=True)
        out = ag.add(x, bias)
        out.backward(np.ones_like(out.data))
        assert bias.grad.shape == (5,)
        assert np.allclose(bias.grad, 4.0)

    def test_neg_and_rsub(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        out = (1.0 - a) + (-a)
        out.sum().backward()
        assert np.allclose(a.grad, -2.0)

    def test_operator_overloads_match_functions(self, rng):
        a = Tensor(rng.normal(size=(2, 2)))
        b = Tensor(rng.normal(size=(2, 2)))
        assert np.allclose((a + b).data, ag.add(a, b).data)
        assert np.allclose((a * b).data, ag.mul(a, b).data)
        assert np.allclose((a - b).data, ag.sub(a, b).data)
        assert np.allclose((a / (b + 10.0)).data, ag.div(a, ag.add(b, 10.0)).data)
        assert np.allclose((a @ b).data, ag.matmul(a, b).data)


class TestMatmul:
    def test_batched_gradients_numerical(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 5)), requires_grad=True)

        def loss_fn():
            return float((ag.matmul(a, b).data ** 2).sum())

        out = ag.matmul(a, b)
        (out * out).sum().backward()
        for tensor, idx in [(a, (1, 2, 3)), (b, (2, 4))]:
            assert tensor.grad[idx] == pytest.approx(numerical_grad(loss_fn, tensor, idx), rel=1e-4, abs=1e-6)

    def test_forward_hook_modifies_output_only(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        captured = {}

        def hook(out):
            captured["raw"] = out.copy()
            out[0, 0] = 99.0
            return out

        out = ag.matmul(a, b, forward_hook=hook)
        assert out.data[0, 0] == 99.0
        # Backward gradients are computed from the inputs, unaffected by the hook.
        out.sum().backward()
        expected_grad_a = np.ones((3, 2)) @ b.data.T
        assert np.allclose(a.grad, expected_grad_a)

    def test_name_is_recorded(self, rng):
        out = ag.matmul(Tensor(rng.normal(size=(2, 2))), Tensor(rng.normal(size=(2, 2))), name="AS")
        assert out.name == "AS"


class TestSoftmaxAndActivations:
    @pytest.mark.parametrize("fn", [ag.softmax, ag.log_softmax, ag.gelu, ag.relu, ag.tanh])
    def test_gradients_numerical(self, rng, fn):
        x = Tensor(rng.normal(size=(3, 5)), requires_grad=True)
        weights = rng.normal(size=(3, 5))

        def loss_fn():
            return float((fn(Tensor(x.data)).data * weights).sum())

        out = fn(x)
        out.backward(weights)
        idx = (2, 3)
        assert x.grad[idx] == pytest.approx(numerical_grad(loss_fn, x, idx), rel=2e-3, abs=1e-6)


class TestLayerNormDropoutEmbedding:
    def test_layer_norm_gradients(self, rng):
        x = Tensor(rng.normal(size=(2, 6)), requires_grad=True)
        gamma = Tensor(np.ones(6), requires_grad=True)
        beta = Tensor(np.zeros(6), requires_grad=True)
        weights = rng.normal(size=(2, 6))

        def loss_fn():
            return float((ag.layer_norm(Tensor(x.data), Tensor(gamma.data), Tensor(beta.data)).data * weights).sum())

        ag.layer_norm(x, gamma, beta).backward(weights)
        idx = (1, 3)
        assert x.grad[idx] == pytest.approx(numerical_grad(loss_fn, x, idx), rel=2e-3, abs=1e-6)
        assert gamma.grad[2] == pytest.approx(numerical_grad(loss_fn, gamma, (2,)), rel=2e-3, abs=1e-6)

    def test_dropout_eval_is_identity(self, rng):
        x = Tensor(rng.normal(size=(4, 4)), requires_grad=True)
        out = ag.dropout(x, 0.5, rng, training=False)
        assert out is x

    def test_dropout_train_masks_and_scales(self, rng):
        x = Tensor(np.ones((100, 100)), requires_grad=True)
        out = ag.dropout(x, 0.5, rng, training=True)
        unique = set(np.unique(out.data))
        assert unique.issubset({0.0, 2.0})
        out.sum().backward()
        assert set(np.unique(x.grad)).issubset({0.0, 2.0})

    def test_embedding_gradient_scatters(self, rng):
        weight = Tensor(rng.normal(size=(10, 4)), requires_grad=True)
        indices = np.array([[1, 1, 3]])
        out = ag.embedding(weight, indices)
        out.sum().backward()
        assert np.allclose(weight.grad[1], 2.0)
        assert np.allclose(weight.grad[3], 1.0)
        assert np.allclose(weight.grad[0], 0.0)


class TestShapeOps:
    def test_reshape_roundtrip_gradient(self, rng):
        x = Tensor(rng.normal(size=(2, 6)), requires_grad=True)
        out = ag.reshape(x, (3, 4))
        out.backward(np.ones((3, 4)))
        assert x.grad.shape == (2, 6)
        assert np.allclose(x.grad, 1.0)

    def test_transpose_gradient_permutes_back(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        out = ag.transpose(x, (2, 0, 1))
        grad = rng.normal(size=(4, 2, 3))
        out.backward(grad)
        assert np.allclose(x.grad, np.transpose(grad, (1, 2, 0)))

    def test_concat_gradient_splits(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 5)), requires_grad=True)
        out = ag.concat([a, b], axis=1)
        out.backward(np.ones((2, 8)))
        assert a.grad.shape == (2, 3) and b.grad.shape == (2, 5)

    def test_split_merge_heads_roundtrip(self, rng):
        x = Tensor(rng.normal(size=(2, 5, 8)), requires_grad=True)
        out = ag.merge_heads(ag.split_heads(x, 4))
        assert np.allclose(out.data, x.data)
        out.sum().backward()
        assert np.allclose(x.grad, 1.0)

    def test_split_heads_invalid_divisor_raises(self, rng):
        with pytest.raises(ValueError):
            ag.split_heads(Tensor(rng.normal(size=(1, 2, 7))), 4)


class TestReductionsAndLoss:
    def test_sum_axis_gradient(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        out = ag.sum(x, axis=0)
        out.backward(np.arange(4.0))
        assert np.allclose(x.grad, np.tile(np.arange(4.0), (3, 1)))

    def test_mean_gradient(self, rng):
        x = Tensor(rng.normal(size=(2, 5)), requires_grad=True)
        ag.mean(x).backward()
        assert np.allclose(x.grad, 0.1)

    def test_cross_entropy_gradient_numerical(self, rng):
        logits = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        labels = np.array([0, 1, 2, 1])

        def loss_fn():
            return float(ag.cross_entropy_loss(Tensor(logits.data), labels).data)

        ag.cross_entropy_loss(logits, labels).backward()
        idx = (2, 2)
        assert logits.grad[idx] == pytest.approx(numerical_grad(loss_fn, logits, idx), rel=1e-4, abs=1e-7)

    def test_loss_decreases_under_gradient_descent(self, rng):
        logits = Tensor(rng.normal(size=(8, 2)), requires_grad=True)
        labels = rng.integers(0, 2, size=8)
        losses = []
        for _ in range(20):
            logits.zero_grad()
            loss = ag.cross_entropy_loss(logits, labels)
            losses.append(float(loss.data))
            loss.backward()
            logits.data = logits.data - 1.0 * logits.grad
        assert losses[-1] < losses[0]

    def test_diamond_graph_accumulates_through_shared_node(self, rng):
        x = Tensor(rng.normal(size=(3,)), requires_grad=True)
        shared = x * 2.0
        out = (shared * 3.0 + shared * 4.0).sum()
        out.backward()
        assert np.allclose(x.grad, 2.0 * (3.0 + 4.0))


class TestPostAccumulateGradHooks:
    def test_hook_fires_once_per_backward_with_final_grad(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        seen = []
        a.register_post_accumulate_grad_hook(
            lambda t: seen.append(np.array(t.grad))
        )
        # Diamond graph: the leaf accumulates from two paths but the hook
        # must observe only the fully-accumulated gradient, exactly once.
        shared = a * 2.0
        (shared * 3.0 + shared * 4.0).sum().backward()
        assert len(seen) == 1
        assert np.allclose(seen[0], 14.0)

    def test_hook_fires_each_backward_call(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        count = [0]
        a.register_post_accumulate_grad_hook(lambda t: count.__setitem__(0, count[0] + 1))
        (a * 1.0).sum().backward()
        (a * 1.0).sum().backward()
        assert count[0] == 2

    def test_non_leaf_registration_rejected(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        b = a * 2.0
        with pytest.raises(ValueError, match="leaf"):
            b.register_post_accumulate_grad_hook(lambda t: None)

    def test_handle_remove_is_idempotent(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        fired = []
        handle = a.register_post_accumulate_grad_hook(lambda t: fired.append(1))
        handle.remove()
        handle.remove()
        (a * 1.0).sum().backward()
        assert fired == []

    def test_hooks_fire_before_backward_returns(self, rng):
        # The overlap machinery relies on hooks running inside backward so a
        # reduction can launch while later-layer grads are still propagating.
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        b = Tensor(rng.normal(size=(3,)), requires_grad=True)
        order = []
        a.register_post_accumulate_grad_hook(lambda t: order.append("a"))
        b.register_post_accumulate_grad_hook(lambda t: order.append("b"))
        (a * 2.0 + b * 3.0).sum().backward()
        assert sorted(order) == ["a", "b"]
        assert a.grad is not None and b.grad is not None

"""Deterministic random-number management.

All stochastic code paths in the library (weight initialisation, synthetic
data generation, dropout, fault-site selection) take an explicit
:class:`numpy.random.Generator`.  This module centralises how those
generators are created and split so experiments are exactly reproducible:
the same seed always produces the same training run, the same fault-injection
campaign and therefore the same benchmark tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

__all__ = ["new_rng", "spawn_rngs", "RandomState"]

DEFAULT_SEED = 0xA77C  # "ATTC"


def new_rng(seed: Optional[int] = None) -> np.random.Generator:
    """Create a fresh :class:`numpy.random.Generator` from ``seed``.

    ``None`` maps to the library-wide default seed so that *not* passing a
    seed still yields deterministic behaviour (important for tests).
    """
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def spawn_rngs(rng: np.random.Generator, n: int) -> List[np.random.Generator]:
    """Split ``rng`` into ``n`` statistically independent child generators.

    Uses the SeedSequence spawning protocol, so children never overlap no
    matter how many random numbers each consumes.
    """
    if n < 0:
        raise ValueError("cannot spawn a negative number of generators")
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


@dataclass
class RandomState:
    """A named registry of random streams.

    Different subsystems (``init``, ``data``, ``dropout``, ``faults``…) pull
    their own named stream so that changing how many random numbers one
    subsystem draws does not perturb the others — a property that keeps
    fault-injection campaigns comparable across code revisions.
    """

    seed: int = DEFAULT_SEED
    _streams: Dict[str, np.random.Generator] = field(default_factory=dict, repr=False)

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for stream ``name``."""
        if name not in self._streams:
            # Derive a per-stream seed from the base seed and the stream name
            # in a way that is stable across Python processes (no hash()).
            sub = np.random.SeedSequence([self.seed, _stable_name_key(name)])
            self._streams[name] = np.random.default_rng(sub)
        return self._streams[name]

    def reset(self) -> None:
        """Drop all derived streams; they will be re-created lazily."""
        self._streams.clear()


def _stable_name_key(name: str) -> int:
    """Map a stream name to a stable 63-bit integer (FNV-1a)."""
    h = 0xCBF29CE484222325
    for byte in name.encode("utf-8"):
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h & 0x7FFFFFFFFFFFFFFF

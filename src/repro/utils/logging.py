"""Library logger helpers.

The library never configures the root logger; it only creates namespaced
children under ``"repro"`` so applications embedding it keep full control of
log routing.  :func:`enable_console_logging` is a convenience for scripts and
benchmarks.
"""

from __future__ import annotations

import logging
from typing import Optional

__all__ = ["get_logger", "enable_console_logging"]

_ROOT_NAME = "repro"


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Return the library logger or a child of it.

    ``get_logger("core.abft")`` returns the logger ``repro.core.abft``.
    """
    if not name:
        return logging.getLogger(_ROOT_NAME)
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def enable_console_logging(level: int = logging.INFO) -> logging.Logger:
    """Attach a stream handler to the library logger (idempotent)."""
    logger = get_logger()
    logger.setLevel(level)
    if not any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
        )
        logger.addHandler(handler)
    return logger

"""Low-level utilities shared by every subsystem.

The utilities here are deliberately free of any dependency on the rest of the
package so that the numerical substrate, the fault injector and the ABFT core
can all import them without creating cycles.

Modules
-------
``floatbits``
    IEEE-754 bit-level views and exponent/mantissa bit flips used by the fault
    injector to produce INF / NaN / near-INF values the same way the paper
    does ("flipping the most significant bit of the selected element").
``rng``
    Deterministic random-number stream management.  Every stochastic component
    in the library receives an explicit :class:`numpy.random.Generator`.
``timing``
    Lightweight wall-clock timers and a hierarchical timing registry used by
    the CPU-side overhead measurements.
``logging``
    Library logger configuration helpers.
``versioning``
    The process-global weights-version counter that invalidates the fused
    checker's weight-derived encoding caches on optimizer steps and state
    loads.
"""

from repro.utils.floatbits import (
    EXPONENT_BITS,
    MANTISSA_BITS,
    bits_to_float,
    flip_bit,
    flip_exponent_msb,
    float_to_bits,
    is_extreme,
    make_inf,
    make_nan,
    make_near_inf,
)
from repro.utils.rng import RandomState, new_rng, spawn_rngs
from repro.utils.timing import Timer, TimingRegistry, timed
from repro.utils.versioning import bump_weights_version, weights_version

__all__ = [
    "bump_weights_version",
    "weights_version",
    "EXPONENT_BITS",
    "MANTISSA_BITS",
    "bits_to_float",
    "flip_bit",
    "flip_exponent_msb",
    "float_to_bits",
    "is_extreme",
    "make_inf",
    "make_nan",
    "make_near_inf",
    "RandomState",
    "new_rng",
    "spawn_rngs",
    "Timer",
    "TimingRegistry",
    "timed",
]

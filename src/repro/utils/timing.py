"""Wall-clock timing utilities.

The paper reports ABFT overhead as a ratio between a protected and an
unprotected execution of the same computation.  On the CPU-side reproduction
we measure both with :class:`Timer` / :class:`TimingRegistry`; the modelled
A100 numbers come from :mod:`repro.perfmodel` instead.
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

__all__ = ["XFER_H2D", "XFER_D2H", "XFER_PREFIX", "Timer", "TimingRegistry", "timed"]

#: Timer key for host-to-device (adoption) copies of checker inputs — time a
#: pinned ProtectionEngine spends importing section arrays produced by a
#: different array library.  Zero on the pure-NumPy path.
XFER_H2D = "xfer/h2d"
#: Timer key for device-to-host (export / write-back) copies of repaired data.
XFER_D2H = "xfer/d2h"
#: Common prefix of the transfer keys, for ``TimingRegistry.total(prefix=...)``
#: aggregation — the "copy overhead" line of the Figure-7 style splits.
XFER_PREFIX = "xfer/"


@dataclass
class Timer:
    """A simple start/stop wall-clock timer accumulating elapsed seconds."""

    elapsed: float = 0.0
    count: int = 0
    _start: Optional[float] = field(default=None, repr=False)

    def start(self) -> "Timer":
        if self._start is not None:
            raise RuntimeError("timer already running")
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("timer not running")
        delta = time.perf_counter() - self._start
        self._start = None
        self.elapsed += delta
        self.count += 1
        return delta

    def reset(self) -> None:
        self.elapsed = 0.0
        self.count = 0
        self._start = None

    @property
    def mean(self) -> float:
        """Mean elapsed time per start/stop pair (0.0 if never stopped)."""
        return self.elapsed / self.count if self.count else 0.0

    @contextmanager
    def measure(self) -> Iterator["Timer"]:
        self.start()
        try:
            yield self
        finally:
            self.stop()


class TimingRegistry:
    """A named collection of timers with hierarchical keys.

    Keys are free-form strings; by convention the library uses
    ``"attention/forward"``, ``"abft/encode"``, ``"abft/detect"`` and so on,
    which lets overhead reports aggregate by prefix.

    The registry itself is thread-safe: the key-to-timer map is guarded by a
    lock so an asynchronous verification worker can record under its own keys
    (``"async/..."``) while the training thread records and aggregates.
    Individual :class:`Timer` objects are *not* locked — the library's
    convention is that each key is only ever measured from one thread.
    """

    def __init__(self) -> None:
        self._timers: Dict[str, Timer] = defaultdict(Timer)
        self._lock = threading.Lock()

    def timer(self, key: str) -> Timer:
        with self._lock:
            return self._timers[key]

    @contextmanager
    def measure(self, key: str) -> Iterator[Timer]:
        with self.timer(key).measure() as t:
            yield t

    def elapsed(self, key: str) -> float:
        with self._lock:
            return self._timers[key].elapsed if key in self._timers else 0.0

    def add(self, key: str, seconds: float, count: int = 1) -> None:
        """Fold an externally measured duration into ``key``'s timer.

        Unlike :meth:`measure`, the accumulation happens under the registry
        lock, so many threads may feed the *same* key — this is how the
        data-parallel trainer folds per-rank ``comm/*`` durations measured
        inside worker threads into one shared registry.
        """
        with self._lock:
            timer = self._timers[key]
            timer.elapsed += float(seconds)
            timer.count += int(count)

    def total(self, prefix: str = "", exclude: Optional[str] = None) -> float:
        """Sum of elapsed time over keys starting with ``prefix``.

        ``exclude`` drops keys starting with that prefix, in the same locked
        pass — e.g. ``total(exclude="async/")`` is the critical-path time of a
        checker whose verification worker records under ``"async/"`` keys.
        """
        with self._lock:
            return sum(
                t.elapsed
                for k, t in self._timers.items()
                if k.startswith(prefix) and (exclude is None or not k.startswith(exclude))
            )

    def keys(self) -> List[str]:
        with self._lock:
            return sorted(self._timers)

    def reset(self) -> None:
        with self._lock:
            self._timers.clear()

    def as_dict(self) -> Dict[str, float]:
        with self._lock:
            return {k: t.elapsed for k, t in sorted(self._timers.items())}

    def report(self) -> str:
        """Human-readable multi-line report, longest timers first."""
        with self._lock:
            rows = sorted(self._timers.items(), key=lambda kv: -kv[1].elapsed)
        lines = [f"{'key':<40} {'calls':>8} {'total (s)':>12} {'mean (ms)':>12}"]
        for key, t in rows:
            lines.append(f"{key:<40} {t.count:>8d} {t.elapsed:>12.6f} {t.mean * 1e3:>12.4f}")
        return "\n".join(lines)


@contextmanager
def timed() -> Iterator[Timer]:
    """Context manager yielding a one-shot :class:`Timer`."""
    t = Timer()
    with t.measure():
        yield t

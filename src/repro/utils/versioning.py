"""Global weights-version counter for weight-derived checksum caches.

The fused :class:`repro.core.engine.ProtectionEngine` caches encodings that
are pure functions of model weights (the per-head row checksums of ``W_V``,
the concatenated ``[W_Q | W_K]`` sibling-GEMM operand, bias adjustment
terms).  Those caches are only valid while the weights they were derived
from are unchanged, so every code path that mutates model weights bumps this
process-global monotonic counter:

* :meth:`repro.training.optimizer.SGD.step` / ``AdamW.step`` — after an
  optimizer update;
* :meth:`repro.nn.module.Module.load_state_dict` — after loading a
  checkpoint or a stale-rollback snapshot.

Cache entries record the version they were built at and are rebuilt on the
next lookup after any bump.  Entries additionally pin the *identity* of
their source arrays, so even a weight swap that nobody announced (a test
rebinding ``param.data`` by hand) cannot serve a stale encoding; the
version counter exists for the one case identity cannot see — *in-place*
mutation of a weight buffer.  Code that edits weight storage in place
outside the two paths above must call :func:`bump_weights_version` (or
:meth:`repro.core.attention_checker.ATTNChecker.invalidate_weight_cache`)
itself.

The counter is process-global rather than per-model, and a bump invalidates
*every* cached encoding — deliberately: treating an identity match as
grounds to keep an entry across a version bump would make the counter blind
to exactly the in-place mutations it exists to catch.  The cost of the
conservative choice is that two models training in one process re-derive
each other's weight encodings after every step; a missed invalidation, by
contrast, would silently verify against stale checksums.
"""

from __future__ import annotations

import threading

__all__ = ["weights_version", "bump_weights_version"]

_lock = threading.Lock()
_version = 0


def weights_version() -> int:
    """The current global weights version (monotonic, starts at 0)."""
    return _version


def bump_weights_version() -> int:
    """Invalidate every weight-derived checksum cache; returns the new version."""
    global _version
    with _lock:
        _version += 1
        return _version

"""IEEE-754 bit manipulation helpers.

The ATTNChecker paper injects near-INF errors "by flipping the most
significant bit of the [exponent of the] selected element" and injects INF and
NaN "via assignments" (Section 5.1, *Fault Injection*).  This module provides
the exact bit-level machinery to do both.

Two families of helpers coexist:

* the host-side scalar/array functions (``flip_bit``, ``make_near_inf``, ...)
  operate on NumPy data with vectorised bit views, so fault-injection
  campaigns over millions of elements remain fast;
* :func:`flip_exponent_msb_inplace` is **backend-generic**: it reinterprets
  one element of any registered backend's buffer (NumPy, CuPy, Torch) as a
  same-width integer via :meth:`repro.backend.ArrayBackend.uint_view` and
  XORs the exponent MSB *in place* — a device-resident matrix is corrupted
  without ever copying it to the host, mirroring a transient fault striking
  GPU memory.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

__all__ = [
    "EXPONENT_BITS",
    "FLIP_KINDS",
    "MANTISSA_BITS",
    "NEAR_INF_MINIMUM_MAGNITUDE",
    "near_inf_fallback",
    "float_to_bits",
    "bits_to_float",
    "apply_flip_kind",
    "flip_bit",
    "flip_adjacent_double_bit",
    "flip_exponent_msb",
    "flip_exponent_msb_inplace",
    "flip_mantissa_lsb",
    "make_inf",
    "make_nan",
    "make_near_inf",
    "is_extreme",
    "classify_value",
]

#: Number of exponent bits per IEEE-754 format.
EXPONENT_BITS = {np.dtype(np.float32): 8, np.dtype(np.float64): 11}
#: Number of mantissa (fraction) bits per IEEE-754 format.
MANTISSA_BITS = {np.dtype(np.float32): 23, np.dtype(np.float64): 52}

_UINT_FOR = {np.dtype(np.float32): np.uint32, np.dtype(np.float64): np.uint64}

#: Magnitude floor below which an exponent flip does not count as a genuine
#: near-INF fault (matches the paper's T_near-INF default); shared by
#: :func:`make_near_inf` and the injector's in-place flip path so the two
#: stay value-equivalent by construction.
NEAR_INF_MINIMUM_MAGNITUDE = 1e10

ArrayLike = Union[float, np.ndarray]


def near_inf_fallback(dtype: np.dtype) -> float:
    """Representative near-INF magnitude injected when the exponent flip
    shrank the value instead (original exponent MSB already set)."""
    return float(np.finfo(np.dtype(dtype)).max / 16.0)


def _uint_dtype(dtype: np.dtype) -> np.dtype:
    """Return the unsigned integer dtype with the same width as ``dtype``."""
    dtype = np.dtype(dtype)
    if dtype not in _UINT_FOR:
        raise TypeError(f"unsupported floating dtype: {dtype!r}")
    return np.dtype(_UINT_FOR[dtype])


def float_to_bits(x: ArrayLike, dtype: np.dtype = np.float32) -> np.ndarray:
    """View floating-point data as its raw unsigned-integer bit pattern.

    Parameters
    ----------
    x:
        Scalar or array of floating point values.
    dtype:
        The floating dtype whose bit layout should be used when ``x`` is a
        Python scalar.  Ignored when ``x`` is already a NumPy array.

    Returns
    -------
    numpy.ndarray
        Array of ``uint32`` / ``uint64`` bit patterns with the same shape.
    """
    arr = np.asarray(x, dtype=dtype) if not isinstance(x, np.ndarray) else x
    if arr.dtype not in _UINT_FOR:
        arr = arr.astype(np.float32)
    return arr.view(_uint_dtype(arr.dtype)).copy()


def bits_to_float(bits: np.ndarray, dtype: np.dtype = np.float32) -> np.ndarray:
    """Inverse of :func:`float_to_bits`."""
    bits = np.asarray(bits)
    dtype = np.dtype(dtype)
    expected = _uint_dtype(dtype)
    if bits.dtype != expected:
        bits = bits.astype(expected)
    return bits.view(dtype).copy()


def flip_bit(x: ArrayLike, bit: int, dtype: np.dtype = np.float32) -> np.ndarray:
    """Flip bit ``bit`` (0 = least-significant) of every element of ``x``.

    This models a single transient bit-flip in a register or ALU output.
    """
    arr = np.asarray(x, dtype=dtype) if not isinstance(x, np.ndarray) else np.asarray(x)
    if arr.dtype not in _UINT_FOR:
        arr = arr.astype(dtype)
    nbits = arr.dtype.itemsize * 8
    if not 0 <= bit < nbits:
        raise ValueError(f"bit index {bit} out of range for {arr.dtype} ({nbits} bits)")
    bits = arr.view(_uint_dtype(arr.dtype)).copy()
    mask = np.array(1, dtype=bits.dtype) << np.array(bit, dtype=bits.dtype)
    bits ^= mask
    return bits.view(arr.dtype).copy()


def flip_exponent_msb(x: ArrayLike, dtype: np.dtype = np.float32) -> np.ndarray:
    """Flip the most-significant *exponent* bit of every element.

    For values of "normal" magnitude (|x| roughly in ``[1e-4, 1e4]``) this
    produces an extremely large number (near-INF) because the biased exponent
    jumps by half of its range.  This mirrors exactly how the paper generates
    near-INF faults.
    """
    arr = np.asarray(x, dtype=dtype) if not isinstance(x, np.ndarray) else np.asarray(x)
    if arr.dtype not in _UINT_FOR:
        arr = arr.astype(dtype)
    exp_bits = EXPONENT_BITS[arr.dtype]
    man_bits = MANTISSA_BITS[arr.dtype]
    # Exponent occupies bits [man_bits, man_bits + exp_bits); its MSB is the
    # highest of those, i.e. bit index man_bits + exp_bits - 1.
    return flip_bit(arr, man_bits + exp_bits - 1, dtype=arr.dtype)


def flip_mantissa_lsb(x: ArrayLike, dtype: np.dtype = np.float32) -> np.ndarray:
    """Flip the least-significant *mantissa* bit of every element.

    The opposite end of the severity spectrum from the exponent-MSB flip:
    the value changes by one unit in the last place, a perturbation that is
    numerically negligible and — per the "Why Attention Fails" taxonomy —
    almost always benign.  Campaigns use it to exercise the benign-fault
    accounting rather than the detection path.
    """
    arr = np.asarray(x, dtype=dtype) if not isinstance(x, np.ndarray) else np.asarray(x)
    if arr.dtype not in _UINT_FOR:
        arr = arr.astype(dtype)
    return flip_bit(arr, 0, dtype=arr.dtype)


def flip_adjacent_double_bit(x: ArrayLike, dtype: np.dtype = np.float32) -> np.ndarray:
    """Flip the exponent MSB *and* its adjacent lower exponent bit.

    Models a multi-bit upset (MBU) striking two physically adjacent cells —
    the dominant multi-bit pattern in the ECC literature.  Both flipped bits
    sit in the exponent, so the corrupted value is typically as extreme as a
    single exponent-MSB flip, but the bit pattern differs (the two flips can
    partially compensate, landing anywhere from moderately to extremely
    wrong).
    """
    arr = np.asarray(x, dtype=dtype) if not isinstance(x, np.ndarray) else np.asarray(x)
    if arr.dtype not in _UINT_FOR:
        arr = arr.astype(dtype)
    exp_bits = EXPONENT_BITS[arr.dtype]
    man_bits = MANTISSA_BITS[arr.dtype]
    msb = man_bits + exp_bits - 1
    return flip_bit(flip_bit(arr, msb, dtype=arr.dtype), msb - 1, dtype=arr.dtype)


#: Bit-level corruption mechanisms the fault injector supports.  The first is
#: the paper's fault model (exponent-MSB flip, producing near-INF values);
#: the rest widen the taxonomy per "Why Attention Fails" and the ECC MBU
#: patterns: a benign single-bit upset in the mantissa LSB, an adjacent
#: double-bit upset across the top two exponent bits, and a stuck-at-zero
#: cell that erases the value entirely.
FLIP_KINDS: Tuple[str, ...] = (
    "exponent_msb",
    "mantissa_lsb",
    "adjacent_double_bit",
    "stuck_zero",
)


def apply_flip_kind(kind: str, x: ArrayLike, dtype: np.dtype = np.float32) -> np.ndarray:
    """Corrupt ``x`` with the bit-level mechanism named by ``kind``.

    Dispatch table over :data:`FLIP_KINDS`; ``"stuck_zero"`` returns zeros of
    the requested dtype (a stuck-at-0 storage cell), the others are genuine
    XOR bit flips.  Scalar in, scalar out; array in, array out.
    """
    if kind == "exponent_msb":
        return flip_exponent_msb(x, dtype=dtype)
    if kind == "mantissa_lsb":
        return flip_mantissa_lsb(x, dtype=dtype)
    if kind == "adjacent_double_bit":
        return flip_adjacent_double_bit(x, dtype=dtype)
    if kind == "stuck_zero":
        arr = np.asarray(x, dtype=dtype) if not isinstance(x, np.ndarray) else np.asarray(x)
        if arr.dtype not in _UINT_FOR:
            arr = arr.astype(dtype)
        return np.zeros_like(arr)
    raise KeyError(f"unknown flip kind {kind!r}; expected one of {FLIP_KINDS}")


def flip_exponent_msb_inplace(
    array,
    position: Tuple[int, ...],
    backend=None,
) -> None:
    """Flip the exponent MSB of ``array[position]`` in place, on any backend.

    The buffer is reinterpreted through the owning backend's same-width
    integer view (:meth:`repro.backend.ArrayBackend.uint_view`) and a single
    element is XORed — no host copy, no dtype round-trip.  For a
    device-resident array this is the faithful analogue of a transient bit
    flip in GPU memory; for NumPy it produces bit-identical results to
    assigning :func:`flip_exponent_msb` of the element.

    ``backend`` defaults to :func:`repro.backend.backend_of` of the array.
    Raises :class:`TypeError` for dtypes without an IEEE-754 exponent map.
    """
    from repro.backend import backend_of  # local import: utils stay light

    bk = backend if backend is not None else backend_of(array)
    dtype = bk.dtype_of(array)
    if dtype not in EXPONENT_BITS:
        raise TypeError(f"unsupported floating dtype for in-place flip: {dtype!r}")
    bit = MANTISSA_BITS[dtype] + EXPONENT_BITS[dtype] - 1
    bits = bk.uint_view(array)
    # A plain Python-int mask XORs correctly against signed (Torch) and
    # unsigned (NumPy/CuPy) views on any device.  The exponent MSB is never
    # the sign bit, so the mask always fits the signed range.
    bits[position] = bits[position] ^ (1 << bit)


def make_inf(sign: int = 1, dtype: np.dtype = np.float32) -> float:
    """Return +inf or -inf in the requested dtype."""
    value = np.inf if sign >= 0 else -np.inf
    return np.dtype(dtype).type(value)


def make_nan(dtype: np.dtype = np.float32) -> float:
    """Return a quiet NaN in the requested dtype."""
    return np.dtype(dtype).type(np.nan)


def make_near_inf(
    base: ArrayLike = 1.0,
    dtype: np.dtype = np.float32,
    minimum_magnitude: float = NEAR_INF_MINIMUM_MAGNITUDE,
) -> np.ndarray:
    """Produce a finite but extremely large value from ``base``.

    The value is obtained with an exponent-MSB flip (the paper's method).  If
    the flip happens to *shrink* the value (possible when the original
    exponent MSB was already set) or does not exceed ``minimum_magnitude``,
    we fall back to scaling the magnitude up to a representative near-INF
    value so that campaigns always inject a genuinely extreme-but-finite
    number.
    """
    flipped = flip_exponent_msb(base, dtype=dtype)
    flipped = np.asarray(flipped, dtype=dtype)
    fallback = np.dtype(dtype).type(near_inf_fallback(dtype))
    bad = ~np.isfinite(flipped) | (np.abs(flipped) < minimum_magnitude)
    out = np.where(bad, np.sign(np.asarray(base, dtype=dtype)) * fallback, flipped)
    out = np.where(out == 0, fallback, out)
    if np.ndim(base) == 0:
        return np.dtype(dtype).type(out)
    return out.astype(dtype)


def is_extreme(x: ArrayLike, near_inf_threshold: float = 1e10) -> np.ndarray:
    """Boolean mask of elements that are INF, NaN, or near-INF.

    ``near_inf_threshold`` matches the paper's default T_near-INF = 1e10.
    """
    arr = np.asarray(x)
    return ~np.isfinite(arr) | (np.abs(arr) > near_inf_threshold)


def classify_value(x: float, near_inf_threshold: float = 1e10) -> str:
    """Classify a scalar as ``'inf'``, ``'nan'``, ``'near_inf'`` or ``'normal'``.

    Used by the propagation tracer when building Table-2 style reports.
    """
    if np.isnan(x):
        return "nan"
    if np.isinf(x):
        return "inf"
    if abs(x) > near_inf_threshold:
        return "near_inf"
    return "normal"

"""Batched protected-inference serving engine.

Scheduling is static left-padded batching: requests are admitted in arrival
order into batches of ``max_batch_size``, each batch runs one prefill over
the padded prompts and then decodes greedily (argmax over the model's
``score`` head) until every member's generation budget is spent.  Left
padding keeps the last position of the padded layout a *real* token for every
request, so one logits slice serves the whole batch.

Protection is per-request: after every prefill/decode step the engine drains
the attached :class:`~repro.core.ATTNChecker`'s recent section outcomes and
reads their ``request_dirty`` masks (the per-request fault attribution the
``ProtectionEngine`` computes from the detected/aborted vectors of each
boundary check).  A dirty request whose boundary was fully corrected is
counted ``repaired`` and keeps decoding; one with uncorrectable damage (or
non-finite logits, which would poison the argmax) is *evicted* and its
outputs discarded, so batch-mates are unaffected.

Dead slots do not keep stepping: the decode loop *compacts* the physical
batch down to the slots that still produce tokens (``slot_map`` tracks
physical → original indices), which is sound because the KV checksum
side-state is per-slot-independent — ``cs_x`` and ``cs_v_row`` never mix
batch rows, so :meth:`~repro.nn.attention.LayerKVCache.compact` slices them
together with K/V.  The physical batch is floored at two slots (a
single-row GEMM takes the gemv path, whose low bits can differ from the
batched rows — the surviving request's token stream must stay bitwise
identical to its full-batch run), padding with a completed slot in
preference to an evicted one.  Compaction is disabled under async
verification, whose late-draining dirty masks carry historical batch
widths that could no longer be attributed to slots.  The decode loop also
exits as soon as no slot is active, so decode cost tracks live requests —
``decode_steps`` / ``decode_slot_steps`` on the report counter-verify both
effects.

Timer keys (see the README glossary): ``serve/schedule`` (padding + cache
allocation), ``serve/prefill``, ``serve/decode`` and ``serve/verify`` (the
outcome drain / eviction bookkeeping).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.core.attention_checker import ATTNChecker
from repro.faults.injector import FaultInjector
from repro.serving.workload import PAD_TOKEN_ID, ServingRequest
from repro.utils.timing import TimingRegistry

__all__ = ["ServingConfig", "RequestResult", "ServingReport", "ServingEngine"]


@dataclass
class ServingConfig:
    """Knobs of the serving engine.

    Attributes
    ----------
    max_batch_size:
        Requests admitted per batch (static batching).
    evict_uncorrected:
        Evict a request whose boundary check detected damage the corrector
        could not fully repair (aborted vectors, or corrected < detected).
        When ``False`` such requests are only counted, mirroring a
        detection-only deployment.
    """

    max_batch_size: int = 4
    evict_uncorrected: bool = True

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {self.max_batch_size}")


@dataclass
class RequestResult:
    """Outcome of one served request."""

    request_id: int
    status: str  # "completed" | "evicted"
    tokens: List[int] = field(default_factory=list)
    latency_seconds: float = 0.0
    #: Boundary checks that flagged this request dirty and were fully
    #: repaired in place (the request kept decoding).
    repaired_detections: int = 0

    @property
    def num_tokens(self) -> int:
        return len(self.tokens)


@dataclass
class ServingReport:
    """Aggregate serving metrics, JSON-serialisable for the benchmark gate."""

    protection: bool
    results: List[RequestResult]
    wall_seconds: float
    timer_seconds: Dict[str, float]
    checker_stats: Dict[str, int]
    #: Decode-loop iterations across all batches of the run.
    decode_steps: int = 0
    #: Physical slots stepped, summed over decode iterations — with slot
    #: compaction this tracks live requests rather than batch size x budget.
    decode_slot_steps: int = 0

    @property
    def num_completed(self) -> int:
        return sum(1 for r in self.results if r.status == "completed")

    @property
    def num_evicted(self) -> int:
        return sum(1 for r in self.results if r.status == "evicted")

    @property
    def total_new_tokens(self) -> int:
        return sum(r.num_tokens for r in self.results if r.status == "completed")

    @property
    def tokens_per_second(self) -> float:
        return self.total_new_tokens / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def latency_percentile_ms(self, percentile: float) -> float:
        latencies = [r.latency_seconds * 1e3 for r in self.results]
        return float(np.percentile(latencies, percentile)) if latencies else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "protection": self.protection,
            "num_requests": len(self.results),
            "num_completed": self.num_completed,
            "num_evicted": self.num_evicted,
            "repaired_detections": sum(r.repaired_detections for r in self.results),
            "total_new_tokens": self.total_new_tokens,
            "wall_seconds": self.wall_seconds,
            "tokens_per_second": self.tokens_per_second,
            "latency_p50_ms": self.latency_percentile_ms(50.0),
            "latency_p99_ms": self.latency_percentile_ms(99.0),
            "timer_seconds": dict(self.timer_seconds),
            "checker_stats": dict(self.checker_stats),
            "decode_steps": self.decode_steps,
            "decode_slot_steps": self.decode_slot_steps,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


class _BatchState:
    """Mutable per-batch serving state (one slot per admitted request)."""

    def __init__(self, requests: List[ServingRequest], start_time: float) -> None:
        self.requests = requests
        self.start_time = start_time
        size = len(requests)
        self.active = np.ones(size, dtype=bool)      # still producing tokens
        self.alive = np.ones(size, dtype=bool)       # not evicted
        self.results = [
            RequestResult(request_id=r.request_id, status="completed") for r in requests
        ]

    def evict(self, index: int) -> None:
        if not self.alive[index]:
            return
        self.alive[index] = False
        self.active[index] = False
        result = self.results[index]
        result.status = "evicted"
        result.latency_seconds = time.perf_counter() - self.start_time

    def complete(self, index: int) -> None:
        if self.active[index]:
            self.active[index] = False
            self.results[index].latency_seconds = time.perf_counter() - self.start_time


class ServingEngine:
    """Serve requests through a causal decoder model, optionally protected.

    Parameters
    ----------
    model:
        A causal decoder exposing the
        :class:`~repro.models.classification.CausalDecodingMixin` interface
        (``new_kv_caches`` / ``prefill`` / ``decode_step`` / ``lm_logits``).
        Put the model in ``eval()`` mode is handled here — dropout must be
        off for the KV-cached decode to equal the full forward.
    checker:
        Optional :class:`~repro.core.ATTNChecker` already attached to the
        model via ``set_attention_hooks`` (protection on); ``None`` serves
        unprotected.  The decode path requires every section frequency at
        1.0 (the incremental checksums must stay contiguous).
    injector:
        Optional :class:`~repro.faults.FaultInjector` composed with the
        checker; the engine opens a per-request injection scope
        (:meth:`~repro.faults.FaultInjector.begin_request`) at each batch.
    """

    def __init__(
        self,
        model: Any,
        checker: Optional[ATTNChecker] = None,
        injector: Optional[FaultInjector] = None,
        config: Optional[ServingConfig] = None,
    ) -> None:
        for method in ("new_kv_caches", "prefill", "decode_step", "lm_logits"):
            if not hasattr(model, method):
                raise TypeError(
                    f"model {type(model).__name__} has no {method!r}; serving needs "
                    "a causal decoder with the CausalDecodingMixin interface"
                )
        if model.config.num_labels > model.config.vocab_size:
            raise ValueError(
                f"generation head width num_labels={model.config.num_labels} exceeds "
                f"vocab_size={model.config.vocab_size}; greedy tokens would not be "
                "valid input ids"
            )
        self.model = model
        self.checker = checker
        self.injector = injector
        self.config = config or ServingConfig()
        self.timers = TimingRegistry()
        self.decode_steps = 0
        self.decode_slot_steps = 0
        model.eval()

    # -- public API -----------------------------------------------------------------

    def run(self, requests: List[ServingRequest]) -> ServingReport:
        """Serve ``requests`` to completion and return the aggregate report."""
        start = time.perf_counter()
        results: List[RequestResult] = []
        self.decode_steps = 0
        self.decode_slot_steps = 0
        batch_size = self.config.max_batch_size
        for batch_start in range(0, len(requests), batch_size):
            batch = requests[batch_start : batch_start + batch_size]
            results.extend(self._run_batch(batch_start // batch_size, batch))
        wall = time.perf_counter() - start
        checker_stats: Dict[str, int] = {}
        if self.checker is not None:
            stats = self.checker.stats
            checker_stats = {
                "checks": stats.total_checks,
                "detections": stats.total_detections,
                "corrections": stats.total_corrections,
            }
        return ServingReport(
            protection=self.checker is not None,
            results=results,
            wall_seconds=wall,
            timer_seconds=self.timers.as_dict(),
            checker_stats=checker_stats,
            decode_steps=self.decode_steps,
            decode_slot_steps=self.decode_slot_steps,
        )

    # -- batch execution ------------------------------------------------------------

    def _run_batch(self, batch_index: int, batch: List[ServingRequest]) -> List[RequestResult]:
        model = self.model
        size = len(batch)
        with self.timers.measure("serve/schedule"):
            prompt_len = max(r.prompt_len for r in batch)
            budget = max(r.max_new_tokens for r in batch)
            total_len = prompt_len + budget
            if total_len > model.config.max_seq_len:
                raise ValueError(
                    f"batch needs {total_len} positions but the model supports "
                    f"max_seq_len={model.config.max_seq_len}"
                )
            ids = np.full((size, prompt_len), PAD_TOKEN_ID, dtype=np.int64)
            # One mask over the whole padded layout, ones for every position
            # that is (or will become) a real token.  Decode steps slice it,
            # and its *identity* keys the attention decode-mask cache — so it
            # is built once here and passed unchanged every step.
            mask = np.zeros((size, total_len), dtype=np.float64)
            for i, request in enumerate(batch):
                ids[i, prompt_len - request.prompt_len :] = request.prompt_array()
                mask[i, prompt_len - request.prompt_len :] = 1.0
            caches = model.new_kv_caches(size, max_len=total_len)
        state = _BatchState(batch, start_time=time.perf_counter())
        if self.injector is not None:
            self.injector.begin_request(batch_index)

        slot_map = np.arange(size)
        with self.timers.measure("serve/prefill"):
            hidden = model.prefill(ids, mask[:, :prompt_len], caches)
            # Left padding makes the last position a real token for every
            # request, so one slice serves the whole batch.
            logits = self._last_logits(hidden, position=-1)
        self._absorb_outcomes(state, slot_map)
        self._check_logits(state, logits, slot_map)
        next_ids = np.argmax(logits, axis=-1).astype(np.int64)

        remaining = np.array([r.max_new_tokens for r in batch], dtype=np.int64)
        self._record_tokens(state, next_ids, remaining, slot_map)
        for _ in range(int(budget) - 1):
            if not state.active.any():
                break
            slot_map, mask, next_ids = self._maybe_compact(
                state, slot_map, mask, caches, next_ids
            )
            self.decode_steps += 1
            self.decode_slot_steps += len(slot_map)
            with self.timers.measure("serve/decode"):
                hidden = model.decode_step(next_ids[:, None], caches, attention_mask=mask)
                logits = self._last_logits(hidden, position=0)
            self._absorb_outcomes(state, slot_map)
            self._check_logits(state, logits, slot_map)
            next_ids = np.argmax(logits, axis=-1).astype(np.int64)
            self._record_tokens(state, next_ids, remaining, slot_map)
        if self.checker is not None:
            # Flush any deferred/async verification work attributable to this
            # batch before its slots are retired.
            with self.timers.measure("serve/verify"):
                self.checker.drain()
            self._absorb_outcomes(state, slot_map)
        for i in range(size):
            state.complete(i)
        return state.results

    # -- helpers --------------------------------------------------------------------

    def _maybe_compact(
        self,
        state: _BatchState,
        slot_map: np.ndarray,
        mask: np.ndarray,
        caches: List[Any],
        next_ids: np.ndarray,
    ) -> tuple:
        """Drop dead physical slots so decode cost tracks live requests.

        Keeps the slots whose original request is still active, floored at
        two physical slots (single-row GEMMs take the gemv path, whose low
        bits can differ from batched rows — the bitwise fault-isolation
        guarantee requires M >= 2); a needed pad slot is taken from the
        dead ones, preferring a completed (clean-KV) slot over an evicted
        one.  Disabled under async verification: its dirty masks drain
        late, with the batch width of the step they were *recorded* at, and
        could not be re-attributed across a shrink.
        """
        if self.checker is not None and self.checker.verification_mode == "async":
            return slot_map, mask, next_ids
        physical = len(slot_map)
        keep = [p for p in range(physical) if state.active[slot_map[p]]]
        if len(keep) < 2:
            dead = [p for p in range(physical) if not state.active[slot_map[p]]]
            # Completed slots (still alive) first, evicted ones last.
            dead.sort(key=lambda p: (not state.alive[slot_map[p]], p))
            keep = sorted(keep + dead[: 2 - len(keep)])
        if len(keep) == physical:
            return slot_map, mask, next_ids
        keep_idx = np.asarray(keep, dtype=np.int64)
        for cache in caches:
            cache.compact(keep_idx)
        # The rebuilt mask is a new object on purpose: its identity keys the
        # attention decode-mask cache, so the cache re-derives once per
        # compaction and then reuses the entry every following step.
        return slot_map[keep_idx], np.ascontiguousarray(mask[keep_idx]), next_ids[keep_idx]

    def _last_logits(self, hidden: Any, position: int) -> np.ndarray:
        logits = self.model.lm_logits(hidden).data[:, position, :]
        # Host view for the greedy argmax; a no-op copy on the NumPy
        # substrate the serving path runs on.
        return np.asarray(logits)

    def _record_tokens(
        self,
        state: _BatchState,
        next_ids: np.ndarray,
        remaining: np.ndarray,
        slot_map: np.ndarray,
    ) -> None:
        for p in range(len(slot_map)):
            i = int(slot_map[p])
            if not state.active[i] or remaining[i] <= 0:
                continue
            state.results[i].tokens.append(int(next_ids[p]))
            remaining[i] -= 1
            if remaining[i] == 0:
                state.complete(i)

    def _check_logits(
        self, state: _BatchState, logits: np.ndarray, slot_map: np.ndarray
    ) -> None:
        """Evict slots whose generation logits went non-finite.

        The ABFT sections cover the attention GEMMs — plus the FFN GEMMs
        when the checker's ``protect_scope`` includes them — but a fault
        that slipped into an unprotected path (embeddings, LayerNorm, an
        attention-scope FFN) or an uncorrected extreme still must not drive
        the argmax of a live request.
        """
        finite = np.isfinite(logits).all(axis=-1)
        for p in np.flatnonzero(~finite):
            i = int(slot_map[p])
            if state.alive[i]:
                state.evict(i)

    def _absorb_outcomes(self, state: _BatchState, slot_map: np.ndarray) -> None:
        """Fold the checker's recent outcomes into per-request dispositions.

        Dirty masks are indexed by *physical* slot of the step they were
        recorded at; with synchronous absorption (immediate/deferred) that
        step ran under the current ``slot_map``, which maps them back to
        original requests.  Async mode never compacts, so its historical
        masks always match the full batch width.
        """
        checker = self.checker
        if checker is None:
            return
        with self.timers.measure("serve/verify"):
            if checker.verification_mode != "immediate":
                checker.end_step()
            for outcome in checker.take_recent_outcomes():
                report = outcome.report
                if report is None or outcome.request_dirty is None:
                    continue
                # Host view of the per-request dirty mask (already host-side
                # on the NumPy substrate the serving path runs on).
                dirty = np.asarray(outcome.request_dirty).astype(bool).reshape(-1)
                if dirty.shape[0] != len(slot_map) or not dirty.any():
                    continue
                uncorrected = report.aborted > 0 or report.corrected < report.detected
                for p in np.flatnonzero(dirty):
                    i = int(slot_map[p])
                    if not state.alive[i]:
                        continue
                    if uncorrected and self.config.evict_uncorrected:
                        state.evict(i)
                    else:
                        state.results[i].repaired_detections += 1

"""Synthetic serving workload: deterministic request streams.

Real serving traces mix prompt lengths and generation budgets; the generator
reproduces that shape deterministically (seeded) so benchmark runs and the
protection-on/off comparison see the *same* token stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.utils.rng import new_rng

__all__ = ["ServingRequest", "RequestGenerator"]

#: Token id reserved for left-padding; masked out of attention, so its value
#: never reaches a protected GEMM.
PAD_TOKEN_ID = 0


@dataclass(frozen=True)
class ServingRequest:
    """One inference request: a prompt and a generation budget."""

    request_id: int
    prompt: Tuple[int, ...]
    max_new_tokens: int

    def __post_init__(self) -> None:
        if len(self.prompt) < 1:
            raise ValueError(f"request {self.request_id}: empty prompt")
        if self.max_new_tokens < 1:
            raise ValueError(
                f"request {self.request_id}: max_new_tokens must be >= 1, "
                f"got {self.max_new_tokens}"
            )

    @property
    def prompt_len(self) -> int:
        return len(self.prompt)

    def prompt_array(self) -> np.ndarray:
        return np.asarray(self.prompt, dtype=np.int64)


class RequestGenerator:
    """Deterministic stream of :class:`ServingRequest` objects.

    Prompt tokens are drawn uniformly from ``[1, vocab_size)`` (0 is the pad
    id), prompt lengths and generation budgets uniformly from the given
    inclusive ranges.  Two generators with the same arguments produce the
    same stream, which is what lets the benchmark run protection on and off
    over identical traffic.
    """

    def __init__(
        self,
        vocab_size: int,
        prompt_len_range: Tuple[int, int] = (4, 12),
        new_tokens_range: Tuple[int, int] = (2, 8),
        seed: Optional[int] = 0,
    ) -> None:
        if vocab_size < 2:
            raise ValueError(f"vocab_size must be >= 2, got {vocab_size}")
        for name, (lo, hi) in (
            ("prompt_len_range", prompt_len_range),
            ("new_tokens_range", new_tokens_range),
        ):
            if lo < 1 or hi < lo:
                raise ValueError(f"{name} must satisfy 1 <= lo <= hi, got ({lo}, {hi})")
        self.vocab_size = vocab_size
        self.prompt_len_range = prompt_len_range
        self.new_tokens_range = new_tokens_range
        self.rng = new_rng(seed)

    def generate(self, num_requests: int) -> List[ServingRequest]:
        requests = []
        for request_id in range(num_requests):
            prompt_len = int(
                self.rng.integers(self.prompt_len_range[0], self.prompt_len_range[1] + 1)
            )
            new_tokens = int(
                self.rng.integers(self.new_tokens_range[0], self.new_tokens_range[1] + 1)
            )
            prompt = tuple(
                int(t) for t in self.rng.integers(1, self.vocab_size, size=prompt_len)
            )
            requests.append(
                ServingRequest(
                    request_id=request_id, prompt=prompt, max_new_tokens=new_tokens
                )
            )
        return requests

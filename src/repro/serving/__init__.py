"""Protected inference serving: batched prefill+decode with fault isolation.

The serving path is where the ROADMAP's north star (fault-tolerant attention
under real traffic) meets the ABFT machinery: requests are batched, prompts
run one protected *prefill* that seeds per-layer KV caches — including the
caches' incremental checksums — and every decoded token updates the section
checksums in O(1) of the cached length.  Detections are attributed to
individual requests (``SectionOutcome.request_dirty``) so a corrupted request
is repaired or evicted without poisoning its batch-mates.

* :mod:`repro.serving.workload` — deterministic synthetic request generator.
* :mod:`repro.serving.engine` — the batched serving engine and its report.
"""

from repro.serving.engine import (
    RequestResult,
    ServingConfig,
    ServingEngine,
    ServingReport,
)
from repro.serving.workload import RequestGenerator, ServingRequest

__all__ = [
    "RequestGenerator",
    "RequestResult",
    "ServingConfig",
    "ServingEngine",
    "ServingReport",
    "ServingRequest",
]

"""A small deterministic hashing tokenizer.

Real LLMs use learned subword vocabularies; for the synthetic corpus a
hashing tokenizer is sufficient and keeps the package free of data files.
Tokens are whitespace-split words mapped to ids by a stable FNV-1a hash into
the vocabulary, with a handful of reserved special tokens compatible with the
sequence-pair format the models expect (``[CLS] sent1 [SEP] sent2 [SEP]``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["HashingTokenizer"]


def _fnv1a(text: str) -> int:
    value = 0xCBF29CE484222325
    for byte in text.encode("utf-8"):
        value ^= byte
        value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value


@dataclass
class HashingTokenizer:
    """Hash words into a fixed vocabulary with reserved special tokens.

    Attributes
    ----------
    vocab_size:
        Total vocabulary size, including the special tokens.
    """

    vocab_size: int = 512

    PAD = 0
    CLS = 1
    SEP = 2
    UNK = 3
    NUM_SPECIAL = 4

    def __post_init__(self) -> None:
        if self.vocab_size <= self.NUM_SPECIAL + 1:
            raise ValueError(f"vocab_size must exceed {self.NUM_SPECIAL + 1}")

    # -- single text ------------------------------------------------------------------

    def token_id(self, word: str) -> int:
        """Map one word to its id (deterministic, process-independent)."""
        if not word:
            return self.UNK
        span = self.vocab_size - self.NUM_SPECIAL
        return self.NUM_SPECIAL + (_fnv1a(word.lower()) % span)

    def tokenize(self, text: str) -> List[int]:
        """Whitespace tokenize and hash every word."""
        return [self.token_id(w) for w in text.split()]

    # -- sentence pairs ------------------------------------------------------------------

    def encode_pair(
        self, sentence_a: str, sentence_b: str, max_length: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Encode ``[CLS] a [SEP] b [SEP]`` padded/truncated to ``max_length``.

        Returns ``(input_ids, attention_mask)`` as int64 / float64 arrays.
        """
        if max_length < 5:
            raise ValueError("max_length must be at least 5 to fit the special tokens")
        ids_a = self.tokenize(sentence_a)
        ids_b = self.tokenize(sentence_b)
        budget = max_length - 3  # CLS + 2x SEP
        half = budget // 2
        # Truncate the longer side first, as HuggingFace's pair encoding does.
        while len(ids_a) + len(ids_b) > budget:
            if len(ids_a) >= len(ids_b) and len(ids_a) > half:
                ids_a.pop()
            elif ids_b:
                ids_b.pop()
            else:
                ids_a.pop()
        tokens = [self.CLS] + ids_a + [self.SEP] + ids_b + [self.SEP]
        attention = [1.0] * len(tokens)
        while len(tokens) < max_length:
            tokens.append(self.PAD)
            attention.append(0.0)
        return np.asarray(tokens, dtype=np.int64), np.asarray(attention, dtype=np.float64)

    def encode_batch(
        self, pairs: Sequence[Tuple[str, str]], max_length: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`encode_pair` over a batch of sentence pairs."""
        ids = np.zeros((len(pairs), max_length), dtype=np.int64)
        mask = np.zeros((len(pairs), max_length), dtype=np.float64)
        for i, (a, b) in enumerate(pairs):
            ids[i], mask[i] = self.encode_pair(a, b, max_length)
        return ids, mask

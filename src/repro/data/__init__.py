"""Data substrate: synthetic MRPC-style corpus, tokenizer and batching.

The paper fine-tunes on MRPC (paraphrase detection, GLUE).  The corpus cannot
be redistributed here and is not needed for any of the claims, so this package
generates a synthetic paraphrase-pair classification task with the same shape:
pairs of short "sentences" over a small vocabulary, labelled 1 when the second
sentence is a perturbed copy of the first (paraphrase) and 0 when it is an
unrelated sentence.  The task is learnable (loss decreases over epochs, as in
Figure 6) yet cheap enough that a full epoch runs in seconds on CPU.
"""

from repro.data.tokenizer import HashingTokenizer
from repro.data.synthetic_mrpc import SyntheticMRPC, SentencePair
from repro.data.dataloader import DataLoader, batch_iterator

__all__ = [
    "HashingTokenizer",
    "SyntheticMRPC",
    "SentencePair",
    "DataLoader",
    "batch_iterator",
]

"""Batching utilities."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.data.synthetic_mrpc import SyntheticMRPC
from repro.utils.rng import new_rng

__all__ = ["DataLoader", "batch_iterator"]


def batch_iterator(
    encoded: Dict[str, np.ndarray], batch_size: int, drop_last: bool = False
) -> Iterator[Dict[str, np.ndarray]]:
    """Yield consecutive batches from a pre-encoded dataset dictionary."""
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    n = len(encoded["labels"])
    for start in range(0, n, batch_size):
        end = start + batch_size
        if end > n and drop_last:
            return
        yield {key: value[start:end] for key, value in encoded.items()}


class DataLoader:
    """Shuffling mini-batch loader over a :class:`SyntheticMRPC` corpus.

    The loader re-encodes lazily per epoch; with ``shuffle=True`` the example
    order is re-drawn from its own RNG stream so data order is independent of
    model/fault randomness.
    """

    def __init__(
        self,
        dataset: SyntheticMRPC,
        batch_size: int = 8,
        indices: Optional[Sequence[int]] = None,
        shuffle: bool = True,
        drop_last: bool = True,
        seed: int = 7,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.batch_size = batch_size
        self.indices: List[int] = list(indices) if indices is not None else list(range(len(dataset)))
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = new_rng(seed)

    def __len__(self) -> int:
        n = len(self.indices)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Dict[str, np.ndarray]]:
        order = list(self.indices)
        if self.shuffle:
            order = [order[i] for i in self._rng.permutation(len(order))]
        for start in range(0, len(order), self.batch_size):
            chunk = order[start : start + self.batch_size]
            if len(chunk) < self.batch_size and self.drop_last:
                return
            yield self.dataset.encode(chunk)

    def batches(self) -> List[Dict[str, np.ndarray]]:
        """Materialise one epoch of batches (useful for repeated epochs)."""
        return list(iter(self))

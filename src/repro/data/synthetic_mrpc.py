"""Synthetic MRPC-style paraphrase corpus.

Generates labelled sentence pairs over a small word list:

* **positive** (label 1): the second sentence is a light perturbation of the
  first (word dropout, local swaps, a few substitutions) — a "paraphrase";
* **negative** (label 0): the second sentence is drawn independently.

The classifier can solve the task from lexical overlap, which is exactly the
property needed for the Figure-6 experiment: the loss decreases smoothly over
a few epochs for every model family, and a NaN anywhere in the pipeline is
immediately visible against that smooth baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.tokenizer import HashingTokenizer
from repro.utils.rng import new_rng

__all__ = ["SentencePair", "SyntheticMRPC"]

# A compact, deterministic word list; enough variety that lexical overlap is a
# real signal rather than an accident of hashing collisions.
_WORDS: Tuple[str, ...] = (
    "market", "shares", "company", "percent", "quarter", "profit", "revenue", "bank",
    "stock", "prices", "growth", "report", "analyst", "billion", "million", "rose",
    "fell", "trading", "investors", "earnings", "federal", "officials", "policy",
    "economy", "industry", "software", "technology", "deal", "agreement", "court",
    "judge", "ruling", "government", "president", "minister", "election", "votes",
    "senate", "house", "bill", "law", "police", "city", "state", "country", "world",
    "people", "workers", "union", "strike", "health", "study", "research", "virus",
    "patients", "hospital", "doctors", "school", "students", "university", "science",
    "energy", "oil", "gas", "power", "climate", "weather", "storm", "water", "team",
    "game", "season", "players", "coach", "league", "championship", "points", "goal",
)


@dataclass(frozen=True)
class SentencePair:
    """One labelled example of the paraphrase-detection task."""

    sentence_a: str
    sentence_b: str
    label: int


class SyntheticMRPC:
    """Deterministic synthetic paraphrase corpus.

    Parameters
    ----------
    num_examples:
        Number of sentence pairs to generate.
    max_seq_len:
        Target encoded length (``[CLS] a [SEP] b [SEP]`` + padding).
    vocab_size:
        Vocabulary of the hashing tokenizer (must match the model config).
    seed:
        Seed controlling both sentence generation and the train/dev split.
    positive_fraction:
        Fraction of paraphrase (label 1) pairs, ~0.67 in the real MRPC.
    """

    def __init__(
        self,
        num_examples: int = 256,
        max_seq_len: int = 16,
        vocab_size: int = 512,
        seed: int = 1234,
        positive_fraction: float = 0.67,
    ) -> None:
        if num_examples <= 0:
            raise ValueError("num_examples must be positive")
        if not 0.0 < positive_fraction < 1.0:
            raise ValueError("positive_fraction must lie in (0, 1)")
        self.num_examples = num_examples
        self.max_seq_len = max_seq_len
        self.tokenizer = HashingTokenizer(vocab_size=vocab_size)
        self.seed = seed
        self.positive_fraction = positive_fraction
        self.examples: List[SentencePair] = self._generate(new_rng(seed))

    # -- generation ----------------------------------------------------------------------

    def _random_sentence(self, rng: np.random.Generator, length: int) -> List[str]:
        return [str(_WORDS[i]) for i in rng.integers(0, len(_WORDS), size=length)]

    def _perturb(self, words: Sequence[str], rng: np.random.Generator) -> List[str]:
        """Light perturbation: drop, swap and substitute a few words."""
        words = list(words)
        # substitution
        for i in range(len(words)):
            if rng.random() < 0.15:
                words[i] = str(_WORDS[rng.integers(0, len(_WORDS))])
        # local swap
        if len(words) > 2 and rng.random() < 0.5:
            i = int(rng.integers(0, len(words) - 1))
            words[i], words[i + 1] = words[i + 1], words[i]
        # dropout
        if len(words) > 3 and rng.random() < 0.3:
            del words[int(rng.integers(0, len(words)))]
        return words

    def _generate(self, rng: np.random.Generator) -> List[SentencePair]:
        examples: List[SentencePair] = []
        sentence_budget = max(3, (self.max_seq_len - 3) // 2)
        for _ in range(self.num_examples):
            length = int(rng.integers(max(3, sentence_budget - 2), sentence_budget + 1))
            first = self._random_sentence(rng, length)
            if rng.random() < self.positive_fraction:
                second = self._perturb(first, rng)
                label = 1
            else:
                second = self._random_sentence(rng, length)
                label = 0
            examples.append(
                SentencePair(sentence_a=" ".join(first), sentence_b=" ".join(second), label=label)
            )
        return examples

    # -- access ------------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.examples)

    def __getitem__(self, index: int) -> SentencePair:
        return self.examples[index]

    def labels(self) -> np.ndarray:
        return np.asarray([e.label for e in self.examples], dtype=np.int64)

    def encode(self, indices: Optional[Sequence[int]] = None) -> Dict[str, np.ndarray]:
        """Encode (a subset of) the corpus into model-ready arrays."""
        if indices is None:
            indices = range(len(self.examples))
        pairs = [(self.examples[i].sentence_a, self.examples[i].sentence_b) for i in indices]
        labels = np.asarray([self.examples[i].label for i in indices], dtype=np.int64)
        input_ids, attention_mask = self.tokenizer.encode_batch(pairs, self.max_seq_len)
        return {"input_ids": input_ids, "attention_mask": attention_mask, "labels": labels}

    def train_dev_split(self, dev_fraction: float = 0.2) -> Tuple[List[int], List[int]]:
        """Deterministic index split into train and dev sets."""
        if not 0.0 < dev_fraction < 1.0:
            raise ValueError("dev_fraction must lie in (0, 1)")
        rng = new_rng(self.seed + 1)
        order = rng.permutation(len(self.examples))
        n_dev = max(1, int(len(self.examples) * dev_fraction))
        dev = sorted(int(i) for i in order[:n_dev])
        train = sorted(int(i) for i in order[n_dev:])
        return train, dev

"""Analysis and reporting helpers.

``workload``
    FLOP accounting of the attention mechanism — the GEMM workload ratios of
    Table 3.
``reporting``
    Plain-text table / CSV rendering used by every benchmark harness so the
    bench output prints the same rows and series the paper reports.
"""

from repro.analysis.workload import WorkloadBreakdown, attention_workload, gemm_ratio_table
from repro.analysis.reporting import format_table, format_percent, render_series, to_csv

__all__ = [
    "WorkloadBreakdown",
    "attention_workload",
    "gemm_ratio_table",
    "format_table",
    "format_percent",
    "render_series",
    "to_csv",
]

"""Attention workload accounting (Table 3).

Table 3 of the paper reports that matrix multiplications account for more
than 99 % of the attention mechanism's computation across the four evaluated
LLMs — the observation that justifies focusing ABFT on the GEMMs.  This
module derives the same ratios from first-principles FLOP counting on the
published model dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.models.config import ModelConfig
from repro.models.registry import PAPER_CONFIGS, get_config

__all__ = ["WorkloadBreakdown", "attention_workload", "gemm_ratio_table"]


@dataclass(frozen=True)
class WorkloadBreakdown:
    """FLOP breakdown of one model's attention mechanism."""

    model_name: str
    gemm_flops: float
    other_flops: float

    @property
    def total_flops(self) -> float:
        return self.gemm_flops + self.other_flops

    @property
    def gemm_ratio(self) -> float:
        """Fraction of attention FLOPs spent in GEMMs (the Table-3 number)."""
        return self.gemm_flops / self.total_flops if self.total_flops else float("nan")


def attention_workload(
    config: ModelConfig, batch_size: int = 8, seq_len: Optional[int] = None
) -> WorkloadBreakdown:
    """Compute the GEMM / non-GEMM FLOP split of one attention layer."""
    gemm = config.attention_gemm_flops(batch_size, seq_len)
    other = config.attention_other_flops(batch_size, seq_len)
    return WorkloadBreakdown(model_name=config.name, gemm_flops=float(gemm), other_flops=float(other))


def gemm_ratio_table(
    model_names: Sequence[str] = ("bert-base", "gpt2", "gpt-neo", "roberta"),
    batch_size: int = 8,
    seq_len: Optional[int] = None,
    size: str = "paper",
) -> Dict[str, WorkloadBreakdown]:
    """GEMM workload ratios for the models of Table 3."""
    table: Dict[str, WorkloadBreakdown] = {}
    for name in model_names:
        config = get_config(name, size=size)
        table[name] = attention_workload(config, batch_size=batch_size, seq_len=seq_len)
    return table

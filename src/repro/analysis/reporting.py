"""Plain-text table rendering used by the benchmark harnesses.

Every benchmark prints the rows / series of the corresponding paper table or
figure through these helpers so the output is uniform, diffable and easy to
copy into EXPERIMENTS.md.
"""

from __future__ import annotations

import io
from typing import Dict, Iterable, List, Optional, Sequence, Union

__all__ = ["format_table", "format_percent", "render_series", "to_csv"]

Cell = Union[str, float, int]


def format_percent(value: float, digits: int = 1) -> str:
    """Render a fraction as a percentage string (NaN-safe)."""
    if value != value:  # NaN
        return "n/a"
    return f"{value * 100:.{digits}f}%"


def _stringify(cell: Cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Cell]], title: Optional[str] = None) -> str:
    """Render an aligned plain-text table."""
    string_rows: List[List[str]] = [[_stringify(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in string_rows:
        if len(row) != len(headers):
            raise ValueError(f"row {row!r} does not match header width {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in string_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_series(name: str, xs: Sequence[Cell], ys: Sequence[Cell], x_label: str = "x", y_label: str = "y") -> str:
    """Render one figure series as a two-column table."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    return format_table([x_label, y_label], list(zip(xs, ys)), title=name)


def to_csv(headers: Sequence[str], rows: Iterable[Sequence[Cell]]) -> str:
    """Render rows as CSV text (no external dependencies, RFC-4180-enough)."""
    buffer = io.StringIO()
    def esc(cell: Cell) -> str:
        text = _stringify(cell)
        if any(ch in text for ch in ",\"\n"):
            return '"' + text.replace('"', '""') + '"'
        return text
    buffer.write(",".join(esc(h) for h in headers) + "\n")
    for row in rows:
        buffer.write(",".join(esc(c) for c in row) + "\n")
    return buffer.getvalue()

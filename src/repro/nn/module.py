"""Module / Parameter system (a minimal ``torch.nn`` analogue).

A :class:`Module` owns :class:`Parameter` leaves and child modules, can
enumerate them recursively (for the optimiser and the checkpoint manager),
switch between train/eval mode, and export/import a flat state dict.

State dicts are *backend-native*: :meth:`Module.state_dict` copies each
parameter on its owning array backend (so a device-resident model snapshots
device-resident state — the trainer's stale-rollback window never leaves the
device), and :meth:`Module.load_state_dict` adopts foreign values (host NumPy
arrays from an on-disk checkpoint) into each parameter's backend.  Exporting
to host NumPy for serialisation is the checkpoint manager's job, where the
copies are timed under the ``xfer/*`` keys.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.backend import ArrayBackend
from repro.tensor.autograd import Tensor
from repro.utils.versioning import bump_weights_version

__all__ = ["Parameter", "Module", "ModuleList"]


class Parameter(Tensor):
    """A :class:`Tensor` that is registered as a trainable leaf."""

    def __init__(self, data, name: Optional[str] = None,
                 backend: Optional[ArrayBackend] = None) -> None:
        super().__init__(data, requires_grad=True, name=name, backend=backend)


class Module:
    """Base class for all NN modules.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; registration happens automatically through
    ``__setattr__``, mirroring PyTorch's behaviour.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # -- registration ---------------------------------------------------------

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, param: Parameter) -> None:
        """Explicitly register a parameter under ``name``."""
        self._parameters[name] = param
        object.__setattr__(self, name, param)

    def register_module(self, name: str, module: "Module") -> None:
        """Explicitly register a child module under ``name``."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # -- traversal ------------------------------------------------------------

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` pairs recursively."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> List[Parameter]:
        """All parameters of this module and its children."""
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        """Yield ``(qualified_name, module)`` pairs recursively, self included."""
        yield prefix.rstrip("."), self
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def modules(self) -> List["Module"]:
        return [m for _, m in self.named_modules()]

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return int(sum(p.size for p in self.parameters()))

    # -- train / eval ----------------------------------------------------------

    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects dropout)."""
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # -- gradients --------------------------------------------------------------

    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for p in self.parameters():
            p.zero_grad()

    # -- state dict --------------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """Flat mapping of qualified parameter names to copies of their data.

        Copies are made on each parameter's owning backend, so the snapshot
        of a device-resident model stays device-resident (no d2h traffic).
        """
        return {name: p.backend.copy(p.data) for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, Any], strict: bool = True) -> None:
        """Load a state dict produced by :meth:`state_dict`.

        With ``strict=True`` (default) the key sets must match exactly and
        shapes must agree; otherwise only matching keys are loaded.  Values
        foreign to a parameter's backend (e.g. host arrays from an on-disk
        checkpoint feeding a device-resident model) are adopted.
        """
        own = dict(self.named_parameters())
        if strict:
            missing = sorted(set(own) - set(state))
            unexpected = sorted(set(state) - set(own))
            if missing or unexpected:
                raise KeyError(
                    f"state dict mismatch: missing={missing}, unexpected={unexpected}"
                )
        for name, param in own.items():
            if name not in state:
                continue
            value = state[name]
            if not param.backend.is_backend_array(value):
                value = param.backend.asarray(value)
            if tuple(value.shape) != param.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: expected {param.shape}, got {tuple(value.shape)}"
                )
            xp = param.backend.namespace_for(value)
            param.data = xp.astype(value, getattr(xp, param.dtype.name), copy=True)
        # Loaded weights invalidate every weight-derived checksum cache
        # (stale-rollback restores, checkpoint loads).
        bump_weights_version()

    # -- forward -----------------------------------------------------------------

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class ModuleList(Module):
    """An indexable container of child modules (like ``torch.nn.ModuleList``)."""

    def __init__(self, modules: Optional[List[Module]] = None) -> None:
        super().__init__()
        self._items: List[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        index = len(self._items)
        self._items.append(module)
        self.register_module(str(index), module)
        return self

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def forward(self, *args, **kwargs):  # pragma: no cover - containers are not called
        raise RuntimeError("ModuleList is a container and cannot be called")

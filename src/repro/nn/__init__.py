"""Neural-network building blocks on top of :mod:`repro.tensor`.

This package provides the PyTorch-like module system the model zoo is built
from, and — most importantly for this reproduction — the instrumented
multi-head attention whose six GEMMs (Figure 1 of the paper) expose an
operation-boundary hook interface used by both the fault injector
(:mod:`repro.faults`) and ATTNChecker (:mod:`repro.core`).
"""

from repro.nn.module import Module, Parameter, ModuleList
from repro.nn.layers import Dropout, Embedding, GELUActivation, LayerNorm, Linear, ReLUActivation, TanhActivation
from repro.nn.attention import (
    SECTION_BOUNDARY_OPS,
    AttentionHooks,
    AttentionOp,
    ComposedHooks,
    GemmContext,
    MultiHeadAttention,
    RecordingHooks,
    SectionContext,
)
from repro.nn.transformer import FeedForward, TransformerLayer
from repro.nn.losses import CrossEntropyLoss

__all__ = [
    "Module",
    "Parameter",
    "ModuleList",
    "Linear",
    "LayerNorm",
    "Embedding",
    "Dropout",
    "GELUActivation",
    "ReLUActivation",
    "TanhActivation",
    "MultiHeadAttention",
    "AttentionHooks",
    "AttentionOp",
    "GemmContext",
    "SectionContext",
    "SECTION_BOUNDARY_OPS",
    "ComposedHooks",
    "RecordingHooks",
    "TransformerLayer",
    "FeedForward",
    "CrossEntropyLoss",
]

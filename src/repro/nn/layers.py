"""Standard layers: Linear, LayerNorm, Embedding, Dropout, activations.

Every parameterised layer takes an optional ``backend``
(:class:`repro.backend.ArrayBackend`): weights are initialised on the host
(seed-reproducible regardless of compute library) and adopted into the
backend's array type once, at construction — after that the layer's forward,
backward and update run natively on that backend.  ``backend=None`` keeps the
historical pure-NumPy substrate, byte for byte.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.backend import ArrayBackend
from repro.nn.module import Module, Parameter
from repro.tensor import autograd as ag
from repro.tensor import init as tinit

__all__ = [
    "Linear",
    "LayerNorm",
    "Embedding",
    "Dropout",
    "GELUActivation",
    "ReLUActivation",
    "TanhActivation",
]


class Linear(Module):
    """Affine transform ``y = x W + b`` with weight shape ``(in, out)``.

    The weight layout intentionally matches the paper's GEMM orientation
    (activations times a parameter matrix, e.g. ``X x W_Q``), so the attention
    module can hand the raw weight matrix straight to the ABFT checksum
    encoder without transposition.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: Optional[np.random.Generator] = None,
        bias: bool = True,
        init_std: float = 0.02,
        backend: Optional[ArrayBackend] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            tinit.adopt(tinit.normal_init((in_features, out_features), rng, std=init_std), backend),
            name="weight", backend=backend,
        )
        self.bias = Parameter(
            tinit.adopt(tinit.zeros_init((out_features,)), backend),
            name="bias", backend=backend,
        ) if bias else None

    def forward(self, x: ag.Tensor) -> ag.Tensor:
        out = ag.matmul(x, self.weight)
        if self.bias is not None:
            out = ag.add(out, self.bias)
        return out


class LayerNorm(Module):
    """Layer normalisation over the last dimension with learnable affine."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5,
                 backend: Optional[ArrayBackend] = None) -> None:
        super().__init__()
        self.normalized_shape = normalized_shape
        self.eps = eps
        self.weight = Parameter(
            tinit.adopt(np.ones(normalized_shape), backend), name="weight", backend=backend,
        )
        self.bias = Parameter(
            tinit.adopt(np.zeros(normalized_shape), backend), name="bias", backend=backend,
        )

    def forward(self, x: ag.Tensor) -> ag.Tensor:
        return ag.layer_norm(x, self.weight, self.bias, eps=self.eps)


class Embedding(Module):
    """Token / position embedding table."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: Optional[np.random.Generator] = None,
        init_std: float = 0.02,
        backend: Optional[ArrayBackend] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(
            tinit.adopt(tinit.normal_init((num_embeddings, embedding_dim), rng, std=init_std), backend),
            name="weight", backend=backend,
        )

    def forward(self, indices: Any) -> ag.Tensor:
        # Host index arrays adopt into the weight's backend inside the lookup
        # (the h2d crossing of the input batch); native index arrays pass
        # straight through — after the same integer coercion the host path
        # has always applied.
        backend = self.weight.backend
        if backend.is_backend_array(indices):
            if not np.issubdtype(backend.dtype_of(indices), np.integer):
                xp = backend.namespace_for(indices)
                indices = xp.astype(indices, xp.int64, copy=False)
            return ag.embedding(self.weight, indices)
        return ag.embedding(self.weight, np.asarray(indices, dtype=np.int64))


class Dropout(Module):
    """Inverted dropout; identity in eval mode.

    The mask is drawn on the host from ``rng`` (reproducible across array
    backends) and adopted into the input's backend by the dropout kernel.
    """

    def __init__(self, p: float = 0.1, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def forward(self, x: ag.Tensor) -> ag.Tensor:
        return ag.dropout(x, self.p, self.rng, training=self.training)


class GELUActivation(Module):
    """GELU activation module."""

    def forward(self, x: ag.Tensor) -> ag.Tensor:
        return ag.gelu(x)


class ReLUActivation(Module):
    """ReLU activation module."""

    def forward(self, x: ag.Tensor) -> ag.Tensor:
        return ag.relu(x)


class TanhActivation(Module):
    """Tanh activation module (used by the BERT pooler)."""

    def forward(self, x: ag.Tensor) -> ag.Tensor:
        return ag.tanh(x)

"""Standard layers: Linear, LayerNorm, Embedding, Dropout, activations."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module, Parameter
from repro.tensor import autograd as ag
from repro.tensor import init as tinit

__all__ = [
    "Linear",
    "LayerNorm",
    "Embedding",
    "Dropout",
    "GELUActivation",
    "ReLUActivation",
    "TanhActivation",
]


class Linear(Module):
    """Affine transform ``y = x W + b`` with weight shape ``(in, out)``.

    The weight layout intentionally matches the paper's GEMM orientation
    (activations times a parameter matrix, e.g. ``X x W_Q``), so the attention
    module can hand the raw weight matrix straight to the ABFT checksum
    encoder without transposition.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: Optional[np.random.Generator] = None,
        bias: bool = True,
        init_std: float = 0.02,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(tinit.normal_init((in_features, out_features), rng, std=init_std), name="weight")
        self.bias = Parameter(tinit.zeros_init((out_features,)), name="bias") if bias else None

    def forward(self, x: ag.Tensor) -> ag.Tensor:
        out = ag.matmul(x, self.weight)
        if self.bias is not None:
            out = ag.add(out, self.bias)
        return out


class LayerNorm(Module):
    """Layer normalisation over the last dimension with learnable affine."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.normalized_shape = normalized_shape
        self.eps = eps
        self.weight = Parameter(np.ones(normalized_shape), name="weight")
        self.bias = Parameter(np.zeros(normalized_shape), name="bias")

    def forward(self, x: ag.Tensor) -> ag.Tensor:
        return ag.layer_norm(x, self.weight, self.bias, eps=self.eps)


class Embedding(Module):
    """Token / position embedding table."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: Optional[np.random.Generator] = None,
        init_std: float = 0.02,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(tinit.normal_init((num_embeddings, embedding_dim), rng, std=init_std), name="weight")

    def forward(self, indices: np.ndarray) -> ag.Tensor:
        return ag.embedding(self.weight, np.asarray(indices, dtype=np.int64))


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.1, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def forward(self, x: ag.Tensor) -> ag.Tensor:
        return ag.dropout(x, self.p, self.rng, training=self.training)


class GELUActivation(Module):
    """GELU activation module."""

    def forward(self, x: ag.Tensor) -> ag.Tensor:
        return ag.gelu(x)


class ReLUActivation(Module):
    """ReLU activation module."""

    def forward(self, x: ag.Tensor) -> ag.Tensor:
        return ag.relu(x)


class TanhActivation(Module):
    """Tanh activation module (used by the BERT pooler)."""

    def forward(self, x: ag.Tensor) -> ag.Tensor:
        return ag.tanh(x)

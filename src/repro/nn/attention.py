"""Instrumented multi-head attention.

This module implements the exact execution flow of Figure 1 in the paper —
six GEMMs plus one softmax::

    Q  = X  x W_Q          (op "xq")
    K  = X  x W_K          (op "xk")
    V  = X  x W_V          (op "xv")
    AS = Q  x K^T          (op "qk",  per head)
    AP = softmax(AS / sqrt(d_k) + mask)
    CL = AP x V            (op "apv", per head)
    O  = CL x W_O          (op "clo")

and exposes every GEMM through the :class:`AttentionHooks` interface.  A hook
receives the GEMM's operands and raw output and may return a modified output.
Two subsystems plug in here:

* the fault injector (:mod:`repro.faults.injector`) corrupts outputs to
  simulate transient hardware faults striking the computation, and
* ATTNChecker (:mod:`repro.core.attention_checker`) maintains checksums,
  detects and corrects the corrupted values at the protection-section
  boundaries of Section 4.4.

Hooks run in registration order, so registering ``[injector, checker]``
reproduces the paper's evaluation setup (fault occurs during the operation,
ABFT repairs it before the value is consumed downstream).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.backend import ArrayBackend, backend_of
from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module
from repro.tensor import autograd as ag

__all__ = [
    "AttentionOp",
    "GemmContext",
    "SectionContext",
    "AttentionHooks",
    "ComposedHooks",
    "RecordingHooks",
    "MultiHeadAttention",
    "ATTENTION_MATRIX_NAMES",
    "SECTION_BOUNDARY_OPS",
]


class AttentionOp(str, enum.Enum):
    """Names of the six GEMMs in the attention execution flow."""

    XQ = "xq"
    XK = "xk"
    XV = "xv"
    QK = "qk"
    APV = "apv"
    CLO = "clo"

    @property
    def output_matrix(self) -> str:
        """Name of the matrix this GEMM produces (paper's Table 1 notation)."""
        return _OP_TO_MATRIX[self]


_OP_TO_MATRIX = {
    AttentionOp.XQ: "Q",
    AttentionOp.XK: "K",
    AttentionOp.XV: "V",
    AttentionOp.QK: "AS",
    AttentionOp.APV: "CL",
    AttentionOp.CLO: "O",
}

#: All matrices observable during one attention forward pass, in dataflow order.
ATTENTION_MATRIX_NAMES = ("Q", "K", "V", "AS", "AP", "CL", "O")

#: GEMMs that end a protection section (Section 4.4): the boundary matrices
#: ``AS``, ``CL`` and ``O`` are produced by these three operations.  The
#: section-level hook :meth:`AttentionHooks.on_section_output` fires exactly
#: here, after the per-GEMM hooks have run on the same output.
SECTION_BOUNDARY_OPS = {
    AttentionOp.QK: "AS",
    AttentionOp.APV: "CL",
    AttentionOp.CLO: "O",
}


@dataclass
class GemmContext:
    """Everything a hook needs to know about one GEMM invocation.

    Attributes
    ----------
    op:
        Which of the six GEMMs is being executed.
    a, b:
        The operand arrays actually fed to the GEMM (post head-split for the
        per-head operations).  Hooks must treat them as read-only.
    layer_index:
        Index of the attention layer inside the model.
    step:
        Monotonic counter of attention forward passes for this layer
        (increments once per call, i.e. once per training micro-step).
    num_heads, head_dim, seq_len:
        Geometry of the attention call, needed by the checksum machinery.
    """

    op: AttentionOp
    a: np.ndarray
    b: np.ndarray
    layer_index: int
    step: int
    num_heads: int
    head_dim: int
    seq_len: int
    bias: Optional[np.ndarray] = None


@dataclass
class SectionContext:
    """Everything a section-level hook needs about one protection section.

    Delivered by :meth:`AttentionHooks.on_section_output` at the *boundary*
    GEMM of each protection section (``qk`` for :math:`S_{AS}`, ``apv`` for
    :math:`S_{CL}`, ``clo`` for :math:`S_O`), carrying every operand of the
    whole section so a checksum-passing engine can encode the section inputs
    once and carry the checksums through all member GEMMs in a single fused
    dispatch, instead of one Python round-trip per GEMM.

    Attributes
    ----------
    section:
        Section name — ``"AS"``, ``"CL"`` or ``"O"``.
    operands:
        Named operand arrays of the section (read-only for hooks):

        * ``"AS"``: ``x``, ``w_q``, ``w_k``, ``bias_q``, ``bias_k`` (biases
          may be ``None``), plus the boundary GEMM operands ``q`` (split
          heads, ``(B, H, S, dh)``) and ``k_t`` (``(B, H, dh, S)``).
        * ``"CL"``: ``x``, ``w_v``, ``bias_v``, plus ``ap`` (attention
          probabilities actually fed to the GEMM, i.e. post-dropout) and
          ``v`` (split heads).
        * ``"O"``: ``cl`` (merged heads, ``(B, S, D)``) and ``w_o``.
    layer_index / step / num_heads / head_dim / seq_len:
        Same geometry as :class:`GemmContext`.
    backend:
        The :class:`repro.backend.ArrayBackend` that owns the section's
        arrays (resolved from the boundary output's type).  Checksum-passing
        engines use it to run encode / carry / verify / repair natively in
        the producing array library, so device-resident section outputs are
        never round-tripped through host memory on the critical path.
        ``None`` falls back to per-array dispatch.
    """

    section: str
    operands: Dict[str, Optional[np.ndarray]]
    layer_index: int
    step: int
    num_heads: int
    head_dim: int
    seq_len: int
    backend: Optional[ArrayBackend] = None


class AttentionHooks:
    """Base class for attention instrumentation.

    Subclasses override any subset of the callbacks.  The default
    implementation is a no-op, so a hook only pays for what it uses.
    """

    def on_attention_start(self, layer_index: int, step: int) -> None:
        """Called before any GEMM of a forward pass runs."""

    def on_gemm_output(self, ctx: GemmContext, out: np.ndarray) -> np.ndarray:
        """Called with the raw output of each GEMM; returns the output to use."""
        return out

    def on_section_output(self, ctx: SectionContext, out: np.ndarray) -> np.ndarray:
        """Called with the boundary matrix of each protection section.

        Fires after every per-GEMM :meth:`on_gemm_output` hook has processed
        the same array (so an injector registered before a checker corrupts
        the matrix first, exactly as in the per-GEMM protocol).  Returns the
        output to use downstream.
        """
        return out

    def consumes_gemm_outputs(self) -> bool:
        """Whether this hook needs the per-GEMM :meth:`on_gemm_output` calls.

        :class:`MultiHeadAttention` skips per-GEMM dispatch entirely (no
        :class:`GemmContext` is built) for non-boundary GEMMs when no attached
        hook consumes them — this is what reduces a fused section-level
        checker to three dispatches per layer instead of six.  The default
        detects an overridden :meth:`on_gemm_output`; hooks that override it
        but do not need every GEMM (e.g. a section-level checker) override
        this to return False.
        """
        return type(self).on_gemm_output is not AttentionHooks.on_gemm_output

    def on_matrix(self, name: str, data: np.ndarray, layer_index: int, step: int) -> None:
        """Observation callback for non-GEMM intermediate matrices (e.g. AP)."""

    def on_attention_end(self, layer_index: int, step: int) -> None:
        """Called after the output projection completes."""


class ComposedHooks(AttentionHooks):
    """Run several hooks in sequence; GEMM outputs are threaded through them."""

    def __init__(self, hooks: Sequence[AttentionHooks]) -> None:
        self.hooks: List[AttentionHooks] = list(hooks)

    def on_attention_start(self, layer_index: int, step: int) -> None:
        for h in self.hooks:
            h.on_attention_start(layer_index, step)

    def on_gemm_output(self, ctx: GemmContext, out: np.ndarray) -> np.ndarray:
        for h in self.hooks:
            out = h.on_gemm_output(ctx, out)
        return out

    def on_section_output(self, ctx: SectionContext, out: np.ndarray) -> np.ndarray:
        for h in self.hooks:
            out = h.on_section_output(ctx, out)
        return out

    def consumes_gemm_outputs(self) -> bool:
        return any(h.consumes_gemm_outputs() for h in self.hooks)

    def on_matrix(self, name: str, data: np.ndarray, layer_index: int, step: int) -> None:
        for h in self.hooks:
            h.on_matrix(name, data, layer_index, step)

    def on_attention_end(self, layer_index: int, step: int) -> None:
        for h in self.hooks:
            h.on_attention_end(layer_index, step)


class RecordingHooks(AttentionHooks):
    """Record every intermediate matrix of the forward pass.

    Used by the error-propagation study (Table 2) to compare a faulty run
    against a clean reference run matrix-by-matrix.  Matrices are stored under
    the paper's names (``Q``, ``K``, ``V``, ``AS``, ``AP``, ``CL``, ``O``),
    keyed additionally by layer index.
    """

    def __init__(self, copy: bool = True) -> None:
        self.copy = copy
        self.records: Dict[int, Dict[str, np.ndarray]] = {}

    def _snapshot(self, data: np.ndarray) -> np.ndarray:
        return backend_of(data).copy(data) if self.copy else data

    def on_attention_start(self, layer_index: int, step: int) -> None:
        self.records.setdefault(layer_index, {})

    def on_gemm_output(self, ctx: GemmContext, out: np.ndarray) -> np.ndarray:
        name = ctx.op.output_matrix
        self.records.setdefault(ctx.layer_index, {})[name] = self._snapshot(out)
        return out

    def on_matrix(self, name: str, data: np.ndarray, layer_index: int, step: int) -> None:
        self.records.setdefault(layer_index, {})[name] = self._snapshot(data)

    def matrices(self, layer_index: int = 0) -> Dict[str, np.ndarray]:
        """All recorded matrices of one layer."""
        return self.records.get(layer_index, {})

    def clear(self) -> None:
        self.records.clear()


class MultiHeadAttention(Module):
    """Multi-head self-attention with operation-boundary instrumentation.

    Parameters
    ----------
    hidden_size:
        Model width ``D``.
    num_heads:
        Number of attention heads ``H`` (``D`` must be divisible by ``H``).
    dropout_p:
        Dropout applied to the attention probabilities (``AP``) and to the
        output projection, as in BERT/GPT-2.
    layer_index:
        Position of this layer in the parent model (reported to hooks).
    causal:
        Whether to apply a causal (autoregressive) mask, as GPT-2/GPT-Neo do.
    local_window:
        If set, restrict attention to the previous ``local_window`` positions
        (GPT-Neo's local-attention layers).
    rng:
        Generator used for weight init and dropout masks.
    backend:
        Optional :class:`repro.backend.ArrayBackend` the projection weights
        adopt into at construction (``None`` = the NumPy substrate).  The
        forward pass then runs natively on that backend; host-born data
        (attention masks, dropout masks) is adopted at the op that uses it.
    """

    def __init__(
        self,
        hidden_size: int,
        num_heads: int,
        dropout_p: float = 0.0,
        layer_index: int = 0,
        causal: bool = False,
        local_window: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        bias: bool = True,
        backend: Optional[ArrayBackend] = None,
    ) -> None:
        super().__init__()
        if hidden_size % num_heads:
            raise ValueError(f"hidden_size {hidden_size} not divisible by num_heads {num_heads}")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.hidden_size = hidden_size
        self.num_heads = num_heads
        self.head_dim = hidden_size // num_heads
        self.layer_index = layer_index
        self.causal = causal
        self.local_window = local_window
        self.scale = 1.0 / np.sqrt(self.head_dim)
        self.array_backend = backend

        self.w_q = Linear(hidden_size, hidden_size, rng=rng, bias=bias, backend=backend)
        self.w_k = Linear(hidden_size, hidden_size, rng=rng, bias=bias, backend=backend)
        self.w_v = Linear(hidden_size, hidden_size, rng=rng, bias=bias, backend=backend)
        self.w_o = Linear(hidden_size, hidden_size, rng=rng, bias=bias, backend=backend)
        self.attn_dropout = Dropout(dropout_p, rng=rng)
        self.out_dropout = Dropout(dropout_p, rng=rng)

        self.hooks: Optional[AttentionHooks] = None
        self._step = 0

    # -- instrumentation -------------------------------------------------------

    def set_hooks(self, hooks: Optional[AttentionHooks]) -> None:
        """Attach (or detach, with ``None``) the instrumentation hooks."""
        self.hooks = hooks

    def _gemm_hook(
        self,
        op: AttentionOp,
        bias: Optional[np.ndarray] = None,
        section_operands: Optional[Dict[str, Optional[np.ndarray]]] = None,
    ) -> Optional[Callable]:
        """Build the ``forward_hook`` closure for one named GEMM.

        For the three section-boundary GEMMs (``qk``, ``apv``, ``clo``) the
        closure additionally dispatches :meth:`AttentionHooks.on_section_output`
        with a :class:`SectionContext` built from ``section_operands``, after
        the per-GEMM hooks have run.
        """
        if self.hooks is None:
            return None
        hooks = self.hooks
        layer_index = self.layer_index
        step = self._step
        num_heads = self.num_heads
        head_dim = self.head_dim
        section = SECTION_BOUNDARY_OPS.get(op)
        consumes_gemms = hooks.consumes_gemm_outputs()
        if not consumes_gemms and section is None:
            # No attached hook wants per-GEMM outputs and this GEMM ends no
            # section: skip dispatch entirely (the fused checker's 3-instead-
            # of-6 dispatches per layer).
            return None

        def hook_with_ctx(a: np.ndarray, b: np.ndarray, out: np.ndarray) -> np.ndarray:
            if consumes_gemms:
                ctx = GemmContext(
                    op=op,
                    a=a,
                    b=b,
                    layer_index=layer_index,
                    step=step,
                    num_heads=num_heads,
                    head_dim=head_dim,
                    seq_len=out.shape[-2],
                    bias=bias,
                )
                out = hooks.on_gemm_output(ctx, out)
            if section is not None:
                # Prefer the substrate's own backend handle when it owns the
                # boundary output: a wrapper backend (spy, pinned instance)
                # would be lost by type-keyed resolution, which can only find
                # the registry's canonical instance for the array type.
                own = self.array_backend
                if own is None or not own.is_backend_array(out):
                    own = backend_of(out)
                sctx = SectionContext(
                    section=section,
                    operands=section_operands or {},
                    layer_index=layer_index,
                    step=step,
                    num_heads=num_heads,
                    head_dim=head_dim,
                    seq_len=out.shape[-2],
                    backend=own,
                )
                out = hooks.on_section_output(sctx, out)
            return out

        return hook_with_ctx

    def _instrumented_matmul(
        self,
        a: ag.Tensor,
        b: ag.Tensor,
        op: AttentionOp,
        bias: Optional[np.ndarray] = None,
        section_operands: Optional[Dict[str, Optional[np.ndarray]]] = None,
    ) -> ag.Tensor:
        """Matmul whose raw output is routed through the hooks."""
        hook_with_ctx = self._gemm_hook(op, bias=bias, section_operands=section_operands)
        if hook_with_ctx is None:
            return ag.matmul(a, b, name=op.output_matrix)
        a_data, b_data = a.data, b.data
        return ag.matmul(
            a,
            b,
            forward_hook=lambda out: hook_with_ctx(a_data, b_data, out),
            name=op.output_matrix,
        )

    # -- masking ----------------------------------------------------------------

    def build_mask(self, seq_len: int, attention_mask: Optional[np.ndarray]) -> Optional[np.ndarray]:
        """Combine padding, causal and local-window masks into one additive mask.

        Masked positions receive a large negative value (-1e9) rather than
        -inf so a fully-masked row degrades gracefully instead of producing
        spurious NaN that would contaminate the fault-propagation study.
        """
        mask = None
        if self.causal:
            causal = np.triu(np.full((seq_len, seq_len), -1e9), k=1)
            if self.local_window is not None and self.local_window < seq_len:
                too_far = np.tril(np.full((seq_len, seq_len), -1e9), k=-self.local_window)
                causal = causal + too_far
            mask = causal[None, None, :, :]
        if attention_mask is not None:
            pad = np.asarray(attention_mask, dtype=np.float64)
            # attention_mask is (B, S) with 1 = attend, 0 = padding.
            pad = (1.0 - pad)[:, None, None, :] * -1e9
            mask = pad if mask is None else mask + pad
        return mask

    # -- forward -----------------------------------------------------------------

    def forward(self, x: ag.Tensor, attention_mask: Optional[np.ndarray] = None) -> ag.Tensor:
        """Run multi-head self-attention on ``x`` of shape ``(B, S, D)``."""
        hooks = self.hooks
        self._step += 1
        step = self._step
        if hooks is not None:
            hooks.on_attention_start(self.layer_index, step)

        batch, seq_len, _ = x.shape

        bias_q = self.w_q.bias.data if self.w_q.bias is not None else None
        bias_k = self.w_k.bias.data if self.w_k.bias is not None else None
        bias_v = self.w_v.bias.data if self.w_v.bias is not None else None
        bias_o = self.w_o.bias.data if self.w_o.bias is not None else None

        q_proj = self._instrumented_matmul(x, self.w_q.weight, AttentionOp.XQ, bias=bias_q)
        k_proj = self._instrumented_matmul(x, self.w_k.weight, AttentionOp.XK, bias=bias_k)
        v_proj = self._instrumented_matmul(x, self.w_v.weight, AttentionOp.XV, bias=bias_v)
        if self.w_q.bias is not None:
            q_proj = ag.add(q_proj, self.w_q.bias)
        if self.w_k.bias is not None:
            k_proj = ag.add(k_proj, self.w_k.bias)
        if self.w_v.bias is not None:
            v_proj = ag.add(v_proj, self.w_v.bias)

        q = ag.split_heads(q_proj, self.num_heads)  # (B, H, S, dh)
        k = ag.split_heads(k_proj, self.num_heads)
        v = ag.split_heads(v_proj, self.num_heads)

        k_t = ag.transpose(k, (0, 1, 3, 2))
        attention_scores = self._instrumented_matmul(
            q, k_t, AttentionOp.QK,
            section_operands={
                "x": x.data,
                "w_q": self.w_q.weight.data,
                "w_k": self.w_k.weight.data,
                "bias_q": bias_q,
                "bias_k": bias_k,
                "q": q.data,
                "k_t": k_t.data,
            },
        )

        scaled = ag.mul(attention_scores, self.scale)
        mask = self.build_mask(seq_len, attention_mask)
        if mask is not None:
            scaled = ag.add(scaled, mask)

        attention_probs = ag.softmax(scaled, axis=-1)
        if hooks is not None:
            hooks.on_matrix("AP", attention_probs.data, self.layer_index, step)
        attention_probs = self.attn_dropout(attention_probs)

        context = self._instrumented_matmul(
            attention_probs, v, AttentionOp.APV,
            section_operands={
                "x": x.data,
                "w_v": self.w_v.weight.data,
                "bias_v": bias_v,
                "ap": attention_probs.data,
                "v": v.data,
            },
        )
        context_merged = ag.merge_heads(context)
        if hooks is not None:
            hooks.on_matrix("CL_merged", context_merged.data, self.layer_index, step)

        output = self._instrumented_matmul(
            context_merged, self.w_o.weight, AttentionOp.CLO, bias=bias_o,
            section_operands={"cl": context_merged.data, "w_o": self.w_o.weight.data},
        )
        if self.w_o.bias is not None:
            output = ag.add(output, self.w_o.bias)
        output = self.out_dropout(output)

        if hooks is not None:
            hooks.on_attention_end(self.layer_index, step)
        return output

"""Instrumented multi-head attention.

This module implements the exact execution flow of Figure 1 in the paper —
six GEMMs plus one softmax::

    Q  = X  x W_Q          (op "xq")
    K  = X  x W_K          (op "xk")
    V  = X  x W_V          (op "xv")
    AS = Q  x K^T          (op "qk",  per head)
    AP = softmax(AS / sqrt(d_k) + mask)
    CL = AP x V            (op "apv", per head)
    O  = CL x W_O          (op "clo")

and exposes every GEMM through the :class:`AttentionHooks` interface.  A hook
receives the GEMM's operands and raw output and may return a modified output.
Two subsystems plug in here:

* the fault injector (:mod:`repro.faults.injector`) corrupts outputs to
  simulate transient hardware faults striking the computation, and
* ATTNChecker (:mod:`repro.core.attention_checker`) maintains checksums,
  detects and corrects the corrupted values at the protection-section
  boundaries of Section 4.4.

Hooks run in registration order, so registering ``[injector, checker]``
reproduces the paper's evaluation setup (fault occurs during the operation,
ABFT repairs it before the value is consumed downstream).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.backend import ArrayBackend, backend_of
from repro.core.hooks import (
    SECTION_BOUNDARY_OPS,
    AttentionHooks,
    AttentionOp,
    GemmContext,
    SectionContext,
)
from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module
from repro.tensor import autograd as ag

__all__ = [
    "AttentionOp",
    "GemmContext",
    "SectionContext",
    "AttentionHooks",
    "ComposedHooks",
    "RecordingHooks",
    "MultiHeadAttention",
    "ATTENTION_MATRIX_NAMES",
    "SECTION_BOUNDARY_OPS",
]

#: All matrices observable during one attention forward pass, in dataflow order.
ATTENTION_MATRIX_NAMES = ("Q", "K", "V", "AS", "AP", "CL", "O")


class ComposedHooks(AttentionHooks):
    """Run several hooks in sequence; GEMM outputs are threaded through them."""

    def __init__(self, hooks: Sequence[AttentionHooks]) -> None:
        self.hooks: List[AttentionHooks] = list(hooks)

    def on_attention_start(self, layer_index: int, step: int) -> None:
        for h in self.hooks:
            h.on_attention_start(layer_index, step)

    def on_gemm_output(self, ctx: GemmContext, out: np.ndarray) -> np.ndarray:
        for h in self.hooks:
            out = h.on_gemm_output(ctx, out)
        return out

    def on_section_output(self, ctx: SectionContext, out: np.ndarray) -> np.ndarray:
        for h in self.hooks:
            out = h.on_section_output(ctx, out)
        return out

    def consumes_gemm_outputs(self) -> bool:
        return any(h.consumes_gemm_outputs() for h in self.hooks)

    def on_matrix(self, name: str, data: np.ndarray, layer_index: int, step: int) -> None:
        for h in self.hooks:
            h.on_matrix(name, data, layer_index, step)

    def on_attention_end(self, layer_index: int, step: int) -> None:
        for h in self.hooks:
            h.on_attention_end(layer_index, step)


class RecordingHooks(AttentionHooks):
    """Record every intermediate matrix of the forward pass.

    Used by the error-propagation study (Table 2) to compare a faulty run
    against a clean reference run matrix-by-matrix.  Matrices are stored under
    the paper's names (``Q``, ``K``, ``V``, ``AS``, ``AP``, ``CL``, ``O``),
    keyed additionally by layer index.
    """

    def __init__(self, copy: bool = True) -> None:
        self.copy = copy
        self.records: Dict[int, Dict[str, np.ndarray]] = {}

    def _snapshot(self, data: np.ndarray) -> np.ndarray:
        return backend_of(data).copy(data) if self.copy else data

    def on_attention_start(self, layer_index: int, step: int) -> None:
        self.records.setdefault(layer_index, {})

    def on_gemm_output(self, ctx: GemmContext, out: np.ndarray) -> np.ndarray:
        name = ctx.op.output_matrix
        self.records.setdefault(ctx.layer_index, {})[name] = self._snapshot(out)
        return out

    def on_matrix(self, name: str, data: np.ndarray, layer_index: int, step: int) -> None:
        self.records.setdefault(layer_index, {})[name] = self._snapshot(data)

    def matrices(self, layer_index: int = 0) -> Dict[str, np.ndarray]:
        """All recorded matrices of one layer."""
        return self.records.get(layer_index, {})

    def clear(self) -> None:
        self.records.clear()


class MultiHeadAttention(Module):
    """Multi-head self-attention with operation-boundary instrumentation.

    Parameters
    ----------
    hidden_size:
        Model width ``D``.
    num_heads:
        Number of attention heads ``H`` (``D`` must be divisible by ``H``).
    dropout_p:
        Dropout applied to the attention probabilities (``AP``) and to the
        output projection, as in BERT/GPT-2.
    layer_index:
        Position of this layer in the parent model (reported to hooks).
    causal:
        Whether to apply a causal (autoregressive) mask, as GPT-2/GPT-Neo do.
    local_window:
        If set, restrict attention to the previous ``local_window`` positions
        (GPT-Neo's local-attention layers).
    rng:
        Generator used for weight init and dropout masks.
    backend:
        Optional :class:`repro.backend.ArrayBackend` the projection weights
        adopt into at construction (``None`` = the NumPy substrate).  The
        forward pass then runs natively on that backend; host-born data
        (attention masks, dropout masks) is adopted at the op that uses it.
    """

    def __init__(
        self,
        hidden_size: int,
        num_heads: int,
        dropout_p: float = 0.0,
        layer_index: int = 0,
        causal: bool = False,
        local_window: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        bias: bool = True,
        backend: Optional[ArrayBackend] = None,
    ) -> None:
        super().__init__()
        if hidden_size % num_heads:
            raise ValueError(f"hidden_size {hidden_size} not divisible by num_heads {num_heads}")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.hidden_size = hidden_size
        self.num_heads = num_heads
        self.head_dim = hidden_size // num_heads
        self.layer_index = layer_index
        self.causal = causal
        self.local_window = local_window
        self.scale = 1.0 / np.sqrt(self.head_dim)
        self.array_backend = backend

        self.w_q = Linear(hidden_size, hidden_size, rng=rng, bias=bias, backend=backend)
        self.w_k = Linear(hidden_size, hidden_size, rng=rng, bias=bias, backend=backend)
        self.w_v = Linear(hidden_size, hidden_size, rng=rng, bias=bias, backend=backend)
        self.w_o = Linear(hidden_size, hidden_size, rng=rng, bias=bias, backend=backend)
        self.attn_dropout = Dropout(dropout_p, rng=rng)
        self.out_dropout = Dropout(dropout_p, rng=rng)

        self.hooks: Optional[AttentionHooks] = None
        self._step = 0

    # -- instrumentation -------------------------------------------------------

    def set_hooks(self, hooks: Optional[AttentionHooks]) -> None:
        """Attach (or detach, with ``None``) the instrumentation hooks."""
        self.hooks = hooks

    def _gemm_hook(
        self,
        op: AttentionOp,
        bias: Optional[np.ndarray] = None,
        section_operands: Optional[Dict[str, Optional[np.ndarray]]] = None,
    ) -> Optional[Callable]:
        """Build the ``forward_hook`` closure for one named GEMM.

        For the three section-boundary GEMMs (``qk``, ``apv``, ``clo``) the
        closure additionally dispatches :meth:`AttentionHooks.on_section_output`
        with a :class:`SectionContext` built from ``section_operands``, after
        the per-GEMM hooks have run.
        """
        if self.hooks is None:
            return None
        hooks = self.hooks
        layer_index = self.layer_index
        step = self._step
        num_heads = self.num_heads
        head_dim = self.head_dim
        section = SECTION_BOUNDARY_OPS.get(op)
        consumes_gemms = hooks.consumes_gemm_outputs()
        if not consumes_gemms and section is None:
            # No attached hook wants per-GEMM outputs and this GEMM ends no
            # section: skip dispatch entirely (the fused checker's 3-instead-
            # of-6 dispatches per layer).
            return None

        def hook_with_ctx(a: np.ndarray, b: np.ndarray, out: np.ndarray) -> np.ndarray:
            if consumes_gemms:
                ctx = GemmContext(
                    op=op,
                    a=a,
                    b=b,
                    layer_index=layer_index,
                    step=step,
                    num_heads=num_heads,
                    head_dim=head_dim,
                    seq_len=out.shape[-2],
                    bias=bias,
                )
                out = hooks.on_gemm_output(ctx, out)
            if section is not None:
                # Prefer the substrate's own backend handle when it owns the
                # boundary output: a wrapper backend (spy, pinned instance)
                # would be lost by type-keyed resolution, which can only find
                # the registry's canonical instance for the array type.
                own = self.array_backend
                if own is None or not own.is_backend_array(out):
                    own = backend_of(out)
                sctx = SectionContext(
                    section=section,
                    operands=section_operands or {},
                    layer_index=layer_index,
                    step=step,
                    num_heads=num_heads,
                    head_dim=head_dim,
                    seq_len=out.shape[-2],
                    backend=own,
                )
                out = hooks.on_section_output(sctx, out)
            return out

        return hook_with_ctx

    def _instrumented_matmul(
        self,
        a: ag.Tensor,
        b: ag.Tensor,
        op: AttentionOp,
        bias: Optional[np.ndarray] = None,
        section_operands: Optional[Dict[str, Optional[np.ndarray]]] = None,
    ) -> ag.Tensor:
        """Matmul whose raw output is routed through the hooks."""
        hook_with_ctx = self._gemm_hook(op, bias=bias, section_operands=section_operands)
        if hook_with_ctx is None:
            return ag.matmul(a, b, name=op.output_matrix)
        a_data, b_data = a.data, b.data
        return ag.matmul(
            a,
            b,
            forward_hook=lambda out: hook_with_ctx(a_data, b_data, out),
            name=op.output_matrix,
        )

    # -- masking ----------------------------------------------------------------

    def build_mask(self, seq_len: int, attention_mask: Optional[np.ndarray]) -> Optional[np.ndarray]:
        """Combine padding, causal and local-window masks into one additive mask.

        Masked positions receive a large negative value (-1e9) rather than
        -inf so a fully-masked row degrades gracefully instead of producing
        spurious NaN that would contaminate the fault-propagation study.
        """
        mask = None
        if self.causal:
            causal = np.triu(np.full((seq_len, seq_len), -1e9), k=1)
            if self.local_window is not None and self.local_window < seq_len:
                too_far = np.tril(np.full((seq_len, seq_len), -1e9), k=-self.local_window)
                causal = causal + too_far
            mask = causal[None, None, :, :]
        if attention_mask is not None:
            pad = np.asarray(attention_mask, dtype=np.float64)
            # attention_mask is (B, S) with 1 = attend, 0 = padding.
            pad = (1.0 - pad)[:, None, None, :] * -1e9
            mask = pad if mask is None else mask + pad
        return mask

    # -- forward -----------------------------------------------------------------

    def forward(self, x: ag.Tensor, attention_mask: Optional[np.ndarray] = None) -> ag.Tensor:
        """Run multi-head self-attention on ``x`` of shape ``(B, S, D)``."""
        hooks = self.hooks
        self._step += 1
        step = self._step
        if hooks is not None:
            hooks.on_attention_start(self.layer_index, step)

        batch, seq_len, _ = x.shape

        bias_q = self.w_q.bias.data if self.w_q.bias is not None else None
        bias_k = self.w_k.bias.data if self.w_k.bias is not None else None
        bias_v = self.w_v.bias.data if self.w_v.bias is not None else None
        bias_o = self.w_o.bias.data if self.w_o.bias is not None else None

        q_proj = self._instrumented_matmul(x, self.w_q.weight, AttentionOp.XQ, bias=bias_q)
        k_proj = self._instrumented_matmul(x, self.w_k.weight, AttentionOp.XK, bias=bias_k)
        v_proj = self._instrumented_matmul(x, self.w_v.weight, AttentionOp.XV, bias=bias_v)
        if self.w_q.bias is not None:
            q_proj = ag.add(q_proj, self.w_q.bias)
        if self.w_k.bias is not None:
            k_proj = ag.add(k_proj, self.w_k.bias)
        if self.w_v.bias is not None:
            v_proj = ag.add(v_proj, self.w_v.bias)

        q = ag.split_heads(q_proj, self.num_heads)  # (B, H, S, dh)
        k = ag.split_heads(k_proj, self.num_heads)
        v = ag.split_heads(v_proj, self.num_heads)

        k_t = ag.transpose(k, (0, 1, 3, 2))
        attention_scores = self._instrumented_matmul(
            q, k_t, AttentionOp.QK,
            section_operands={
                "x": x.data,
                "w_q": self.w_q.weight.data,
                "w_k": self.w_k.weight.data,
                "bias_q": bias_q,
                "bias_k": bias_k,
                "q": q.data,
                "k_t": k_t.data,
            },
        )

        scaled = ag.mul(attention_scores, self.scale)
        mask = self.build_mask(seq_len, attention_mask)
        if mask is not None:
            scaled = ag.add(scaled, mask)

        attention_probs = ag.softmax(scaled, axis=-1)
        if hooks is not None:
            hooks.on_matrix("AP", attention_probs.data, self.layer_index, step)
        attention_probs = self.attn_dropout(attention_probs)

        context = self._instrumented_matmul(
            attention_probs, v, AttentionOp.APV,
            section_operands={
                "x": x.data,
                "w_v": self.w_v.weight.data,
                "bias_v": bias_v,
                "ap": attention_probs.data,
                "v": v.data,
            },
        )
        context_merged = ag.merge_heads(context)
        if hooks is not None:
            hooks.on_matrix("CL_merged", context_merged.data, self.layer_index, step)

        output = self._instrumented_matmul(
            context_merged, self.w_o.weight, AttentionOp.CLO, bias=bias_o,
            section_operands={"cl": context_merged.data, "w_o": self.w_o.weight.data},
        )
        if self.w_o.bias is not None:
            output = ag.add(output, self.w_o.bias)
        output = self.out_dropout(output)

        if hooks is not None:
            hooks.on_attention_end(self.layer_index, step)
        return output

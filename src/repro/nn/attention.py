"""Instrumented multi-head attention.

This module implements the exact execution flow of Figure 1 in the paper —
six GEMMs plus one softmax::

    Q  = X  x W_Q          (op "xq")
    K  = X  x W_K          (op "xk")
    V  = X  x W_V          (op "xv")
    AS = Q  x K^T          (op "qk",  per head)
    AP = softmax(AS / sqrt(d_k) + mask)
    CL = AP x V            (op "apv", per head)
    O  = CL x W_O          (op "clo")

and exposes every GEMM through the :class:`AttentionHooks` interface.  A hook
receives the GEMM's operands and raw output and may return a modified output.
Two subsystems plug in here:

* the fault injector (:mod:`repro.faults.injector`) corrupts outputs to
  simulate transient hardware faults striking the computation, and
* ATTNChecker (:mod:`repro.core.attention_checker`) maintains checksums,
  detects and corrects the corrupted values at the protection-section
  boundaries of Section 4.4.

Hooks run in registration order, so registering ``[injector, checker]``
reproduces the paper's evaluation setup (fault occurs during the operation,
ABFT repairs it before the value is consumed downstream).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.backend import ArrayBackend, backend_of, get_backend
from repro.core.hooks import (
    FFN_SECTION_BOUNDARY_OPS,
    SECTION_BOUNDARY_OPS,
    AttentionHooks,
    AttentionOp,
    FeedForwardOp,
    GemmContext,
    SectionContext,
)
from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module
from repro.tensor import autograd as ag

__all__ = [
    "AttentionOp",
    "FeedForwardOp",
    "GemmContext",
    "SectionContext",
    "AttentionHooks",
    "ComposedHooks",
    "RecordingHooks",
    "LayerKVCache",
    "MultiHeadAttention",
    "ATTENTION_MATRIX_NAMES",
    "SECTION_BOUNDARY_OPS",
    "FFN_SECTION_BOUNDARY_OPS",
]

#: All matrices observable during one attention forward pass, in dataflow order.
ATTENTION_MATRIX_NAMES = ("Q", "K", "V", "AS", "AP", "CL", "O")

#: Upper bound on cached additive-mask entries per attention layer.  Serving
#: alternates between a handful of geometries (one prefill shape plus one
#: decode shape per cached length bucket); training reuses a single entry.
_MASK_CACHE_MAX = 8


class LayerKVCache:
    """Preallocated per-layer KV cache with incremental checksum side-state.

    The cache owns ``(B, H, max_len, dh)`` key/value buffers written by slice
    assignment, so steady-state decode appends allocate nothing — the
    workspace-counter CI gate depends on this.  ``length`` tracks how many
    positions are populated; :meth:`keys` / :meth:`values` return zero-copy
    views of the populated prefix.

    Checksum side-state (owned here, *maintained by whichever checker is
    attached* — exactly one at a time):

    ``cs_x``
        ``(B, 2, D)`` float64 — incremental Huang–Abraham column checksums of
        the attention *input* rows seen so far (prompt + decoded tokens).
        Updating them per token is O(1) in the cached length
        (:func:`repro.core.checksums.update_column_checksums_with_appended_rows`),
        which is what lets decode-side protection re-derive the K-side
        checksums without re-encoding the whole cache.
    ``cs_v_row``
        ``(B, H, max_len, 2)`` float64 — per-head row checksums of the cached
        ``V`` rows, one slot per position, written incrementally.

    Both are ``None`` until :meth:`ensure_checksum_buffers` seeds them at
    prefill; an unprotected serving run never allocates them.
    """

    def __init__(self, batch_size: int, num_heads: int, head_dim: int,
                 max_len: int, xp, dtype=None) -> None:
        if max_len <= 0:
            raise ValueError(f"max_len must be positive, got {max_len}")
        self.num_heads = num_heads
        self.head_dim = head_dim
        self.max_len = int(max_len)
        self.length = 0
        self.xp = xp
        dtype = dtype if dtype is not None else xp.float64
        shape = (batch_size, num_heads, self.max_len, head_dim)
        self.k = xp.zeros(shape, dtype=dtype)
        self.v = xp.zeros(shape, dtype=dtype)
        self.cs_x = None
        self.cs_v_row = None
        #: Positions covered by cs_x / cs_v_row — the checker uses these to
        #: detect (and refuse) gaps: incremental checksums are only sound when
        #: every appended token was folded in.
        self.cs_x_len = 0
        self.cs_v_len = 0

    @property
    def batch_size(self) -> int:
        return int(self.k.shape[0])

    def append(self, k_new, v_new) -> None:
        """Append ``(B, H, t, dh)`` key/value blocks at the populated end."""
        t = int(k_new.shape[-2])
        if self.length + t > self.max_len:
            raise ValueError(
                f"KV cache overflow: {self.length} + {t} > max_len {self.max_len}"
            )
        self.k[:, :, self.length:self.length + t, :] = k_new
        self.v[:, :, self.length:self.length + t, :] = v_new
        self.length += t

    def keys(self):
        """View of the populated key prefix, ``(B, H, length, dh)``."""
        return self.k[:, :, :self.length, :]

    def values(self):
        """View of the populated value prefix, ``(B, H, length, dh)``."""
        return self.v[:, :, :self.length, :]

    def ensure_checksum_buffers(self, xp, hidden_size: int):
        """Allocate the float64 checksum buffers once (prefill warm-up)."""
        if self.cs_x is None:
            self.cs_x = xp.zeros((self.batch_size, 2, hidden_size), dtype=xp.float64)
        if self.cs_v_row is None:
            self.cs_v_row = xp.zeros(
                (self.batch_size, self.num_heads, self.max_len, 2), dtype=xp.float64
            )
        return self.cs_x, self.cs_v_row

    def compact(self, indices) -> None:
        """Shrink the batch axis to ``indices`` (serving slot compaction).

        Every buffer — K/V data *and* the checksum side-state — is sliced
        along the batch axis in one place, so the per-slot incremental
        checksums stay aligned with their slots.  This is sound because the
        checksum state is per-slot-independent: ``cs_x`` is one column
        checksum per sequence and ``cs_v_row`` one row checksum per cached
        position, neither mixes batch rows.  ``length`` and the covered
        prefixes are untouched (compaction never drops positions, only
        slots).
        """
        indices = self.xp.asarray(indices)
        if int(indices.shape[0]) < 1:
            raise ValueError("compact needs at least one slot to keep")
        self.k = self.k[indices]
        self.v = self.v[indices]
        if self.cs_x is not None:
            self.cs_x = self.cs_x[indices]
        if self.cs_v_row is not None:
            self.cs_v_row = self.cs_v_row[indices]

    def reset(self) -> None:
        """Empty the cache for reuse; buffers (data and checksum) are kept
        and fully overwritten by the next prefill."""
        self.length = 0
        self.cs_x_len = 0
        self.cs_v_len = 0


class ComposedHooks(AttentionHooks):
    """Run several hooks in sequence; GEMM outputs are threaded through them."""

    def __init__(self, hooks: Sequence[AttentionHooks]) -> None:
        self.hooks: List[AttentionHooks] = list(hooks)

    def on_attention_start(self, layer_index: int, step: int) -> None:
        for h in self.hooks:
            h.on_attention_start(layer_index, step)

    def on_block_start(self, block: str, layer_index: int, step: int) -> None:
        for h in self.hooks:
            h.on_block_start(block, layer_index, step)

    def on_block_end(self, block: str, layer_index: int, step: int) -> None:
        for h in self.hooks:
            h.on_block_end(block, layer_index, step)

    def on_gemm_output(self, ctx: GemmContext, out: np.ndarray) -> np.ndarray:
        for h in self.hooks:
            out = h.on_gemm_output(ctx, out)
        return out

    def on_section_output(self, ctx: SectionContext, out: np.ndarray) -> np.ndarray:
        for h in self.hooks:
            out = h.on_section_output(ctx, out)
        return out

    def consumes_gemm_outputs(self) -> bool:
        return any(h.consumes_gemm_outputs() for h in self.hooks)

    def on_matrix(self, name: str, data: np.ndarray, layer_index: int, step: int) -> None:
        for h in self.hooks:
            h.on_matrix(name, data, layer_index, step)

    def on_attention_end(self, layer_index: int, step: int) -> None:
        for h in self.hooks:
            h.on_attention_end(layer_index, step)


class RecordingHooks(AttentionHooks):
    """Record every intermediate matrix of the forward pass.

    Used by the error-propagation study (Table 2) to compare a faulty run
    against a clean reference run matrix-by-matrix.  Matrices are stored under
    the paper's names (``Q``, ``K``, ``V``, ``AS``, ``AP``, ``CL``, ``O``),
    keyed additionally by layer index.
    """

    def __init__(self, copy: bool = True) -> None:
        self.copy = copy
        self.records: Dict[int, Dict[str, np.ndarray]] = {}

    def _snapshot(self, data: np.ndarray) -> np.ndarray:
        return backend_of(data).copy(data) if self.copy else data

    def on_attention_start(self, layer_index: int, step: int) -> None:
        self.records.setdefault(layer_index, {})

    def on_gemm_output(self, ctx: GemmContext, out: np.ndarray) -> np.ndarray:
        name = ctx.op.output_matrix
        self.records.setdefault(ctx.layer_index, {})[name] = self._snapshot(out)
        return out

    def on_matrix(self, name: str, data: np.ndarray, layer_index: int, step: int) -> None:
        self.records.setdefault(layer_index, {})[name] = self._snapshot(data)

    def matrices(self, layer_index: int = 0) -> Dict[str, np.ndarray]:
        """All recorded matrices of one layer."""
        return self.records.get(layer_index, {})

    def clear(self) -> None:
        self.records.clear()


class MultiHeadAttention(Module):
    """Multi-head self-attention with operation-boundary instrumentation.

    Parameters
    ----------
    hidden_size:
        Model width ``D``.
    num_heads:
        Number of attention heads ``H`` (``D`` must be divisible by ``H``).
    dropout_p:
        Dropout applied to the attention probabilities (``AP``) and to the
        output projection, as in BERT/GPT-2.
    layer_index:
        Position of this layer in the parent model (reported to hooks).
    causal:
        Whether to apply a causal (autoregressive) mask, as GPT-2/GPT-Neo do.
    local_window:
        If set, restrict attention to the previous ``local_window`` positions
        (GPT-Neo's local-attention layers).
    rng:
        Generator used for weight init and dropout masks.
    backend:
        Optional :class:`repro.backend.ArrayBackend` the projection weights
        adopt into at construction (``None`` = the NumPy substrate).  The
        forward pass then runs natively on that backend; host-born data
        (attention masks, dropout masks) is adopted at the op that uses it.
    """

    def __init__(
        self,
        hidden_size: int,
        num_heads: int,
        dropout_p: float = 0.0,
        layer_index: int = 0,
        causal: bool = False,
        local_window: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        bias: bool = True,
        backend: Optional[ArrayBackend] = None,
    ) -> None:
        super().__init__()
        if hidden_size % num_heads:
            raise ValueError(f"hidden_size {hidden_size} not divisible by num_heads {num_heads}")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.hidden_size = hidden_size
        self.num_heads = num_heads
        self.head_dim = hidden_size // num_heads
        self.layer_index = layer_index
        self.causal = causal
        self.local_window = local_window
        self.scale = 1.0 / np.sqrt(self.head_dim)
        self.array_backend = backend

        self.w_q = Linear(hidden_size, hidden_size, rng=rng, bias=bias, backend=backend)
        self.w_k = Linear(hidden_size, hidden_size, rng=rng, bias=bias, backend=backend)
        self.w_v = Linear(hidden_size, hidden_size, rng=rng, bias=bias, backend=backend)
        self.w_o = Linear(hidden_size, hidden_size, rng=rng, bias=bias, backend=backend)
        self.attn_dropout = Dropout(dropout_p, rng=rng)
        self.out_dropout = Dropout(dropout_p, rng=rng)

        self.hooks: Optional[AttentionHooks] = None
        self._step = 0
        #: geometry -> (xp, mask); see :meth:`_causal_mask`.
        self._causal_mask_cache: Dict = {}
        #: geometry + mask identity -> (mask_ref, xp, mask, keep).
        self._combined_mask_cache: Dict = {}

    # -- instrumentation -------------------------------------------------------

    def set_hooks(self, hooks: Optional[AttentionHooks]) -> None:
        """Attach (or detach, with ``None``) the instrumentation hooks."""
        self.hooks = hooks

    def _gemm_hook(
        self,
        op: AttentionOp,
        bias: Optional[np.ndarray] = None,
        section_operands: Optional[Dict[str, Optional[np.ndarray]]] = None,
        phase: str = "train",
        kv_cache: Optional[LayerKVCache] = None,
    ) -> Optional[Callable]:
        """Build the ``forward_hook`` closure for one named GEMM.

        For the three section-boundary GEMMs (``qk``, ``apv``, ``clo``) the
        closure additionally dispatches :meth:`AttentionHooks.on_section_output`
        with a :class:`SectionContext` built from ``section_operands``, after
        the per-GEMM hooks have run.
        """
        if self.hooks is None:
            return None
        hooks = self.hooks
        layer_index = self.layer_index
        step = self._step
        num_heads = self.num_heads
        head_dim = self.head_dim
        section = SECTION_BOUNDARY_OPS.get(op)
        consumes_gemms = hooks.consumes_gemm_outputs()
        if not consumes_gemms and section is None:
            # No attached hook wants per-GEMM outputs and this GEMM ends no
            # section: skip dispatch entirely (the fused checker's 3-instead-
            # of-6 dispatches per layer).
            return None

        def hook_with_ctx(a: np.ndarray, b: np.ndarray, out: np.ndarray) -> np.ndarray:
            if consumes_gemms:
                ctx = GemmContext(
                    op=op,
                    a=a,
                    b=b,
                    layer_index=layer_index,
                    step=step,
                    num_heads=num_heads,
                    head_dim=head_dim,
                    seq_len=out.shape[-2],
                    bias=bias,
                    phase=phase,
                    kv_cache=kv_cache,
                )
                out = hooks.on_gemm_output(ctx, out)
            if section is not None:
                # Prefer the substrate's own backend handle when it owns the
                # boundary output: a wrapper backend (spy, pinned instance)
                # would be lost by type-keyed resolution, which can only find
                # the registry's canonical instance for the array type.
                own = self.array_backend
                if own is None or not own.is_backend_array(out):
                    own = backend_of(out)
                sctx = SectionContext(
                    section=section,
                    operands=section_operands or {},
                    layer_index=layer_index,
                    step=step,
                    num_heads=num_heads,
                    head_dim=head_dim,
                    seq_len=out.shape[-2],
                    backend=own,
                    phase=phase,
                )
                out = hooks.on_section_output(sctx, out)
            return out

        return hook_with_ctx

    def _instrumented_matmul(
        self,
        a: ag.Tensor,
        b: ag.Tensor,
        op: AttentionOp,
        bias: Optional[np.ndarray] = None,
        section_operands: Optional[Dict[str, Optional[np.ndarray]]] = None,
        phase: str = "train",
        kv_cache: Optional[LayerKVCache] = None,
    ) -> ag.Tensor:
        """Matmul whose raw output is routed through the hooks."""
        hook_with_ctx = self._gemm_hook(
            op, bias=bias, section_operands=section_operands,
            phase=phase, kv_cache=kv_cache,
        )
        if hook_with_ctx is None:
            return ag.matmul(a, b, name=op.output_matrix)
        a_data, b_data = a.data, b.data
        return ag.matmul(
            a,
            b,
            forward_hook=lambda out: hook_with_ctx(a_data, b_data, out),
            name=op.output_matrix,
        )

    # -- masking ----------------------------------------------------------------

    def _mask_namespace(self):
        own = self.array_backend
        return own.xp if own is not None else get_backend("numpy").xp

    def _adopt_mask(self, host_array: np.ndarray):
        """Adopt a host-built mask into the owning backend, once per cache fill.

        Host-resident backends that operate on ndarrays natively (NumPy and
        its spies) skip the call entirely — a mask adoption there would be a
        counted conversion, violating the zero-round-trip substrate invariant.
        """
        own = self.array_backend
        if own is None or own.is_backend_array(host_array):
            return host_array
        return own.from_numpy(host_array)

    def _causal_disallowed(self, seq_len: int, query_offset: int, query_len: int) -> np.ndarray:
        """Host boolean block: query row ``i`` may not see key column ``j``."""
        i = np.arange(query_offset, query_offset + query_len)[:, None]
        j = np.arange(seq_len)[None, :]
        disallowed = j > i
        if self.local_window is not None and self.local_window < seq_len:
            disallowed = disallowed | (j <= i - self.local_window)
        return disallowed

    def _additive_mask(
        self,
        seq_len: int,
        attention_mask: Optional[np.ndarray],
        query_offset: int = 0,
        query_len: Optional[int] = None,
    ):
        """Cached ``(mask, keep)`` pair for one attention geometry.

        ``mask`` is the additive ``-1e9`` mask (broadcastable against
        ``(B, H, query_len, seq_len)`` scores), resident on the owning
        backend; ``keep`` is a ``(B, 1, query_len, 1)`` float64 multiplier
        that zeroes *fully-masked* query rows after the softmax, or ``None``
        when every row attends to at least one position.  Masked positions
        get ``-1e9`` rather than ``-inf`` so no NaN contaminates the
        fault-propagation study — but the softmax of an all ``-1e9`` row is
        *uniform*, silently averaging every cached V row into downstream
        (checksummed) sections, so fully-masked rows must be zeroed
        explicitly rather than left to "degrade gracefully".

        Both arrays are cached per geometry — the causal part keyed by
        ``(seq_len, query_offset, query_len, local_window, namespace)``, the
        pad-combined part additionally by the identity of ``attention_mask``
        — so decode steps stop paying a per-token host build, O(S²)
        allocation and H2D transfer.
        """
        query_len = seq_len if query_len is None else query_len
        if attention_mask is None:
            if not self.causal:
                return None, None
            return self._causal_mask(seq_len, query_offset, query_len), None
        xp = self._mask_namespace()
        key = (seq_len, query_offset, query_len, self.local_window, id(xp),
               id(attention_mask))
        entry = self._combined_mask_cache.get(key)
        if entry is not None and entry[0] is attention_mask and entry[1] is xp:
            return entry[2], entry[3]
        pad = np.asarray(attention_mask, dtype=np.float64)
        # attention_mask is (B, S) with 1 = attend, 0 = padding.
        pad = (1.0 - pad)[:, None, None, :] * -1e9
        if self.causal:
            disallowed = self._causal_disallowed(seq_len, query_offset, query_len)
            combined = np.where(disallowed, -1e9, 0.0)[None, None, :, :] + pad
        else:
            combined = pad  # (B, 1, 1, S) broadcasts over query rows
        keep_host = combined.max(axis=-1, keepdims=True) > -1e8
        keep = None
        if not keep_host.all():
            keep = self._adopt_mask(keep_host.astype(np.float64))
        mask = self._adopt_mask(combined)
        if len(self._combined_mask_cache) >= _MASK_CACHE_MAX:
            self._combined_mask_cache.pop(next(iter(self._combined_mask_cache)))
        self._combined_mask_cache[key] = (attention_mask, xp, mask, keep)
        return mask, keep

    def _causal_mask(self, seq_len: int, query_offset: int, query_len: int):
        xp = self._mask_namespace()
        key = (seq_len, query_offset, query_len, self.local_window, id(xp))
        entry = self._causal_mask_cache.get(key)
        if entry is not None and entry[0] is xp:
            return entry[1]
        disallowed = self._causal_disallowed(seq_len, query_offset, query_len)
        mask = self._adopt_mask(np.where(disallowed, -1e9, 0.0)[None, None, :, :])
        if len(self._causal_mask_cache) >= _MASK_CACHE_MAX:
            self._causal_mask_cache.pop(next(iter(self._causal_mask_cache)))
        self._causal_mask_cache[key] = (xp, mask)
        return mask

    def _decode_pad_mask(self, attention_mask: np.ndarray):
        """Static additive pad mask for decode, ``(B, 1, 1, M)``.

        Built and adopted onto the backend **once per mask object** and
        sliced to the live cache length each step, so steady-state decode
        pays no host mask build and no H2D transfer.  The mask must span the
        whole cache capacity (1 = attend for every not-yet-generated
        position); the causal structure needs no mask at decode because the
        query is the last position.
        """
        xp = self._mask_namespace()
        key = ("decode-pad", id(xp), id(attention_mask))
        entry = self._combined_mask_cache.get(key)
        if entry is not None and entry[0] is attention_mask and entry[1] is xp:
            return entry[2]
        pad = np.asarray(attention_mask, dtype=np.float64)
        pad = self._adopt_mask((1.0 - pad)[:, None, None, :] * -1e9)
        if len(self._combined_mask_cache) >= _MASK_CACHE_MAX:
            self._combined_mask_cache.pop(next(iter(self._combined_mask_cache)))
        self._combined_mask_cache[key] = (attention_mask, xp, pad, None)
        return pad

    def build_mask(self, seq_len: int, attention_mask: Optional[np.ndarray]) -> Optional[np.ndarray]:
        """Combine padding, causal and local-window masks into one additive mask.

        Masked positions receive a large negative value (-1e9) rather than
        -inf so no spurious NaN contaminates the fault-propagation study;
        fully-masked query rows are additionally *zeroed after the softmax*
        in the forward pass (see :meth:`_additive_mask`), since their softmax
        would otherwise be uniform rather than empty.  The mask is built once
        per geometry through the owning backend and cached.
        """
        mask, _ = self._additive_mask(seq_len, attention_mask)
        return mask

    # -- forward -----------------------------------------------------------------

    def forward(
        self,
        x: ag.Tensor,
        attention_mask: Optional[np.ndarray] = None,
        kv_cache: Optional[LayerKVCache] = None,
    ) -> ag.Tensor:
        """Run multi-head self-attention on ``x`` of shape ``(B, S, D)``.

        With ``kv_cache`` (which must be empty), this is the serving
        *prefill* pass: identical arithmetic to training, plus the split-head
        K/V blocks are appended to the cache and hooks fire with
        ``phase="prefill"`` so a checksum engine can seed the cache's
        incremental checksum state.
        """
        hooks = self.hooks
        self._step += 1
        step = self._step
        if hooks is not None:
            hooks.on_attention_start(self.layer_index, step)

        batch, seq_len, _ = x.shape
        phase = "train"
        if kv_cache is not None:
            if kv_cache.length:
                raise ValueError(
                    "forward() with a non-empty KV cache — use forward_step() to decode"
                )
            phase = "prefill"

        bias_q = self.w_q.bias.data if self.w_q.bias is not None else None
        bias_k = self.w_k.bias.data if self.w_k.bias is not None else None
        bias_v = self.w_v.bias.data if self.w_v.bias is not None else None
        bias_o = self.w_o.bias.data if self.w_o.bias is not None else None

        q_proj = self._instrumented_matmul(
            x, self.w_q.weight, AttentionOp.XQ, bias=bias_q,
            phase=phase, kv_cache=kv_cache)
        k_proj = self._instrumented_matmul(
            x, self.w_k.weight, AttentionOp.XK, bias=bias_k,
            phase=phase, kv_cache=kv_cache)
        v_proj = self._instrumented_matmul(
            x, self.w_v.weight, AttentionOp.XV, bias=bias_v,
            phase=phase, kv_cache=kv_cache)
        if self.w_q.bias is not None:
            q_proj = ag.add(q_proj, self.w_q.bias)
        if self.w_k.bias is not None:
            k_proj = ag.add(k_proj, self.w_k.bias)
        if self.w_v.bias is not None:
            v_proj = ag.add(v_proj, self.w_v.bias)

        q = ag.split_heads(q_proj, self.num_heads)  # (B, H, S, dh)
        k = ag.split_heads(k_proj, self.num_heads)
        v = ag.split_heads(v_proj, self.num_heads)
        if kv_cache is not None:
            kv_cache.append(k.data, v.data)

        k_t = ag.transpose(k, (0, 1, 3, 2))
        attention_scores = self._instrumented_matmul(
            q, k_t, AttentionOp.QK,
            section_operands={
                "x": x.data,
                "w_q": self.w_q.weight.data,
                "w_k": self.w_k.weight.data,
                "bias_q": bias_q,
                "bias_k": bias_k,
                "q": q.data,
                "k_t": k_t.data,
                "kv_cache": kv_cache,
            },
            phase=phase, kv_cache=kv_cache,
        )

        scaled = ag.mul(attention_scores, self.scale)
        mask, keep = self._additive_mask(seq_len, attention_mask)
        if mask is not None:
            scaled = ag.add(scaled, mask)

        attention_probs = ag.softmax(scaled, axis=-1)
        if keep is not None:
            # Zero fully-masked query rows: their softmax is uniform (all
            # logits sit at the -1e9 floor), which would leak an average of
            # every V row into the checksummed CL/O sections.
            attention_probs = ag.mul(attention_probs, keep)
        if hooks is not None:
            hooks.on_matrix("AP", attention_probs.data, self.layer_index, step)
        attention_probs = self.attn_dropout(attention_probs)

        context = self._instrumented_matmul(
            attention_probs, v, AttentionOp.APV,
            section_operands={
                "x": x.data,
                "w_v": self.w_v.weight.data,
                "bias_v": bias_v,
                "ap": attention_probs.data,
                "v": v.data,
                "kv_cache": kv_cache,
            },
            phase=phase, kv_cache=kv_cache,
        )
        context_merged = ag.merge_heads(context)
        if hooks is not None:
            hooks.on_matrix("CL_merged", context_merged.data, self.layer_index, step)

        output = self._instrumented_matmul(
            context_merged, self.w_o.weight, AttentionOp.CLO, bias=bias_o,
            section_operands={
                "cl": context_merged.data,
                "w_o": self.w_o.weight.data,
                "kv_cache": kv_cache,
            },
            phase=phase, kv_cache=kv_cache,
        )
        if self.w_o.bias is not None:
            output = ag.add(output, self.w_o.bias)
        output = self.out_dropout(output)

        if hooks is not None:
            hooks.on_attention_end(self.layer_index, step)
        return output

    def forward_step(
        self,
        x: ag.Tensor,
        kv_cache: LayerKVCache,
        attention_mask: Optional[np.ndarray] = None,
    ) -> ag.Tensor:
        """Decode one token against a populated KV cache.

        ``x`` is ``(B, 1, D)``.  The new K/V rows are appended to the cache
        and attention runs against the full cached prefix; hooks fire with
        ``phase="decode"`` and the cache in context, so a checksum engine can
        update the cache's incremental checksums in O(1) of the cached
        length.  ``attention_mask`` covers the *whole* cached sequence
        (``(B, kv_cache.length)`` after this token), e.g. left-padding of a
        batched prompt.
        """
        hooks = self.hooks
        self._step += 1
        step = self._step
        if hooks is not None:
            hooks.on_attention_start(self.layer_index, step)

        bias_q = self.w_q.bias.data if self.w_q.bias is not None else None
        bias_k = self.w_k.bias.data if self.w_k.bias is not None else None
        bias_v = self.w_v.bias.data if self.w_v.bias is not None else None
        bias_o = self.w_o.bias.data if self.w_o.bias is not None else None

        q_proj = self._instrumented_matmul(
            x, self.w_q.weight, AttentionOp.XQ, bias=bias_q,
            phase="decode", kv_cache=kv_cache)
        k_proj = self._instrumented_matmul(
            x, self.w_k.weight, AttentionOp.XK, bias=bias_k,
            phase="decode", kv_cache=kv_cache)
        v_proj = self._instrumented_matmul(
            x, self.w_v.weight, AttentionOp.XV, bias=bias_v,
            phase="decode", kv_cache=kv_cache)
        if self.w_q.bias is not None:
            q_proj = ag.add(q_proj, self.w_q.bias)
        if self.w_k.bias is not None:
            k_proj = ag.add(k_proj, self.w_k.bias)
        if self.w_v.bias is not None:
            v_proj = ag.add(v_proj, self.w_v.bias)

        q = ag.split_heads(q_proj, self.num_heads)      # (B, H, 1, dh)
        k_new = ag.split_heads(k_proj, self.num_heads)
        v_new = ag.split_heads(v_proj, self.num_heads)
        kv_cache.append(k_new.data, v_new.data)
        total_len = kv_cache.length

        backend = self.array_backend
        k_all = ag.Tensor(kv_cache.keys(), backend=backend)    # (B, H, T, dh)
        v_all = ag.Tensor(kv_cache.values(), backend=backend)
        k_t = ag.transpose(k_all, (0, 1, 3, 2))

        attention_scores = self._instrumented_matmul(
            q, k_t, AttentionOp.QK,
            section_operands={
                "x": x.data,
                "w_q": self.w_q.weight.data,
                "w_k": self.w_k.weight.data,
                "bias_q": bias_q,
                "bias_k": bias_k,
                "q": q.data,
                "k_t": k_t.data,
                "kv_cache": kv_cache,
            },
            phase="decode", kv_cache=kv_cache,
        )

        scaled = ag.mul(attention_scores, self.scale)
        mask = None
        if attention_mask is not None:
            pad_full = self._decode_pad_mask(attention_mask)  # (B, 1, 1, M)
            if pad_full.shape[-1] < total_len:
                raise ValueError(
                    f"decode attention_mask covers {pad_full.shape[-1]} positions "
                    f"but the KV cache holds {total_len}"
                )
            mask = pad_full[:, :, :, :total_len]
        if self.local_window is not None and self.local_window < total_len:
            local = self._causal_mask(total_len, total_len - 1, 1)
            mask = local if mask is None else mask + local
        if mask is not None:
            scaled = ag.add(scaled, mask)

        # No fully-masked-row handling here: the decode query is the token
        # just appended, which by contract is attendable (mask 1) itself.
        attention_probs = ag.softmax(scaled, axis=-1)
        if hooks is not None:
            hooks.on_matrix("AP", attention_probs.data, self.layer_index, step)
        attention_probs = self.attn_dropout(attention_probs)

        context = self._instrumented_matmul(
            attention_probs, v_all, AttentionOp.APV,
            section_operands={
                "x": x.data,
                "w_v": self.w_v.weight.data,
                "bias_v": bias_v,
                "ap": attention_probs.data,
                "v": v_all.data,
                "kv_cache": kv_cache,
            },
            phase="decode", kv_cache=kv_cache,
        )
        context_merged = ag.merge_heads(context)
        if hooks is not None:
            hooks.on_matrix("CL_merged", context_merged.data, self.layer_index, step)

        output = self._instrumented_matmul(
            context_merged, self.w_o.weight, AttentionOp.CLO, bias=bias_o,
            section_operands={
                "cl": context_merged.data,
                "w_o": self.w_o.weight.data,
                "kv_cache": kv_cache,
            },
            phase="decode", kv_cache=kv_cache,
        )
        if self.w_o.bias is not None:
            output = ag.add(output, self.w_o.bias)
        output = self.out_dropout(output)

        if hooks is not None:
            hooks.on_attention_end(self.layer_index, step)
        return output

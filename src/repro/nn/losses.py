"""Loss modules."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.tensor import autograd as ag

__all__ = ["CrossEntropyLoss"]


class CrossEntropyLoss(Module):
    """Mean cross-entropy over a batch of logits.

    The loss value is the quantity whose NaN-ness defines a *non-trainable
    state* in the paper's vulnerability study (Section 3.1): "a numerical data
    corruption that causes a loss being NaN".
    """

    def forward(self, logits: ag.Tensor, labels) -> ag.Tensor:
        # Labels must be integer on every path — owning the array type is not
        # enough (float labels on the NumPy substrate are still ndarrays), so
        # non-integer native labels are cast in place of the historical
        # ``np.asarray(..., dtype=np.int64)`` coercion.
        if isinstance(logits, ag.Tensor) and logits.backend.is_backend_array(labels):
            backend = logits.backend
            if not np.issubdtype(backend.dtype_of(labels), np.integer):
                xp = backend.namespace_for(labels)
                labels = xp.astype(labels, xp.int64, copy=False)
            return ag.cross_entropy_loss(logits, labels)
        return ag.cross_entropy_loss(logits, np.asarray(labels, dtype=np.int64))

"""Loss modules."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.tensor import autograd as ag

__all__ = ["CrossEntropyLoss"]


class CrossEntropyLoss(Module):
    """Mean cross-entropy over a batch of logits.

    The loss value is the quantity whose NaN-ness defines a *non-trainable
    state* in the paper's vulnerability study (Section 3.1): "a numerical data
    corruption that causes a loss being NaN".
    """

    def forward(self, logits: ag.Tensor, labels: np.ndarray) -> ag.Tensor:
        return ag.cross_entropy_loss(logits, np.asarray(labels, dtype=np.int64))

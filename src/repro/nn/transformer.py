"""Transformer building blocks: feed-forward network and full layers.

Two residual arrangements are supported, covering the four LLM families the
paper evaluates:

* ``post_ln`` (BERT / RoBERTa): ``LN(x + SubLayer(x))``
* ``pre_ln``  (GPT-2 / GPT-Neo): ``x + SubLayer(LN(x))``
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.backend import ArrayBackend, backend_of
from repro.core.hooks import (
    FFN_SECTION_BOUNDARY_OPS,
    FeedForwardOp,
    GemmContext,
    SectionContext,
)
from repro.nn.attention import AttentionHooks, LayerKVCache, MultiHeadAttention
from repro.nn.layers import Dropout, GELUActivation, LayerNorm, Linear
from repro.nn.module import Module
from repro.tensor import autograd as ag

__all__ = ["FeedForward", "TransformerLayer"]


class FeedForward(Module):
    """Position-wise feed-forward network (Linear -> GELU -> Linear).

    Instrumented exactly like :class:`repro.nn.MultiHeadAttention`: with
    hooks attached, the two GEMMs ``x·W_up`` and ``h·W_down`` route their raw
    outputs through :meth:`AttentionHooks.on_gemm_output`, and — both FFN
    GEMMs being section boundaries (``FF1`` / ``FF2``; GELU between them is
    nonlinear, so no checksum can be carried across) — each additionally
    dispatches :meth:`AttentionHooks.on_section_output` with the section's
    operands.  The block pass is announced through the generic
    :meth:`AttentionHooks.on_block_start` / ``on_block_end`` pair with block
    name ``"ffn"``, so attention's dedicated start/end callbacks (and its
    frequency-gating sequence) stay untouched.  The bias adds run outside
    the sections, like attention's output-projection bias.

    Decode uses the same instrumentation with ``phase="decode"``: the FFN
    has no cross-token state, so one decoded token is the training algebra
    at sequence length 1 — O(1) per token with no incremental cache.
    """

    def __init__(
        self,
        hidden_size: int,
        intermediate_size: int,
        dropout_p: float = 0.0,
        layer_index: int = 0,
        num_heads: int = 1,
        rng: Optional[np.random.Generator] = None,
        backend: Optional[ArrayBackend] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.hidden_size = hidden_size
        self.intermediate_size = intermediate_size
        self.layer_index = layer_index
        # FFN GEMMs report the layer's attention geometry unchanged (the
        # checksum machinery keys on it for workspace shapes only).
        self.num_heads = num_heads
        self.head_dim = hidden_size // num_heads
        self.array_backend = backend
        self.fc_in = Linear(hidden_size, intermediate_size, rng=rng, backend=backend)
        self.act = GELUActivation()
        self.fc_out = Linear(intermediate_size, hidden_size, rng=rng, backend=backend)
        self.dropout = Dropout(dropout_p, rng=rng)
        self.hooks: Optional[AttentionHooks] = None
        self._step = 0

    # -- instrumentation -------------------------------------------------------

    def set_hooks(self, hooks: Optional[AttentionHooks]) -> None:
        """Attach (or detach, with ``None``) the instrumentation hooks."""
        self.hooks = hooks

    def _gemm_hook(
        self,
        op: FeedForwardOp,
        section_operands: Dict[str, Optional[np.ndarray]],
        phase: str,
    ) -> Optional[Callable]:
        """Build the ``forward_hook`` closure for one FFN GEMM.

        Mirrors :meth:`MultiHeadAttention._gemm_hook`; both FFN GEMMs are
        section boundaries, so the closure always dispatches
        :meth:`AttentionHooks.on_section_output` after the per-GEMM hooks.
        """
        if self.hooks is None:
            return None
        hooks = self.hooks
        layer_index = self.layer_index
        step = self._step
        num_heads = self.num_heads
        head_dim = self.head_dim
        section = FFN_SECTION_BOUNDARY_OPS[op]
        consumes_gemms = hooks.consumes_gemm_outputs()

        def hook_with_ctx(a: np.ndarray, b: np.ndarray, out: np.ndarray) -> np.ndarray:
            if consumes_gemms:
                ctx = GemmContext(
                    op=op,
                    a=a,
                    b=b,
                    layer_index=layer_index,
                    step=step,
                    num_heads=num_heads,
                    head_dim=head_dim,
                    seq_len=out.shape[-2],
                    phase=phase,
                    block="ffn",
                )
                out = hooks.on_gemm_output(ctx, out)
            # Prefer the substrate's own backend handle when it owns the
            # boundary output (see MultiHeadAttention._gemm_hook).
            own = self.array_backend
            if own is None or not own.is_backend_array(out):
                own = backend_of(out)
            sctx = SectionContext(
                section=section,
                operands=section_operands,
                layer_index=layer_index,
                step=step,
                num_heads=num_heads,
                head_dim=head_dim,
                seq_len=out.shape[-2],
                backend=own,
                phase=phase,
            )
            return hooks.on_section_output(sctx, out)

        return hook_with_ctx

    def _instrumented_matmul(
        self,
        a: ag.Tensor,
        b: ag.Tensor,
        op: FeedForwardOp,
        section_operands: Dict[str, Optional[np.ndarray]],
        phase: str,
    ) -> ag.Tensor:
        """Matmul whose raw output is routed through the hooks."""
        hook_with_ctx = self._gemm_hook(op, section_operands, phase)
        if hook_with_ctx is None:
            return ag.matmul(a, b, name=op.output_matrix)
        a_data, b_data = a.data, b.data
        return ag.matmul(
            a,
            b,
            forward_hook=lambda out: hook_with_ctx(a_data, b_data, out),
            name=op.output_matrix,
        )

    # -- forward ----------------------------------------------------------------

    def forward(self, x: ag.Tensor, phase: str = "train") -> ag.Tensor:
        hooks = self.hooks
        if hooks is None:
            return self.dropout(self.fc_out(self.act(self.fc_in(x))))
        self._step += 1
        step = self._step
        hooks.on_block_start("ffn", self.layer_index, step)
        h_raw = self._instrumented_matmul(
            x, self.fc_in.weight, FeedForwardOp.UP,
            section_operands={
                "x": x.data,
                "w_up": self.fc_in.weight.data,
            },
            phase=phase,
        )
        if self.fc_in.bias is not None:
            h_raw = ag.add(h_raw, self.fc_in.bias)
        h = self.act(h_raw)
        out = self._instrumented_matmul(
            h, self.fc_out.weight, FeedForwardOp.DOWN,
            section_operands={
                "h": h.data,
                "w_down": self.fc_out.weight.data,
            },
            phase=phase,
        )
        if self.fc_out.bias is not None:
            out = ag.add(out, self.fc_out.bias)
        out = self.dropout(out)
        hooks.on_block_end("ffn", self.layer_index, step)
        return out


class TransformerLayer(Module):
    """One transformer layer: attention + feed-forward with residuals.

    Parameters
    ----------
    norm_style:
        ``"post_ln"`` (BERT-like) or ``"pre_ln"`` (GPT-like).
    causal / local_window:
        Forwarded to :class:`MultiHeadAttention`.
    """

    def __init__(
        self,
        hidden_size: int,
        num_heads: int,
        intermediate_size: int,
        dropout_p: float = 0.0,
        norm_style: str = "post_ln",
        causal: bool = False,
        local_window: Optional[int] = None,
        layer_index: int = 0,
        rng: Optional[np.random.Generator] = None,
        backend: Optional[ArrayBackend] = None,
    ) -> None:
        super().__init__()
        if norm_style not in ("post_ln", "pre_ln"):
            raise ValueError(f"unknown norm_style {norm_style!r}")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.norm_style = norm_style
        self.attention = MultiHeadAttention(
            hidden_size,
            num_heads,
            dropout_p=dropout_p,
            layer_index=layer_index,
            causal=causal,
            local_window=local_window,
            rng=rng,
            backend=backend,
        )
        self.attn_norm = LayerNorm(hidden_size, backend=backend)
        self.ffn = FeedForward(
            hidden_size, intermediate_size, dropout_p=dropout_p,
            layer_index=layer_index, num_heads=num_heads, rng=rng, backend=backend,
        )
        self.ffn_norm = LayerNorm(hidden_size, backend=backend)
        self.dropout = Dropout(dropout_p, rng=rng)

    def set_hooks(self, hooks: Optional[AttentionHooks]) -> None:
        """Attach instrumentation hooks to this layer's attention and FFN."""
        self.attention.set_hooks(hooks)
        self.ffn.set_hooks(hooks)

    def forward(
        self,
        x: ag.Tensor,
        attention_mask: Optional[np.ndarray] = None,
        kv_cache: Optional[LayerKVCache] = None,
    ) -> ag.Tensor:
        if self.norm_style == "post_ln":
            if kv_cache is not None:
                raise ValueError(
                    "KV-cached decoding requires a causal (pre-LN) layer; "
                    "post-LN encoder layers have no decode path"
                )
            attn_out = self.attention(x, attention_mask=attention_mask)
            x = self.attn_norm(ag.add(x, self.dropout(attn_out)))
            ffn_out = self.ffn(x)
            x = self.ffn_norm(ag.add(x, ffn_out))
            return x
        # pre-LN (GPT-2 / GPT-Neo)
        attn_out = self.attention(
            self.attn_norm(x), attention_mask=attention_mask, kv_cache=kv_cache
        )
        x = ag.add(x, self.dropout(attn_out))
        ffn_out = self.ffn(
            self.ffn_norm(x), phase="prefill" if kv_cache is not None else "train"
        )
        x = ag.add(x, ffn_out)
        return x

    def forward_step(
        self,
        x: ag.Tensor,
        kv_cache: LayerKVCache,
        attention_mask: Optional[np.ndarray] = None,
    ) -> ag.Tensor:
        """Decode one token (``x`` is ``(B, 1, D)``) against a populated cache."""
        if self.norm_style != "pre_ln":
            raise ValueError(
                "KV-cached decoding requires a causal (pre-LN) layer; "
                "post-LN encoder layers have no decode path"
            )
        attn_out = self.attention.forward_step(
            self.attn_norm(x), kv_cache, attention_mask=attention_mask
        )
        x = ag.add(x, self.dropout(attn_out))
        ffn_out = self.ffn(self.ffn_norm(x), phase="decode")
        x = ag.add(x, ffn_out)
        return x

"""Transformer building blocks: feed-forward network and full layers.

Two residual arrangements are supported, covering the four LLM families the
paper evaluates:

* ``post_ln`` (BERT / RoBERTa): ``LN(x + SubLayer(x))``
* ``pre_ln``  (GPT-2 / GPT-Neo): ``x + SubLayer(LN(x))``
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.backend import ArrayBackend
from repro.nn.attention import AttentionHooks, LayerKVCache, MultiHeadAttention
from repro.nn.layers import Dropout, GELUActivation, LayerNorm, Linear
from repro.nn.module import Module
from repro.tensor import autograd as ag

__all__ = ["FeedForward", "TransformerLayer"]


class FeedForward(Module):
    """Position-wise feed-forward network (Linear -> GELU -> Linear)."""

    def __init__(
        self,
        hidden_size: int,
        intermediate_size: int,
        dropout_p: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        backend: Optional[ArrayBackend] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.fc_in = Linear(hidden_size, intermediate_size, rng=rng, backend=backend)
        self.act = GELUActivation()
        self.fc_out = Linear(intermediate_size, hidden_size, rng=rng, backend=backend)
        self.dropout = Dropout(dropout_p, rng=rng)

    def forward(self, x: ag.Tensor) -> ag.Tensor:
        return self.dropout(self.fc_out(self.act(self.fc_in(x))))


class TransformerLayer(Module):
    """One transformer layer: attention + feed-forward with residuals.

    Parameters
    ----------
    norm_style:
        ``"post_ln"`` (BERT-like) or ``"pre_ln"`` (GPT-like).
    causal / local_window:
        Forwarded to :class:`MultiHeadAttention`.
    """

    def __init__(
        self,
        hidden_size: int,
        num_heads: int,
        intermediate_size: int,
        dropout_p: float = 0.0,
        norm_style: str = "post_ln",
        causal: bool = False,
        local_window: Optional[int] = None,
        layer_index: int = 0,
        rng: Optional[np.random.Generator] = None,
        backend: Optional[ArrayBackend] = None,
    ) -> None:
        super().__init__()
        if norm_style not in ("post_ln", "pre_ln"):
            raise ValueError(f"unknown norm_style {norm_style!r}")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.norm_style = norm_style
        self.attention = MultiHeadAttention(
            hidden_size,
            num_heads,
            dropout_p=dropout_p,
            layer_index=layer_index,
            causal=causal,
            local_window=local_window,
            rng=rng,
            backend=backend,
        )
        self.attn_norm = LayerNorm(hidden_size, backend=backend)
        self.ffn = FeedForward(hidden_size, intermediate_size, dropout_p=dropout_p, rng=rng, backend=backend)
        self.ffn_norm = LayerNorm(hidden_size, backend=backend)
        self.dropout = Dropout(dropout_p, rng=rng)

    def set_hooks(self, hooks: Optional[AttentionHooks]) -> None:
        """Attach attention instrumentation hooks to this layer."""
        self.attention.set_hooks(hooks)

    def forward(
        self,
        x: ag.Tensor,
        attention_mask: Optional[np.ndarray] = None,
        kv_cache: Optional[LayerKVCache] = None,
    ) -> ag.Tensor:
        if self.norm_style == "post_ln":
            if kv_cache is not None:
                raise ValueError(
                    "KV-cached decoding requires a causal (pre-LN) layer; "
                    "post-LN encoder layers have no decode path"
                )
            attn_out = self.attention(x, attention_mask=attention_mask)
            x = self.attn_norm(ag.add(x, self.dropout(attn_out)))
            ffn_out = self.ffn(x)
            x = self.ffn_norm(ag.add(x, ffn_out))
            return x
        # pre-LN (GPT-2 / GPT-Neo)
        attn_out = self.attention(
            self.attn_norm(x), attention_mask=attention_mask, kv_cache=kv_cache
        )
        x = ag.add(x, self.dropout(attn_out))
        ffn_out = self.ffn(self.ffn_norm(x))
        x = ag.add(x, ffn_out)
        return x

    def forward_step(
        self,
        x: ag.Tensor,
        kv_cache: LayerKVCache,
        attention_mask: Optional[np.ndarray] = None,
    ) -> ag.Tensor:
        """Decode one token (``x`` is ``(B, 1, D)``) against a populated cache."""
        if self.norm_style != "pre_ln":
            raise ValueError(
                "KV-cached decoding requires a causal (pre-LN) layer; "
                "post-LN encoder layers have no decode path"
            )
        attn_out = self.attention.forward_step(
            self.attn_norm(x), kv_cache, attention_mask=attention_mask
        )
        x = ag.add(x, self.dropout(attn_out))
        ffn_out = self.ffn(self.ffn_norm(x))
        x = ag.add(x, ffn_out)
        return x

"""Zero-allocation checksum workspace and the namespace ``out=`` contract.

The fused checker's steady-state hot path computes the same handful of
checksum intermediates every layer visit — ``cs_x``, the carried ``[Q|K]``
checksums, the ``AS``/``CL``/``O`` boundary checksums, the stacked batches of
the deferred/async verification pass.  Allocating them afresh per visit costs
an allocator round-trip (and, on device backends, a stream-ordered malloc)
per buffer per layer.  :class:`ChecksumWorkspace` is a shape/dtype/device
keyed arena of named reusable buffers: the first visit allocates (warm-up),
every later visit reuses the same buffer, and the
:attr:`~ChecksumWorkspace.allocations` / :attr:`~ChecksumWorkspace.reuses`
counters make the "zero steady-state allocations" claim testable rather than
aspirational.

The ``out=`` contract
---------------------
Buffers are filled through the array namespaces' NumPy-style ``out=``
keyword.  NumPy and CuPy support it natively on ``matmul`` / ``stack`` /
``einsum``; the Torch namespace implements it on ``matmul`` and ``stack``
(Torch's ``einsum`` has no ``out=``).  The helpers in this module —
:func:`matmul_into`, :func:`einsum_into`, :func:`stack_into` — route through
``out=`` when the namespace accepts it and otherwise **fall back to a plain
allocating call**, memoising the capability per namespace so the fallback
costs one ``TypeError`` ever, not one per call.  The fallback is
value-compliant: callers always receive the correct result array; only the
reuse guarantee is void on namespaces without ``out=`` support.

Aliasing discipline
-------------------
A workspace buffer is only valid until the next request for the same slot,
so the engine never hands workspace-backed arrays to anything that outlives
the section visit: checksums queued for deferred/async verification are
allocated off-workspace, and the async worker uses a workspace of its own
(one writer per arena — the arena itself is not synchronised).
"""

from __future__ import annotations

from typing import Any, Dict, Sequence, Tuple

__all__ = [
    "ChecksumWorkspace",
    "matmul_into",
    "einsum_into",
    "stack_into",
]

#: Per-(operation, namespace) memo of whether the namespace's function accepts
#: ``out=``.  The namespace object itself is stored alongside the flag so the
#: id() key can never be served for a different (garbage-collected and
#: re-allocated) namespace.
_OUT_CAPABLE: Dict[Tuple[str, int], Tuple[Any, bool]] = {}


def _supports_out(op: str, xp: Any) -> bool:
    """Whether ``xp.<op>`` accepts the ``out=`` keyword, probed once.

    The probe runs the operation on one-element arrays with a matching
    ``out`` buffer, so the capability decision depends only on the
    namespace's *signature* — a ``TypeError`` a caller's real arguments
    provoke later (say, an out buffer of an uncastable dtype) propagates
    instead of silently disabling buffer reuse process-wide.
    """
    entry = _OUT_CAPABLE.get((op, id(xp)))
    if entry is not None and entry[0] is xp:
        return entry[1]
    probe_out = xp.zeros((1, 1), dtype=xp.float64)
    one = xp.ones((1, 1), dtype=xp.float64)
    try:
        if op == "matmul":
            xp.matmul(one, one, out=probe_out)
        elif op == "einsum":
            xp.einsum("ij,jk->ik", one, one, out=probe_out)
        elif op == "stack":
            xp.stack([xp.ones(1, dtype=xp.float64)], out=probe_out)
        else:  # pragma: no cover - helper misuse
            raise ValueError(f"unknown out-capability probe {op!r}")
        supported = True
    except TypeError:
        supported = False
    _OUT_CAPABLE[(op, id(xp))] = (xp, supported)
    return supported


def matmul_into(xp: Any, a: Any, b: Any, out: Any = None) -> Any:
    """``xp.matmul(a, b, out=out)`` with an allocating fallback.

    With ``out=None`` this is a plain ``xp.matmul`` — the helper is safe to
    use unconditionally.  The result is bitwise identical either way: the
    same GEMM kernel runs, only the destination buffer differs.
    """
    if out is None or not _supports_out("matmul", xp):
        return xp.matmul(a, b)
    return xp.matmul(a, b, out=out)


def einsum_into(xp: Any, equation: str, *operands: Any, out: Any = None) -> Any:
    """``xp.einsum(equation, *operands, out=out)`` with an allocating fallback.

    Note that NumPy's einsum abandons its specialised inner loops when an
    ``out`` is supplied (measurably slower at attention dims) — the engine
    only routes *matmul/stack* shapes through the workspace for that reason.
    """
    if out is None or not _supports_out("einsum", xp):
        return xp.einsum(equation, *operands)
    result = xp.einsum(equation, *operands, out=out)
    # NumPy's einsum returns ``out``; normalise namespaces that return None.
    return out if result is None else result


def stack_into(xp: Any, arrays: Sequence[Any], out: Any = None) -> Any:
    """``xp.stack(arrays, axis=0, out=out)`` with an allocating fallback."""
    arrays = list(arrays)
    if out is None or not _supports_out("stack", xp):
        return xp.stack(arrays)
    result = xp.stack(arrays, out=out)
    return out if result is None else result


class ChecksumWorkspace:
    """Named, shape/dtype/device-keyed arena of reusable checksum buffers.

    Each distinct ``(name, shape, dtype, namespace)`` combination owns one
    buffer: the first :meth:`request` allocates it (counted in
    :attr:`allocations`), every later request returns the same object
    (counted in :attr:`reuses`).  Slot names encode the consumer
    (``"AS/cs_x"``, ``"async/stack/CL/matrix"``, ...), so two concurrent
    intermediates can never collide, while homogeneous transformer layers
    share slots across layer visits — which is exactly where the steady-state
    reuse comes from.

    Memory is bounded by the *name count*, not by the geometry history: each
    slot name owns exactly one buffer, and a request with a different
    shape/dtype/namespace **replaces** it (releasing the old buffer) rather
    than accumulating one buffer per geometry ever seen — a long run with
    varying batch shapes keeps at most one buffer per slot.  Stability of
    the buffer *identity* across steps in the homogeneous steady state is
    part of the contract the reuse tests pin.  Buffers hold the namespace
    that created them alive, so an ``id`` key can never alias a dead
    namespace.
    """

    def __init__(self) -> None:
        #: name -> (geometry key, xp, buffer)
        self._slots: Dict[str, Tuple[Tuple, Any, Any]] = {}
        self.allocations = 0
        self.reuses = 0
        self.bytes_allocated = 0

    def __len__(self) -> int:
        return len(self._slots)

    def request(self, name: str, shape: Sequence[int], dtype: Any, xp: Any) -> Any:
        """The reusable buffer for slot ``name`` with this geometry.

        The returned buffer's contents are unspecified — every consumer fully
        overwrites it (``out=`` GEMMs, stack fills, slice assignment).
        """
        # dtype objects (NumPy dtypes/scalar types, torch dtypes) are hashable
        # and cheap to hash — stringifying them would dominate the lookup.
        key = (tuple(shape), dtype, id(xp))
        entry = self._slots.get(name)
        if entry is not None and entry[0] == key and entry[1] is xp:
            self.reuses += 1
            return entry[2]
        empty = getattr(xp, "empty", None)
        buffer = empty(tuple(shape), dtype=dtype) if empty is not None \
            else xp.zeros(tuple(shape), dtype=dtype)
        self._slots[name] = (key, xp, buffer)
        self.allocations += 1
        self.bytes_allocated += int(getattr(buffer, "nbytes", 0))
        return buffer

    def owns(self, array: Any) -> bool:
        """Whether ``array`` *is* one of the arena's buffers (identity).

        Used by the aliasing tests: nothing that outlives a section visit
        (queued checksums, retained boundary matrices) may be workspace-owned.
        """
        return any(buffer is array for _, _, buffer in self._slots.values())

    @property
    def steady_state(self) -> bool:
        """True when work ran entirely from reused buffers since the last
        :meth:`reset_stats` — the zero-allocation claim, as a predicate."""
        return self.reuses > 0 and self.allocations == 0

    def stats(self) -> Dict[str, int]:
        return {
            "slots": len(self._slots),
            "allocations": self.allocations,
            "reuses": self.reuses,
            "bytes_allocated": self.bytes_allocated,
        }

    def reset_stats(self) -> None:
        """Zero the counters without dropping buffers (post-warm-up baseline).

        After a warm-up step, call this and run more steps: a fused hot path
        that is allocation-free in steady state keeps ``allocations == 0``
        while ``reuses`` grows.
        """
        self.allocations = 0
        self.reuses = 0

    def clear(self) -> None:
        """Drop every buffer (e.g. when the engine is reset)."""
        self._slots.clear()
        self.allocations = 0
        self.reuses = 0
        self.bytes_allocated = 0

"""Protection sections of the systematic ABFT scheme (Section 4.4).

The attention execution flow (six GEMMs) is divided into three protection
sections so that any single fault manifests at worst as a 1D pattern at the
section boundary, which EEC-ABFT can correct:

* ``S_AS = {X W_Q,  X W_K,  Q K^T}`` — input ``X`` is encoded with column
  checksums once; the checksums are *passed* through the projections and the
  score GEMM; detection/correction happen on ``AS``.
* ``S_CL = {X W_V,  AP V}`` — ``W_V`` is encoded with (per-head) row
  checksums and ``AP`` with column checksums; ``CL`` ends up with both sides
  and is checked at the section boundary.
* ``S_O  = {CL W_O}`` — the column checksums of ``CL`` are carried through the
  output projection; ``O`` is checked with its column side only.

The same framework generalizes beyond attention.  The feed-forward block
contributes two further sections (whole-model protection):

* ``S_FF1 = {X W_up}`` — the FFN input ``X`` is encoded with column checksums
  once (the one new data-side encoding per layer) and carried through
  ``W_up``; detection/correction happen on the pre-activation hidden ``H``.
* ``S_FF2 = {H' W_down}`` — GELU between the two FFN GEMMs is nonlinear, so
  checksums cannot cross it; instead the cached row checksums of ``W_down``
  (one :class:`~repro.core.engine.WeightEncodingCache` entry per weight
  version) are carried as ``H' rowcs(W_down)``, and ``FO`` is checked with
  its row side only.

:data:`PROTECTION_SECTIONS` keeps its historical meaning — the attention
block's three sections — while :data:`SECTION_REGISTRY` holds every
registered section; :func:`sections_for_scope` maps an
``ATTNCheckerConfig.protect_scope`` value to the active subset.

Besides the descriptors themselves this module provides the FLOP/byte
accounting of the ABFT work each section adds (encoding, checksum updates,
detection, correction), which feeds both the adaptive-frequency optimiser
(Section 4.5 needs the per-section overhead ``T_S``) and the GPU performance
model used to reproduce Figures 7, 8, 10 and 12.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.backend import known_array_backends
from repro.utils.timing import XFER_D2H, XFER_H2D

if TYPE_CHECKING:  # annotation-only: core must not import the model layer
    from repro.models.config import ModelConfig

__all__ = [
    "ProtectionSection",
    "PROTECTION_SECTIONS",
    "SECTION_REGISTRY",
    "PROTECT_SCOPES",
    "sections_for_scope",
    "SectionCostModel",
    "SectionCosts",
    "HOST_ARRAY_BACKENDS",
]

#: Array backends that share the host address space with the (NumPy) training
#: loop — a checker pinned to one of these never pays PCIe transfer bytes.
HOST_ARRAY_BACKENDS: Tuple[str, ...] = ("numpy",)


@dataclass(frozen=True)
class ProtectionSection:
    """Static description of one protection section.

    Attributes
    ----------
    name:
        Section label — ``"AS"``, ``"CL"``, ``"O"`` (the paper's
        :math:`S_{AS}`, :math:`S_{CL}`, :math:`S_O`), ``"FF1"`` or ``"FF2"``.
    operations:
        The GEMM op names (:class:`repro.nn.AttentionOp` /
        :class:`repro.core.hooks.FeedForwardOp` values) the section covers,
        in execution order.
    boundary_matrix:
        The matrix on which detection / correction runs.
    maintains_column / maintains_row:
        Which checksum sides the boundary matrix carries.
    block:
        The registered instrumentation block the section belongs to
        (``"attention"`` or ``"ffn"``) — the key space of
        :func:`repro.core.hooks.register_block_ops`.
    """

    name: str
    operations: Tuple[str, ...]
    boundary_matrix: str
    maintains_column: bool
    maintains_row: bool
    block: str = "attention"

    @property
    def nondeterministic(self) -> bool:
        """Whether the boundary matrix can see either a 1R or a 1C pattern."""
        return self.maintains_column and self.maintains_row

    @property
    def boundary_op(self) -> str:
        """The GEMM op that produces the boundary matrix (the section's last op).

        This is where the fused :class:`repro.core.engine.ProtectionEngine`
        dispatches the section's whole checksum chain — one Python dispatch
        per section instead of one per member GEMM.
        """
        return self.operations[-1]


#: The three protection sections of the paper (the attention block), keyed by
#: name.  This is the historical attention-only view; the whole-model registry
#: is :data:`SECTION_REGISTRY`.
PROTECTION_SECTIONS: Dict[str, ProtectionSection] = {
    "AS": ProtectionSection(
        name="AS",
        operations=("xq", "xk", "qk"),
        boundary_matrix="AS",
        maintains_column=True,
        maintains_row=True,
    ),
    "CL": ProtectionSection(
        name="CL",
        operations=("xv", "apv"),
        boundary_matrix="CL",
        maintains_column=True,
        maintains_row=True,
    ),
    "O": ProtectionSection(
        name="O",
        operations=("clo",),
        boundary_matrix="O",
        maintains_column=True,
        maintains_row=False,
    ),
}

#: Every registered protection section, keyed by name — the attention triple
#: followed by the feed-forward pair, in per-layer execution order (the async
#: repair pass ranks dirty boundaries by this order).
SECTION_REGISTRY: Dict[str, ProtectionSection] = {
    **PROTECTION_SECTIONS,
    "FF1": ProtectionSection(
        name="FF1",
        operations=("ff_up",),
        boundary_matrix="H",
        maintains_column=True,
        maintains_row=False,
        block="ffn",
    ),
    "FF2": ProtectionSection(
        name="FF2",
        operations=("ff_down",),
        boundary_matrix="FO",
        maintains_column=False,
        maintains_row=True,
        block="ffn",
    ),
}

#: Valid ``ATTNCheckerConfig.protect_scope`` values.  ``"attention"`` is the
#: historical bit-for-bit default; ``"attention+ffn"`` adds the FFN sections;
#: ``"full"`` means every registered section (today identical to
#: ``"attention+ffn"`` — embeddings/LayerNorm invariants are a noted residual).
PROTECT_SCOPES: Tuple[str, ...] = ("attention", "attention+ffn", "full")


def sections_for_scope(scope: str) -> Dict[str, ProtectionSection]:
    """The active section subset for one ``protect_scope`` value."""
    if scope == "attention":
        return PROTECTION_SECTIONS
    if scope in ("attention+ffn", "full"):
        return SECTION_REGISTRY
    raise KeyError(
        f"unknown protect scope {scope!r}; expected one of {PROTECT_SCOPES}"
    )


@dataclass(frozen=True)
class SectionCosts:
    """ABFT work added by one section, split by phase (FLOPs and bytes moved).

    ``encode``   — building fresh checksums from data (X, AP, W_V);
    ``update``   — carrying checksums through the member GEMMs;
    ``detect``   — recomputing sums of the boundary matrix and comparing;
    ``correct``  — worst-case correction cost (only paid when a fault hit).
    Byte counts assume the configured element size and are used by the
    bandwidth-bound parts of the GPU performance model.
    """

    encode_flops: float
    update_flops: float
    detect_flops: float
    correct_flops: float
    encode_bytes: float
    detect_bytes: float

    @property
    def detection_path_flops(self) -> float:
        """FLOPs on the always-paid path (everything except correction)."""
        return self.encode_flops + self.update_flops + self.detect_flops

    @property
    def total_flops(self) -> float:
        return self.detection_path_flops + self.correct_flops


class SectionCostModel:
    """FLOP / byte accounting of ABFT work per protection section.

    Parameters
    ----------
    config:
        Model architecture (provides D, H, d_h, sequence length).
    batch_size:
        Training batch size.
    seq_len:
        Sequence length; defaults to ``config.max_seq_len``.
    element_size:
        Bytes per element (4 for the paper's fp32 training, 8 for the NumPy
        reproduction).
    array_backend:
        Which registered array backend the modelled checker runs on — a name
        from :data:`repro.backend.KNOWN_ARRAY_BACKENDS` or ``"auto"``
        (modelled as the host default, NumPy).  This is an *analytical*
        parameter: the library need not be installed.  It drives the
        :meth:`transfer_bytes` accounting — host backends move zero transfer
        bytes against the host-resident training loop, device backends pay
        the adoption / write-back traffic the ``xfer/h2d`` / ``xfer/d2h``
        timer keys measure on real runs.
    """

    def __init__(
        self,
        config: ModelConfig,
        batch_size: int,
        seq_len: Optional[int] = None,
        element_size: int = 4,
        array_backend: str = "numpy",
    ) -> None:
        if array_backend != "auto" and array_backend not in known_array_backends():
            # Same contract as the registry: unknown names are ValueError.
            raise ValueError(
                f"unknown array backend {array_backend!r}; expected 'auto' or "
                f"one of {known_array_backends()}"
            )
        self.config = config
        self.batch_size = batch_size
        self.seq_len = seq_len if seq_len is not None else config.max_seq_len
        self.element_size = element_size
        self.array_backend = "numpy" if array_backend == "auto" else array_backend

    # -- per-section ABFT costs ---------------------------------------------------

    def section_costs(self, name: str) -> SectionCosts:
        """ABFT cost breakdown for section ``name`` for one attention layer."""
        b = self.batch_size
        s = self.seq_len
        d = self.config.hidden_size
        h = self.config.num_heads
        dh = self.config.head_dim
        es = self.element_size

        if name == "AS":
            # Encode col checksums of X: (2 x S) @ (S x D) per batch sample.
            encode = 2 * 2 * s * d * b
            # Pass through W_Q and W_K: (2 x D) @ (D x D), twice, per sample.
            update = 2 * (2 * 2 * d * d) * b
            # Column side of AS: (2 x dh) @ (dh x S) per head; row side:
            # (S x dh) @ (dh x 2) per head.
            update += (2 * 2 * dh * s + 2 * s * dh * 2) * b * h
            # Detect: recompute weighted+unweighted column and row sums of AS.
            detect = 2 * (2 * s * s) * b * h * 2
            # Correct (worst case, 1D): reconstruct one element per vector.
            correct = 4 * s * b * h
            encode_bytes = (s * d + 2 * d) * b * es
            detect_bytes = (s * s) * b * h * es * 2
        elif name == "CL":
            # Encode col checksums of AP: (2 x S) @ (S x S) per head, plus the
            # per-head row checksums of W_V: (D x dh) @ (dh x 2) per head.
            encode = 2 * 2 * s * s * b * h + 2 * d * dh * 2 * h
            # Row checksums of V: X @ rowcs(W_V): (S x D) @ (D x 2H) per sample;
            # col side of CL: (2 x S) @ (S x dh); row side: (S x S) @ (S x 2).
            update = 2 * s * d * 2 * h * b
            update += (2 * 2 * s * dh + 2 * s * s * 2) * b * h
            detect = 2 * (2 * s * dh) * b * h * 2
            correct = 4 * s * b * h
            encode_bytes = (s * s * h + d * dh * h) * b * es
            detect_bytes = (s * dh) * b * h * es * 2
        elif name == "O":
            # Carry col checksums of CL through W_O: (2 x D) @ (D x D) per sample.
            encode = 0.0
            update = 2 * 2 * d * d * b
            detect = 2 * (2 * s * d) * b
            correct = 4 * d * b
            encode_bytes = 0.0
            detect_bytes = (s * d) * b * es
        elif name == "FF1":
            d_ff = self.config.intermediate_size
            # Encode col checksums of X: (2 x S) @ (S x D) per sample.
            encode = 2 * 2 * s * d * b
            # Carry through W_up: (2 x D) @ (D x D_ff) per sample.
            update = 2 * 2 * d * d_ff * b
            # Detect: recompute weighted+unweighted column sums of H.
            detect = 2 * (2 * s * d_ff) * b
            # Correct (worst case, 1D): one element per column vector.
            correct = 4 * d_ff * b
            encode_bytes = (s * d + 2 * d) * b * es
            detect_bytes = (s * d_ff) * b * es
        elif name == "FF2":
            d_ff = self.config.intermediate_size
            # Encode row checksums of W_down: (D_ff x D) @ (D x 2) — amortised
            # by the weight-encoding cache, charged here like S_CL's W_V.
            encode = 2 * d_ff * d * 2
            # Carry: H' @ rowcs(W_down): (S x D_ff) @ (D_ff x 2) per sample.
            update = 2 * s * d_ff * 2 * b
            # Detect: recompute weighted+unweighted row sums of FO.
            detect = 2 * (2 * s * d) * b
            # Correct (worst case, 1D): one element per row vector.
            correct = 4 * s * b
            encode_bytes = (d_ff * d) * es
            detect_bytes = (s * d) * b * es
        else:
            raise KeyError(f"unknown protection section {name!r}")

        return SectionCosts(
            encode_flops=float(encode),
            update_flops=float(update),
            detect_flops=float(detect),
            correct_flops=float(correct),
            encode_bytes=float(encode_bytes),
            detect_bytes=float(detect_bytes),
        )

    def all_section_costs(self, scope: str = "attention") -> Dict[str, SectionCosts]:
        """Costs for every section of ``scope`` for one transformer layer.

        The default scope is the historical attention triple; pass
        ``"attention+ffn"`` / ``"full"`` for the whole-model registry.
        """
        return {name: self.section_costs(name) for name in sections_for_scope(scope)}

    # -- host <-> device transfer accounting ---------------------------------------

    @property
    def device_resident(self) -> bool:
        """Whether the modelled checker backend lives across a PCIe boundary
        from the host-resident training loop."""
        return self.array_backend not in HOST_ARRAY_BACKENDS

    def section_transfer_bytes(self, name: str) -> Dict[str, float]:
        """Bytes one layer's section moves across the host/device boundary.

        Models the *pinned-foreign* engine configuration (host-resident model
        arrays, device-pinned checker): ``xfer/h2d`` is the adoption of every
        section operand plus the boundary matrix, ``xfer/d2h`` the worst-case
        write-back of a repaired boundary.  Host backends (NumPy — and the
        fused engine's default *follow-the-arrays* mode on any backend) move
        nothing: the keys are exactly zero, which the Figure-8 benchmark
        asserts for the pure-NumPy path.
        """
        if not self.device_resident:
            return {XFER_H2D: 0.0, XFER_D2H: 0.0}
        b = self.batch_size
        s = self.seq_len
        d = self.config.hidden_size
        h = self.config.num_heads
        dh = self.config.head_dim
        es = self.element_size
        if name == "AS":
            # Operands: X (B,S,D), W_Q/W_K (D,D), Q/K^T (B,H,S,dh); boundary AS.
            h2d = b * s * d + 2 * d * d + 2 * b * h * s * dh + b * h * s * s
            d2h = b * h * s * s
        elif name == "CL":
            # Operands: X, W_V, AP (B,H,S,S), V (B,H,S,dh); boundary CL.
            h2d = b * s * d + d * d + b * h * s * s + b * h * s * dh + b * h * s * dh
            d2h = b * h * s * dh
        elif name == "O":
            # Operands: CL merged (B,S,D), W_O (D,D); boundary O.
            h2d = b * s * d + d * d + b * s * d
            d2h = b * s * d
        elif name == "FF1":
            d_ff = self.config.intermediate_size
            # Operands: X (B,S,D), W_up (D,D_ff); boundary H (B,S,D_ff).
            h2d = b * s * d + d * d_ff + b * s * d_ff
            d2h = b * s * d_ff
        elif name == "FF2":
            d_ff = self.config.intermediate_size
            # Operands: H' (B,S,D_ff), W_down (D_ff,D); boundary FO (B,S,D).
            h2d = b * s * d_ff + d_ff * d + b * s * d
            d2h = b * s * d
        else:
            raise KeyError(f"unknown protection section {name!r}")
        return {XFER_H2D: float(h2d * es), XFER_D2H: float(d2h * es)}

    def transfer_bytes_per_layer(self, scope: str = "attention") -> Dict[str, float]:
        """Aggregate :meth:`section_transfer_bytes` over the scope's sections,
        keyed by the runtime timer names (``xfer/h2d`` / ``xfer/d2h``)."""
        totals = {XFER_H2D: 0.0, XFER_D2H: 0.0}
        for name in sections_for_scope(scope):
            for key, value in self.section_transfer_bytes(name).items():
                totals[key] += value
        return totals

    # -- protected-operation FLOPs (needed by the Poisson reliability model) -------

    def operation_flops(self) -> Dict[str, float]:
        """FLOPs of each protected GEMM for one attention layer forward pass."""
        b = self.batch_size
        s = self.seq_len
        d = self.config.hidden_size
        h = self.config.num_heads
        dh = self.config.head_dim
        return {
            "xq": 2.0 * b * s * d * d,
            "xk": 2.0 * b * s * d * d,
            "xv": 2.0 * b * s * d * d,
            "qk": 2.0 * b * h * s * s * dh,
            "apv": 2.0 * b * h * s * s * dh,
            "clo": 2.0 * b * s * d * d,
        }

    def ffn_operation_flops(self) -> Dict[str, float]:
        """FLOPs of each protected FFN GEMM for one layer forward pass."""
        b = self.batch_size
        s = self.seq_len
        d = self.config.hidden_size
        d_ff = self.config.intermediate_size
        return {
            "ff_up": 2.0 * b * s * d * d_ff,
            "ff_down": 2.0 * b * s * d_ff * d,
        }

    def section_operation_flops(self, name: str) -> Dict[str, float]:
        """FLOPs of the operations belonging to section ``name``."""
        section = SECTION_REGISTRY[name]
        flops = {**self.operation_flops(), **self.ffn_operation_flops()}
        return {op: flops[op] for op in section.operations}

    # -- host-side dispatch accounting ---------------------------------------------

    @staticmethod
    def python_dispatches_per_layer(backend: str, scope: str = "attention") -> int:
        """Host-side ABFT dispatch points per transformer layer forward pass.

        The per-GEMM reference backend does checksum work inside all six GEMM
        hooks; the fused engine dispatches once per protection section (at the
        boundary GEMM), i.e. three times.  The counts are real dispatch
        counts, not just work counts: when the fused checker is the only
        consumer, :class:`repro.nn.MultiHeadAttention` skips the non-boundary
        GEMM hooks entirely (see ``AttentionHooks.consumes_gemm_outputs``).
        Composing hooks that do consume per-GEMM outputs (a fault injector, a
        recorder) restores those dispatches for *them* — the checker's own
        work still runs at the three boundaries only.  On the GPU substrate
        the paper targets this is the kernel-launch/synchronisation count; on
        the NumPy substrate it is the Python round-trip count — either way the
        fixed per-layer overhead the Section-4.4 fusion removes.

        ``scope`` selects the active section subset (default: the historical
        attention triple — 3 fused / 6 per-GEMM; ``"attention+ffn"`` adds the
        two single-GEMM FFN sections — 5 fused / 8 per-GEMM).
        """
        sections = sections_for_scope(scope)
        if backend == "fused":
            return len(sections)
        if backend == "per_gemm":
            return sum(len(s.operations) for s in sections.values())
        raise KeyError(f"unknown backend {backend!r}; expected 'fused' or 'per_gemm'")

    @staticmethod
    def checksum_gemm_dispatches_per_layer(
        schedule: str, steady_state: bool = True, scope: str = "attention"
    ) -> Dict[str, int]:
        """Checksum GEMM/einsum launches per transformer-layer visit, by section.

        Counts the encode/carry launches of the fused engine's checksum chain
        (what ``ProtectionEngine.dispatch_counts["gemm"]`` measures), with all
        three sections enabled — detection launches are modelled separately by
        :meth:`verification_dispatches_per_step`.  Bias adjustments are
        elementwise, not GEMMs, and are not counted.

        * ``"unfused"`` — the historical one-GEMM-per-update schedule
          (``fuse_sibling_gemms=False, cache_weight_encodings=False``):
          S_AS encodes ``cs_x`` and carries it through ``W_Q`` and ``W_K``
          separately (3) plus the two boundary-side carries (2); S_CL encodes
          ``rowcs(W_V)`` and ``col(AP)`` (2) and carries three times (3);
          S_O carries once.
        * ``"fused"`` — the sibling GEMMs collapse into one launch against
          ``[W_Q | W_K]`` (S_AS drops to 4) and, in steady state
          (``steady_state=True``: weights unchanged since the last visit, so
          the weight-encoding cache hits), the ``rowcs(W_V)`` encode
          disappears from the per-visit path (S_CL drops to 4).  A cold visit
          (``steady_state=False`` — first visit, or the first after a weight
          update) pays the ``rowcs(W_V)`` encode once.

        With an FFN-including ``scope`` the two single-GEMM feed-forward
        sections are added:

        * ``FF1`` encodes ``col(X)`` and carries it through ``W_up`` — 2
          launches under either schedule (sibling fusion has no sibling here);
        * ``FF2`` carries ``H'`` through the cached ``rowcs(W_down)`` — 1
          launch in the fused steady state; the unfused schedule (or a cold
          visit) re-encodes ``rowcs(W_down)`` per visit, so 2.

        The totals are exact counts the fused-kernel tests compare against
        the engine's measured counters.
        """
        if schedule == "unfused":
            counts = {"AS": 5, "CL": 5, "O": 1}
            ffn = {"FF1": 2, "FF2": 2}
        elif schedule == "fused":
            counts = {"AS": 4, "CL": 4 if steady_state else 5, "O": 1}
            ffn = {"FF1": 2, "FF2": 1 if steady_state else 2}
        else:
            raise KeyError(
                f"unknown schedule {schedule!r}; expected 'fused' or 'unfused'"
            )
        if "FF1" in sections_for_scope(scope):
            counts.update(ffn)
        return counts

    @staticmethod
    def serving_decode_checksum_gemm_dispatches_per_layer(
        steady_state: bool = True, scope: str = "attention"
    ) -> Dict[str, int]:
        """Checksum GEMM/einsum launches per *decoded token* per layer.

        The serving decode path is row-side only and incremental: the KV
        cache carries ``cs(X)`` (folded forward per token — an elementwise
        AXPY, not a GEMM) and the per-position row checksums of V, so every
        count here is **constant in the cached sequence length** — the O(1)
        property the serving benchmark counter-verifies at two different
        cache lengths.

        * ``S_AS`` — carry ``cs(X)`` through ``W_K`` (1) and the boundary
          row carry ``q @ row(K)^T`` (1): 2.
        * ``S_CL`` — the new token's ``cs_v`` einsum (1) and the boundary row
          carry ``ap @ row(V)`` (1): 2.  A cold visit (first decode after a
          weight update) additionally encodes ``rowcs(W_V)`` (+1).
        * ``S_O`` — the boundary row carry ``cl @ rowcs(W_O)`` (1): 1.  A
          cold visit additionally encodes ``rowcs(W_O)`` (+1).

        The FFN has no KV cache — it sees only the current token — so its
        decode sections run the training algebra at ``S = 1`` and are O(1)
        per token by construction:

        * ``S_FF1`` — encode ``col(x)`` of the one new row (1) and carry it
          through ``W_up`` (1): 2.
        * ``S_FF2`` — the boundary row carry ``h' @ rowcs(W_down)`` (1): 1.
          A cold visit additionally encodes ``rowcs(W_down)`` (+1).

        Exact counts, compared against ``ProtectionEngine.dispatch_counts``
        deltas by the serving tests and ``benchmarks/bench_serving.py`` /
        ``benchmarks/bench_ffn_overhead.py``.
        """
        if steady_state:
            counts = {"AS": 2, "CL": 2, "O": 1}
            ffn = {"FF1": 2, "FF2": 1}
        else:
            counts = {"AS": 2, "CL": 3, "O": 2}
            ffn = {"FF1": 2, "FF2": 2}
        if "FF1" in sections_for_scope(scope):
            counts.update(ffn)
        return counts

    @staticmethod
    def checksum_workspace_slots(mode: str, scope: str = "attention") -> int:
        """Distinct reusable workspace buffers of the critical-path arena.

        With ``reuse_workspace`` on, the fused engine's steady-state hot path
        serves every *managed* checksum intermediate from one of these named
        slots, shared across the homogeneous layers of a model.  Immediate
        mode keeps the boundary checksums in the arena too (9 slots:
        ``cs_x``/``cs_qk``/two ``AS`` sides, ``cs_ap_col``/two ``CL`` sides,
        the merged ``CL`` checksum and the ``O`` side); deferred/async modes
        queue the five boundary-checksum arrays past the visit, so those are
        allocated fresh and only the four transient intermediates stay in
        the arena.

        One intermediate is deliberately unmanaged: ``cs_v_row`` (the carried
        row checksums of V) comes from an einsum, and einsum's ``out=`` path
        forfeits NumPy's specialised inner loops (measured ~4x slower at
        attention dims) while Torch's einsum has no ``out=`` at all — so that
        single buffer allocates per visit by design.

        An FFN-including ``scope`` adds three immediate-mode slots — the
        ``FF1`` input encode (``FF1/cs_x``) plus the two boundary-checksum
        slots (``FF1/col``, ``FF2/row``) — and one queued-mode slot (only the
        encode intermediate stays in the arena when boundary checksums are
        queued past the visit).
        """
        if mode == "immediate":
            slots = 9
            ffn = 3
        elif mode in ("deferred", "async"):
            slots = 4
            ffn = 1
        else:
            raise KeyError(
                f"unknown verification mode {mode!r}; expected 'immediate', 'deferred' or 'async'"
            )
        if "FF1" in sections_for_scope(scope):
            slots += ffn
        return slots

    @staticmethod
    def collective_checksum_dispatches_per_step(
        num_gradients: int, world_size: int, num_buckets: Optional[int] = None
    ) -> Dict[str, int]:
        """Checksum dispatches of one protected gradient all-reduce.

        The collective protection of :class:`repro.comm.ProtectedCollective`
        is linear-checksum ABFT over the reduction: every rank encodes each
        contributed tensor once (``encode`` = tensors x ranks), while the
        *verification* recomputes the checksum of the shared reduced result
        exactly once per tensor regardless of the world size (``verify`` =
        tensors) — the first rank through ``finish`` verifies, its peers
        pick the cached verdict up.  ``num_gradients`` counts the payload
        tensors of the contribution (the trainer ships one loss scalar
        alongside the parameter gradients, so pass ``len(params) + 1``).

        With ``num_buckets`` set, the counts model the *bucketed* overlapped
        trainer instead: every bucket ships as one flat tensor under its own
        rendezvous key and the loss scalar rides a key of its own, so each
        rank encodes ``num_buckets + 1`` tensors and the shared results are
        verified ``num_buckets + 1`` times — the per-tensor dispatch count
        collapses from ``num_gradients`` to ``num_buckets + 1``, which is the
        measurable Python-dispatch saving of bucketing.  A clean step's
        counts; bucket-granular dirty retries add their own dispatches on
        top.

        Exact counts, compared against ``ProtectedCollective.counters()``
        deltas by the parallel-training tests, ``BENCH_fig12.json`` and
        ``BENCH_overlap.json``.
        """
        if num_gradients < 1:
            raise ValueError(f"num_gradients must be >= 1, got {num_gradients}")
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {world_size}")
        if num_buckets is None:
            return {
                "encode": num_gradients * world_size,
                "verify": num_gradients,
            }
        # Bucketed: num_gradients includes the loss tensor, which is never
        # bucketed, so at most num_gradients - 1 parameter tensors exist.
        if not 1 <= num_buckets <= max(1, num_gradients - 1):
            raise ValueError(
                f"num_buckets must be in [1, {max(1, num_gradients - 1)}], "
                f"got {num_buckets}"
            )
        return {
            "encode": (num_buckets + 1) * world_size,
            "verify": num_buckets + 1,
        }

    @staticmethod
    def steady_state_hot_path_allocations() -> int:
        """Workspace allocations per layer visit once warm — zero by design.

        The measurable claim behind ``reuse_workspace``: after the warm-up
        visit, ``ChecksumWorkspace.allocations`` stays flat while ``reuses``
        grows (counter-verified by the fused-kernel tests and the Figure-7
        perf smoke).
        """
        return 0

    @staticmethod
    def verification_dispatches_per_step(
        mode: str, num_layers: int, scope: str = "attention"
    ) -> Dict[str, int]:
        """Boundary-*verification* dispatches of one training step, split by
        where they land relative to the training critical path.

        Complements :meth:`python_dispatches_per_layer` (which counts the
        encode/carry dispatch points of the fused engine): this counts the
        EEC-ABFT verification passes themselves, per fused-engine mode.

        * ``immediate`` — one verification per section per layer, all inside
          the forward pass.
        * ``deferred`` — all layers of the step are stacked and verified in
          one batched pass per section at ``end_step``; fewer dispatches, but
          still on the calling thread.
        * ``async`` — the same batched passes run on the worker thread, so
          zero verification dispatches remain on the critical path.

        Counts assume the homogeneous-layer case (every layer's boundary
        matrices share a shape, so each section forms a single stacked group).
        """
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        sections = len(sections_for_scope(scope))
        if mode == "immediate":
            return {"critical_path": sections * num_layers, "off_critical_path": 0}
        if mode == "deferred":
            return {"critical_path": sections, "off_critical_path": 0}
        if mode == "async":
            return {"critical_path": 0, "off_critical_path": sections}
        raise KeyError(
            f"unknown verification mode {mode!r}; expected 'immediate', 'deferred' or 'async'"
        )

    def attention_gemm_flops(self) -> float:
        """Total protected GEMM FLOPs of one attention layer forward pass."""
        return float(sum(self.operation_flops().values()))

    def abft_flops(self) -> float:
        """Total ABFT detection-path FLOPs (all three sections, one layer)."""
        return float(sum(c.detection_path_flops for c in self.all_section_costs().values()))

    def abft_relative_overhead(self) -> float:
        """ABFT detection-path FLOPs relative to the protected GEMM FLOPs."""
        return self.abft_flops() / self.attention_gemm_flops()

"""Numerical thresholds used by EEC-ABFT.

The paper (Section 4.2) uses two empirical thresholds:

* ``T_near-INF = 1e10`` — values larger than this are treated as near-INF
  (extreme) errors;
* ``T_correct  = 1e5``  — corrupted values larger than this are repaired by
  *reconstruction* from the checksum and the healthy elements instead of by
  adding the checksum difference, because the difference would absorb the
  smaller elements of the vector under floating-point round-off.

Detection additionally needs a round-off tolerance ``E`` ("close enough"
comparison of recalculated and maintained checksums).  We express it as a
relative + absolute tolerance pair, scaled per comparison by the magnitude of
the checksums involved — the standard practice for ABFT on floating point.

The two array-consuming methods (:meth:`ABFTThresholds.detection_tolerance`
and :meth:`ABFTThresholds.is_extreme`) are backend-generic: they dispatch
through the namespace of whatever array library owns their input, so
thresholding runs on-device for CuPy/Torch data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.backend import namespace_of

__all__ = ["ABFTThresholds"]


@dataclass(frozen=True)
class ABFTThresholds:
    """Threshold bundle for detection and correction.

    Attributes
    ----------
    near_inf:
        ``T_near-INF`` of the paper: magnitude above which a value counts as
        an extreme (near-INF) error.
    correct:
        ``T_correct`` of the paper: magnitude above which correction must use
        reconstruction rather than delta addition.
    detect_rtol / detect_atol:
        Relative / absolute round-off tolerance for checksum comparison (the
        paper's ``E``).  The defaults are generous enough that fault-free
        float64 GEMMs of the sizes used in the experiments never trigger a
        false positive, yet tight enough that any injected fault large enough
        to matter is detected (the vulnerability study shows benign faults
        need no correction anyway).
    index_rtol:
        Tolerance on how far ``delta2/delta1`` may sit from an integer before
        the located index is considered unreliable (multiple numeric errors).
    """

    near_inf: float = 1e10
    correct: float = 1e5
    detect_rtol: float = 1e-7
    detect_atol: float = 1e-9
    index_rtol: float = 0.05

    def __post_init__(self) -> None:
        if self.near_inf <= self.correct:
            raise ValueError("near_inf threshold must exceed the correction threshold")
        if self.detect_rtol <= 0 or self.detect_atol <= 0:
            raise ValueError("detection tolerances must be positive")
        if not 0 < self.index_rtol < 0.5:
            raise ValueError("index_rtol must lie in (0, 0.5)")

    @classmethod
    def for_precision(cls, precision: str, **overrides) -> "ABFTThresholds":
        """Thresholds matched to the numerical precision of the protected GEMMs.

        The detection tolerance ``E`` must absorb the round-off of the compute
        precision: float64 kernels need ~1e-7 relative, float32 (the paper's
        training precision, or the :class:`repro.faults.PrecisionSimulationHooks`
        mode of this package) needs ~1e-4, and half precision ~1e-2.  The
        near-INF / correction thresholds are precision-independent.
        """
        tolerances = {
            "float64": (1e-7, 1e-9),
            "float32": (1e-4, 1e-6),
            "tf32": (5e-4, 1e-5),
            "bfloat16": (2e-2, 1e-4),
            "float16": (2e-2, 1e-4),
        }
        if precision not in tolerances:
            raise KeyError(
                f"unknown precision {precision!r}; expected one of {sorted(tolerances)}"
            )
        rtol, atol = tolerances[precision]
        params = {"detect_rtol": rtol, "detect_atol": atol}
        params.update(overrides)
        return cls(**params)

    def detection_tolerance(self, reference) -> Any:
        """Per-comparison tolerance ``E`` scaled by the reference magnitude."""
        xp = namespace_of(reference)
        ref = xp.abs(xp.astype(xp.asarray(reference), xp.float64, copy=False))
        ref = xp.where(xp.isfinite(ref), ref, 0.0)
        return self.detect_rtol * ref + self.detect_atol

    def is_extreme(self, values) -> Any:
        """Mask of INF / NaN / near-INF elements."""
        xp = namespace_of(values)
        values = xp.asarray(values)
        return ~xp.isfinite(values) | (xp.abs(values) > self.near_inf)

"""Standalone ABFT-protected GEMM.

ATTNChecker integrates ABFT into the attention dataflow through hooks, but the
underlying primitive — a matrix multiplication whose output is verified and
repaired against carried checksums — is useful on its own (it is the building
block the classic ABFT literature the paper extends provides).  This module
exposes it as a small public API:

>>> from repro.core.protected_gemm import protected_matmul
>>> result = protected_matmul(a, b)          # C = A @ B with both checksum sides
>>> result.output                             # the (repaired, if needed) product
>>> result.report.corrected                   # how many vectors were repaired

``fault_hook`` lets callers (tests, campaigns) corrupt the raw product before
verification, exactly like the attention-level injector does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.core.checksums import (
    ChecksumState,
    encode_column_checksums,
    encode_row_checksums,
    update_column_checksums_through_gemm,
    update_row_checksums_through_gemm,
)
from repro.core.correction import MatrixCorrectionReport, correct_matrix
from repro.core.thresholds import ABFTThresholds

__all__ = ["ProtectedGemmResult", "protected_matmul", "ProtectedMatmul"]


@dataclass
class ProtectedGemmResult:
    """Output of one protected GEMM."""

    output: np.ndarray
    checksums: ChecksumState
    report: MatrixCorrectionReport

    @property
    def clean(self) -> bool:
        """True when no inconsistency was observed."""
        return self.report.clean

    @property
    def fully_corrected(self) -> bool:
        """True when no extreme value survived verification."""
        return self.report.fully_corrected


class ProtectedMatmul:
    """Reusable ABFT-protected matmul with configurable checksum sides.

    Parameters
    ----------
    maintain_column / maintain_row:
        Which checksum sides to encode on the inputs and verify on the output.
        Column checksums cover 0D/1R error patterns, row checksums 0D/1C;
        enabling both gives the nondeterministic-pattern handling of
        Section 4.3.
    thresholds:
        EEC-ABFT thresholds (paper defaults).
    """

    def __init__(
        self,
        maintain_column: bool = True,
        maintain_row: bool = True,
        thresholds: Optional[ABFTThresholds] = None,
    ) -> None:
        if not maintain_column and not maintain_row:
            raise ValueError("at least one checksum side must be maintained")
        self.maintain_column = maintain_column
        self.maintain_row = maintain_row
        self.thresholds = thresholds or ABFTThresholds()

    def __call__(
        self,
        a: np.ndarray,
        b: np.ndarray,
        fault_hook: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ) -> ProtectedGemmResult:
        """Compute ``a @ b`` with checksum verification and correction.

        ``fault_hook`` receives the raw product and may corrupt it in place
        (returning the array to verify), emulating a transient compute fault.
        """
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        output = np.matmul(a, b)
        if fault_hook is not None:
            output = fault_hook(output)

        col = None
        row = None
        if self.maintain_column:
            col = update_column_checksums_through_gemm(encode_column_checksums(a), b)
        if self.maintain_row:
            row = update_row_checksums_through_gemm(a, encode_row_checksums(b))
        checksums = ChecksumState(col=col, row=row)
        report = correct_matrix(output, checksums, thresholds=self.thresholds)
        return ProtectedGemmResult(output=output, checksums=checksums, report=report)


def protected_matmul(
    a: np.ndarray,
    b: np.ndarray,
    fault_hook: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    thresholds: Optional[ABFTThresholds] = None,
    maintain_column: bool = True,
    maintain_row: bool = True,
) -> ProtectedGemmResult:
    """One-shot ABFT-protected matrix multiplication (see :class:`ProtectedMatmul`)."""
    gemm = ProtectedMatmul(
        maintain_column=maintain_column, maintain_row=maintain_row, thresholds=thresholds
    )
    return gemm(a, b, fault_hook=fault_hook)

"""Standalone ABFT-protected GEMM.

ATTNChecker integrates ABFT into the attention dataflow through hooks, but the
underlying primitive — a matrix multiplication whose output is verified and
repaired against carried checksums — is useful on its own (it is the building
block the classic ABFT literature the paper extends provides).  This module
exposes it as a small public API:

>>> from repro.core.protected_gemm import protected_matmul
>>> result = protected_matmul(a, b)          # C = A @ B with both checksum sides
>>> result.output                             # the (repaired, if needed) product
>>> result.report.corrected                   # how many vectors were repaired

``fault_hook`` lets callers (tests, campaigns) corrupt the raw product before
verification, exactly like the attention-level injector does.

:class:`ProtectedGemmChain` extends the primitive to a whole *chain* of GEMMs
verified only once at the end — the standalone analogue of a protection
section (Section 4.4) and the building block the fused
:class:`repro.core.engine.ProtectionEngine` applies to the attention dataflow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from repro.backend import namespace_of
from repro.core.checksums import (
    ChecksumState,
    encode_column_checksums,
    encode_row_checksums,
    update_column_checksums_through_gemm,
    update_row_checksums_through_gemm,
)
from repro.core.correction import MatrixCorrectionReport, correct_matrix
from repro.core.thresholds import ABFTThresholds

__all__ = [
    "ProtectedGemmResult",
    "protected_matmul",
    "ProtectedMatmul",
    "ProtectedGemmChain",
]


@dataclass
class ProtectedGemmResult:
    """Output of one protected GEMM."""

    output: Any
    checksums: ChecksumState
    report: MatrixCorrectionReport

    @property
    def clean(self) -> bool:
        """True when no inconsistency was observed."""
        return self.report.clean

    @property
    def fully_corrected(self) -> bool:
        """True when no extreme value survived verification."""
        return self.report.fully_corrected


class ProtectedMatmul:
    """Reusable ABFT-protected matmul with configurable checksum sides.

    Parameters
    ----------
    maintain_column / maintain_row:
        Which checksum sides to encode on the inputs and verify on the output.
        Column checksums cover 0D/1R error patterns, row checksums 0D/1C;
        enabling both gives the nondeterministic-pattern handling of
        Section 4.3.
    thresholds:
        EEC-ABFT thresholds (paper defaults).
    """

    def __init__(
        self,
        maintain_column: bool = True,
        maintain_row: bool = True,
        thresholds: Optional[ABFTThresholds] = None,
    ) -> None:
        if not maintain_column and not maintain_row:
            raise ValueError("at least one checksum side must be maintained")
        self.maintain_column = maintain_column
        self.maintain_row = maintain_row
        self.thresholds = thresholds or ABFTThresholds()

    def __call__(
        self,
        a: Any,
        b: Any,
        fault_hook: Optional[Callable[[Any], Any]] = None,
    ) -> ProtectedGemmResult:
        """Compute ``a @ b`` with checksum verification and correction.

        ``fault_hook`` receives the raw product and may corrupt it in place
        (returning the array to verify), emulating a transient compute fault.
        """
        xp = namespace_of(a)
        a = xp.astype(xp.asarray(a), xp.float64, copy=False)
        b = xp.astype(xp.asarray(b), xp.float64, copy=False)
        output = xp.matmul(a, b)
        if fault_hook is not None:
            output = fault_hook(output)

        col = None
        row = None
        if self.maintain_column:
            col = update_column_checksums_through_gemm(encode_column_checksums(a), b)
        if self.maintain_row:
            row = update_row_checksums_through_gemm(a, encode_row_checksums(b))
        checksums = ChecksumState(col=col, row=row)
        report = correct_matrix(output, checksums, thresholds=self.thresholds)
        return ProtectedGemmResult(output=output, checksums=checksums, report=report)


class ProtectedGemmChain:
    """Section-level checksum passing over ``C = (((A B_1) B_2) ... B_k)``.

    Column checksums of ``A`` are encoded **once** and carried through every
    member GEMM; row checksums are derived from ``B_k`` and the last
    intermediate product.  Only the final product is verified — a fault
    striking *any* member GEMM still surfaces there, because the carried
    checksums describe the true output (the central algebraic fact of
    Section 4.4).  This is exactly one verification per chain instead of one
    per GEMM, at the price of correction granularity: the located error is
    repaired in the final product only.

    Parameters
    ----------
    maintain_column / maintain_row:
        Checksum sides to carry; as for :class:`ProtectedMatmul`.
    thresholds:
        EEC-ABFT thresholds (paper defaults).
    """

    def __init__(
        self,
        maintain_column: bool = True,
        maintain_row: bool = True,
        thresholds: Optional[ABFTThresholds] = None,
    ) -> None:
        if not maintain_column and not maintain_row:
            raise ValueError("at least one checksum side must be maintained")
        self.maintain_column = maintain_column
        self.maintain_row = maintain_row
        self.thresholds = thresholds or ABFTThresholds()

    def __call__(
        self,
        a: Any,
        bs: Sequence[Any],
        fault_hook: Optional[Callable[[int, Any], Any]] = None,
    ) -> ProtectedGemmResult:
        """Compute the chained product with one verification at the end.

        ``fault_hook`` receives ``(stage_index, intermediate)`` after each
        member GEMM and may corrupt the intermediate in place, emulating a
        transient fault striking mid-section that is only detected at the
        section boundary.
        """
        if not bs:
            raise ValueError("chain needs at least one right-hand operand")
        xp = namespace_of(a)
        a = xp.astype(xp.asarray(a), xp.float64, copy=False)
        operands = [xp.astype(xp.asarray(b), xp.float64, copy=False) for b in bs]

        out = a
        col = encode_column_checksums(a) if self.maintain_column else None
        with xp.errstate(invalid="ignore", over="ignore"):
            for stage, b in enumerate(operands):
                penultimate = out
                out = xp.matmul(out, b)
                if fault_hook is not None:
                    out = fault_hook(stage, out)
                if col is not None:
                    col = update_column_checksums_through_gemm(col, b)
            row = None
            if self.maintain_row:
                # row(C) = (A B_1 ... B_{k-1}) row(B_k): the row side only needs
                # the last intermediate, which the forward recursion provides for
                # free.  The intermediate may carry an injected extreme value;
                # that is the nondeterministic-pattern scenario the verification
                # below handles.
                row = update_row_checksums_through_gemm(
                    penultimate, encode_row_checksums(operands[-1])
                )

        checksums = ChecksumState(col=col, row=row)
        report = correct_matrix(out, checksums, thresholds=self.thresholds)
        return ProtectedGemmResult(output=out, checksums=checksums, report=report)


def protected_matmul(
    a: Any,
    b: Any,
    fault_hook: Optional[Callable[[Any], Any]] = None,
    thresholds: Optional[ABFTThresholds] = None,
    maintain_column: bool = True,
    maintain_row: bool = True,
) -> ProtectedGemmResult:
    """One-shot ABFT-protected matrix multiplication (see :class:`ProtectedMatmul`)."""
    gemm = ProtectedMatmul(
        maintain_column=maintain_column, maintain_row=maintain_row, thresholds=thresholds
    )
    return gemm(a, b, fault_hook=fault_hook)

"""Error-pattern and error-type classification.

The paper classifies how a fault manifests in a matrix (Section 2.2):

* ``0D`` — a single standalone erroneous element,
* ``1R`` — errors confined to (part of) one row,
* ``1C`` — errors confined to (part of) one column,
* ``2D`` — errors spanning more than one row *and* more than one column,

and tracks which value classes appear (INF, NaN, near-INF or a mixture —
Table 2 uses the symbols ∞, Θ, N and M).  This module provides the shared
classification used by both the fault-propagation study
(:mod:`repro.faults.propagation`) and the ABFT correction logic.

All functions are xp-generic: they classify whatever array type they are
handed (NumPy, CuPy, Torch) in that array's own namespace, so a
device-resident matrix is classified on device.  Python sequences and
scalars fall back to the NumPy reference backend via ``namespace_of``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional

from repro.backend import namespace_of
from repro.core.thresholds import ABFTThresholds

__all__ = [
    "ErrorPattern",
    "ErrorTypeSet",
    "error_mask",
    "classify_error_pattern",
    "classify_error_types",
    "describe_corruption",
]


class ErrorPattern(str, enum.Enum):
    """Spatial propagation pattern of errors inside one matrix block."""

    NONE = "none"
    ZERO_D = "0D"
    ONE_ROW = "1R"
    ONE_COL = "1C"
    TWO_D = "2D"


@dataclass(frozen=True)
class ErrorTypeSet:
    """Which extreme value classes are present in the erroneous elements."""

    has_inf: bool = False
    has_nan: bool = False
    has_near_inf: bool = False
    has_numeric: bool = False

    @property
    def empty(self) -> bool:
        return not (self.has_inf or self.has_nan or self.has_near_inf or self.has_numeric)

    @property
    def mixed(self) -> bool:
        """More than one class present (the paper's 'M' label)."""
        return sum([self.has_inf, self.has_nan, self.has_near_inf, self.has_numeric]) > 1

    def label(self) -> str:
        """Short label in the paper's Table-2 notation."""
        if self.empty:
            return "-"
        if self.mixed:
            return "M"
        if self.has_inf:
            return "INF"
        if self.has_nan:
            return "NaN"
        if self.has_near_inf:
            return "nINF"
        return "num"


def error_mask(
    observed: Any,
    reference: Optional[Any] = None,
    thresholds: Optional[ABFTThresholds] = None,
    rtol: float = 1e-6,
    atol: float = 1e-9,
) -> Any:
    """Boolean mask of erroneous elements.

    With a ``reference`` (fault-free) matrix the mask marks every element that
    differs beyond tolerance or differs in finiteness; without one it falls
    back to marking extreme values only.
    """
    thresholds = thresholds or ABFTThresholds()
    xp = namespace_of(observed)
    observed = xp.asarray(observed)
    if reference is None:
        return thresholds.is_extreme(observed)
    reference = xp.asarray(reference)
    if reference.shape != observed.shape:
        raise ValueError(
            f"reference shape {reference.shape} does not match observed shape {observed.shape}"
        )
    with xp.errstate(invalid="ignore"):
        both_nan = xp.isnan(observed) & xp.isnan(reference)
        # Element-wise isclose spelled out (equal_nan=False): not every
        # namespace ships xp.isclose, and the open-coded form matches NumPy's
        # definition — tolerance band on finite references, exact equality
        # covering matching infinities.
        close = (
            (xp.abs(observed - reference) <= atol + rtol * xp.abs(reference))
            & xp.isfinite(reference)
        ) | (observed == reference)
    return ~(close | both_nan)


def classify_error_pattern(mask: Any) -> ErrorPattern:
    """Classify the 2-D spatial pattern of ``mask`` (last two axes are the matrix).

    Leading batch/head axes are collapsed: the classification looks at the
    union footprint across blocks, matching how the paper reports one pattern
    per matrix.
    """
    xp = namespace_of(mask)
    mask = xp.astype(xp.asarray(mask), xp.bool_, copy=False)
    if mask.ndim < 2:
        raise ValueError("mask must have at least two dimensions")
    blocks = mask.reshape(-1, mask.shape[-2], mask.shape[-1])
    collapsed = xp.sum(blocks, axis=0) > 0
    total = int(xp.sum(collapsed))
    if total == 0:
        return ErrorPattern.NONE
    if total == 1:
        return ErrorPattern.ZERO_D
    n_rows = int(xp.sum(xp.sum(collapsed, axis=1) > 0))
    n_cols = int(xp.sum(xp.sum(collapsed, axis=0) > 0))
    if n_rows == 1:
        return ErrorPattern.ONE_ROW
    if n_cols == 1:
        return ErrorPattern.ONE_COL
    return ErrorPattern.TWO_D


def classify_error_types(
    observed: Any,
    mask: Any,
    thresholds: Optional[ABFTThresholds] = None,
) -> ErrorTypeSet:
    """Determine which value classes occur among the erroneous elements."""
    thresholds = thresholds or ABFTThresholds()
    xp = namespace_of(observed)
    observed = xp.asarray(observed)
    mask = xp.astype(xp.asarray(mask), xp.bool_, copy=False)
    if not mask.any():
        return ErrorTypeSet()
    values = observed[mask]
    has_nan = bool(xp.isnan(values).any())
    has_inf = bool(xp.isinf(values).any())
    finite = values[xp.isfinite(values)]
    has_values = int(finite.shape[0]) > 0
    has_near = bool((xp.abs(finite) > thresholds.near_inf).any()) if has_values else False
    has_numeric = bool((xp.abs(finite) <= thresholds.near_inf).any()) if has_values else False
    return ErrorTypeSet(has_inf=has_inf, has_nan=has_nan, has_near_inf=has_near, has_numeric=has_numeric)


def describe_corruption(
    observed: Any,
    reference: Optional[Any] = None,
    thresholds: Optional[ABFTThresholds] = None,
) -> str:
    """One-token description like ``"1R-NaN"`` / ``"2D-M"`` / ``"-"``.

    This is the cell format of the paper's Table 2.
    """
    thresholds = thresholds or ABFTThresholds()
    mask = error_mask(observed, reference, thresholds=thresholds)
    pattern = classify_error_pattern(mask) if mask.any() else ErrorPattern.NONE
    if pattern is ErrorPattern.NONE:
        return "-"
    types = classify_error_types(observed, mask, thresholds=thresholds)
    return f"{pattern.value}-{types.label()}"

"""Adaptive ABFT detection frequencies (Section 4.5 of the paper).

The idea: systems differ in soft-error rate and operations differ in how
likely an uncorrected error is to put training into a non-trainable state
(Table 4).  Given

* per-FLOP error rates ``lambda_INF``, ``lambda_NaN``, ``lambda_nINF``,
* per-operation vulnerabilities ``phi^e_OP`` (probability that an unhandled
  error of type ``e`` striking operation ``OP`` leads to a non-trainable
  state), and
* the ABFT overhead ``T_S`` of protecting each section ``S``,

choose per-section detection frequencies ``f_AS``, ``f_CL``, ``f_O`` that
minimise total ABFT time while keeping the *fault coverage* of the attention
mechanism above a target (e.g. at most one uncovered failure per 1e11
executions).

The number of errors striking an operation is modelled as a Poisson process
in its FLOP count (the paper's equation for :math:`P^E_{OP}(k)`); the
optimiser is the greedy Algorithm 1: sections are ranked by fault-coverage
efficiency (coverage gained per unit of ABFT time) and time is allocated to
the most efficient sections first until the target is met.

Note on the paper's ``H`` term: the text defines ``phi`` as the probability an
error *leads to* a non-trainable state and writes
``H = f_S + (1 - f_S) * phi``; for ``H`` to be "handled by ABFT **or** not
handled but benign" the second term must use ``1 - phi`` (and the FCE formula
in the same section indeed uses ``1 - phi``), so this implementation uses
``H = f_S + (1 - f_S) * (1 - phi)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.sections import PROTECTION_SECTIONS, SectionCostModel

if TYPE_CHECKING:  # annotation-only: core must not import the model layer
    from repro.models.config import ModelConfig

__all__ = [
    "ERROR_TYPES",
    "ErrorRates",
    "OperationVulnerability",
    "TABLE4_VULNERABILITY",
    "SectionReliabilityModel",
    "FrequencyPlan",
    "AdaptiveFrequencyOptimizer",
    "optimize_abft_frequencies",
]

#: The three extreme error classes of the fault model.
ERROR_TYPES: Tuple[str, ...] = ("inf", "nan", "near_inf")

#: Map from fault-injection matrix (paper's Table 4 columns) to the GEMM op
#: that produces it.
MATRIX_TO_OP: Dict[str, str] = {"Q": "xq", "K": "xk", "V": "xv", "AS": "qk", "CL": "apv", "O": "clo"}


@dataclass(frozen=True)
class ErrorRates:
    """Soft-error rates per FLOP for each extreme error class."""

    inf: float
    nan: float
    near_inf: float

    @classmethod
    def uniform(cls, rate_per_flop: float) -> "ErrorRates":
        """Same rate for all three classes (the Figure-10 setting)."""
        return cls(inf=rate_per_flop, nan=rate_per_flop, near_inf=rate_per_flop)

    @classmethod
    def from_errors_per_1e25_flops(cls, errors: float) -> "ErrorRates":
        """Figure 10's x-axis unit: errors per 1e25 FLOPs (per class)."""
        return cls.uniform(errors / 1e25)

    def rate(self, error_type: str) -> float:
        if error_type == "inf":
            return self.inf
        if error_type == "nan":
            return self.nan
        if error_type == "near_inf":
            return self.near_inf
        raise KeyError(f"unknown error type {error_type!r}")


#: Table 4 of the paper: probability (in [0,1]) that an *unhandled* error of a
#: given class injected into a given matrix leads to a non-trainable state.
#: Keys: model name -> error type -> fault-injection matrix.
TABLE4_VULNERABILITY: Dict[str, Dict[str, Dict[str, float]]] = {
    "bert-base": {
        "inf": {"Q": 1.00, "K": 1.00, "V": 1.00, "AS": 1.00, "CL": 1.00},
        "nan": {"Q": 1.00, "K": 1.00, "V": 1.00, "AS": 1.00, "CL": 1.00},
        "near_inf": {"Q": 0.459, "K": 0.434, "V": 0.063, "AS": 0.002, "CL": 0.006},
    },
    "gpt2": {
        "inf": {"Q": 0.918, "K": 0.868, "V": 1.00, "AS": 0.569, "CL": 1.00},
        "nan": {"Q": 1.00, "K": 1.00, "V": 1.00, "AS": 0.547, "CL": 1.00},
        "near_inf": {"Q": 0.384, "K": 0.372, "V": 0.010, "AS": 0.005, "CL": 0.007},
    },
    "gpt-neo": {
        "inf": {"Q": 1.00, "K": 0.856, "V": 1.00, "AS": 0.547, "CL": 1.00},
        "nan": {"Q": 1.00, "K": 1.00, "V": 1.00, "AS": 0.547, "CL": 1.00},
        "near_inf": {"Q": 0.103, "K": 0.144, "V": 0.058, "AS": 0.112, "CL": 0.096},
    },
    "roberta": {
        "inf": {"Q": 1.00, "K": 0.999, "V": 1.00, "AS": 1.00, "CL": 1.00},
        "nan": {"Q": 1.00, "K": 1.00, "V": 1.00, "AS": 1.00, "CL": 1.00},
        "near_inf": {"Q": 0.540, "K": 0.499, "V": 0.036, "AS": 0.055, "CL": 0.004},
    },
}


@dataclass
class OperationVulnerability:
    """Per-operation, per-error-type non-trainable-state probabilities (phi).

    ``phi[op][error_type]`` with op in the GEMM naming (``xq``, ``xk``, ...).
    """

    phi: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @classmethod
    def from_table4(cls, model_name: str) -> "OperationVulnerability":
        """Build from the paper's Table 4 for one of the four studied models.

        Table 4 has no column for the output matrix ``O``; its vulnerability is
        conservatively set to the CL values (an error there feeds the residual
        stream directly, much like CL does).
        """
        if model_name not in TABLE4_VULNERABILITY:
            raise KeyError(
                f"no Table-4 data for {model_name!r}; available: {sorted(TABLE4_VULNERABILITY)}"
            )
        table = TABLE4_VULNERABILITY[model_name]
        phi: Dict[str, Dict[str, float]] = {}
        for matrix, op in MATRIX_TO_OP.items():
            phi[op] = {}
            for etype in ERROR_TYPES:
                source = matrix if matrix in table[etype] else "CL"
                phi[op][etype] = float(table[etype][source])
        return cls(phi=phi)

    @classmethod
    def from_measurements(cls, measurements: Mapping[str, Mapping[str, float]]) -> "OperationVulnerability":
        """Build from a measured campaign (see :mod:`repro.faults.vulnerability`)."""
        phi = {op: {e: float(v) for e, v in row.items()} for op, row in measurements.items()}
        return cls(phi=phi)

    def get(self, op: str, error_type: str, default: float = 1.0) -> float:
        return float(self.phi.get(op, {}).get(error_type, default))


class SectionReliabilityModel:
    """Poisson reliability model of one model's attention mechanism.

    Implements the quantities of Section 4.5: per-operation error-count
    probabilities, the section-level no-error probability ``R_free``, the
    exactly-one-error probabilities ``R^e_S(j)``, the fault coverage ``FC_S``
    as a function of the detection frequency, and the fault-coverage
    efficiency ``FCE_S``.
    """

    def __init__(
        self,
        config: ModelConfig,
        batch_size: int,
        error_rates: ErrorRates,
        vulnerability: OperationVulnerability,
        seq_len: Optional[int] = None,
        flops_multiplier: float = 1.0,
        section_times: Optional[Dict[str, float]] = None,
    ) -> None:
        """
        Parameters
        ----------
        config, batch_size, seq_len:
            Geometry of the protected attention execution.
        error_rates:
            Per-FLOP rates of the three error classes.
        vulnerability:
            phi values (Table 4 or measured).
        flops_multiplier:
            Scales the per-operation FLOP counts, e.g. ``num_layers * 3`` to
            model a whole training step (forward + backward) instead of a
            single layer forward.
        section_times:
            Per-section ABFT overhead ``T_S`` (seconds or any consistent unit).
            Defaults to the detection-path FLOPs of the section cost model,
            which is proportional to time on a compute-bound device.
        """
        self.config = config
        self.error_rates = error_rates
        self.vulnerability = vulnerability
        self.cost_model = SectionCostModel(config, batch_size, seq_len=seq_len)
        self.flops_multiplier = float(flops_multiplier)
        op_flops = self.cost_model.operation_flops()
        self.op_flops = {op: f * self.flops_multiplier for op, f in op_flops.items()}
        if section_times is None:
            section_times = {
                name: self.cost_model.section_costs(name).detection_path_flops * self.flops_multiplier
                for name in PROTECTION_SECTIONS
            }
        self.section_times = dict(section_times)

    # -- Poisson building blocks -------------------------------------------------

    def p_errors(self, op: str, error_type: str, k: int) -> float:
        """P[k errors of ``error_type`` strike operation ``op``] (Poisson)."""
        lam = self.error_rates.rate(error_type) * self.op_flops[op]
        if lam == 0.0:
            return 1.0 if k == 0 else 0.0
        return math.exp(-lam) * lam**k / math.factorial(k)

    def r_free(self, section: str) -> float:
        """Probability no error of any class strikes any operation of the section."""
        ops = PROTECTION_SECTIONS[section].operations
        prob = 1.0
        for op in ops:
            for etype in ERROR_TYPES:
                prob *= self.p_errors(op, etype, 0)
        return prob

    def r_single(self, section: str, op: str, error_type: str) -> float:
        """Probability of exactly one ``error_type`` error in ``op`` and none elsewhere."""
        ops = PROTECTION_SECTIONS[section].operations
        if op not in ops:
            raise KeyError(f"operation {op!r} is not part of section {section!r}")
        prob = self.p_errors(op, error_type, 1)
        for other_etype in ERROR_TYPES:
            if other_etype != error_type:
                prob *= self.p_errors(op, other_etype, 0)
        for other_op in ops:
            if other_op == op:
                continue
            for etype in ERROR_TYPES:
                prob *= self.p_errors(other_op, etype, 0)
        return prob

    # -- fault coverage ------------------------------------------------------------

    def fault_coverage(self, section: str, frequency: float) -> float:
        """FC_S(f): probability the section produces no uncovered failure."""
        if not 0.0 <= frequency <= 1.0:
            raise ValueError(f"frequency must be in [0, 1], got {frequency}")
        ops = PROTECTION_SECTIONS[section].operations
        fc = self.r_free(section)
        for op in ops:
            for etype in ERROR_TYPES:
                phi = self.vulnerability.get(op, etype)
                handled_or_benign = frequency + (1.0 - frequency) * (1.0 - phi)
                fc += self.r_single(section, op, etype) * handled_or_benign
        return fc

    def attention_fault_coverage(self, frequencies: Mapping[str, float]) -> float:
        """FC of the whole attention mechanism: product over sections."""
        fc = 1.0
        for name in PROTECTION_SECTIONS:
            fc *= self.fault_coverage(name, float(frequencies.get(name, 0.0)))
        return fc

    def vulnerability_mass(self, section: str) -> float:
        """First-order uncovered-failure probability of the section at f = 0.

        ``sum_i sum_e R^e_S(i) * phi^e_i`` — the quantity full-frequency
        protection removes; the greedy optimiser ranks sections by this mass
        per unit of ABFT time.
        """
        ops = PROTECTION_SECTIONS[section].operations
        mass = 0.0
        for op in ops:
            for etype in ERROR_TYPES:
                mass += self.r_single(section, op, etype) * self.vulnerability.get(op, etype)
        return mass

    def fault_coverage_efficiency(self, section: str) -> float:
        """FCE_S: fault coverage gained per unit of ABFT overhead (Section 4.5)."""
        t = self.section_times[section]
        if t <= 0:
            return math.inf
        return self.vulnerability_mass(section) / t


@dataclass
class FrequencyPlan:
    """Result of the frequency optimisation."""

    frequencies: Dict[str, float]
    achieved_coverage: float
    target_coverage: float
    abft_time: float
    full_abft_time: float
    section_times: Dict[str, float]

    @property
    def relative_overhead(self) -> float:
        """ABFT time of the plan relative to always-on ABFT (non-adaptive)."""
        return self.abft_time / self.full_abft_time if self.full_abft_time else 0.0

    @property
    def meets_target(self) -> bool:
        return self.achieved_coverage >= self.target_coverage - 1e-15


class AdaptiveFrequencyOptimizer:
    """Greedy frequency optimiser (Algorithm 1 of the paper).

    Sections are sorted by fault-coverage efficiency; time (equivalently,
    frequency) is allocated to the most efficient sections first until the
    coverage target is reached or every section runs at full frequency.
    """

    def __init__(self, reliability: SectionReliabilityModel) -> None:
        self.reliability = reliability

    def optimize(self, target_coverage: float) -> FrequencyPlan:
        """Find minimal-overhead frequencies meeting ``target_coverage``.

        Parameters
        ----------
        target_coverage:
            Required fault coverage of the attention mechanism, e.g.
            ``1 - 1e-11`` for at most one uncovered failure per 1e11
            executions (the paper's Figure-10 setting).
        """
        if not 0.0 < target_coverage <= 1.0:
            raise ValueError("target_coverage must be in (0, 1]")
        rel = self.reliability
        epsilon = 1.0 - target_coverage

        masses = {name: rel.vulnerability_mass(name) for name in PROTECTION_SECTIONS}
        times = dict(rel.section_times)
        total_mass = sum(masses.values())

        frequencies = {name: 0.0 for name in PROTECTION_SECTIONS}
        if total_mass > epsilon:
            # Uncovered mass we must remove by enabling detection.
            needed = total_mass - epsilon
            # Greedy: highest coverage-per-time first (Algorithm 1's ordering).
            order = sorted(
                PROTECTION_SECTIONS,
                key=lambda name: rel.fault_coverage_efficiency(name),
                reverse=True,
            )
            for name in order:
                if needed <= 0:
                    break
                mass = masses[name]
                if mass <= 0:
                    continue
                f = min(1.0, needed / mass)
                frequencies[name] = f
                needed -= f * mass

        # The greedy allocation above is based on the first-order vulnerability
        # mass.  At very high error rates the exact coverage (which includes
        # multi-error terms the first-order estimate ignores) can fall slightly
        # short of the target; top up the partially-enabled sections — most
        # efficient first — with a binary search for the minimal additional
        # frequency, until the target is met or every section runs at full
        # frequency (the feasibility limit of the scheme).
        achieved = rel.attention_fault_coverage(frequencies)
        if achieved < target_coverage:
            order = sorted(
                PROTECTION_SECTIONS,
                key=lambda name: rel.fault_coverage_efficiency(name),
                reverse=True,
            )
            for name in order:
                if achieved >= target_coverage:
                    break
                if frequencies[name] >= 1.0:
                    continue
                trial = dict(frequencies)
                trial[name] = 1.0
                if rel.attention_fault_coverage(trial) < target_coverage:
                    # Even full frequency is not enough: take it and move on.
                    frequencies[name] = 1.0
                    achieved = rel.attention_fault_coverage(frequencies)
                    continue
                lo, hi = frequencies[name], 1.0
                for _ in range(40):
                    mid = 0.5 * (lo + hi)
                    trial[name] = mid
                    if rel.attention_fault_coverage(trial) >= target_coverage:
                        hi = mid
                    else:
                        lo = mid
                frequencies[name] = hi
                achieved = rel.attention_fault_coverage(frequencies)

        abft_time = sum(frequencies[name] * times[name] for name in PROTECTION_SECTIONS)
        full_time = sum(times.values())
        return FrequencyPlan(
            frequencies=frequencies,
            achieved_coverage=achieved,
            target_coverage=target_coverage,
            abft_time=abft_time,
            full_abft_time=full_time,
            section_times=times,
        )


def optimize_abft_frequencies(
    config: ModelConfig,
    batch_size: int,
    error_rates: ErrorRates,
    vulnerability: OperationVulnerability,
    target_coverage: float,
    seq_len: Optional[int] = None,
    flops_multiplier: float = 1.0,
    section_times: Optional[Dict[str, float]] = None,
) -> FrequencyPlan:
    """One-call convenience wrapper around the optimiser.

    See :class:`SectionReliabilityModel` and :class:`AdaptiveFrequencyOptimizer`
    for parameter semantics.
    """
    reliability = SectionReliabilityModel(
        config,
        batch_size,
        error_rates,
        vulnerability,
        seq_len=seq_len,
        flops_multiplier=flops_multiplier,
        section_times=section_times,
    )
    return AdaptiveFrequencyOptimizer(reliability).optimize(target_coverage)

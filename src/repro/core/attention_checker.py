"""ATTNChecker: systematic ABFT protection for the attention mechanism.

:class:`ATTNChecker` is an :class:`repro.nn.AttentionHooks` implementation
that plugs into :class:`repro.nn.MultiHeadAttention` (and therefore into every
model of the zoo) and realises the protection scheme of Sections 4.2–4.6.
Since the ProtectionEngine refactor it is a thin *policy* layer — adaptive
per-section detection frequencies (``f_AS``, ``f_CL``, ``f_O``), thresholds,
statistics and timing — on top of one of two interchangeable *mechanics*
backends:

``"fused"`` (default)
    :class:`repro.core.engine.ProtectionEngine` — checksums are encoded once
    per protection section and passed through all member GEMMs in a single
    dispatch at the section-boundary GEMM (the paper's Section 4.4 design),
    three Python dispatches per layer instead of six.

``"per_gemm"``
    The original hook-per-GEMM implementation, kept as a reference backend:
    it computes the identical checksum algebra spread over all six GEMM
    hooks.  Both backends make byte-identical detection/correction decisions;
    the equivalence is enforced by tests and by the Figure-7 benchmark.

The fused backend additionally selects one of three *verification modes*
(:data:`VERIFICATION_MODES`; see :mod:`repro.core.engine` for the mechanics):

===========  ==============================  ===========================  ===============
mode         critical-path latency           guarantee                    staleness bound
===========  ==============================  ===========================  ===============
immediate    full: verify at each boundary,  detection + correction       none
             inside the forward pass         before values are consumed
deferred     encode/carry only; one batched  detection only               one step
             flush at ``end_step``           (values already consumed)    (the flush)
async        encode/carry + queue swap; a    detection + bounded-         ``max_pending_
             worker thread verifies off      staleness correction of      steps`` steps
             the critical path               the retained boundary        (backpressure)
             (``async_verification=True``)   matrix; dirty outcomes
                                             flagged ``stale``
===========  ==============================  ===========================  ===============

Detection decisions of async mode are byte-identical to deferred mode (both
run the same batched pass over the same per-step snapshots).  Use
:meth:`ATTNChecker.critical_path_seconds` vs :meth:`ATTNChecker.overhead_seconds`
to split the checker time spent on the training thread from total checker
work including the async worker.

The checker is completely transparent to the model: attaching it changes no
shapes and no semantics of the forward/backward pass (one of the paper's
stated design goals).

Usage
-----
>>> from repro.models import build_model
>>> from repro.core import ATTNChecker, ATTNCheckerConfig
>>> model = build_model("bert-base", size="tiny")
>>> checker = ATTNChecker()                                   # fused engine
>>> reference = ATTNChecker(ATTNCheckerConfig(backend="per_gemm"))
>>> model.set_attention_hooks(checker)
>>> # ... train as usual; checker.stats reports detections/corrections.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

from repro.backend import (
    ArrayBackend,
    BackendUnavailable,
    get_backend,
    namespace_of,
)
from repro.core.checksums import (
    ChecksumState,
    adjust_column_checksums_for_bias,
    encode_column_checksums,
    encode_per_head_row_checksums_of_weight,
    encode_row_checksums,
    checksum_weights,
    merge_head_column_checksums,
    split_head_column_checksums,
    update_column_checksums_through_gemm,
    update_column_checksums_with_appended_rows,
)
from repro.core.correction import MatrixCorrectionReport, correct_matrix
from repro.core.eec_abft import check_columns, check_rows
from repro.core.engine import (
    ProtectionEngine,
    SectionOutcome,
    request_dirty_from_report,
)
from repro.core.hooks import (
    AttentionHooks,
    AttentionOp,
    FeedForwardOp,
    GemmContext,
    SectionContext,
)
from repro.core.sections import PROTECTION_SECTIONS, PROTECT_SCOPES, sections_for_scope
from repro.core.thresholds import ABFTThresholds
from repro.utils.timing import TimingRegistry, XFER_PREFIX

__all__ = [
    "CHECKER_BACKENDS",
    "VERIFICATION_MODES",
    "VERIFICATION_MODE_CONFIGS",
    "ATTNCheckerConfig",
    "SectionStats",
    "CheckerStats",
    "ATTNChecker",
]

#: Selectable mechanics backends.
CHECKER_BACKENDS = ("fused", "per_gemm")

#: Verification modes of the fused backend (see the module docstring table).
VERIFICATION_MODES = ("immediate", "deferred", "async")

#: Canonical mode-name -> :class:`ATTNCheckerConfig` kwargs, the single place
#: the CLI, benchmarks and tests translate a mode name into a configuration.
VERIFICATION_MODE_CONFIGS = {
    "immediate": {},
    "deferred": {"defer_verification": True},
    "async": {"async_verification": True},
}


@dataclass
class ATTNCheckerConfig:
    """Configuration of the checker.

    Attributes
    ----------
    thresholds:
        EEC-ABFT thresholds (T_near-INF, T_correct, detection tolerance).
    frequencies:
        Per-section detection frequency in [0, 1] (Section 4.5); 1.0 checks
        every execution, 0.5 every other execution, 0 disables the section.
        Sections of the protection scope that are not named default to 1.0.
    protect_scope:
        Which registered protection sections the checker drives
        (:data:`repro.core.sections.PROTECT_SCOPES`):

        * ``"attention"`` (default) — the historical ``AS``/``CL``/``O``
          triple, bit-for-bit identical to the pre-generalization checker;
        * ``"attention+ffn"`` — additionally protect the feed-forward GEMMs
          through the single-GEMM sections ``FF1`` (boundary ``H``) and
          ``FF2`` (boundary ``FO``);
        * ``"full"`` — every registered section (currently the same set as
          ``"attention+ffn"``; reserved for future blocks).

        Hooks from out-of-scope blocks are ignored, so a model whose
        ``FeedForward`` modules are instrumented can still run an
        attention-only checker unchanged.
    backend:
        ``"fused"`` — the section-level checksum-passing
        :class:`~repro.core.engine.ProtectionEngine` (default);
        ``"per_gemm"`` — the reference hook-per-GEMM implementation.
    array_backend:
        Which array library the checksum chain runs on — a name from
        :data:`repro.backend.KNOWN_ARRAY_BACKENDS` or ``"auto"`` (default).
        Orthogonal to both ``backend`` and the verification mode.  ``"auto"``
        *follows* the arrays each protection section produces (a NumPy model
        is checked with NumPy, a Torch tensor with Torch — never a host
        round-trip).  Naming a backend *pins* the fused engine to it: foreign
        section outputs are adopted and repaired values written back, with
        the copies timed under the ``xfer/h2d`` / ``xfer/d2h`` keys so
        transfer overhead reports separately from checksum math.  Unknown
        names raise :class:`ValueError` listing the known backends; known
        names whose library is missing raise
        :class:`repro.backend.BackendUnavailable` listing what is installed.
    defer_verification:
        Fused backend only: queue boundary verifications and run them in one
        batched pass per step at :meth:`ATTNChecker.end_step` (detection only;
        see :mod:`repro.core.engine`).
    async_verification:
        Fused backend only, mutually exclusive with ``defer_verification``:
        snapshot each step's queued boundary verifications at
        :meth:`ATTNChecker.end_step` and verify them on a worker thread, off
        the training critical path, with bounded-staleness correction of the
        retained boundary matrices (see :mod:`repro.core.engine`).  Results
        are folded into :attr:`ATTNChecker.stats` as they are harvested at
        subsequent ``end_step`` calls or at :meth:`ATTNChecker.drain`.
    max_pending_steps:
        Async only: bound on in-flight submitted step batches; ``end_step``
        blocks once the bound is reached (backpressure), which is also the
        detection staleness window in steps.
    repair_operands:
        After a boundary-matrix correction, additionally repair the upstream
        operand (Q, K or V) whose 0D fault caused the propagation.  The
        boundary correction alone restores the forward value (what the paper
        evaluates); repairing the operand also keeps the *backward* pass
        clean, which this NumPy reproduction needs for the Figure-6
        training-loss experiment because the corrupted operand is reused by
        autograd.  Costs nothing in the fault-free path.
    refresh_checksums:
        Rebuild column checksums after a row-side repair (see
        :func:`repro.core.correction.correct_matrix`).
    collect_timing:
        Record wall-clock time per ABFT phase in :attr:`ATTNChecker.timers`.
    fuse_sibling_gemms / cache_weight_encodings / reuse_workspace:
        The fused engine's hot-path kernel schedule (see
        :mod:`repro.core.engine`): carry ``cs_x`` through ``[W_Q | W_K]`` as
        one concatenated GEMM, cache weight-derived encodings per weight
        version, and serve checksum intermediates from a reusable
        :class:`~repro.core.workspace.ChecksumWorkspace`.  All default on;
        setting all three ``False`` reproduces the historical per-visit
        schedule exactly (the baseline of the fused-kernel equivalence tests
        and the Figure-7 dispatch benchmark).  Sibling fusion only engages
        while the weight cache is on — the concatenated operand is
        cache-resident, and rebuilding it per visit would cost more than the
        dispatch it saves — so ``fuse_sibling_gemms=True`` with
        ``cache_weight_encodings=False`` runs the per-side schedule.
        Ignored by the per-GEMM reference backend, which always runs the
        historical sequence.
    """

    thresholds: ABFTThresholds = field(default_factory=ABFTThresholds)
    frequencies: Dict[str, float] = field(default_factory=lambda: {"AS": 1.0, "CL": 1.0, "O": 1.0})
    protect_scope: str = "attention"
    backend: str = "fused"
    array_backend: str = "auto"
    defer_verification: bool = False
    async_verification: bool = False
    max_pending_steps: int = 2
    repair_operands: bool = True
    refresh_checksums: bool = True
    collect_timing: bool = True
    fuse_sibling_gemms: bool = True
    cache_weight_encodings: bool = True
    reuse_workspace: bool = True

    def __post_init__(self) -> None:
        if self.protect_scope not in PROTECT_SCOPES:
            raise ValueError(
                f"unknown protect_scope {self.protect_scope!r}; "
                f"expected one of {PROTECT_SCOPES}"
            )
        active = sections_for_scope(self.protect_scope)
        for name, value in self.frequencies.items():
            if name not in active:
                raise KeyError(f"unknown protection section {name!r}")
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"frequency for section {name} must be in [0, 1], got {value}")
        for name in active:
            self.frequencies.setdefault(name, 1.0)
        if self.backend not in CHECKER_BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of {CHECKER_BACKENDS}"
            )
        if self.array_backend != "auto":
            # Fail fast with the registry's helpful unknown-vs-uninstalled
            # message instead of at the first protected forward pass.
            get_backend(self.array_backend)
        if self.defer_verification and self.backend != "fused":
            raise ValueError("defer_verification requires the 'fused' backend")
        if self.async_verification:
            if self.backend != "fused":
                raise ValueError(
                    "async_verification requires the 'fused' backend; the per-GEMM "
                    "reference verifies inline at every GEMM and has no checksum "
                    "queue to hand to a worker"
                )
            if self.defer_verification:
                raise ValueError(
                    "async_verification and defer_verification are mutually exclusive; "
                    "pick one verification mode (async already batches per step)"
                )
        if not isinstance(self.max_pending_steps, int) or self.max_pending_steps < 1:
            raise ValueError(
                f"max_pending_steps must be a positive integer, got {self.max_pending_steps!r}"
            )

    @property
    def verification_mode(self) -> str:
        """Which of :data:`VERIFICATION_MODES` this configuration selects."""
        if self.async_verification:
            return "async"
        if self.defer_verification:
            return "deferred"
        return "immediate"

    @property
    def active_sections(self) -> Dict[str, Any]:
        """``{name: ProtectionSection}`` for every section in the scope."""
        return sections_for_scope(self.protect_scope)


@dataclass
class SectionStats:
    """Counters for one protection section."""

    checks_run: int = 0
    checks_skipped: int = 0
    detections: int = 0
    corrections: int = 0
    aborted_vectors: int = 0
    residual_extreme: int = 0
    operand_repairs: int = 0
    #: Boundaries that verified dirty only after their values were consumed
    #: (async verification) — candidates for re-execution/abort policies.
    stale_detections: int = 0

    def record(self, report: MatrixCorrectionReport) -> None:
        self.checks_run += 1
        self.detections += report.detected
        self.corrections += report.corrected
        self.aborted_vectors += report.aborted
        self.residual_extreme += report.residual_extreme


@dataclass
class CheckerStats:
    """Aggregated statistics across all sections."""

    sections: Dict[str, SectionStats] = field(
        default_factory=lambda: {name: SectionStats() for name in PROTECTION_SECTIONS}
    )

    @property
    def total_detections(self) -> int:
        return sum(s.detections for s in self.sections.values())

    @property
    def total_corrections(self) -> int:
        return sum(s.corrections for s in self.sections.values())

    @property
    def total_residual_extreme(self) -> int:
        return sum(s.residual_extreme for s in self.sections.values())

    @property
    def total_checks(self) -> int:
        return sum(s.checks_run for s in self.sections.values())

    @property
    def total_stale_detections(self) -> int:
        return sum(s.stale_detections for s in self.sections.values())

    def reset(self) -> None:
        for name in list(self.sections):
            self.sections[name] = SectionStats()


class _PerGemmState:
    """Per-(layer, forward-pass) checksum state of the reference backend."""

    __slots__ = (
        "enabled",
        "cs_x_col",
        "cs_q_col",
        "cs_k_col",
        "cs_v_row",
        "cs_cl_col",
    )

    def __init__(self, enabled: Dict[str, bool]) -> None:
        self.enabled = enabled
        self.cs_x_col: Optional[Any] = None
        self.cs_q_col: Optional[Any] = None
        self.cs_k_col: Optional[Any] = None
        self.cs_v_row: Optional[Any] = None
        self.cs_cl_col: Optional[Any] = None


class _PerGemmReferenceBackend:
    """The original per-GEMM checker mechanics, kept as a reference backend.

    Dispatches Python work at every one of the six attention GEMM hooks.  The
    checksum algebra is operation-for-operation identical to the fused
    :class:`~repro.core.engine.ProtectionEngine`, which makes the two backends
    byte-comparable — this class is the oracle the engine is validated
    against.  Like the engine it is array-library generic, but it always
    *follows* the GEMM operands' owning backend (there is no engine here to
    pin); a configured ``array_backend`` only affects the fused engine.
    """

    def __init__(self, checker: "ATTNChecker") -> None:
        self.checker = checker
        self._states: Dict[int, _PerGemmState] = {}

    # -- pass lifecycle ---------------------------------------------------------

    def begin_layer(self, layer_index: int, enabled: Dict[str, bool]) -> None:
        self._states[layer_index] = _PerGemmState(dict(enabled))

    def end_layer(self, layer_index: int) -> None:
        self._states.pop(layer_index, None)

    def reset(self) -> None:
        self._states.clear()

    # -- GEMM dispatch ----------------------------------------------------------

    def on_gemm_output(self, ctx: GemmContext, out: Any) -> Any:
        state = self._states.get(ctx.layer_index)
        if state is None:  # hooks attached mid-pass; nothing to do safely
            return out
        op = ctx.op
        if op is FeedForwardOp.UP:
            # FFN sections are single-GEMM (GELU blocks checksum carrying),
            # so the whole chain runs at the boundary GEMM — identical for
            # training and decode (the FFN has no cross-token state; decode
            # is the training algebra at sequence length 1).
            self._handle_ff_up(ctx, state, out)
            return out
        if op is FeedForwardOp.DOWN:
            self._handle_ff_down(ctx, state, out)
            return out
        if ctx.phase == "decode":
            # Decode is row-side only (see the engine's decode section for
            # the algebra); XQ contributes nothing because no column
            # checksums of Q are carried at decode.
            if op is AttentionOp.XK:
                self._handle_projection_decode(ctx, state)
            elif op is AttentionOp.XV:
                self._handle_value_projection_decode(ctx, state)
            elif op is AttentionOp.QK:
                self._handle_attention_scores_decode(ctx, state, out)
            elif op is AttentionOp.APV:
                self._handle_context_layer_decode(ctx, state, out)
            elif op is AttentionOp.CLO:
                self._handle_output_decode(ctx, state, out)
            return out
        if op is AttentionOp.XQ:
            self._handle_projection(ctx, state, which="q")
        elif op is AttentionOp.XK:
            self._handle_projection(ctx, state, which="k")
        elif op is AttentionOp.XV:
            self._handle_value_projection(ctx, state)
        elif op is AttentionOp.QK:
            self._handle_attention_scores(ctx, state, out)
        elif op is AttentionOp.APV:
            self._handle_context_layer(ctx, state, out)
        elif op is AttentionOp.CLO:
            self._handle_output(ctx, state, out)
        return out

    # -- section S_AS -----------------------------------------------------------

    def _handle_projection(self, ctx: GemmContext, state: _PerGemmState, which: str) -> None:
        """X x W_Q / X x W_K: derive column checksums of Q / K from those of X."""
        checker = self.checker
        if not state.enabled.get("AS", False):
            return
        num_rows = ctx.a.shape[-2]
        if state.cs_x_col is None:
            with checker.timers.measure("AS/encode"):
                state.cs_x_col = encode_column_checksums(ctx.a)
            if ctx.phase == "prefill" and ctx.kv_cache is not None:
                # Seed the cache's incremental input checksums so decode can
                # fold appended tokens in O(1) of the cached length.
                cache = ctx.kv_cache
                cs_x_buf, _ = cache.ensure_checksum_buffers(
                    namespace_of(ctx.a), ctx.a.shape[-1]
                )
                cs_x_buf[...] = state.cs_x_col
                cache.cs_x_len = num_rows
        with checker.timers.measure("AS/update"):
            cs = update_column_checksums_through_gemm(state.cs_x_col, ctx.b)
            if ctx.bias is not None:
                cs = adjust_column_checksums_for_bias(cs, ctx.bias, num_rows)
        if which == "q":
            state.cs_q_col = cs
        else:
            state.cs_k_col = cs

    def _record_report(
        self, ctx: GemmContext, section: str, report: MatrixCorrectionReport
    ) -> None:
        """Record one boundary verification; surface it to serving callers.

        Training callers read ``stats`` / ``last_reports``; serving callers
        additionally drain :meth:`ATTNChecker.take_recent_outcomes`, so every
        non-train verification is wrapped in a :class:`SectionOutcome`
        carrying the per-request dirty mask — the same attribution the fused
        engine computes, so both backends drive identical repair-or-evict
        decisions.
        """
        checker = self.checker
        checker.stats.sections[section].record(report)
        checker.last_reports[section] = report
        if ctx.phase != "train":
            checker.recent_outcomes.append(
                SectionOutcome(
                    section=section,
                    layer_index=ctx.layer_index,
                    step=ctx.step,
                    report=report,
                    request_dirty=request_dirty_from_report(report),
                )
            )

    def _handle_attention_scores(self, ctx: GemmContext, state: _PerGemmState, out: Any) -> None:
        """Q x K^T: pass checksums to AS, then detect & correct at the boundary."""
        checker = self.checker
        if not state.enabled.get("AS", False):
            checker.stats.sections["AS"].checks_skipped += 1
            return
        if state.cs_q_col is None or state.cs_k_col is None:
            return
        num_heads = ctx.num_heads
        xp = namespace_of(ctx.a)
        with checker.timers.measure("AS/update"):
            cs_q_ph = split_head_column_checksums(state.cs_q_col, num_heads)   # (B, H, 2, dh)
            cs_k_ph = split_head_column_checksums(state.cs_k_col, num_heads)
            # Column side of AS: col(AS) = col(Q) K^T.
            cs_as_col = xp.matmul(cs_q_ph, ctx.b)                              # (B, H, 2, S)
            # Row side of AS: row(AS) = Q row(K^T) = Q col(K)^T.
            cs_as_row = xp.matmul(ctx.a, xp.swapaxes(cs_k_ph, -1, -2))          # (B, H, S, 2)
        with checker.timers.measure("AS/detect"):
            checksums = ChecksumState(col=cs_as_col, row=cs_as_row)
            report = correct_matrix(
                out, checksums, thresholds=checker.thresholds,
                refresh_checksums=checker.config.refresh_checksums,
            )
        self._record_report(ctx, "AS", report)
        if checker.config.repair_operands and report.corrected > 0:
            with checker.timers.measure("AS/correct"):
                q_report = check_columns(ctx.a, cs_q_ph, thresholds=checker.thresholds)
                kt_report = check_rows(ctx.b, xp.swapaxes(cs_k_ph, -1, -2), thresholds=checker.thresholds)
            checker.stats.sections["AS"].operand_repairs += (
                q_report.num_corrected + kt_report.num_corrected
            )

    # -- section S_CL -----------------------------------------------------------

    def _handle_value_projection(self, ctx: GemmContext, state: _PerGemmState) -> None:
        """X x W_V: derive per-head row checksums of V from those of W_V."""
        checker = self.checker
        if not (state.enabled.get("CL", False) or state.enabled.get("O", False)):
            return
        num_heads = ctx.num_heads
        head_dim = ctx.head_dim
        xp = namespace_of(ctx.a)
        with checker.timers.measure("CL/encode"):
            rowcs_wv = encode_per_head_row_checksums_of_weight(ctx.b, num_heads)  # (D, H, 2)
        with checker.timers.measure("CL/update"):
            cs_v_row = xp.einsum("...sd,dhw->...hsw", ctx.a, rowcs_wv)            # (B, H, S, 2)
            if ctx.bias is not None:
                bias_heads = xp.astype(
                    xp.asarray(ctx.bias), xp.float64, copy=False
                ).reshape(num_heads, head_dim)
                _, v2 = checksum_weights(head_dim, xp=xp)
                cs_v_row = xp.copy(cs_v_row)
                cs_v_row[..., 0] += xp.sum(bias_heads, axis=-1)[None, :, None]
                cs_v_row[..., 1] += xp.sum(bias_heads * v2, axis=-1)[None, :, None]
        state.cs_v_row = cs_v_row
        if ctx.phase == "prefill" and ctx.kv_cache is not None:
            # Seed the cache's per-position row checksums of V (bias folded
            # in), ready for per-token extension at decode.
            cache = ctx.kv_cache
            prompt_len = ctx.a.shape[-2]
            _, cs_v_buf = cache.ensure_checksum_buffers(xp, ctx.a.shape[-1])
            cs_v_buf[:, :, :prompt_len, :] = cs_v_row
            cache.cs_v_len = prompt_len

    def _handle_context_layer(self, ctx: GemmContext, state: _PerGemmState, out: Any) -> None:
        """AP x V: encode AP, pass checksums to CL, detect & correct at the boundary."""
        checker = self.checker
        cl_enabled = state.enabled.get("CL", False)
        o_enabled = state.enabled.get("O", False)
        if not (cl_enabled or o_enabled):
            checker.stats.sections["CL"].checks_skipped += 1
            return
        xp = namespace_of(ctx.a)
        with checker.timers.measure("CL/encode"):
            cs_ap_col = encode_column_checksums(ctx.a)                            # (B, H, 2, S)
        with checker.timers.measure("CL/update"):
            cs_cl_col = xp.matmul(cs_ap_col, ctx.b)                               # (B, H, 2, dh)
            cs_cl_row = None
            if cl_enabled and state.cs_v_row is not None:
                # row(CL) = AP row(V): carry the per-head row checksums of V
                # through the AP x V GEMM.
                cs_cl_row = xp.matmul(ctx.a, state.cs_v_row)                      # (B, H, S, 2)
        checksums = ChecksumState(col=cs_cl_col, row=cs_cl_row)
        if cl_enabled:
            with checker.timers.measure("CL/detect"):
                report = correct_matrix(
                    out, checksums, thresholds=checker.thresholds,
                    refresh_checksums=checker.config.refresh_checksums,
                )
            self._record_report(ctx, "CL", report)
            if checker.config.repair_operands and report.corrected > 0 and state.cs_v_row is not None:
                with checker.timers.measure("CL/correct"):
                    v_report = check_rows(ctx.b, state.cs_v_row, thresholds=checker.thresholds)
                checker.stats.sections["CL"].operand_repairs += v_report.num_corrected
        else:
            checker.stats.sections["CL"].checks_skipped += 1
        # Pass the (possibly refreshed) column checksums of CL to section S_O.
        state.cs_cl_col = checksums.col

    # -- section S_O ------------------------------------------------------------

    def _handle_output(self, ctx: GemmContext, state: _PerGemmState, out: Any) -> None:
        """CL x W_O: carry column checksums through and correct the output O."""
        checker = self.checker
        if not state.enabled.get("O", False):
            checker.stats.sections["O"].checks_skipped += 1
            return
        if state.cs_cl_col is None:
            return
        with checker.timers.measure("O/update"):
            cs_cl_merged = merge_head_column_checksums(state.cs_cl_col)          # (B, 2, D)
            cs_o_col = update_column_checksums_through_gemm(cs_cl_merged, ctx.b)  # (B, 2, D)
        with checker.timers.measure("O/detect"):
            report = correct_matrix(
                out, ChecksumState(col=cs_o_col), thresholds=checker.thresholds,
                refresh_checksums=checker.config.refresh_checksums,
            )
        self._record_report(ctx, "O", report)

    # -- FFN sections S_FF1 / S_FF2 ----------------------------------------------

    def _handle_ff_up(self, ctx: GemmContext, state: _PerGemmState, out: Any) -> None:
        """x x W_up: encode col(x), carry through W_up, verify H column-side.

        The boundary matrix ``H`` is the raw GEMM output — the bias add runs
        outside the section (like attention's output-projection bias), so no
        bias adjustment of the carried checksums is needed.
        """
        checker = self.checker
        if not state.enabled.get("FF1", False):
            checker.stats.sections["FF1"].checks_skipped += 1
            return
        with checker.timers.measure("FF1/encode"):
            cs_x = encode_column_checksums(ctx.a)
        with checker.timers.measure("FF1/update"):
            cs_h = update_column_checksums_through_gemm(cs_x, ctx.b)
        with checker.timers.measure("FF1/detect"):
            report = correct_matrix(
                out, ChecksumState(col=cs_h), thresholds=checker.thresholds,
                refresh_checksums=checker.config.refresh_checksums,
            )
        self._record_report(ctx, "FF1", report)

    def _handle_ff_down(self, ctx: GemmContext, state: _PerGemmState, out: Any) -> None:
        """h x W_down: carry rowcs(W_down) through, verify FO row-side."""
        checker = self.checker
        if not state.enabled.get("FF2", False):
            checker.stats.sections["FF2"].checks_skipped += 1
            return
        xp = namespace_of(ctx.a)
        with checker.timers.measure("FF2/encode"):
            rowcs_wd = encode_row_checksums(ctx.b)                      # (D_ff, 2)
        with checker.timers.measure("FF2/update"):
            cs_fo = xp.matmul(ctx.a, rowcs_wd)                          # (B, S, 2)
        with checker.timers.measure("FF2/detect"):
            report = correct_matrix(
                out, ChecksumState(row=cs_fo), thresholds=checker.thresholds,
                refresh_checksums=checker.config.refresh_checksums,
            )
        self._record_report(ctx, "FF2", report)

    # -- decode (incremental, row-side only) -------------------------------------
    #
    # The reference decode algebra mirrors the engine's decode section
    # byte-for-byte: the cache's incremental input checksums ``cs_x`` fold in
    # the new token's row in O(1) of the cached length, per-position row
    # checksums of V extend by one slot, and each boundary verifies its row
    # side only (the column side would be O(T) to re-encode, which is exactly
    # what incremental decode protection avoids).

    @staticmethod
    def _decode_cache(ctx: GemmContext) -> Any:
        cache = ctx.kv_cache
        if cache is None:
            raise RuntimeError(
                f"decode GEMM {ctx.op.value!r} fired without a KV cache in context"
            )
        return cache

    def _handle_projection_decode(self, ctx: GemmContext, state: _PerGemmState) -> None:
        """X x W_K at decode: fold the new row into cs(X), derive col(K)."""
        checker = self.checker
        if not state.enabled.get("AS", False):
            return
        cache = self._decode_cache(ctx)
        total_len = cache.length + 1  # this token's K row is appended later
        if cache.cs_x is None or cache.cs_x_len != total_len - 1:
            raise RuntimeError(
                f"decode AS protection needs contiguous incremental checksums: "
                f"cache covers {cache.cs_x_len} rows but the model is decoding "
                f"token {total_len}; run a protected prefill first and keep the "
                f"AS section enabled on every decode step"
            )
        with checker.timers.measure("AS/encode"):
            update_column_checksums_with_appended_rows(cache.cs_x, ctx.a, total_len - 1)
            cache.cs_x_len = total_len
        with checker.timers.measure("AS/update"):
            cs = update_column_checksums_through_gemm(cache.cs_x, ctx.b)
            if ctx.bias is not None:
                cs = adjust_column_checksums_for_bias(cs, ctx.bias, total_len)
        state.cs_k_col = cs

    def _handle_attention_scores_decode(
        self, ctx: GemmContext, state: _PerGemmState, out: Any
    ) -> None:
        """q x K^T at decode: verify the new score row against row(AS)."""
        checker = self.checker
        if not state.enabled.get("AS", False):
            checker.stats.sections["AS"].checks_skipped += 1
            return
        if state.cs_k_col is None:
            return
        xp = namespace_of(ctx.a)
        with checker.timers.measure("AS/update"):
            cs_k_ph = split_head_column_checksums(state.cs_k_col, ctx.num_heads)
            cs_as_row = xp.matmul(ctx.a, xp.swapaxes(cs_k_ph, -1, -2))  # (B, H, 1, 2)
        with checker.timers.measure("AS/detect"):
            report = correct_matrix(
                out, ChecksumState(row=cs_as_row), thresholds=checker.thresholds,
                refresh_checksums=checker.config.refresh_checksums,
            )
        self._record_report(ctx, "AS", report)

    def _handle_value_projection_decode(self, ctx: GemmContext, state: _PerGemmState) -> None:
        """X x W_V at decode: extend the cached row checksums of V by one slot."""
        checker = self.checker
        if not state.enabled.get("CL", False):
            return
        cache = self._decode_cache(ctx)
        total_len = cache.length + 1  # this token's V row is appended later
        if cache.cs_v_row is None or cache.cs_v_len != total_len - 1:
            raise RuntimeError(
                f"decode CL protection needs contiguous incremental checksums: "
                f"cache covers {cache.cs_v_len} rows but the model is decoding "
                f"token {total_len}; run a protected prefill first and keep the "
                f"CL section enabled on every decode step"
            )
        num_heads = ctx.num_heads
        head_dim = ctx.head_dim
        xp = namespace_of(ctx.a)
        with checker.timers.measure("CL/encode"):
            rowcs_wv = encode_per_head_row_checksums_of_weight(ctx.b, num_heads)
        with checker.timers.measure("CL/update"):
            cs_v_new = xp.einsum("...sd,dhw->...hsw", ctx.a, rowcs_wv)  # (B, H, 1, 2)
            if ctx.bias is not None:
                bias_heads = xp.astype(
                    xp.asarray(ctx.bias), xp.float64, copy=False
                ).reshape(num_heads, head_dim)
                _, v2 = checksum_weights(head_dim, xp=xp)
                cs_v_new[..., 0] += xp.sum(bias_heads, axis=-1)[None, :, None]
                cs_v_new[..., 1] += xp.sum(bias_heads * v2, axis=-1)[None, :, None]
            cache.cs_v_row[:, :, total_len - 1 : total_len, :] = cs_v_new
            cache.cs_v_len = total_len

    def _handle_context_layer_decode(
        self, ctx: GemmContext, state: _PerGemmState, out: Any
    ) -> None:
        """ap x V at decode: verify the new context row against row(CL)."""
        checker = self.checker
        if not state.enabled.get("CL", False):
            checker.stats.sections["CL"].checks_skipped += 1
            return
        cache = self._decode_cache(ctx)
        total_len = cache.length  # APV fires after the append
        if cache.cs_v_row is None or cache.cs_v_len != total_len:
            raise RuntimeError(
                f"decode CL protection needs contiguous incremental checksums: "
                f"cache covers {cache.cs_v_len} of {total_len} rows"
            )
        xp = namespace_of(ctx.a)
        with checker.timers.measure("CL/update"):
            cs_cl_row = xp.matmul(ctx.a, cache.cs_v_row[:, :, :total_len, :])
        with checker.timers.measure("CL/detect"):
            report = correct_matrix(
                out, ChecksumState(row=cs_cl_row), thresholds=checker.thresholds,
                refresh_checksums=checker.config.refresh_checksums,
            )
        self._record_report(ctx, "CL", report)

    def _handle_output_decode(self, ctx: GemmContext, state: _PerGemmState, out: Any) -> None:
        """cl x W_O at decode: verify the new output row against row(O)."""
        checker = self.checker
        if not state.enabled.get("O", False):
            checker.stats.sections["O"].checks_skipped += 1
            return
        xp = namespace_of(ctx.a)
        with checker.timers.measure("O/update"):
            rowcs_wo = encode_row_checksums(ctx.b)                  # (D, 2)
            cs_o_row = xp.matmul(ctx.a, rowcs_wo)                   # (B, 1, 2)
        with checker.timers.measure("O/detect"):
            report = correct_matrix(
                out, ChecksumState(row=cs_o_row), thresholds=checker.thresholds,
                refresh_checksums=checker.config.refresh_checksums,
            )
        self._record_report(ctx, "O", report)


class ATTNChecker(AttentionHooks):
    """The ABFT attention hook: policy layer over a mechanics backend."""

    def __init__(self, config: Optional[ATTNCheckerConfig] = None) -> None:
        self.config = config or ATTNCheckerConfig()
        active = self.config.active_sections
        self.stats = CheckerStats(
            sections={name: SectionStats() for name in active}
        )
        self.timers = TimingRegistry()
        self.last_reports: Dict[str, MatrixCorrectionReport] = {}
        #: Bounded ring of recently verified section outcomes, drained by
        #: :meth:`take_recent_outcomes` (the serving engine reads per-request
        #: fault attribution from here after each prefill/decode step).
        self.recent_outcomes: Deque[SectionOutcome] = deque(maxlen=1024)
        self._freq_accumulators: Dict[str, float] = {name: 0.0 for name in active}
        #: Resolved array-backend pin; ``None`` = follow the section's arrays.
        self.array_backend: Optional[ArrayBackend] = (
            None if self.config.array_backend == "auto"
            else get_backend(self.config.array_backend)
        )
        if self.config.backend == "fused":
            self.engine: Optional[ProtectionEngine] = ProtectionEngine(
                thresholds=self.config.thresholds,
                refresh_checksums=self.config.refresh_checksums,
                repair_operands=self.config.repair_operands,
                timers=self.timers,
                deferred=self.config.defer_verification,
                asynchronous=self.config.async_verification,
                max_pending_steps=self.config.max_pending_steps,
                array_backend=self.array_backend,
                fuse_sibling_gemms=self.config.fuse_sibling_gemms,
                cache_weight_encodings=self.config.cache_weight_encodings,
                reuse_workspace=self.config.reuse_workspace,
            )
            self._reference: Optional[_PerGemmReferenceBackend] = None
        else:
            self.engine = None
            self._reference = _PerGemmReferenceBackend(self)

    # -- configuration shortcuts ------------------------------------------------

    @property
    def backend(self) -> str:
        return self.config.backend

    @property
    def array_backend_name(self) -> str:
        """Configured array backend (``"auto"`` = follow the section arrays)."""
        return self.config.array_backend

    def transfer_seconds(self) -> float:
        """Wall-clock spent copying arrays between the model's array library
        and a pinned engine backend (the ``xfer/*`` keys).  Exactly zero on
        the pure-NumPy path and whenever the engine follows its inputs."""
        return self.timers.total(prefix=XFER_PREFIX)

    @property
    def dispatch_counts(self) -> Dict[str, int]:
        """Checksum GEMM / verification dispatches the fused engine issued
        (empty for the per-GEMM reference, which has no fused schedule)."""
        return dict(self.engine.dispatch_counts) if self.engine is not None else {}

    def workspace_stats(self) -> Dict[str, int]:
        """Allocation/reuse counters of the critical-path checksum workspace
        (all zeros when ``reuse_workspace`` is off or backend is per-GEMM)."""
        if self.engine is None or self.engine.workspace is None:
            return {"slots": 0, "allocations": 0, "reuses": 0, "bytes_allocated": 0}
        return self.engine.workspace.stats()

    def weight_cache_stats(self) -> Dict[str, int]:
        """Hit/miss counters of the weight-encoding cache (zeros when off)."""
        if self.engine is None or self.engine.weight_cache is None:
            return {"entries": 0, "hits": 0, "misses": 0}
        return self.engine.weight_cache.stats()

    def invalidate_weight_cache(self) -> None:
        """Drop cached weight-derived encodings.

        Only needed after *in-place* mutation of weight storage outside
        ``Optimizer.step`` / ``Module.load_state_dict`` (those bump the
        global weights version themselves; rebinding ``param.data`` is
        caught by the cache's identity check).
        """
        if self.engine is not None:
            self.engine.invalidate_weight_cache()

    @property
    def verification_mode(self) -> str:
        return self.config.verification_mode

    @property
    def pending_verifications(self) -> int:
        """Boundary checks queued this step, not yet flushed/submitted."""
        return self.engine.pending_verifications if self.engine is not None else 0

    @property
    def thresholds(self) -> ABFTThresholds:
        return self.config.thresholds

    def set_frequencies(self, frequencies: Dict[str, float]) -> None:
        """Install new per-section detection frequencies (from the optimiser)."""
        active = self.config.active_sections
        for name, value in frequencies.items():
            if name not in active:
                raise KeyError(f"unknown protection section {name!r}")
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"frequency for {name} must be in [0, 1], got {value}")
            self.config.frequencies[name] = float(value)

    def reset_stats(self) -> None:
        # Join the async worker before clearing the timers: an in-flight
        # batch must not record ``async/`` entries into the fresh registry.
        if self.engine is not None:
            self.engine.reset()
        if self._reference is not None:
            self._reference.reset()
        self.stats.reset()
        self.timers.reset()
        self.last_reports.clear()
        self.recent_outcomes.clear()

    # -- frequency gating (policy) ----------------------------------------------

    def _sections_of_block(self, block: str) -> List[str]:
        """Names of in-scope sections belonging to one block, in config order."""
        active = self.config.active_sections
        return [
            name for name in self.config.frequencies
            if active[name].block == block
        ]

    def _section_enabled_this_pass(self) -> Dict[str, bool]:
        """Decide which attention sections check on this forward pass.

        With frequency ``f`` the section runs on a deterministic ``f`` fraction
        of passes, spread as evenly as possible (e.g. ``f = 0.5`` -> every
        other pass), which is how the paper's ``f_S`` is defined.  Only the
        attention block's accumulators advance here; other blocks advance
        theirs at their own :meth:`on_block_start`, so widening the protection
        scope never perturbs the attention gating sequence.
        """
        return self._advance_enabled(self._sections_of_block("attention"))

    def _advance_enabled(self, names: List[str]) -> Dict[str, bool]:
        enabled = {}
        for name in names:
            acc = self._freq_accumulators[name] + self.config.frequencies[name]
            if acc >= 1.0 - 1e-12:
                enabled[name] = True
                acc -= 1.0
            else:
                enabled[name] = False
            self._freq_accumulators[name] = acc
        return enabled

    # -- AttentionHooks interface -------------------------------------------------

    def on_attention_start(self, layer_index: int, step: int) -> None:
        enabled = self._section_enabled_this_pass()
        if self.engine is not None:
            self.engine.begin_layer(layer_index, enabled)
        else:
            self._reference.begin_layer(layer_index, enabled)

    def on_attention_end(self, layer_index: int, step: int) -> None:
        if self.engine is not None:
            self.engine.end_layer(layer_index)
        else:
            self._reference.end_layer(layer_index)

    def on_block_start(self, block: str, layer_index: int, step: int) -> None:
        """Open the pass window of a non-attention block (e.g. the FFN).

        A no-op when none of the block's sections are in the protection
        scope — an instrumented model can always fire its block hooks, and an
        attention-only checker stays bit-for-bit the historical one.
        """
        if block == "attention":
            return  # attention announces via on_attention_start
        names = self._sections_of_block(block)
        if not names:
            return
        enabled = self._advance_enabled(names)
        if self.engine is not None:
            self.engine.begin_layer(layer_index, enabled)
        else:
            self._reference.begin_layer(layer_index, enabled)

    def on_block_end(self, block: str, layer_index: int, step: int) -> None:
        if block == "attention":
            return
        if not self._sections_of_block(block):
            return
        if self.engine is not None:
            self.engine.end_layer(layer_index)
        else:
            self._reference.end_layer(layer_index)

    def on_gemm_output(self, ctx: GemmContext, out: Any) -> Any:
        if self._reference is not None:
            return self._reference.on_gemm_output(ctx, out)
        return out  # fused backend works at section boundaries only

    def consumes_gemm_outputs(self) -> bool:
        """The fused backend needs no per-GEMM dispatch; the reference does.

        This is what lets :class:`repro.nn.MultiHeadAttention` skip the
        non-boundary GEMM hooks entirely for a fused checker (three dispatch
        points per layer instead of six) — unless another composed hook (an
        injector, a recorder) still consumes them.
        """
        return self.config.backend == "per_gemm"

    def on_section_output(self, ctx: SectionContext, out: Any) -> Any:
        if self.engine is None:
            return out  # per-GEMM backend already handled the boundary GEMM
        outcome = self.engine.protect_section(ctx, out)
        self._record_outcome(ctx.section, outcome)
        return out

    def end_step(self) -> List[SectionOutcome]:
        """Close one training step's verification work; call once per step.

        * immediate mode — a no-op (every boundary already verified in-pass);
        * deferred mode — flush the step's queued checks in one batched pass,
          on the calling thread;
        * async mode — submit the step's snapshot to the worker (blocking
          only if ``max_pending_steps`` batches are already in flight) and
          harvest whatever verification results have completed so far,
          without waiting for the batch just submitted.

        Returns the outcomes produced now (statistics are folded into
        :attr:`stats`); always leaves :attr:`pending_verifications` at zero.
        """
        if self.engine is None:
            return []
        if self.config.async_verification:
            with self.timers.measure("submit/async"):
                self.engine.submit_step()
            outcomes = self.engine.harvest()
        elif self.config.defer_verification:
            outcomes = self.engine.flush()
        else:
            return []
        self._fold_outcomes(outcomes)
        return outcomes

    def drain(self) -> List[SectionOutcome]:
        """Barrier: complete and fold every queued/in-flight verification.

        Deferred mode flushes synchronously; async mode submits any residual
        front-buffer items and waits for the worker to finish all batches
        (re-raising a worker exception instead of swallowing it).  A no-op
        returning ``[]`` in immediate mode or for the per-GEMM backend.
        """
        if self.engine is None:
            return []
        if self.config.async_verification:
            with self.timers.measure("submit/async"):
                self.engine.submit_step()
            outcomes = self.engine.drain()
        elif self.config.defer_verification:
            outcomes = self.engine.flush()
        else:
            return []
        self._fold_outcomes(outcomes)
        return outcomes

    def close(self) -> None:
        """Join the async verification worker, keeping statistics intact."""
        if self.engine is not None:
            self.engine.close()

    def _fold_outcomes(self, outcomes: List[SectionOutcome]) -> None:
        """Fold batched-verification outcomes into :attr:`stats`.

        Detection counters come from the batched detect pass (byte-identical
        between deferred and async modes).  For async outcomes that carry a
        bounded-staleness ``repair``, corrections come from the repair report
        and the residual counter reports the post-repair state, mirroring
        what immediate mode would have recorded at the same boundary.
        """
        for outcome in outcomes:
            report = outcome.report
            if report is None:
                continue
            stats = self.stats.sections[outcome.section]
            stats.record(report)
            if outcome.repair is not None:
                stats.corrections += outcome.repair.corrected
                stats.residual_extreme += outcome.repair.residual_extreme - report.residual_extreme
            if outcome.stale and report.detected:
                stats.stale_detections += 1
            self.last_reports[outcome.section] = report
            self.recent_outcomes.append(outcome)

    # -- stats plumbing -----------------------------------------------------------

    def _record_outcome(self, section: str, outcome: Optional[SectionOutcome]) -> None:
        stats = self.stats.sections.get(section)
        if stats is None:
            # Boundary of an out-of-scope block (e.g. an instrumented FFN
            # under an attention-only scope): nothing ran, nothing to count.
            return
        if outcome is None:
            # Section disabled this pass (frequency gating) or no pass state.
            stats.checks_skipped += 1
            return
        if outcome.deferred:
            return  # counted when end_step() flushes
        if outcome.report is None:
            # Carried checksums forward without verifying (CL visited for O).
            stats.checks_skipped += 1
            return
        stats.record(outcome.report)
        self.last_reports[section] = outcome.report
        stats.operand_repairs += outcome.operand_repairs
        self.recent_outcomes.append(outcome)

    def take_recent_outcomes(self) -> List[SectionOutcome]:
        """Drain and return the bounded ring of verified section outcomes.

        Serving callers read :attr:`SectionOutcome.request_dirty` off the
        drained outcomes to attribute detections to individual requests of a
        batch.  The ring holds at most its ``maxlen`` most recent outcomes,
        so a caller that drains once per step never loses any (one step
        produces at most sections x layers outcomes); a caller that never
        drains pays bounded memory instead of a leak.
        """
        outcomes = list(self.recent_outcomes)
        self.recent_outcomes.clear()
        return outcomes

    # -- reporting ----------------------------------------------------------------

    def overhead_seconds(self) -> float:
        """Total wall-clock ABFT work, including the async worker's share."""
        return self.timers.total()

    def critical_path_seconds(self) -> float:
        """ABFT time spent on the training thread (excludes ``async/`` keys).

        For immediate and deferred modes this equals
        :meth:`overhead_seconds`; for async mode it is the encode/carry/queue
        cost plus the step-submit bookkeeping — the part the paper's
        off-critical-path claim says should be all that remains.
        """
        return self.timers.total(exclude="async/")

    def async_verification_seconds(self) -> float:
        """Wall-clock the async worker spent verifying/repairing (0 otherwise)."""
        return self.timers.total(prefix="async/")

    def section_overhead_seconds(self) -> Dict[str, float]:
        """Wall-clock ABFT time per protection section (critical path only)."""
        return {
            name: self.timers.total(prefix=f"{name}/")
            for name in self.config.active_sections
        }

    def summary(self) -> str:
        """Human-readable multi-line statistics summary."""
        lines = [
            f"ATTNChecker statistics (backend={self.config.backend}, "
            f"mode={self.verification_mode}, "
            f"array_backend={self.config.array_backend}):"
        ]
        for name, stats in self.stats.sections.items():
            lines.append(
                f"  [{name}] checks={stats.checks_run} skipped={stats.checks_skipped} "
                f"detected={stats.detections} corrected={stats.corrections} "
                f"aborted={stats.aborted_vectors} residual_extreme={stats.residual_extreme} "
                f"operand_repairs={stats.operand_repairs} stale={stats.stale_detections}"
            )
        lines.append(
            f"  total ABFT time: {self.overhead_seconds() * 1e3:.3f} ms "
            f"(critical path: {self.critical_path_seconds() * 1e3:.3f} ms, "
            f"transfers: {self.transfer_seconds() * 1e3:.3f} ms)"
        )
        return "\n".join(lines)

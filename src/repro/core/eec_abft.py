"""EEC-ABFT: Extreme Error Correcting ABFT (Section 4.2 of the paper).

Classic ABFT locates an error in a vector ``v`` by dividing the weighted
checksum difference by the unweighted one and corrects it by adding the
difference back.  That breaks down for the error classes this paper targets:

* an **INF** error makes both differences INF (index = INF/INF = NaN);
* a **NaN** error poisons both differences;
* a **near-INF** error can overflow the weighted difference and, even when it
  does not, adding the difference back absorbs the healthy elements of the
  vector under round-off, producing a wrong "correction".

EEC-ABFT therefore branches on the *value class* of the checksum differences
(the four cases of Figure 3) and falls back to searching the vector for the
extreme element and to reconstructing the true value from the unweighted
checksum and the healthy elements.

The paper runs one GPU thread per column vector; this reproduction expresses
the same per-vector case analysis as whole-array masks, which keeps the
per-call Python overhead independent of the number of vectors — the
vectorisation guidance of the HPC-Python guides and the analogue of the
paper's divergence-free kernel design.

Backend-generic contract
------------------------
Both entry points dispatch through the array namespace of the backend that
owns the protected matrix (:func:`repro.backend.namespace_of`): detection,
case classification, location and in-place correction all run inside the
owning array library, so device-resident data is verified and repaired
without a host round-trip.  The report masks belong to the same backend as
the matrix; their scalar summaries (``num_detected`` etc.) are plain Python
ints on every backend.  On NumPy this module executes the exact historical
operation sequence — the equivalence tests compare every other backend's
decisions against it, byte for byte.

The public entry points are :func:`check_columns` (column-checksum side,
handles 0D and 1R patterns) and :func:`check_rows` (row-checksum side, 0D and
1C patterns), both operating in place on the protected matrix and returning a
:class:`ColumnCheckReport`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.backend import backend_of, namespace_of
from repro.core.checksums import checksum_weights
from repro.core.thresholds import ABFTThresholds

__all__ = ["ColumnCheckReport", "check_columns", "check_rows"]


@dataclass
class ColumnCheckReport:
    """Outcome of one EEC-ABFT pass over the vectors of a matrix.

    All masks have one entry per checked vector (i.e. per column for
    :func:`check_columns`, per row for :func:`check_rows`), flattened over any
    leading batch/head axes, and live on the backend that owns the checked
    matrix.

    Attributes
    ----------
    detected:
        Vectors whose checksums flagged an inconsistency or that contain
        extreme values.
    corrected:
        Vectors in which exactly one error was located and repaired.
    aborted:
        Vectors where correction was aborted because a 1D propagation (two or
        more errors in the same vector) or a checksum-consistent corruption
        was recognised — case 4 of the paper; the matrix-level logic retries
        with the orthogonal checksum side.
    case1 / case2 / case3:
        Vectors handled through the finite-delta, INF-delta and NaN-delta
        branches respectively.
    corrected_indices:
        Per-vector index of the repaired element (-1 where no repair).
    """

    detected: Any
    corrected: Any
    aborted: Any
    case1: Any
    case2: Any
    case3: Any
    corrected_indices: Any

    @property
    def num_detected(self) -> int:
        return int(self.detected.sum())

    @property
    def num_corrected(self) -> int:
        return int(self.corrected.sum())

    @property
    def num_aborted(self) -> int:
        return int(self.aborted.sum())

    @property
    def clean(self) -> bool:
        """True when no inconsistency of any kind was observed."""
        return self.num_detected == 0

    def merge(self, other: "ColumnCheckReport") -> "ColumnCheckReport":
        """Combine two reports.

        Two cases:

        * **Same shape** — the reports describe the *same* vectors (e.g. the
          column pass and a retry pass over them).  ``detected`` and
          ``corrected`` combine with OR; ``aborted`` combines with OR and is
          then cleared for every vector either pass managed to correct — an
          abort resolved by the orthogonal pass must not survive as aborted.
          The case masks combine with OR and ``corrected_indices`` keeps the
          first report's located index where it has one, falling back to the
          other's.
        * **Different shapes** — the reports describe *disjoint* vector sets
          (e.g. the per-column report merged with the per-row report of the
          same matrix, whose vector counts differ).  Every field, including
          the case masks and ``corrected_indices``, is concatenated flat.
        """
        xp = namespace_of(self.detected)
        if tuple(self.detected.shape) != tuple(other.detected.shape):
            def cat(a, b):
                return xp.concatenate([a.ravel(), b.ravel()])

            return ColumnCheckReport(
                detected=cat(self.detected, other.detected),
                corrected=cat(self.corrected, other.corrected),
                aborted=cat(self.aborted, other.aborted),
                case1=cat(self.case1, other.case1),
                case2=cat(self.case2, other.case2),
                case3=cat(self.case3, other.case3),
                corrected_indices=cat(self.corrected_indices, other.corrected_indices),
            )

        corrected = self.corrected | other.corrected
        return ColumnCheckReport(
            detected=self.detected | other.detected,
            corrected=corrected,
            aborted=(self.aborted | other.aborted) & ~corrected,
            case1=self.case1 | other.case1,
            case2=self.case2 | other.case2,
            case3=self.case3 | other.case3,
            corrected_indices=xp.where(
                self.corrected_indices >= 0, self.corrected_indices, other.corrected_indices
            ),
        )


def _empty_report(shape, xp) -> ColumnCheckReport:
    zeros = xp.zeros(shape, dtype=xp.bool_)
    return ColumnCheckReport(
        detected=xp.copy(zeros),
        corrected=xp.copy(zeros),
        aborted=xp.copy(zeros),
        case1=xp.copy(zeros),
        case2=xp.copy(zeros),
        case3=xp.copy(zeros),
        corrected_indices=xp.full(shape, -1, dtype=xp.int64),
    )


def check_columns(
    matrix: Any,
    col_checksums: Any,
    thresholds: Optional[ABFTThresholds] = None,
    correct: bool = True,
) -> ColumnCheckReport:
    """Run EEC-ABFT on every column of ``matrix`` using its column checksums.

    Parameters
    ----------
    matrix:
        Protected data of shape ``(..., m, n)``, in any registered backend's
        array type; **modified in place** when corrections are applied.
    col_checksums:
        Maintained (true) column checksums of shape ``(..., 2, n)`` — row 0
        unweighted, row 1 weighted with ``[1..m]`` — on the same backend.
    thresholds:
        Numerical thresholds; defaults to the paper's values.
    correct:
        When False, only detection/classification is performed (used by the
        nondeterministic-pattern logic to probe a side without touching data).

    Returns
    -------
    ColumnCheckReport
        Per-column masks describing what was detected, corrected or aborted.
    """
    thresholds = thresholds or ABFTThresholds()
    backend = backend_of(matrix)
    xp = backend.xp
    matrix = xp.asarray(matrix)
    col_checksums = xp.asarray(col_checksums)
    if matrix.shape[:-2] != col_checksums.shape[:-2] or matrix.shape[-1] != col_checksums.shape[-1]:
        raise ValueError(
            f"checksum shape {tuple(col_checksums.shape)} incompatible with "
            f"matrix shape {tuple(matrix.shape)}"
        )
    if col_checksums.shape[-2] != 2:
        raise ValueError("column checksums must have two rows (unweighted, weighted)")

    *lead, m, n = matrix.shape
    flat = matrix.reshape(-1, m, n)
    # ``reshape`` copies when ``matrix`` is a non-contiguous view (e.g. the
    # transposed view used by :func:`check_rows`); remember whether we must
    # write corrections back at the end.
    flat_is_view = backend.shares_memory(flat, matrix)
    cs = col_checksums.reshape(-1, 2, n)
    batch = flat.shape[0]

    report = _empty_report((batch, n), xp)

    _, v2 = checksum_weights(m, xp=xp)

    # --- recompute checksums of the (possibly corrupted) data ----------------
    # Accumulate in float64 regardless of the data dtype: summing a low
    # precision (fp16/fp32) matrix in its own dtype loses enough weighted-sum
    # precision to trigger false positives at the default thresholds.
    flat64 = xp.astype(flat, xp.float64, copy=False)
    with xp.errstate(invalid="ignore", over="ignore"):
        recomputed0 = xp.sum(flat, axis=1, dtype=xp.float64)   # (B, n)
        recomputed1 = xp.einsum("i,bij->bj", v2, flat64)       # (B, n)
        delta1 = cs[:, 0, :] - recomputed0
        delta2 = cs[:, 1, :] - recomputed1

        extreme = thresholds.is_extreme(flat)                  # (B, m, n)
        # Integer count of a boolean mask, not a checksum accumulation.
        # reprolint: disable=DT001
        n_extreme = xp.sum(extreme, axis=1)                    # (B, n)

        tol = thresholds.detection_tolerance(cs[:, 0, :])
        finite_d1 = xp.isfinite(delta1)
        abs_d1 = xp.abs(delta1)
        numeric_mismatch = finite_d1 & (abs_d1 > tol)
        detected = numeric_mismatch | ~finite_d1 | (n_extreme > 0)

        report.detected[:] = detected
        if not bool(detected.any()):
            return _reshape_report(report, lead, n)

        # --- classify the cases of Figure 3 ----------------------------------
        nan_d1 = xp.isnan(delta1)
        inf_d1 = xp.isinf(delta1)
        case1 = detected & finite_d1
        case2 = detected & inf_d1
        case3 = detected & nan_d1
        report.case1[:] = case1
        report.case2[:] = case2
        report.case3[:] = case3

        # Case 4 (abort): more than one extreme error in the same vector, or a
        # corruption that is *consistent* with the maintained checksums (this
        # happens when the checksums themselves were derived from the corrupted
        # operand — the nondeterministic-pattern scenario of Section 4.3).
        consistent_corruption = (n_extreme > 0) & finite_d1 & (abs_d1 <= tol)
        aborted = (n_extreme > 1) | consistent_corruption

        # --- locate single errors ---------------------------------------------
        # Index from the checksum ratio (1-based in the paper, 0-based here).
        safe_d1 = xp.where(xp.abs(delta1) > 0, delta1, 1.0)
        ratio = delta2 / safe_d1
        ratio_valid = xp.isfinite(ratio)
        nearest = xp.rint(ratio)
        ratio_is_integer = ratio_valid & (xp.abs(ratio - nearest) <= 0.45)
        idx_from_checksum = xp.clip(xp.astype(nearest, xp.int64, copy=False) - 1, 0, m - 1)
        in_range = ratio_valid & (nearest >= 1) & (nearest <= m)

        # Index from searching the vector for the extreme / non-finite element
        # (cases 2 and 3, and case-1 overflow of delta2).
        idx_from_search = xp.argmax(extreme, axis=1)           # (B, n), 0 when none

        # --- pure numeric single error (classic ABFT path) --------------------
        numeric_single = case1 & numeric_mismatch & (n_extreme == 0)
        numeric_locatable = numeric_single & in_range & ratio_is_integer
        # A numeric mismatch whose index cannot be located indicates multiple
        # accumulated (propagated) numeric errors -> treat as propagation.
        aborted = aborted | (numeric_single & ~(in_range & ratio_is_integer))

        # --- single extreme error ----------------------------------------------
        extreme_single = detected & (n_extreme == 1) & ~consistent_corruption
        # Prefer the checksum-located index when delta2 survived (case 1 with
        # finite delta2); otherwise use the searched index, as the paper does.
        use_checksum_idx = extreme_single & case1 & xp.isfinite(delta2) & in_range & ratio_is_integer
        idx_extreme = xp.where(use_checksum_idx, idx_from_checksum, idx_from_search)

        if correct:
            batch_idx, col_idx = xp.nonzero(numeric_locatable & ~aborted)
            if batch_idx.shape[0]:
                rows = idx_from_checksum[batch_idx, col_idx]
                corrupted = flat[batch_idx, rows, col_idx]
                addition = delta1[batch_idx, col_idx]
                # T_correct rule: large corrupted values are reconstructed from
                # the checksum and the healthy elements instead of delta-added.
                large = xp.abs(corrupted) > thresholds.correct
                sum_others = recomputed0[batch_idx, col_idx] - corrupted
                reconstructed = cs[batch_idx, 0, col_idx] - sum_others
                # Repairs are computed in float64; cast down to the data's
                # dtype explicitly (NumPy assignment would cast silently,
                # Torch index assignment requires matching dtypes).
                flat[batch_idx, rows, col_idx] = xp.astype(
                    xp.where(large, reconstructed, corrupted + addition),
                    flat.dtype, copy=False,
                )
                report.corrected[batch_idx, col_idx] = True
                report.corrected_indices[batch_idx, col_idx] = rows

            batch_idx, col_idx = xp.nonzero(extreme_single & ~aborted)
            if batch_idx.shape[0]:
                rows = idx_extreme[batch_idx, col_idx]
                # Reconstruct: true value = checksum - sum of healthy elements,
                # accumulated in float64 like every other checksum-side sum (a
                # low-precision healthy sum degrades the reconstructed value).
                healthy = xp.where(
                    extreme, 0.0, xp.astype(flat, xp.float64, copy=False)
                )
                sum_others = xp.sum(healthy, axis=1, dtype=xp.float64)[
                    batch_idx, col_idx
                ] - xp.where(
                    thresholds.is_extreme(flat[batch_idx, rows, col_idx]),
                    0.0,
                    flat[batch_idx, rows, col_idx],
                )
                reconstructed = cs[batch_idx, 0, col_idx] - sum_others
                flat[batch_idx, rows, col_idx] = xp.astype(
                    reconstructed, flat.dtype, copy=False
                )
                report.corrected[batch_idx, col_idx] = True
                report.corrected_indices[batch_idx, col_idx] = rows

        report.aborted[:] = aborted

    if correct and not flat_is_view:
        matrix[...] = flat.reshape(matrix.shape)
    return _reshape_report(report, lead, n)


def check_rows(
    matrix: Any,
    row_checksums: Any,
    thresholds: Optional[ABFTThresholds] = None,
    correct: bool = True,
) -> ColumnCheckReport:
    """Run EEC-ABFT on every row of ``matrix`` using its row checksums.

    Implemented by viewing the transposed matrix through
    :func:`check_columns`: the row checksums of ``M`` are exactly the column
    checksums of ``M^T``.  The transposed array is a zero-copy view in every
    supported backend, so in-place corrections propagate back to ``matrix``.
    """
    xp = namespace_of(matrix)
    matrix = xp.asarray(matrix)
    row_checksums = xp.asarray(row_checksums)
    transposed = xp.swapaxes(matrix, -1, -2)
    cs_t = xp.swapaxes(row_checksums, -1, -2)
    return check_columns(transposed, cs_t, thresholds=thresholds, correct=correct)


def _reshape_report(report: ColumnCheckReport, lead, n) -> ColumnCheckReport:
    """Reshape the flat (batch, n) masks back to the caller's leading axes."""
    shape = tuple(lead) + (n,)
    return ColumnCheckReport(
        detected=report.detected.reshape(shape),
        corrected=report.corrected.reshape(shape),
        aborted=report.aborted.reshape(shape),
        case1=report.case1.reshape(shape),
        case2=report.case2.reshape(shape),
        case3=report.case3.reshape(shape),
        corrected_indices=report.corrected_indices.reshape(shape),
    )

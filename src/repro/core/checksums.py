"""Checksum encoding and propagation for ABFT-protected GEMMs.

Notation (Section 2.3 of the paper).  For a matrix block ``M`` of shape
``(m, n)`` (possibly with leading batch/head axes):

* the **column checksums** are the two row vectors obtained by multiplying
  from the left with the unweighted and weighted checksum vectors::

      col(M) = [ v1^T M ]      with  v1 = [1, 1, ..., 1]^T        shape (2, n)
               [ v2^T M ]            v2 = [1, 2, ..., m]^T

  Column checksums detect/correct one error *per column* and therefore handle
  0D and 1R patterns.

* the **row checksums** are the two column vectors ``M [v1 v2]`` with weights
  over the ``n`` columns, shape ``(m, 2)``.  They handle 0D and 1C patterns.

The central algebraic fact ABFT exploits is that checksums propagate through
matrix multiplication: for ``C = A B``::

    col(C) = col(A) B          row(C) = A row(B)

so a checksum encoded once on the *input* of a protection section can be
carried ("passed", Section 4.4) through every GEMM of the section with two
extra GEMV-sized multiplications instead of a full re-encode — and, crucially,
the carried checksum describes the *true* output even when the GEMM's computed
output was corrupted by a transient fault.

This module implements encoding, propagation (including bias-add adjustment,
needed because the projections in real transformer layers are affine rather
than linear), and the head split/merge plumbing required because the paper's
GEMMs ``Q K^T`` and ``AP V`` operate per attention head.

Backend-generic contract
------------------------
Every function here is **array-library generic**: it dispatches through the
namespace of the backend that owns its input
(:func:`repro.backend.namespace_of`), so a NumPy matrix is encoded with NumPy
BLAS, a CuPy/Torch matrix with the device library — the checksums live
wherever the protected data lives and never round-trip through host memory.
The NumPy path executes the exact operation sequence of the historical
implementation (the cross-backend equivalence tests pin this).  Weighted sums
are always *accumulated in the backend's float64*, whatever the input dtype.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.backend import backend_of, get_backend, namespace_of
from repro.core.workspace import matmul_into

__all__ = [
    "checksum_weights",
    "stacked_checksum_weights",
    "clear_checksum_weight_cache",
    "encode_column_checksums",
    "encode_row_checksums",
    "recompute_column_sums",
    "recompute_row_sums",
    "update_column_checksums_through_gemm",
    "update_row_checksums_through_gemm",
    "update_column_checksums_with_appended_rows",
    "adjust_column_checksums_for_bias",
    "adjust_row_checksums_for_bias",
    "split_head_column_checksums",
    "merge_head_column_checksums",
    "encode_per_head_row_checksums_of_weight",
    "ChecksumState",
]


#: (id(xp), length, dtype-key) -> (xp, (v1, v2)) — see :func:`checksum_weights`.
#: The namespace object is stored in the entry so an ``id`` collision with a
#: garbage-collected namespace can never serve vectors from the wrong device.
#: Guarded by the GIL only: a benign race rebuilds identical vectors.
_WEIGHT_VECTOR_CACHE: Dict[Tuple, Tuple[Any, Tuple[Any, Any]]] = {}

#: Same cache for the stacked ``(2, m)`` / ``(n, 2)`` encoder weight blocks.
_WEIGHT_BLOCK_CACHE: Dict[Tuple, Tuple[Any, Any]] = {}


def checksum_weights(length: int, dtype=None, xp: Any = None) -> Tuple[Any, Any]:
    """Return the unweighted and weighted checksum vectors ``(v1, v2)``.

    ``v1 = [1, 1, ..., 1]`` and ``v2 = [1, 2, ..., length]`` (1-based), the
    classic Huang–Abraham choice that the paper uses: the ratio of the two
    checksum differences directly yields the (1-based) error index.

    ``xp`` selects the array namespace the vectors are built in (so they land
    on the same device as the data they will multiply); it defaults to NumPy,
    and ``dtype`` defaults to that namespace's float64.

    The vectors are **cached** per (namespace, length, dtype) — every encode,
    bias-adjust and EEC-ABFT detection pass calls this, and rebuilding two
    ``arange``-derived vectors per call was pure dispatch overhead on the hot
    path.  Callers must treat the returned arrays as read-only.
    """
    if length <= 0:
        raise ValueError(f"checksum length must be positive, got {length}")
    if xp is None:
        xp = get_backend("numpy").xp
    if dtype is None:
        dtype = xp.float64
    key = (id(xp), int(length), str(dtype))
    entry = _WEIGHT_VECTOR_CACHE.get(key)
    if entry is not None and entry[0] is xp:
        return entry[1]
    v1 = xp.ones(length, dtype=dtype)
    v2 = xp.arange(1, length + 1, dtype=dtype)
    _WEIGHT_VECTOR_CACHE[key] = (xp, (v1, v2))
    return v1, v2


def stacked_checksum_weights(length: int, axis: int, xp: Any = None) -> Any:
    """The float64 encoder weight block ``stack([v1, v2], axis=axis)``, cached.

    ``axis=0`` gives the ``(2, length)`` block of the column encoder,
    ``axis=1`` the ``(length, 2)`` block of the row encoder.  Cached for the
    same reason as :func:`checksum_weights`; read-only by contract.
    """
    if xp is None:
        xp = get_backend("numpy").xp
    key = (id(xp), int(length), int(axis))
    entry = _WEIGHT_BLOCK_CACHE.get(key)
    if entry is not None and entry[0] is xp:
        return entry[1]
    v1, v2 = checksum_weights(length, xp=xp)
    block = xp.stack([v1, v2], axis=axis)
    _WEIGHT_BLOCK_CACHE[key] = (xp, block)
    return block


def clear_checksum_weight_cache() -> None:
    """Drop every cached weight vector/block (test isolation hook)."""
    _WEIGHT_VECTOR_CACHE.clear()
    _WEIGHT_BLOCK_CACHE.clear()


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------

def encode_column_checksums(matrix: Any, out_dtype=None, out: Any = None) -> Any:
    """Encode column checksums of ``matrix`` (..., m, n) -> (..., 2, n).

    Row 0 holds the unweighted column sums, row 1 the weighted sums.  This is
    the operation the paper's custom "encoding kernel" implements on GPU
    (Section 4.6, Figure 9); here it is a dense matmul with the 2 x m weight
    block, which the owning backend dispatches to its BLAS/GEMM library.

    The weighted sums are always *accumulated in float64*, whatever the input
    dtype: encoding an fp16/fp32 matrix in its own precision loses enough of
    the Huang–Abraham weighted sum to round-off that fault-free data fails the
    default detection tolerances.  Pass ``out_dtype`` to cast the finished
    checksums back down when a caller needs the storage format, or ``out`` (a
    float64 buffer of the result shape, exclusive with ``out_dtype``) to
    encode into a reusable workspace buffer.
    """
    xp = namespace_of(matrix)
    matrix = xp.asarray(matrix)
    m = matrix.shape[-2]
    weights = stacked_checksum_weights(m, axis=0, xp=xp)  # (2, m), float64
    encoded = matmul_into(xp, weights, xp.astype(matrix, xp.float64, copy=False), out)
    return encoded if out_dtype is None else xp.astype(encoded, out_dtype)


def encode_row_checksums(matrix: Any, out_dtype=None, out: Any = None) -> Any:
    """Encode row checksums of ``matrix`` (..., m, n) -> (..., m, 2).

    Accumulates in float64 regardless of input dtype (see
    :func:`encode_column_checksums`); ``out_dtype`` casts the result back and
    ``out`` encodes into a caller-provided float64 buffer.
    """
    xp = namespace_of(matrix)
    matrix = xp.asarray(matrix)
    n = matrix.shape[-1]
    weights = stacked_checksum_weights(n, axis=1, xp=xp)  # (n, 2), float64
    encoded = matmul_into(xp, xp.astype(matrix, xp.float64, copy=False), weights, out)
    return encoded if out_dtype is None else xp.astype(encoded, out_dtype)


def recompute_column_sums(matrix: Any) -> Tuple[Any, Any]:
    """Recompute (unweighted, weighted) column sums of the *current* data.

    Unlike :func:`encode_column_checksums` this is used on the possibly
    corrupted output at detection time; returning the two components
    separately avoids an extra stack/copy in the hot detection path.
    """
    xp = namespace_of(matrix)
    matrix = xp.asarray(matrix)
    m = matrix.shape[-2]
    _, v2 = checksum_weights(m, xp=xp)
    matrix64 = xp.astype(matrix, xp.float64, copy=False)
    unweighted = xp.sum(matrix, axis=-2, dtype=xp.float64)
    weighted = xp.einsum("i,...ij->...j", v2, matrix64)
    return unweighted, weighted


def recompute_row_sums(matrix: Any) -> Tuple[Any, Any]:
    """Recompute (unweighted, weighted) row sums of the *current* data.

    Like the encoders, accumulation is always in float64 so low-precision data
    does not produce round-off false positives against float64 checksums.
    """
    xp = namespace_of(matrix)
    matrix = xp.asarray(matrix)
    n = matrix.shape[-1]
    _, v2 = checksum_weights(n, xp=xp)
    matrix64 = xp.astype(matrix, xp.float64, copy=False)
    unweighted = xp.sum(matrix, axis=-1, dtype=xp.float64)
    weighted = xp.einsum("j,...ij->...i", v2, matrix64)
    return unweighted, weighted


# ---------------------------------------------------------------------------
# Propagation through GEMM and bias
# ---------------------------------------------------------------------------

def update_column_checksums_through_gemm(col_checksums_a: Any, b: Any) -> Any:
    """Propagate column checksums through ``C = A B``:  ``col(C) = col(A) B``."""
    return namespace_of(col_checksums_a).matmul(col_checksums_a, b)


def update_row_checksums_through_gemm(a: Any, row_checksums_b: Any) -> Any:
    """Propagate row checksums through ``C = A B``:  ``row(C) = A row(B)``."""
    return namespace_of(a).matmul(a, row_checksums_b)


def update_column_checksums_with_appended_rows(
    col_checksums: Any, new_rows: Any, first_row_index: int
) -> Any:
    """Fold rows appended to a growing matrix into its column checksums, in place.

    For a matrix that grows along its row axis — the KV-cache view of the
    attention input, one row per decoded token — the Huang–Abraham column
    checksums update incrementally: appending row ``x`` at (0-based) position
    ``p`` shifts the unweighted sums by ``x`` and the weighted sums by
    ``(p + 1) * x``, because ``v2`` weights row ``p`` with ``p + 1``.  The
    update is O(rows appended), independent of how many rows the matrix
    already holds — this is what makes per-token decode protection O(1) in
    the cached sequence length.

    ``col_checksums`` must be a float64 ``(..., 2, n)`` buffer (it is mutated
    in place and returned); ``new_rows`` is ``(..., t, n)`` with
    ``first_row_index`` the 0-based position of its first row in the grown
    matrix.  Accumulation is in float64 like the encoders.
    """
    xp = namespace_of(col_checksums)
    new64 = xp.astype(xp.asarray(new_rows), xp.float64, copy=False)
    t = new64.shape[-2]
    if t == 1:
        # Single-token decode hot path: two elementwise AXPYs, no reductions.
        row = new64[..., 0, :]
        col_checksums[..., 0, :] += row
        col_checksums[..., 1, :] += float(first_row_index + 1) * row
        return col_checksums
    unweighted = xp.sum(new64, axis=-2, dtype=xp.float64)
    _, v2 = checksum_weights(t, xp=xp)
    weighted = xp.einsum("i,...ij->...j", v2, new64)
    col_checksums[..., 0, :] += unweighted
    col_checksums[..., 1, :] += weighted + float(first_row_index) * unweighted
    return col_checksums


def adjust_column_checksums_for_bias(
    col_checksums: Any, bias: Any, num_rows: int
) -> Any:
    """Adjust column checksums for an affine output ``C' = C + 1 bias^T``.

    Adding the same bias vector to every one of the ``num_rows`` rows shifts
    the unweighted column sums by ``num_rows * bias`` and the weighted sums by
    ``(1 + 2 + ... + num_rows) * bias``.
    """
    xp = namespace_of(col_checksums)
    bias = xp.astype(xp.asarray(bias), xp.float64, copy=False)
    # Copy + float64 accumulation, on the checksums' own device.
    adjusted = xp.astype(col_checksums, xp.float64, copy=True)
    adjusted[..., 0, :] = adjusted[..., 0, :] + num_rows * bias
    adjusted[..., 1, :] = adjusted[..., 1, :] + (num_rows * (num_rows + 1) / 2.0) * bias
    return adjusted


def adjust_row_checksums_for_bias(row_checksums: Any, bias: Any) -> Any:
    """Adjust row checksums for ``C' = C + 1 bias^T``.

    Every row gains ``sum(bias)`` on the unweighted side and
    ``sum(bias * [1..n])`` on the weighted side.
    """
    xp = namespace_of(row_checksums)
    bias = xp.astype(xp.asarray(bias), xp.float64, copy=False)
    n = bias.shape[-1]
    _, v2 = checksum_weights(n, xp=xp)
    adjusted = xp.astype(row_checksums, xp.float64, copy=True)
    adjusted[..., 0] = adjusted[..., 0] + xp.sum(bias, dtype=xp.float64)
    adjusted[..., 1] = adjusted[..., 1] + float(xp.dot(bias, v2))
    return adjusted


# ---------------------------------------------------------------------------
# Head split / merge
# ---------------------------------------------------------------------------

def split_head_column_checksums(col_checksums: Any, num_heads: int) -> Any:
    """Split column checksums of a ``(B, S, D)`` projection into per-head blocks.

    ``(B, 2, D) -> (B, H, 2, D/H)`` — mirrors
    :func:`repro.tensor.autograd.split_heads` applied to the data: because
    head splitting partitions the *columns* (features) and leaves the rows
    (sequence positions) untouched, the column checksums partition the same
    way.
    """
    xp = namespace_of(col_checksums)
    col_checksums = xp.asarray(col_checksums)
    *lead, two, d = col_checksums.shape
    if two != 2:
        raise ValueError(f"expected a checksum axis of size 2, got {two}")
    if d % num_heads:
        raise ValueError(f"feature dim {d} not divisible by num_heads {num_heads}")
    head_dim = d // num_heads
    reshaped = col_checksums.reshape(*lead, 2, num_heads, head_dim)
    return xp.moveaxis(reshaped, -2, -3)  # (..., H, 2, head_dim)


def merge_head_column_checksums(per_head: Any, out: Any = None) -> Any:
    """Inverse of :func:`split_head_column_checksums`: ``(B, H, 2, dh) -> (B, 2, H*dh)``.

    ``out``, when given, must be a contiguous buffer of shape
    ``(..., 2, H, dh)`` (the *moved* layout — what
    ``ChecksumWorkspace.request`` hands the engine): the merge materialises
    into it by slice assignment instead of a fresh reshape-copy, and the
    returned array is its ``(..., 2, H*dh)`` view.  Values are identical
    either way.
    """
    xp = namespace_of(per_head)
    per_head = xp.asarray(per_head)
    *lead, h, two, dh = per_head.shape
    if two != 2:
        raise ValueError(f"expected a checksum axis of size 2, got {two}")
    moved = xp.moveaxis(per_head, -3, -2)  # (..., 2, H, dh)
    if out is None:
        return moved.reshape(*lead, 2, h * dh)
    out[...] = moved
    return out.reshape(*lead, 2, h * dh)


def encode_per_head_row_checksums_of_weight(weight: Any, num_heads: int) -> Any:
    """Row-checksum encode a projection weight per output head.

    For ``W`` of shape ``(D_in, D_out)`` whose output features are split into
    ``num_heads`` heads of ``dh = D_out / H`` columns each, return the block
    of per-head row-checksum weights of shape ``(D_in, H, 2)``: entry
    ``[:, h, 0]`` is ``W[:, h*dh:(h+1)*dh] @ 1`` and ``[:, h, 1]`` the
    ``[1..dh]``-weighted version.  Multiplying ``X (B, S, D_in)`` by this
    block yields per-head row checksums of ``V = X W`` directly — the
    checksum-passing trick of protection section S_CL.
    """
    xp = namespace_of(weight)
    weight = xp.asarray(weight)
    d_in, d_out = weight.shape
    if d_out % num_heads:
        raise ValueError(f"output dim {d_out} not divisible by num_heads {num_heads}")
    dh = d_out // num_heads
    # float64: same dtype-safety rule as the encoders.
    weights = stacked_checksum_weights(dh, axis=1, xp=xp)  # (dh, 2)
    per_head = xp.astype(weight, xp.float64, copy=False).reshape(d_in, num_heads, dh)
    return xp.einsum("dhk,kw->dhw", per_head, weights)  # (D_in, H, 2)


# ---------------------------------------------------------------------------
# Checksum state container
# ---------------------------------------------------------------------------

@dataclass
class ChecksumState:
    """Column and/or row checksums attached to one protected matrix.

    Either side may be absent (``None``) — e.g. the attention output ``O``
    only carries column checksums (Section 4.4, "Attention Output Protection
    Section").  The stored arrays belong to whatever backend encoded them; a
    state never mixes backends between its two sides.
    """

    col: Optional[Any] = None
    row: Optional[Any] = None

    def has_col(self) -> bool:
        return self.col is not None

    def has_row(self) -> bool:
        return self.row is not None

    def copy(self) -> "ChecksumState":
        return ChecksumState(
            col=None if self.col is None else backend_of(self.col).copy(self.col),
            row=None if self.row is None else backend_of(self.row).copy(self.row),
        )

    @staticmethod
    def encode(matrix: Any, col: bool = True, row: bool = False) -> "ChecksumState":
        """Encode fresh checksums directly from ``matrix``."""
        return ChecksumState(
            col=encode_column_checksums(matrix) if col else None,
            row=encode_row_checksums(matrix) if row else None,
        )

    def verify(self, matrix: Any, rtol: float = 1e-6, atol: float = 1e-6) -> bool:
        """Whether the stored checksums are consistent with ``matrix``."""
        xp = namespace_of(matrix)
        ok = True
        if self.col is not None:
            unweighted, weighted = recompute_column_sums(matrix)
            ok &= bool(xp.allclose(self.col[..., 0, :], unweighted, rtol=rtol, atol=atol))
            ok &= bool(xp.allclose(self.col[..., 1, :], weighted, rtol=rtol, atol=atol))
        if self.row is not None:
            unweighted, weighted = recompute_row_sums(matrix)
            ok &= bool(xp.allclose(self.row[..., 0], unweighted, rtol=rtol, atol=atol))
            ok &= bool(xp.allclose(self.row[..., 1], weighted, rtol=rtol, atol=atol))
        return ok
